//! The paper-figure chaos scenarios as reusable library functions.
//!
//! Each figure builds a fresh [`Network`] with the lossy-WAN fault
//! profile seeded from the master seed, wires a [`Tracer`] whose clock
//! is the scenario's `SimClock` (so every span timestamp is simulated
//! time, fully deterministic per seed), attaches a hash-chained
//! [`AuditLog`] as the tracer's event sink, and runs the flow through
//! the retry/RPC stack. The returned [`ScenarioReport`] carries the
//! network transcript, the trace dump, and the metrics snapshot — all
//! three byte-identical functions of the seed.
//!
//! The chaos test suite (`tests/chaos.rs`) asserts on these; the bench
//! crate's `flow_metrics` bin replays them to emit `BENCH_flows.json`
//! for `regen_experiments`.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use gridsec_authz::cas::ResourceGate;
use gridsec_authz::durable::DurableCas;
use gridsec_authz::net::fetch_assertion;
use gridsec_authz::policy::{CombiningAlg, Decision, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_crypto::sha256::sha256;
use gridsec_gram::durable::DurableGram;
use gridsec_gram::remote::{job_state_remote, submit_job_resilient};
use gridsec_gram::resource::{GramConfig, GramResource};
use gridsec_gram::types::{JobDescription, JobState};
use gridsec_gram::Requestor;
use gridsec_gridftp::poll::{Dialect, SessionTask};
use gridsec_gridftp::resume::{resumable_get, resumable_put};
use gridsec_gridftp::GridFtpServer;
use gridsec_gsi::sso;
use gridsec_gsi::vo::{create_domain, form_vo};
use gridsec_gssapi::net::{
    establish_initiator_cached, establish_initiator_resilient, CrashableAcceptor,
};
use gridsec_ogsa::client::{OgsaClient, StaticCredential};
use gridsec_ogsa::hosting::HostingEnvironment;
use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::transport::{RetryTransport, RpcService};
use gridsec_ogsa::OgsaError;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::store::TrustStore;
use gridsec_services::audit::AuditLog;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::faults::{CrashPlan, CrashableServer, Journal};
use gridsec_testbed::net::{
    with_stream_pump, FaultProfile, FaultStats, Network, SimStream, StreamPair,
};
use gridsec_testbed::os::{FileMode, SimOs, ROOT_UID};
use gridsec_testbed::rpc::RpcClient;
use gridsec_testbed::sched::Scheduler;
use gridsec_tls::handshake::TlsConfig;
use gridsec_tls::session::{ClientSessionCache, DEFAULT_SESSION_CAPACITY};
use gridsec_util::retry::RetryPolicy;
use gridsec_util::trace::{self, MetricsSnapshot, Tracer};
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_xml::Element;

use std::sync::Mutex;

use crate::{basic_world, dn};

pub mod crypto_storm;
pub mod expiry_storm;
pub mod portal;
pub mod vo_storm;

/// Options a chaos harness can vary per run.
#[derive(Clone, Debug, Default)]
pub struct ChaosOpts {
    /// Partition every client/server link before the flow runs, forcing
    /// retry-budget exhaustion (the flight recorder's trigger).
    pub partition_all: bool,
    /// Write flight-recorder dumps here (the tracer's flight path).
    pub flight_path: Option<String>,
    /// Enable seeded process crashes: every service runs under a
    /// [`CrashPlan`] that kills it at injection points mid-request, up
    /// to a per-figure cap, with recovery from the write-ahead journal.
    pub crashes: bool,
    /// Explicitly armed kill points (`(point, nth-hit)`); point names
    /// are figure-specific (`cas.issue.journaled`, `gram.start.exec`,
    /// `xfer.put.chunk`, …) so arming one targets one figure.
    pub armed_crashes: Vec<(String, u64)>,
}

/// Everything one scenario produced, all deterministic per seed.
pub struct ScenarioReport {
    /// Network transcript lines, prefixed with the figure tag — crash
    /// and restart events from the [`CrashPlan`] transcript included.
    pub lines: Vec<String>,
    /// Fault-layer counters.
    pub stats: FaultStats,
    /// The trace ring + metrics, rendered (`Tracer::dump` + render).
    pub trace: String,
    /// The metrics snapshot (for `BENCH_*.json` emission).
    pub metrics: MetricsSnapshot,
    /// Records mirrored into the audit hash chain.
    pub audit_records: usize,
    /// Whether the flow completed (false under `partition_all`).
    pub completed: bool,
    /// Process kills delivered by the figure's crash plan.
    pub crashes: u64,
    /// Service restarts (journal recoveries) completed.
    pub restarts: u64,
}

/// Build the figure's crash plan from the options: seeded when
/// `opts.crashes` (salted so each figure draws an independent
/// schedule), manual when only armed points were requested, disabled
/// otherwise. Armed points apply in every mode.
fn crash_plan(opts: &ChaosOpts, seed: u64, salt: u64, probability: f64, max: u64) -> CrashPlan {
    let plan = if opts.crashes {
        CrashPlan::seeded(seed ^ salt, probability, max, 3)
    } else if !opts.armed_crashes.is_empty() {
        CrashPlan::manual(3)
    } else {
        CrashPlan::disabled()
    };
    for (point, nth) in &opts.armed_crashes {
        plan.arm(point, *nth);
    }
    plan
}

/// The retry policy all chaos clients use: ample attempts, timeout
/// windows comfortably above the profile's worst-case latency so an
/// attempt only fails on an actual drop or partition.
pub fn policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_timeout: 16,
        multiplier: 2,
        max_timeout: 64,
    }
}

/// Per-scenario observability rig: tracer on the scenario clock, audit
/// log as the event sink, optional flight path.
struct Rig {
    tracer: Tracer,
    audit: AuditLog,
}

fn rig(clock: &SimClock, opts: &ChaosOpts) -> Rig {
    let tracer = Tracer::new();
    let c = clock.clone();
    tracer.set_clock(move || c.now());
    if let Some(path) = &opts.flight_path {
        tracer.set_flight_path(path.clone());
    }
    let audit = AuditLog::new();
    audit.attach(&tracer);
    Rig { tracer, audit }
}

fn report(tag: &str, net: &Network, r: Rig, completed: bool, plan: &CrashPlan) -> ScenarioReport {
    assert!(
        r.audit.verify().is_ok(),
        "{tag}: audit hash chain must verify"
    );
    let mut lines: Vec<String> = net
        .transcript()
        .into_iter()
        .map(|l| format!("{tag} {l}"))
        .collect();
    lines.extend(plan.transcript().into_iter().map(|l| format!("{tag} {l}")));
    ScenarioReport {
        lines,
        stats: net.fault_stats().expect("faults were enabled"),
        trace: format!("{}{}", r.tracer.dump(), r.tracer.metrics().render()),
        metrics: r.tracer.metrics(),
        audit_records: r.audit.len(),
        completed,
        crashes: plan.crashes(),
        restarts: plan.restarts(),
    }
}

/// Figure 1: GSS-API context establishment (the VO sign-on handshake)
/// across the lossy network, then a secured message both ways. The
/// acceptor runs under a [`CrashableServer`]: security contexts are
/// deliberately *not* journaled — re-establishment through the retry
/// machinery is the recovery path — so a kill at `gss.accept.exec`
/// forces the initiator to restart the handshake from scratch.
pub fn figure1_gss(seed: u64, opts: &ChaosOpts) -> ScenarioReport {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock.clone(), seed ^ 0xF161, FaultProfile::lossy_wan());
    let plan = crash_plan(opts, seed, 0xC4A1, 0.04, 2);
    let r = rig(&clock, opts);
    let _guard = trace::install(&r.tracer);
    let _dump = trace::dump_on_panic(&r.tracer, "figure1_gss");

    let mut w = basic_world(b"chaos fig1");
    let initiator_cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 100);
    let acceptor_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 100);

    let os = SimOs::new();
    os.add_host("service");
    let journal = Journal::open(os, "service", "/var/gss/journal.wal", ROOT_UID);
    let service = Rc::new(RefCell::new(CrashableAcceptor::new(
        acceptor_cfg,
        b"chaos fig1 acceptor",
        plan.clone(),
    )));
    // persist_replies = false: an ephemeral handshake reply must not be
    // replayed into a post-restart acceptor that lost the session.
    let server = Rc::new(RefCell::new(CrashableServer::new(
        net.register("service"),
        "gss",
        plan.clone(),
        journal,
        false,
    )));
    let mut rpc = RpcClient::new(net.register("user"), "service", policy());
    let hook_server = server.clone();
    let hook_service = service.clone();
    rpc.set_pump(move || {
        hook_server
            .borrow_mut()
            .poll(&mut *hook_service.borrow_mut())
    });

    if opts.partition_all {
        net.partition("user", "service");
        let err = establish_initiator_resilient(&mut rpc, initiator_cfg, &mut w.rng, 1);
        assert!(err.is_err(), "partition must fail establishment");
        return report("fig1", &net, r, false, &plan);
    }

    let mut user_ctx = establish_initiator_resilient(&mut rpc, initiator_cfg, &mut w.rng, 6)
        .expect("figure 1 must establish under lossy WAN + crashes");
    let mut service_ctx = service
        .borrow_mut()
        .service()
        .take_established("user")
        .expect("acceptor side established");

    // The contexts are live: protect one message in each direction.
    let sealed = user_ctx.wrap(b"vo sign-on complete");
    assert_eq!(
        service_ctx.unwrap(&sealed).expect("unwrap at service"),
        b"vo sign-on complete"
    );
    let back = service_ctx.wrap(b"welcome");
    assert_eq!(user_ctx.unwrap(&back).expect("unwrap at user"), b"welcome");
    assert_eq!(service_ctx.peer().base_identity, dn("/O=G/CN=User"));

    // Repeat sign-on through the session cache: normally the abbreviated
    // resumption exchange (no RSA/DH), but any chaos on the resume path —
    // a lost ticket after a kill, an armed `gss.accept.resume` crash —
    // makes it fall back to the full handshake transparently. Either way
    // the second context must come up and carry traffic.
    let mut cache = ClientSessionCache::new(DEFAULT_SESSION_CAPACITY);
    cache.store("service", user_ctx.channel());
    let initiator_cfg2 = TlsConfig::new(w.user.clone(), w.trust.clone(), 100);
    let mut user_ctx2 =
        establish_initiator_cached(&mut rpc, initiator_cfg2, &mut w.rng, &mut cache, 6)
            .expect("figure 1 repeat establishment under lossy WAN + crashes");
    let mut service_ctx2 = service
        .borrow_mut()
        .service()
        .take_established("user")
        .expect("acceptor side re-established");
    let sealed2 = user_ctx2.wrap(b"second session");
    assert_eq!(
        service_ctx2.unwrap(&sealed2).expect("unwrap at service"),
        b"second session"
    );
    let back2 = service_ctx2.wrap(b"welcome back");
    assert_eq!(
        user_ctx2.unwrap(&back2).expect("unwrap at user"),
        b"welcome back"
    );

    report("fig1", &net, r, true, &plan)
}

/// Figure 2: CAS-mediated authorization — fetch a signed capability
/// assertion over the lossy network, then present it to a resource
/// gate that intersects VO rights with local policy.
pub fn figure2_cas(seed: u64, opts: &ChaosOpts) -> ScenarioReport {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock.clone(), seed ^ 0xF162, FaultProfile::lossy_wan());
    let r = rig(&clock, opts);
    let _guard = trace::install(&r.tracer);
    let _dump = trace::dump_on_panic(&r.tracer, "figure2_cas");

    let mut rng = ChaChaRng::from_seed_bytes(b"chaos fig2");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=VO/CN=CA"), 512, 0, 1_000_000);
    let cas_cred = ca.issue_identity(&mut rng, dn("/O=VO/CN=CAS"), 512, 0, 500_000);
    let alice = dn("/O=G/CN=Alice");

    // The CAS policy DB and issued-assertion log live in a write-ahead
    // journal on the simulated OS; a kill at `cas.issue.*` throws the
    // in-memory server away and recovery replays the journal.
    let plan = crash_plan(opts, seed, 0xC4A2, 0.08, 2);
    let os = SimOs::new();
    os.add_host("cas");
    let journal = Journal::open(os, "cas", "/var/cas/journal.wal", ROOT_UID);
    let durable = Rc::new(RefCell::new(DurableCas::new(
        "physics-vo",
        cas_cred,
        3600,
        clock.clone(),
        plan.clone(),
        journal.clone(),
    )));
    durable
        .borrow()
        .enroll(&alice, vec!["group:analysts".into()]);
    durable.borrow().add_rule(
        SubjectMatch::Exact("group:analysts".to_string()),
        "dataset/*",
        "read",
        Effect::Permit,
    );

    let server = Rc::new(RefCell::new(CrashableServer::new(
        net.register("cas"),
        "cas",
        plan.clone(),
        journal,
        true,
    )));
    let mut rpc = RpcClient::new(net.register("alice"), "cas", policy());
    let hook_server = server.clone();
    let hook_service = durable.clone();
    rpc.set_pump(move || {
        hook_server
            .borrow_mut()
            .poll(&mut *hook_service.borrow_mut())
    });

    if opts.partition_all {
        net.partition("alice", "cas");
        assert!(fetch_assertion(&mut rpc, &alice).is_err());
        return report("fig2", &net, r, false, &plan);
    }

    let assertion =
        fetch_assertion(&mut rpc, &alice).expect("figure 2 must fetch under lossy WAN + crashes");
    // At-most-once across restarts: duplicated frames and post-crash
    // retransmits collapsed onto one journaled issuance.
    assert_eq!(
        durable.borrow().issued_count(),
        1,
        "exactly one assertion issued"
    );

    let mut local = PolicySet::new(CombiningAlg::DenyOverrides);
    local.add(Rule::new(
        SubjectMatch::Exact("vo:physics-vo".to_string()),
        "dataset/*",
        "read",
        Effect::Permit,
    ));
    let mut gate = ResourceGate::new(local);
    gate.trust_cas("physics-vo", durable.borrow().cas().public_key().clone());
    let decision = gate
        .authorize_with_cas(&assertion, &alice, "dataset/run7", "read", clock.now())
        .expect("assertion accepted");
    assert_eq!(decision, Decision::Permit);
    trace::event(
        "gate.decision",
        "resource=dataset/run7 action=read outcome=permit",
    );

    report("fig2", &net, r, true, &plan)
}

/// Echo service for the Figure 3 hosting environment.
struct EchoService;

impl GridService for EchoService {
    fn service_type(&self) -> &str {
        "echo"
    }
    fn invoke(
        &mut self,
        ctx: &RequestContext,
        operation: &str,
        payload: &Element,
    ) -> Result<Element, OgsaError> {
        match operation {
            "echo" => Ok(Element::new("echo:Reply")
                .with_attr("caller", ctx.caller.base_identity.to_string())
                .with_text(payload.text_content())),
            other => Err(OgsaError::Application(format!("unknown op {other}"))),
        }
    }
    fn service_data(&self, name: &str) -> Option<Element> {
        (name == "serviceType").then(|| Element::new("sde").with_text("echo"))
    }
}

/// Figure 3: the secured OGSA pipeline — policy fetch, secure
/// conversation, createService, invoke, destroy — every envelope an
/// at-most-once RPC over the lossy network. A duplicated
/// `createService` answered from the reply cache must not create a
/// second instance.
pub fn figure3_ogsa(seed: u64, opts: &ChaosOpts) -> ScenarioReport {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock.clone(), seed ^ 0xF163, FaultProfile::lossy_wan());
    let r = rig(&clock, opts);
    let _guard = trace::install(&r.tracer);
    let _dump = trace::dump_on_panic(&r.tracer, "figure3_ogsa");

    let w = basic_world(b"chaos fig3");
    let published = SecurityPolicy {
        service: "echo".to_string(),
        alternatives: vec![PolicyAlternative {
            mechanism: "gsi-secure-conversation".to_string(),
            token_types: vec!["x509-chain".to_string()],
            trust_roots: vec![],
            protection: Protection::Sign,
        }],
    };
    let mut authz = PolicySet::new(CombiningAlg::DenyOverrides);
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=User".to_string()),
        "factory:echo",
        "create",
        Effect::Permit,
    ));
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=User".to_string()),
        "service:echo",
        "*",
        Effect::Permit,
    ));
    let mut env = HostingEnvironment::new(
        "echo-host",
        w.service.clone(),
        w.trust.clone(),
        clock.clone(),
        published,
        authz,
    );
    env.registry
        .register_factory("echo", Box::new(|_ctx, _args| Ok(Box::new(EchoService))));
    let env = Rc::new(RefCell::new(env));

    let service = Rc::new(RefCell::new(RpcService::new(
        &net,
        "echo-host",
        env.clone(),
    )));
    let mut transport = RetryTransport::connect(&net, "user", "echo-host", policy());
    let hook = service.clone();
    transport.set_pump(move || hook.borrow_mut().poll());
    let mut client = OgsaClient::new(transport, w.trust.clone(), clock, b"chaos fig3 client");
    client.add_source(Box::new(StaticCredential(w.user.clone())));

    if opts.partition_all {
        net.partition("user", "echo-host");
        assert!(client.create_service("echo", Element::new("args")).is_err());
        return report("fig3", &net, r, false, &CrashPlan::disabled());
    }

    let handle = client
        .create_service("echo", Element::new("args"))
        .expect("figure 3 createService under lossy WAN");
    let reply = client
        .invoke(&handle, "echo", Element::new("m").with_text("hello grid"))
        .expect("figure 3 invoke under lossy WAN");
    assert_eq!(reply.text_content(), "hello grid");
    assert_eq!(reply.attr("caller"), Some("/O=G/CN=User"));
    // Exactly one instance exists despite any duplicated createService.
    assert_eq!(env.borrow().registry.instance_count(), 1);
    client.destroy(&handle).expect("figure 3 destroy");
    assert_eq!(env.borrow().registry.instance_count(), 0);

    report("fig3", &net, r, true, &CrashPlan::disabled())
}

/// Figure 4: the GT3 GRAM chain — signed submission through MMJFS /
/// Setuid Starter / GRIM / LMJFS, then step-7 mutual authentication,
/// GRIM authorization, delegation, and job start, every leg retried
/// over the lossy network. Exactly one LMJFS cold start may happen no
/// matter how many times the submission frame is duplicated.
pub fn figure4_gram(seed: u64, opts: &ChaosOpts) -> ScenarioReport {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock.clone(), seed ^ 0xF164, FaultProfile::lossy_wan());
    let r = rig(&clock, opts);
    let _guard = trace::install(&r.tracer);
    let _dump = trace::dump_on_panic(&r.tracer, "figure4_gram");

    let mut rng = ChaChaRng::from_seed_bytes(b"chaos fig4");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
    let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
    let host_cred = ca.issue_host_identity(
        &mut rng,
        dn("/O=G/CN=host compute1"),
        vec!["compute1".into()],
        512,
        0,
        500_000,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    let gridmap = gridsec_authz::gridmap::GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n").unwrap();
    let os = SimOs::new();
    let resource = GramResource::install(
        os.clone(),
        clock.clone(),
        "compute1",
        trust.clone(),
        host_cred,
        &gridmap,
        GramConfig::default(),
    )
    .unwrap();
    let shared = Rc::new(RefCell::new(resource));

    // The MMJFS job table is journaled: a kill at `gram.submit.*` /
    // `gram.start.*` / `gram.session.exec` loses the in-memory MJS
    // layer, and recovery rebuilds it from the journal against the
    // surviving LMJFS processes.
    let plan = crash_plan(opts, seed, 0xC4A4, 0.05, 2);
    let journal = Journal::open(os.clone(), "compute1", "/var/gram/journal.wal", ROOT_UID);
    let durable = Rc::new(RefCell::new(DurableGram::new(
        shared.clone(),
        b"chaos mjs",
        plan.clone(),
        journal.clone(),
    )));
    let server = Rc::new(RefCell::new(CrashableServer::new(
        net.register("mjs-host"),
        "gram",
        plan.clone(),
        journal,
        true,
    )));
    let mut rpc = RpcClient::new(net.register("jane"), "mjs-host", policy());
    let hook_server = server.clone();
    let hook_service = durable.clone();
    rpc.set_pump(move || {
        hook_server
            .borrow_mut()
            .poll(&mut *hook_service.borrow_mut())
    });

    let mut jane = Requestor::new(jane, trust, b"chaos jane");

    if opts.partition_all {
        net.partition("jane", "mjs-host");
        let err = submit_job_resilient(
            &mut jane,
            &mut rpc,
            &JobDescription::new("/bin/sim"),
            &dn("/O=G/CN=host compute1"),
            clock.now(),
            1,
        );
        assert!(err.is_err(), "partition must fail submission");
        return report("fig4", &net, r, false, &plan);
    }

    let job = submit_job_resilient(
        &mut jane,
        &mut rpc,
        &JobDescription::new("/bin/sim"),
        &dn("/O=G/CN=host compute1"),
        clock.now(),
        6,
    )
    .expect("figure 4 must submit under lossy WAN + crashes");
    assert_eq!(job.account, "jdoe");
    assert_eq!(
        job_state_remote(&mut rpc, &job.handle).expect("state query"),
        JobState::Active
    );
    // The journal-backed reply cache absorbed duplicated and
    // re-executed submissions across restarts: one cold start, one
    // job process — no duplicate side effects.
    assert_eq!(shared.borrow().stats.cold_starts, 1);
    let jobs = os
        .processes("compute1")
        .unwrap()
        .into_iter()
        .filter(|p| p.alive && p.name.starts_with("job:"))
        .count();
    assert_eq!(jobs, 1, "exactly one job process spawned");

    report("fig4", &net, r, true, &plan)
}

/// Figure 5 (the paper's third GT2 service family, §3): resumable
/// GridFTP data movement. A GET and a PUT of the same 4 KiB payload run
/// over [`StreamPair::lossy`] connections that tear deterministically;
/// the server can additionally be killed at `xfer.get.chunk` /
/// `xfer.put.chunk` mid-transfer. Restart markers (the client buffer
/// for GET, the durable `.part` staging file for PUT) resume every torn
/// session, and both directions finish with SHA-256 digests verified
/// end to end. Under `partition_all` the drop rate is 1.0: the connect
/// budget exhausts and the flight recorder dumps.
pub fn figure5_xfer(seed: u64, opts: &ChaosOpts) -> ScenarioReport {
    let clock = SimClock::starting_at(100);
    let plan = crash_plan(opts, seed, 0xC4A5, 0.10, 2);
    let r = rig(&clock, opts);
    let _guard = trace::install(&r.tracer);
    let _dump = trace::dump_on_panic(&r.tracer, "figure5_xfer");

    let mut rng = ChaChaRng::from_seed_bytes(b"chaos fig5");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
    let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
    let host_cred = ca.issue_host_identity(
        &mut rng,
        dn("/O=G/CN=host data1"),
        vec!["data1".into()],
        512,
        0,
        500_000,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    let gridmap = gridsec_authz::gridmap::GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n").unwrap();
    let server = Arc::new(Mutex::new(
        GridFtpServer::new(SimOs::new(), "data1", host_cred, trust.clone(), gridmap).unwrap(),
    ));

    // Deterministic 4 KiB payload, seeded into the mapped account.
    let data: Vec<u8> = (0..4096usize).map(|i| (i * 31 % 251) as u8).collect();
    let uid = {
        let s = server.lock().unwrap();
        let uid = s.os().uid_of("data1", "jdoe").unwrap();
        s.os()
            .write_file(
                "data1",
                "/home/jdoe/results.dat",
                uid,
                FileMode::private(),
                data.clone(),
            )
            .unwrap();
        uid
    };

    // One sans-io server session task per dial; the session mutex
    // serializes machine construction, and tears propagate symmetrically
    // (a torn write resets the peer), so the shared crash plan draws
    // stay deterministic. The scheduler is drained before reporting.
    let task_net = Network::new();
    let sched = Rc::new(RefCell::new(Scheduler::new(&task_net)));
    let drop_rate = if opts.partition_all { 1.0 } else { 0.10 };
    let mk_dial = |label: u64| {
        let task = SessionTask {
            server: Arc::clone(&server),
            dialect: Dialect::Resumable,
            now: 100,
            plan: plan.clone(),
        };
        let sched = Rc::clone(&sched);
        let net = task_net.clone();
        let mut n = 0u64;
        move |_attempt: u32| {
            n += 1;
            let stream_seed = (seed ^ 0xF165)
                .wrapping_add(label.wrapping_mul(1_000_003))
                .wrapping_add(n);
            let (a, b, _) = StreamPair::lossy(stream_seed, drop_rate);
            let mailbox = format!("fig5-{label}-{n}");
            task.spawn(
                &mut sched.borrow_mut(),
                &net,
                &mailbox,
                b,
                &stream_seed.to_be_bytes(),
            );
            Ok::<SimStream, gridsec_tls::TlsError>(a)
        }
    };
    let config = TlsConfig::new(jane, trust, 100);
    let mut client_rng = ChaChaRng::from_seed_bytes(b"chaos fig5 client");
    let drain_all = |sched: &Rc<RefCell<Scheduler>>| {
        while sched.borrow_mut().pump() > 0 {}
    };
    let finish = |r: Rig, completed: bool, lines: Vec<String>, stats: FaultStats| {
        assert!(r.audit.verify().is_ok(), "fig5: audit hash chain verifies");
        let mut lines = lines;
        lines.extend(plan.transcript().into_iter().map(|l| format!("fig5 {l}")));
        ScenarioReport {
            lines,
            stats,
            trace: format!("{}{}", r.tracer.dump(), r.tracer.metrics().render()),
            metrics: r.tracer.metrics(),
            audit_records: r.audit.len(),
            completed,
            crashes: plan.crashes(),
            restarts: plan.restarts(),
        }
    };

    if opts.partition_all {
        let pump = Rc::clone(&sched);
        let res = with_stream_pump(
            move || pump.borrow_mut().pump(),
            || {
                resumable_get(
                    &config,
                    &mut client_rng,
                    policy(),
                    mk_dial(1),
                    "/home/jdoe/results.dat",
                    3,
                )
            },
        );
        assert!(res.is_err(), "total loss must exhaust the resume budget");
        drain_all(&sched);
        let stats = FaultStats {
            blocked: 1,
            ..FaultStats::default()
        };
        return finish(r, false, vec!["fig5 xfer blocked".to_string()], stats);
    }

    let pump = Rc::clone(&sched);
    let got = with_stream_pump(
        move || pump.borrow_mut().pump(),
        || {
            resumable_get(
                &config,
                &mut client_rng,
                policy(),
                mk_dial(1),
                "/home/jdoe/results.dat",
                64,
            )
        },
    )
    .expect("figure 5 GET must complete under lossy streams + crashes");
    assert_eq!(got.bytes, data, "GET bytes hash-equal");

    let pump = Rc::clone(&sched);
    let put = with_stream_pump(
        move || pump.borrow_mut().pump(),
        || {
            resumable_put(
                &config,
                &mut client_rng,
                policy(),
                mk_dial(2),
                "/home/jdoe/upload.dat",
                &data,
                64,
            )
        },
    )
    .expect("figure 5 PUT must complete under lossy streams + crashes");
    drain_all(&sched);

    {
        let s = server.lock().unwrap();
        let stored = s
            .os()
            .read_file("data1", "/home/jdoe/upload.dat", uid)
            .unwrap();
        assert_eq!(stored, data, "PUT bytes hash-equal, none lost or doubled");
        assert_eq!(
            s.os()
                .file_len("data1", "/home/jdoe/upload.dat.part")
                .unwrap(),
            None,
            "staging file promoted and removed"
        );
        assert!(s.transfers >= 2, "both directions completed");
    }
    let digest: String = sha256(&data).iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(got.sha256, digest);
    assert_eq!(put.sha256, digest);

    let tears = (got.resumes + put.resumes) as u64;
    let sessions = (got.sessions + put.sessions) as u64;
    let lines = vec![
        format!(
            "fig5 xfer get bytes={} sessions={} resumes={} sha={}",
            got.bytes.len(),
            got.sessions,
            got.resumes,
            got.sha256
        ),
        format!(
            "fig5 xfer put bytes={} sessions={} resumes={} sha={}",
            data.len(),
            put.sessions,
            put.resumes,
            put.sha256
        ),
    ];
    let stats = FaultStats {
        sent: sessions,
        delivered: sessions - tears,
        dropped: tears,
        ..FaultStats::default()
    };
    finish(r, true, lines, stats)
}

/// Figure 5, striped variant: the same GridFTP data movement split
/// across adaptively many parallel lossy channels, with the AIMD
/// congestion controller reacting to per-stripe loss stats and a
/// shared token bucket capping aggregate bandwidth. A GET and a PUT of
/// an 8 KiB payload run under 10% seeded loss; `xfer.stripe.get.chunk`
/// / `xfer.stripe.put.chunk` / `xfer.stripe.merge` are live kill
/// points for armed mid-stripe kills. The controller's decision log is
/// embedded in the transcript, so the two-run CI gate byte-compares
/// the adaptation sequence along with everything else. Not part of
/// [`run_all`] — it has its own verify.sh gate so the legacy
/// transcript drift gates stay untouched.
pub fn figure5_striped(seed: u64, opts: &ChaosOpts) -> ScenarioReport {
    use gridsec_gridftp::stripe::{striped_get, striped_put, StripeOpts};

    let clock = SimClock::starting_at(100);
    let plan = crash_plan(opts, seed, 0xC4A6, 0.10, 2);
    let r = rig(&clock, opts);
    let _guard = trace::install(&r.tracer);
    let _dump = trace::dump_on_panic(&r.tracer, "figure5_striped");

    let mut rng = ChaChaRng::from_seed_bytes(b"chaos fig5s");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
    let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
    let host_cred = ca.issue_host_identity(
        &mut rng,
        dn("/O=G/CN=host data1"),
        vec!["data1".into()],
        512,
        0,
        500_000,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    let gridmap = gridsec_authz::gridmap::GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n").unwrap();
    let server = Arc::new(Mutex::new(
        GridFtpServer::new(SimOs::new(), "data1", host_cred, trust.clone(), gridmap).unwrap(),
    ));

    // Deterministic 8 KiB payload, seeded into the mapped account.
    let data: Vec<u8> = (0..8192usize).map(|i| (i * 31 % 251) as u8).collect();
    let uid = {
        let s = server.lock().unwrap();
        let uid = s.os().uid_of("data1", "jdoe").unwrap();
        s.os()
            .write_file(
                "data1",
                "/home/jdoe/striped.dat",
                uid,
                FileMode::private(),
                data.clone(),
            )
            .unwrap();
        uid
    };

    let task_net = Network::new();
    let sched = Rc::new(RefCell::new(Scheduler::new(&task_net)));
    let drop_rate = if opts.partition_all { 1.0 } else { 0.10 };
    // Dialer per direction: one sans-io striped server task per dial.
    // The client engine drives one stripe exchange at a time, so
    // crash-plan and loss draws stay causally ordered (deterministic).
    let mk_dial = |label: u64| {
        let task = SessionTask {
            server: Arc::clone(&server),
            dialect: Dialect::Striped,
            now: 100,
            plan: plan.clone(),
        };
        let sched = Rc::clone(&sched);
        let net = task_net.clone();
        let mut n = 0u64;
        move |slot: usize, _attempt: u32| {
            n += 1;
            let stream_seed = (seed ^ 0xF165_0513)
                .wrapping_add(label.wrapping_mul(1_000_003))
                .wrapping_add((slot as u64) << 40)
                .wrapping_add(n);
            let (a, b, stats) = StreamPair::lossy(stream_seed, drop_rate);
            let mailbox = format!("fig5s-{label}-{slot}-{n}");
            task.spawn(
                &mut sched.borrow_mut(),
                &net,
                &mailbox,
                b,
                &stream_seed.to_be_bytes(),
            );
            Ok::<_, gridsec_tls::TlsError>((a, stats))
        }
    };
    let config = TlsConfig::new(jane, trust, 100);
    let mut client_rng = ChaChaRng::from_seed_bytes(b"chaos fig5s client");
    let drain_all = |sched: &Rc<RefCell<Scheduler>>| {
        while sched.borrow_mut().pump() > 0 {}
    };
    let finish = |r: Rig, completed: bool, lines: Vec<String>, stats: FaultStats| {
        assert!(r.audit.verify().is_ok(), "fig5s: audit hash chain verifies");
        let mut lines = lines;
        lines.extend(plan.transcript().into_iter().map(|l| format!("fig5s {l}")));
        ScenarioReport {
            lines,
            stats,
            trace: format!("{}{}", r.tracer.dump(), r.tracer.metrics().render()),
            metrics: r.tracer.metrics(),
            audit_records: r.audit.len(),
            completed,
            crashes: plan.crashes(),
            restarts: plan.restarts(),
        }
    };
    let opts_for = |dir_seed: u64| StripeOpts {
        seed: seed ^ dir_seed,
        bucket: Some(gridsec_util::throttle::TokenBucket::new(512, 2048)),
        max_sessions: 128,
        ..StripeOpts::default()
    };

    if opts.partition_all {
        let pump = Rc::clone(&sched);
        let res = with_stream_pump(
            move || pump.borrow_mut().pump(),
            || {
                striped_get(
                    &config,
                    &mut client_rng,
                    policy(),
                    mk_dial(1),
                    "/home/jdoe/striped.dat",
                    StripeOpts {
                        max_sessions: 3,
                        ..opts_for(1)
                    },
                )
            },
        );
        assert!(res.is_err(), "total loss must exhaust the stripe budget");
        drain_all(&sched);
        let stats = FaultStats {
            blocked: 1,
            ..FaultStats::default()
        };
        return finish(r, false, vec!["fig5s xfer blocked".to_string()], stats);
    }

    let pump = Rc::clone(&sched);
    let got = with_stream_pump(
        move || pump.borrow_mut().pump(),
        || {
            striped_get(
                &config,
                &mut client_rng,
                policy(),
                mk_dial(1),
                "/home/jdoe/striped.dat",
                opts_for(1),
            )
        },
    )
    .expect("striped GET must complete under lossy streams + crashes");
    assert_eq!(got.bytes, data, "striped GET bytes hash-equal");

    let pump = Rc::clone(&sched);
    let put = with_stream_pump(
        move || pump.borrow_mut().pump(),
        || {
            striped_put(
                &config,
                &mut client_rng,
                policy(),
                mk_dial(2),
                "/home/jdoe/striped-up.dat",
                &data,
                opts_for(2),
            )
        },
    )
    .expect("striped PUT must complete under lossy streams + crashes");
    drain_all(&sched);

    {
        let s = server.lock().unwrap();
        let stored = s
            .os()
            .read_file("data1", "/home/jdoe/striped-up.dat", uid)
            .unwrap();
        assert_eq!(stored, data, "striped PUT bytes hash-equal");
        // Every per-range staging file was merged and removed.
        let span = 4 * gridsec_gridftp::resume::CHUNK;
        let mut pos = 0;
        while pos < data.len() {
            let end = (pos + span).min(data.len());
            let part = gridsec_gridftp::stripe::part_path("/home/jdoe/striped-up.dat", pos, end);
            assert_eq!(s.os().file_len("data1", &part).unwrap(), None, "{part}");
            pos = end;
        }
        assert!(s.transfers >= 2, "both directions completed");
    }
    let digest: String = sha256(&data).iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(got.sha256, digest);
    assert_eq!(put.sha256, digest);

    let tears = u64::from(got.tears + put.tears);
    let sessions = u64::from(got.sessions + put.sessions);
    let mut lines = vec![
        format!(
            "fig5s xfer get bytes={} sessions={} tears={} stripes={} ticks={} goodput={} sha={}",
            got.bytes.len(),
            got.sessions,
            got.tears,
            got.peak_stripes,
            got.ticks,
            got.goodput_bpkt,
            got.sha256
        ),
        format!(
            "fig5s xfer put bytes={} sessions={} tears={} stripes={} ticks={} goodput={} sha={}",
            data.len(),
            put.sessions,
            put.tears,
            put.peak_stripes,
            put.ticks,
            put.goodput_bpkt,
            put.sha256
        ),
    ];
    lines.extend(got.decisions.iter().map(|d| format!("fig5s aimd get {d}")));
    lines.extend(put.decisions.iter().map(|d| format!("fig5s aimd put {d}")));
    let stats = FaultStats {
        sent: sessions,
        delivered: sessions - tears.min(sessions),
        dropped: tears,
        ..FaultStats::default()
    };
    finish(r, true, lines, stats)
}

/// The end-to-end multi-domain world (`tests/end_to_end.rs`) wired
/// through the fault layer instead of in-process calls: two domains
/// form a VO, then a siteA user submits a job to siteB's GRAM resource
/// over the lossy WAN with the MMJFS under a crash plan. Completion
/// proves the trust overlay *and* the recovery machinery compose.
pub fn cross_domain_vo(seed: u64, opts: &ChaosOpts) -> ScenarioReport {
    let net = Network::new();
    let clock = SimClock::starting_at(1_000);
    net.enable_faults(clock.clone(), seed ^ 0xE2E0, FaultProfile::lossy_wan());
    let plan = crash_plan(opts, seed, 0xC4AE, 0.05, 2);
    let r = rig(&clock, opts);
    let _guard = trace::install(&r.tracer);
    let _dump = trace::dump_on_panic(&r.tracer, "cross_domain_vo");

    let mut rng = ChaChaRng::from_seed_bytes(b"e2e vo gram");
    let mut domains = vec![
        create_domain(&mut rng, "siteA", 2, 512, 10_000_000),
        create_domain(&mut rng, "siteB", 2, 512, 10_000_000),
    ];
    let _vo = form_vo(&mut rng, "compute-vo", &mut domains, 512, 10_000_000);

    let host_cred = domains[1].ca.issue_host_identity(
        &mut rng,
        dn("/O=siteB/CN=host cluster1"),
        vec!["cluster1.siteB".to_string()],
        512,
        0,
        10_000_000,
    );
    let gridmap =
        gridsec_authz::gridmap::GridMapFile::parse("\"/O=siteA/CN=user0\" grid_a0\n").unwrap();
    let os = SimOs::new();
    let resource = GramResource::install(
        os.clone(),
        clock.clone(),
        "cluster1",
        domains[1].resource_trust.clone(),
        host_cred,
        &gridmap,
        GramConfig::default(),
    )
    .unwrap();
    let shared = Rc::new(RefCell::new(resource));
    let journal = Journal::open(os.clone(), "cluster1", "/var/gram/journal.wal", ROOT_UID);
    let durable = Rc::new(RefCell::new(DurableGram::new(
        shared.clone(),
        b"e2e mjs",
        plan.clone(),
        journal.clone(),
    )));
    let server = Rc::new(RefCell::new(CrashableServer::new(
        net.register("cluster1"),
        "gram",
        plan.clone(),
        journal,
        true,
    )));
    let mut rpc = RpcClient::new(net.register("user0"), "cluster1", policy());
    let hook_server = server.clone();
    let hook_service = durable.clone();
    rpc.set_pump(move || {
        hook_server
            .borrow_mut()
            .poll(&mut *hook_service.borrow_mut())
    });

    // The siteA user signs on; trusting siteB's CA for the GRIM check
    // is their own unilateral act.
    let user = domains[0].users[0].clone();
    let session =
        sso::grid_proxy_init(&mut rng, &user, sso::ProxyOptions::default(), clock.now()).unwrap();
    let mut requestor_trust = domains[0].resource_trust.clone();
    requestor_trust.add_root(domains[1].ca.certificate().clone());
    let mut requestor = Requestor::new(session.credential().clone(), requestor_trust, b"a0");

    if opts.partition_all {
        net.partition("user0", "cluster1");
        let err = submit_job_resilient(
            &mut requestor,
            &mut rpc,
            &JobDescription::new("/bin/hpc-sim"),
            &dn("/O=siteB/CN=host cluster1"),
            clock.now(),
            1,
        );
        assert!(err.is_err(), "partition must fail submission");
        return report("e2e", &net, r, false, &plan);
    }

    let job = submit_job_resilient(
        &mut requestor,
        &mut rpc,
        &JobDescription::new("/bin/hpc-sim"),
        &dn("/O=siteB/CN=host cluster1"),
        clock.now(),
        6,
    )
    .expect("cross-domain submission under lossy WAN + crashes");
    assert_eq!(job.account, "grid_a0");
    assert_eq!(
        job_state_remote(&mut rpc, &job.handle).expect("state query"),
        JobState::Active
    );
    // No duplicate side effects across any crash schedule.
    assert_eq!(shared.borrow().stats.cold_starts, 1);
    let jobs = os
        .processes("cluster1")
        .unwrap()
        .into_iter()
        .filter(|p| p.alive && p.name.starts_with("job:"))
        .count();
    assert_eq!(jobs, 1, "exactly one job process spawned");
    // Least privilege held throughout the crash schedule.
    assert!(os.privileged_network_facing("cluster1").unwrap().is_empty());

    report("e2e", &net, r, true, &plan)
}

/// The combined outcome of running all five figures from one seed.
pub struct ChaosRun {
    /// Combined tagged network transcript plus a totals line.
    pub transcript: String,
    /// Summed fault counters.
    pub stats: FaultStats,
    /// Concatenated per-figure trace dumps (spans, events, metrics),
    /// byte-identical per seed.
    pub trace: String,
    /// Per-figure metrics, name-prefixed (`fig1.` … `fig5.`) and merged.
    pub metrics: MetricsSnapshot,
    /// Total audit records mirrored across all figures.
    pub audit_records: usize,
    /// Total service crashes injected across all figures.
    pub crashes: u64,
    /// Total service restarts (always equals `crashes` once a run
    /// completes — every killed service recovered).
    pub restarts: u64,
}

/// Run all five figures from one master seed. Honors
/// `GRIDSEC_FLIGHT_DUMP` (a path prefix; each figure appends its tag)
/// unless `opts.flight_path` is already set.
pub fn run_all(seed: u64, opts: &ChaosOpts) -> ChaosRun {
    let mut transcript = format!("chaos transcript seed=0x{seed:016x}\n");
    let mut trace_out = String::new();
    let mut stats = FaultStats::default();
    let mut metrics = MetricsSnapshot::default();
    let mut audit_records = 0usize;
    let mut crashes = 0u64;
    let mut restarts = 0u64;
    let flight_prefix = std::env::var("GRIDSEC_FLIGHT_DUMP").ok();
    type Figure = fn(u64, &ChaosOpts) -> ScenarioReport;
    let figures: [(&str, Figure); 5] = [
        ("fig1", figure1_gss),
        ("fig2", figure2_cas),
        ("fig3", figure3_ogsa),
        ("fig4", figure4_gram),
        ("fig5", figure5_xfer),
    ];
    for (tag, run) in figures {
        let mut o = opts.clone();
        if o.flight_path.is_none() {
            o.flight_path = flight_prefix.as_ref().map(|p| format!("{p}.{tag}"));
        }
        let rep = run(seed, &o);
        for line in &rep.lines {
            transcript.push_str(line);
            transcript.push('\n');
        }
        trace_out.push_str(&format!("=== {tag} trace ===\n"));
        trace_out.push_str(&rep.trace);
        stats.sent += rep.stats.sent;
        stats.delivered += rep.stats.delivered;
        stats.dropped += rep.stats.dropped;
        stats.duplicated += rep.stats.duplicated;
        stats.blocked += rep.stats.blocked;
        metrics.merge(&rep.metrics.prefixed(tag));
        audit_records += rep.audit_records;
        crashes += rep.crashes;
        restarts += rep.restarts;
    }
    transcript.push_str(&format!(
        "totals sent={} delivered={} dropped={} duplicated={} blocked={} crashes={} restarts={}\n",
        stats.sent,
        stats.delivered,
        stats.dropped,
        stats.duplicated,
        stats.blocked,
        crashes,
        restarts
    ));
    ChaosRun {
        transcript,
        stats,
        trace: trace_out,
        metrics,
        audit_records,
        crashes,
        restarts,
    }
}
