//! The paper-figure chaos scenarios as reusable library functions.
//!
//! Each figure builds a fresh [`Network`] with the lossy-WAN fault
//! profile seeded from the master seed, wires a [`Tracer`] whose clock
//! is the scenario's `SimClock` (so every span timestamp is simulated
//! time, fully deterministic per seed), attaches a hash-chained
//! [`AuditLog`] as the tracer's event sink, and runs the flow through
//! the retry/RPC stack. The returned [`ScenarioReport`] carries the
//! network transcript, the trace dump, and the metrics snapshot — all
//! three byte-identical functions of the seed.
//!
//! The chaos test suite (`tests/chaos.rs`) asserts on these; the bench
//! crate's `flow_metrics` bin replays them to emit `BENCH_flows.json`
//! for `regen_experiments`.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use gridsec_authz::cas::{CasServer, ResourceGate};
use gridsec_authz::net::{fetch_assertion, CasService};
use gridsec_authz::policy::{CombiningAlg, Decision, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_gram::remote::{job_state_remote, submit_job_remote, RemoteGram};
use gridsec_gram::resource::{GramConfig, GramResource};
use gridsec_gram::types::{JobDescription, JobState};
use gridsec_gram::Requestor;
use gridsec_gssapi::net::{establish_initiator, AcceptorService};
use gridsec_ogsa::client::{OgsaClient, StaticCredential};
use gridsec_ogsa::hosting::HostingEnvironment;
use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::transport::{RetryTransport, RpcService};
use gridsec_ogsa::OgsaError;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::store::TrustStore;
use gridsec_services::audit::AuditLog;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::net::{FaultProfile, FaultStats, Network};
use gridsec_testbed::rpc::{RpcClient, RpcServer};
use gridsec_tls::handshake::TlsConfig;
use gridsec_util::retry::RetryPolicy;
use gridsec_util::trace::{self, MetricsSnapshot, Tracer};
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_xml::Element;

use crate::{basic_world, dn};

/// Options a chaos harness can vary per run.
#[derive(Clone, Debug, Default)]
pub struct ChaosOpts {
    /// Partition every client/server link before the flow runs, forcing
    /// retry-budget exhaustion (the flight recorder's trigger).
    pub partition_all: bool,
    /// Write flight-recorder dumps here (the tracer's flight path).
    pub flight_path: Option<String>,
}

/// Everything one scenario produced, all deterministic per seed.
pub struct ScenarioReport {
    /// Network transcript lines, prefixed with the figure tag.
    pub lines: Vec<String>,
    /// Fault-layer counters.
    pub stats: FaultStats,
    /// The trace ring + metrics, rendered (`Tracer::dump` + render).
    pub trace: String,
    /// The metrics snapshot (for `BENCH_*.json` emission).
    pub metrics: MetricsSnapshot,
    /// Records mirrored into the audit hash chain.
    pub audit_records: usize,
    /// Whether the flow completed (false under `partition_all`).
    pub completed: bool,
}

/// The retry policy all chaos clients use: ample attempts, timeout
/// windows comfortably above the profile's worst-case latency so an
/// attempt only fails on an actual drop or partition.
pub fn policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_timeout: 16,
        multiplier: 2,
        max_timeout: 64,
    }
}

/// Per-scenario observability rig: tracer on the scenario clock, audit
/// log as the event sink, optional flight path.
struct Rig {
    tracer: Tracer,
    audit: AuditLog,
}

fn rig(clock: &SimClock, opts: &ChaosOpts) -> Rig {
    let tracer = Tracer::new();
    let c = clock.clone();
    tracer.set_clock(move || c.now());
    if let Some(path) = &opts.flight_path {
        tracer.set_flight_path(path.clone());
    }
    let audit = AuditLog::new();
    audit.attach(&tracer);
    Rig { tracer, audit }
}

fn report(tag: &str, net: &Network, r: Rig, completed: bool) -> ScenarioReport {
    assert!(
        r.audit.verify().is_ok(),
        "{tag}: audit hash chain must verify"
    );
    ScenarioReport {
        lines: net
            .transcript()
            .into_iter()
            .map(|l| format!("{tag} {l}"))
            .collect(),
        stats: net.fault_stats().expect("faults were enabled"),
        trace: format!("{}{}", r.tracer.dump(), r.tracer.metrics().render()),
        metrics: r.tracer.metrics(),
        audit_records: r.audit.len(),
        completed,
    }
}

/// Figure 1: GSS-API context establishment (the VO sign-on handshake)
/// across the lossy network, then a secured message both ways.
pub fn figure1_gss(seed: u64, opts: &ChaosOpts) -> ScenarioReport {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock.clone(), seed ^ 0xF161, FaultProfile::lossy_wan());
    let r = rig(&clock, opts);
    let _guard = trace::install(&r.tracer);
    let _dump = trace::dump_on_panic(&r.tracer, "figure1_gss");

    let mut w = basic_world(b"chaos fig1");
    let initiator_cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 100);
    let acceptor_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 100);
    let acceptor_rng = ChaChaRng::from_seed_bytes(b"chaos fig1 acceptor");

    let service = Rc::new(RefCell::new(AcceptorService::new(
        acceptor_cfg,
        acceptor_rng,
    )));
    let server = Rc::new(RefCell::new(RpcServer::new(net.register("service"))));
    let mut rpc = RpcClient::new(net.register("user"), "service", policy());
    let hook_server = server.clone();
    let hook_service = service.clone();
    rpc.set_pump(move || {
        hook_server
            .borrow_mut()
            .poll(&mut |from, body| hook_service.borrow_mut().handle(from, body))
    });

    if opts.partition_all {
        net.partition("user", "service");
        let err = establish_initiator(&mut rpc, initiator_cfg, &mut w.rng);
        assert!(err.is_err(), "partition must fail establishment");
        return report("fig1", &net, r, false);
    }

    let mut user_ctx = establish_initiator(&mut rpc, initiator_cfg, &mut w.rng)
        .expect("figure 1 must establish under lossy WAN");
    let mut service_ctx = service
        .borrow_mut()
        .take_established("user")
        .expect("acceptor side established");

    // The contexts are live: protect one message in each direction.
    let sealed = user_ctx.wrap(b"vo sign-on complete");
    assert_eq!(
        service_ctx.unwrap(&sealed).expect("unwrap at service"),
        b"vo sign-on complete"
    );
    let back = service_ctx.wrap(b"welcome");
    assert_eq!(user_ctx.unwrap(&back).expect("unwrap at user"), b"welcome");
    assert_eq!(service_ctx.peer().base_identity, dn("/O=G/CN=User"));

    report("fig1", &net, r, true)
}

/// Figure 2: CAS-mediated authorization — fetch a signed capability
/// assertion over the lossy network, then present it to a resource
/// gate that intersects VO rights with local policy.
pub fn figure2_cas(seed: u64, opts: &ChaosOpts) -> ScenarioReport {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock.clone(), seed ^ 0xF162, FaultProfile::lossy_wan());
    let r = rig(&clock, opts);
    let _guard = trace::install(&r.tracer);
    let _dump = trace::dump_on_panic(&r.tracer, "figure2_cas");

    let mut rng = ChaChaRng::from_seed_bytes(b"chaos fig2");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=VO/CN=CA"), 512, 0, 1_000_000);
    let cas_cred = ca.issue_identity(&mut rng, dn("/O=VO/CN=CAS"), 512, 0, 500_000);
    let cas = Arc::new(CasServer::new("physics-vo", cas_cred, 3600));
    let alice = dn("/O=G/CN=Alice");
    cas.enroll(&alice, vec!["group:analysts".into()]);
    cas.add_rule(Rule::new(
        SubjectMatch::Exact("group:analysts".to_string()),
        "dataset/*",
        "read",
        Effect::Permit,
    ));

    let service = Rc::new(RefCell::new(CasService::new(cas.clone(), clock.clone())));
    let server = Rc::new(RefCell::new(RpcServer::new(net.register("cas"))));
    let mut rpc = RpcClient::new(net.register("alice"), "cas", policy());
    let hook_server = server.clone();
    let hook_service = service.clone();
    rpc.set_pump(move || {
        hook_server
            .borrow_mut()
            .poll(&mut |from, body| hook_service.borrow_mut().handle(from, body))
    });

    if opts.partition_all {
        net.partition("alice", "cas");
        assert!(fetch_assertion(&mut rpc, &alice).is_err());
        return report("fig2", &net, r, false);
    }

    let assertion = fetch_assertion(&mut rpc, &alice).expect("figure 2 must fetch under lossy WAN");

    let mut local = PolicySet::new(CombiningAlg::DenyOverrides);
    local.add(Rule::new(
        SubjectMatch::Exact("vo:physics-vo".to_string()),
        "dataset/*",
        "read",
        Effect::Permit,
    ));
    let mut gate = ResourceGate::new(local);
    gate.trust_cas("physics-vo", cas.public_key().clone());
    let decision = gate
        .authorize_with_cas(&assertion, &alice, "dataset/run7", "read", clock.now())
        .expect("assertion accepted");
    assert_eq!(decision, Decision::Permit);
    trace::event(
        "gate.decision",
        "resource=dataset/run7 action=read outcome=permit",
    );

    report("fig2", &net, r, true)
}

/// Echo service for the Figure 3 hosting environment.
struct EchoService;

impl GridService for EchoService {
    fn service_type(&self) -> &str {
        "echo"
    }
    fn invoke(
        &mut self,
        ctx: &RequestContext,
        operation: &str,
        payload: &Element,
    ) -> Result<Element, OgsaError> {
        match operation {
            "echo" => Ok(Element::new("echo:Reply")
                .with_attr("caller", ctx.caller.base_identity.to_string())
                .with_text(payload.text_content())),
            other => Err(OgsaError::Application(format!("unknown op {other}"))),
        }
    }
    fn service_data(&self, name: &str) -> Option<Element> {
        (name == "serviceType").then(|| Element::new("sde").with_text("echo"))
    }
}

/// Figure 3: the secured OGSA pipeline — policy fetch, secure
/// conversation, createService, invoke, destroy — every envelope an
/// at-most-once RPC over the lossy network. A duplicated
/// `createService` answered from the reply cache must not create a
/// second instance.
pub fn figure3_ogsa(seed: u64, opts: &ChaosOpts) -> ScenarioReport {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock.clone(), seed ^ 0xF163, FaultProfile::lossy_wan());
    let r = rig(&clock, opts);
    let _guard = trace::install(&r.tracer);
    let _dump = trace::dump_on_panic(&r.tracer, "figure3_ogsa");

    let w = basic_world(b"chaos fig3");
    let published = SecurityPolicy {
        service: "echo".to_string(),
        alternatives: vec![PolicyAlternative {
            mechanism: "gsi-secure-conversation".to_string(),
            token_types: vec!["x509-chain".to_string()],
            trust_roots: vec![],
            protection: Protection::Sign,
        }],
    };
    let mut authz = PolicySet::new(CombiningAlg::DenyOverrides);
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=User".to_string()),
        "factory:echo",
        "create",
        Effect::Permit,
    ));
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=User".to_string()),
        "service:echo",
        "*",
        Effect::Permit,
    ));
    let mut env = HostingEnvironment::new(
        "echo-host",
        w.service.clone(),
        w.trust.clone(),
        clock.clone(),
        published,
        authz,
    );
    env.registry
        .register_factory("echo", Box::new(|_ctx, _args| Ok(Box::new(EchoService))));
    let env = Rc::new(RefCell::new(env));

    let service = Rc::new(RefCell::new(RpcService::new(
        &net,
        "echo-host",
        env.clone(),
    )));
    let mut transport = RetryTransport::connect(&net, "user", "echo-host", policy());
    let hook = service.clone();
    transport.set_pump(move || hook.borrow_mut().poll());
    let mut client = OgsaClient::new(transport, w.trust.clone(), clock, b"chaos fig3 client");
    client.add_source(Box::new(StaticCredential(w.user.clone())));

    if opts.partition_all {
        net.partition("user", "echo-host");
        assert!(client.create_service("echo", Element::new("args")).is_err());
        return report("fig3", &net, r, false);
    }

    let handle = client
        .create_service("echo", Element::new("args"))
        .expect("figure 3 createService under lossy WAN");
    let reply = client
        .invoke(&handle, "echo", Element::new("m").with_text("hello grid"))
        .expect("figure 3 invoke under lossy WAN");
    assert_eq!(reply.text_content(), "hello grid");
    assert_eq!(reply.attr("caller"), Some("/O=G/CN=User"));
    // Exactly one instance exists despite any duplicated createService.
    assert_eq!(env.borrow().registry.instance_count(), 1);
    client.destroy(&handle).expect("figure 3 destroy");
    assert_eq!(env.borrow().registry.instance_count(), 0);

    report("fig3", &net, r, true)
}

/// Figure 4: the GT3 GRAM chain — signed submission through MMJFS /
/// Setuid Starter / GRIM / LMJFS, then step-7 mutual authentication,
/// GRIM authorization, delegation, and job start, every leg retried
/// over the lossy network. Exactly one LMJFS cold start may happen no
/// matter how many times the submission frame is duplicated.
pub fn figure4_gram(seed: u64, opts: &ChaosOpts) -> ScenarioReport {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock.clone(), seed ^ 0xF164, FaultProfile::lossy_wan());
    let r = rig(&clock, opts);
    let _guard = trace::install(&r.tracer);
    let _dump = trace::dump_on_panic(&r.tracer, "figure4_gram");

    let mut rng = ChaChaRng::from_seed_bytes(b"chaos fig4");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
    let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
    let host_cred = ca.issue_host_identity(
        &mut rng,
        dn("/O=G/CN=host compute1"),
        vec!["compute1".into()],
        512,
        0,
        500_000,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    let gridmap = gridsec_authz::gridmap::GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n").unwrap();
    let resource = GramResource::install(
        gridsec_testbed::os::SimOs::new(),
        clock.clone(),
        "compute1",
        trust.clone(),
        host_cred,
        &gridmap,
        GramConfig::default(),
    )
    .unwrap();
    let shared = Rc::new(RefCell::new(resource));

    let service = Rc::new(RefCell::new(RemoteGram::new(shared.clone(), b"chaos mjs")));
    let server = Rc::new(RefCell::new(RpcServer::new(net.register("mjs-host"))));
    let mut rpc = RpcClient::new(net.register("jane"), "mjs-host", policy());
    let hook_server = server.clone();
    let hook_service = service.clone();
    rpc.set_pump(move || {
        hook_server
            .borrow_mut()
            .poll(&mut |from, body| hook_service.borrow_mut().handle(from, body))
    });

    let mut jane = Requestor::new(jane, trust, b"chaos jane");

    if opts.partition_all {
        net.partition("jane", "mjs-host");
        let err = submit_job_remote(
            &mut jane,
            &mut rpc,
            &JobDescription::new("/bin/sim"),
            &dn("/O=G/CN=host compute1"),
            clock.now(),
        );
        assert!(err.is_err(), "partition must fail submission");
        return report("fig4", &net, r, false);
    }

    let job = submit_job_remote(
        &mut jane,
        &mut rpc,
        &JobDescription::new("/bin/sim"),
        &dn("/O=G/CN=host compute1"),
        clock.now(),
    )
    .expect("figure 4 must submit under lossy WAN");
    assert!(job.cold_start);
    assert_eq!(job.account, "jdoe");
    assert_eq!(
        job_state_remote(&mut rpc, &job.handle).expect("state query"),
        JobState::Active
    );
    // The reply cache absorbed duplicated submissions: one cold start.
    assert_eq!(shared.borrow().stats.cold_starts, 1);

    report("fig4", &net, r, true)
}

/// The combined outcome of running all four figures from one seed.
pub struct ChaosRun {
    /// Combined tagged network transcript plus a totals line.
    pub transcript: String,
    /// Summed fault counters.
    pub stats: FaultStats,
    /// Concatenated per-figure trace dumps (spans, events, metrics),
    /// byte-identical per seed.
    pub trace: String,
    /// Per-figure metrics, name-prefixed (`fig1.` … `fig4.`) and merged.
    pub metrics: MetricsSnapshot,
    /// Total audit records mirrored across all figures.
    pub audit_records: usize,
}

/// Run all four figures from one master seed. Honors
/// `GRIDSEC_FLIGHT_DUMP` (a path prefix; each figure appends its tag)
/// unless `opts.flight_path` is already set.
pub fn run_all(seed: u64, opts: &ChaosOpts) -> ChaosRun {
    let mut transcript = format!("chaos transcript seed=0x{seed:016x}\n");
    let mut trace_out = String::new();
    let mut stats = FaultStats::default();
    let mut metrics = MetricsSnapshot::default();
    let mut audit_records = 0usize;
    let flight_prefix = std::env::var("GRIDSEC_FLIGHT_DUMP").ok();
    type Figure = fn(u64, &ChaosOpts) -> ScenarioReport;
    let figures: [(&str, Figure); 4] = [
        ("fig1", figure1_gss),
        ("fig2", figure2_cas),
        ("fig3", figure3_ogsa),
        ("fig4", figure4_gram),
    ];
    for (tag, run) in figures {
        let mut o = opts.clone();
        if o.flight_path.is_none() {
            o.flight_path = flight_prefix.as_ref().map(|p| format!("{p}.{tag}"));
        }
        let rep = run(seed, &o);
        for line in &rep.lines {
            transcript.push_str(line);
            transcript.push('\n');
        }
        trace_out.push_str(&format!("=== {tag} trace ===\n"));
        trace_out.push_str(&rep.trace);
        stats.sent += rep.stats.sent;
        stats.delivered += rep.stats.delivered;
        stats.dropped += rep.stats.dropped;
        stats.duplicated += rep.stats.duplicated;
        stats.blocked += rep.stats.blocked;
        metrics.merge(&rep.metrics.prefixed(tag));
        audit_records += rep.audit_records;
    }
    transcript.push_str(&format!(
        "totals sent={} delivered={} dropped={} duplicated={} blocked={}\n",
        stats.sent, stats.delivered, stats.dropped, stats.duplicated, stats.blocked
    ));
    ChaosRun {
        transcript,
        stats,
        trace: trace_out,
        metrics,
        audit_records,
    }
}
