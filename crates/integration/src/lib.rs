//! # gridsec-integration
//!
//! Cross-crate integration tests for the `gridsec` workspace. The test
//! sources live in the repository-level `tests/` directory (wired in via
//! `[[test]]` path entries) and exercise whole-paper scenarios:
//!
//! * `end_to_end.rs` — a complete multi-domain grid: VO formation, GRAM
//!   job submission across domains, OGSA services, and audit.
//! * `cross_mechanism.rs` — Kerberos ⇄ PKI bridging through KCA and
//!   SSLK5 feeding GRAM and OGSA flows.
//! * `adversarial.rs` — attack scenarios across layers: stolen tokens,
//!   replays, forged chains, confused-deputy attempts, and revocation.
//!
//! This crate intentionally exports a few shared fixture helpers.

#![forbid(unsafe_code)]

pub mod scenarios;

use gridsec_crypto::rng::ChaChaRng;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;

/// Parse a DN or panic (test helper).
pub fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).expect("test DN")
}

/// A ready-made single-CA world for integration tests.
pub struct BasicWorld {
    /// Deterministic RNG.
    pub rng: ChaChaRng,
    /// The root CA.
    pub ca: CertificateAuthority,
    /// Trust store containing the CA.
    pub trust: TrustStore,
    /// A user credential.
    pub user: Credential,
    /// A service/host credential.
    pub service: Credential,
}

/// Build a [`BasicWorld`] with the given RNG seed.
pub fn basic_world(seed: &[u8]) -> BasicWorld {
    let mut rng = ChaChaRng::from_seed_bytes(seed);
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 10_000_000);
    let user = ca.issue_identity(&mut rng, dn("/O=G/CN=User"), 512, 0, 1_000_000);
    let service = ca.issue_identity(&mut rng, dn("/O=G/CN=Service"), 512, 0, 1_000_000);
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    BasicWorld {
        rng,
        ca,
        trust,
        user,
        service,
    }
}
