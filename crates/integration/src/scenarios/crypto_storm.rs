//! Crypto-real login storm over the discrete-event scheduler.
//!
//! [`super::vo_storm`] proved the scheduler carries 10⁵ principals, but
//! its flows are message-shaped: no principal performs a single modular
//! exponentiation. This storm closes that gap. Every principal is a
//! scheduler task that performs **real per-principal handshake
//! crypto** — a fresh DH keypair and hello signature on its way in
//! ([`PollInitiator::new`]), real verification and key derivation on
//! the acceptor's reply, and a sealed proof round-trip over the
//! established channel — against mill gateways that batch hellos
//! *across tasks* at mail quiescence ([`WaveAcceptor`]), so certificate
//! checks group by issuer and DH/signing state comes from shared
//! [`gridsec_tls::pool::CryptoPool`]s exactly as a GT3 container under
//! a login storm would arrange it.
//!
//! Three scale decisions distinguish this from the message storm:
//!
//! * **Credential pool, not per-principal keygen.** Issuing 10⁶ RSA
//!   identities would measure the CA, not the handshake path. A pool of
//!   [`CryptoStormOpts::credentials`] distinct users is issued up
//!   front; each principal *session* still pays its own DH keygen,
//!   hello signature, verify, and key schedule — the per-session work a
//!   real container pays — while chain validation amortizes across the
//!   pool exactly as [`gridsec_pki::validate::CachedValidator`] would.
//! * **Cohort spawning bounds residency.** Principals spawn in cohorts
//!   of [`CryptoStormOpts::cohort`]; the scheduler runs each cohort to
//!   quiescence before the next spawns, so the live-task high-water
//!   mark — the peak-RSS proxy [`SchedStats::live_high_water`] — stays
//!   ~cohort-sized while the population scales unbounded.
//! * **Clean network.** Loss/retransmission behavior at population
//!   scale is vo_storm's subject; here the network is faultless so the
//!   measured quantity is crypto + scheduling. Sim time advances only
//!   through the start-stagger window.
//!
//! Everything observable except wall time — outcomes, wave-size
//! histogram, validator amortization, traffic, scheduler counters — is
//! a pure function of [`CryptoStormOpts::seed`];
//! [`CryptoStormReport::deterministic_render`] is the two-run CI
//! artifact. Wall-clock throughput goes to `BENCH_crypto_storm.json`
//! only.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use gridsec_crypto::rng::ChaChaRng;
use gridsec_gssapi::context::EstablishedContext;
use gridsec_gssapi::poll::{PollInitiator, WaveAcceptor};
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::credential::Credential;
use gridsec_pki::store::TrustStore;
use gridsec_testbed::net::{Endpoint, Network, TrafficStats};
use gridsec_testbed::sched::{SchedStats, Scheduler, Step, Task, TaskCx};
use gridsec_tls::handshake::TlsConfig;
use gridsec_tls::pool::CryptoPool;
use gridsec_util::rng::{DetRng, RngCore};
use gridsec_util::trace::{self, MetricsSnapshot, Tracer};

use crate::dn;

/// Mail tags, principal -> gateway.
const TAG_HELLO: u8 = 1;
const TAG_FINISHED: u8 = 2;
/// Mail tags, gateway -> principal.
const TAG_SERVER_HELLO: u8 = 1;
const TAG_PROOF: u8 = 2;
const TAG_REJECT: u8 = 0;

/// The plaintext every gateway seals over the freshly established
/// channel; a principal counts as established only after unsealing it.
const PROOF: &[u8] = b"cstorm proof of keys";

/// Storm configuration. Everything that affects behavior is explicit.
#[derive(Clone, Debug)]
pub struct CryptoStormOpts {
    /// Total principal sessions.
    pub principals: usize,
    /// Master seed: credential world, per-principal rngs, stagger.
    pub seed: u64,
    /// Distinct user credentials the sessions draw from (round-robin).
    pub credentials: usize,
    /// Mill gateways the population is sharded across.
    pub gateways: usize,
    /// Cohort size: at most this many principals are live at once
    /// (plus the gateways), whatever the population.
    pub cohort: usize,
    /// Start-stagger window in sim seconds within each cohort.
    pub start_spread: u64,
    /// Every n-th principal sends a garbage hello instead (0 = none),
    /// exercising the rejection path at scale.
    pub reject_every: usize,
}

impl CryptoStormOpts {
    /// Defaults for a population of `principals` under `seed`: a
    /// 128-credential pool, 4 gateways, 4096-task cohorts, a 60-second
    /// stagger, one garbage hello per 97 sessions.
    pub fn new(principals: usize, seed: u64) -> Self {
        CryptoStormOpts {
            principals,
            seed,
            credentials: 128,
            gateways: 4,
            cohort: 4096,
            start_spread: 60,
            reject_every: 97,
        }
    }
}

/// Everything one storm run produced. All fields except `wall_ms` are
/// pure functions of the seed.
#[derive(Clone, Debug)]
pub struct CryptoStormReport {
    /// Population size.
    pub principals: usize,
    /// Sessions that unsealed the gateway's proof message.
    pub established: u64,
    /// Sessions refused at the hello (garbage or untrusted).
    pub rejected: u64,
    /// Sim time at quiescence.
    pub sim_seconds: u64,
    /// Network traffic (messages/bytes delivered).
    pub traffic: TrafficStats,
    /// Scheduler counters; `live_high_water` is the peak-RSS proxy the
    /// cohort bound caps.
    pub sched: SchedStats,
    /// Validator chain-walk misses summed over the gateways' pools
    /// (the amortization witness: ≈ credential-pool size, not
    /// population size).
    pub validator_misses: u64,
    /// Validator cache hits summed over the gateways' pools.
    pub validator_hits: u64,
    /// Trace counters + wave-size histogram.
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration (NOT deterministic; excluded from the
    /// deterministic render).
    pub wall_ms: u128,
}

impl CryptoStormReport {
    /// The byte-identical-per-seed artifact the CI gate compares across
    /// two runs — everything except wall time.
    pub fn deterministic_render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cstorm principals={} established={} rejected={} sim_seconds={}",
            self.principals, self.established, self.rejected, self.sim_seconds
        );
        let _ = writeln!(
            out,
            "traffic messages={} bytes={}",
            self.traffic.messages, self.traffic.bytes
        );
        let s = &self.sched;
        let _ = writeln!(
            out,
            "sched spawned={} completed={} steps={} live_high_water={} mail_wakes={} timer_wakes={}",
            s.spawned, s.completed, s.steps, s.live_high_water, s.mail_wakes, s.timer_wakes
        );
        let _ = writeln!(
            out,
            "validator misses={} hits={}",
            self.validator_misses, self.validator_hits
        );
        out.push_str(&self.metrics.render());
        out
    }

    /// Established sessions per wall-clock second (NOT deterministic —
    /// the bench bin's headline figure, kept out of the render above).
    pub fn flows_per_wall_second(&self) -> f64 {
        if self.wall_ms == 0 {
            return 0.0;
        }
        self.established as f64 * 1000.0 / self.wall_ms as f64
    }
}

/// A mill gateway: drains its mailbox, parks Finished-pending sessions,
/// and flushes everything that arrived since its last step as one
/// mill wave.
struct MillGateway {
    ep: Endpoint,
    acceptor: WaveAcceptor,
    rng: ChaChaRng,
    /// Reply route for hellos parked in the wave: mill session id
    /// (the sender's interned [`gridsec_testbed::names::NameId`]
    /// index) back to the sender's mailbox name. Entries live only
    /// from hello to wave flush, so the map stays wave-sized.
    routes: HashMap<u64, String>,
}

impl MillGateway {
    fn reply(&self, to: &str, tag: u8, body: &[u8]) {
        let mut payload = Vec::with_capacity(1 + body.len());
        payload.push(tag);
        payload.extend_from_slice(body);
        let _ = self.ep.send(to, payload);
    }
}

impl Task for MillGateway {
    fn step(&mut self, _cx: &TaskCx) -> Step {
        while let Some(m) = self.ep.try_recv() {
            let Some((&tag, body)) = m.payload.split_first() else {
                continue;
            };
            let session = self.ep.network().intern(&m.from).index() as u64;
            match tag {
                TAG_HELLO => {
                    self.routes.insert(session, m.from.clone());
                    self.acceptor.submit_hello(session, body.to_vec());
                }
                TAG_FINISHED => match self.acceptor.submit_finished(session, &mut self.rng, body) {
                    Ok(mut ctx) => {
                        let sealed = ctx.wrap(PROOF);
                        self.reply(&m.from, TAG_PROOF, &sealed);
                    }
                    Err(_) => self.reply(&m.from, TAG_REJECT, &[]),
                },
                _ => self.reply(&m.from, TAG_REJECT, &[]),
            }
        }
        // Mail quiescence: everything that accumulated across tasks
        // since the last step is one wave.
        if self.acceptor.pending() > 0 {
            let wave = self.acceptor.flush_wave(&mut self.rng);
            trace::add("cstorm.gw.waves", 1);
            trace::record("cstorm.wave_size", wave.len() as u64);
            for (session, result) in wave {
                let to = self
                    .routes
                    .remove(&session)
                    .expect("wave session was routed");
                match result {
                    Ok(server_hello) => self.reply(&to, TAG_SERVER_HELLO, &server_hello),
                    Err(_) => {
                        trace::add("cstorm.gw.rejected", 1);
                        self.reply(&to, TAG_REJECT, &[]);
                    }
                }
            }
        }
        Step::WaitMail { deadline: None }
    }
}

enum PrincipalState {
    Boot,
    AwaitServerHello(PollInitiator),
    AwaitProof(Box<EstablishedContext>),
    /// Garbage-hello sent; the only acceptable reply is a rejection.
    AwaitReject,
}

/// One login session: sleeps to its staggered start, performs its real
/// handshake against the mill gateway, and proves the channel works.
struct Principal {
    ep: Endpoint,
    gateway: String,
    config: Option<TlsConfig>,
    rng: ChaChaRng,
    state: PrincipalState,
    start_at: u64,
    /// Garbage-hello principal (tests the rejection path).
    garbage: bool,
}

impl Principal {
    fn send(&self, tag: u8, body: &[u8]) {
        let mut payload = Vec::with_capacity(1 + body.len());
        payload.push(tag);
        payload.extend_from_slice(body);
        let _ = self.ep.send(&self.gateway, payload);
    }
}

impl Task for Principal {
    fn step(&mut self, cx: &TaskCx) -> Step {
        if matches!(self.state, PrincipalState::Boot) {
            if cx.now() < self.start_at {
                return Step::Sleep(self.start_at);
            }
            if self.garbage {
                self.send(TAG_HELLO, b"not a hello");
                self.state = PrincipalState::AwaitReject;
            } else {
                let config = self.config.take().expect("config consumed once");
                let (init, hello) = PollInitiator::new(config, &mut self.rng);
                self.send(TAG_HELLO, &hello);
                self.state = PrincipalState::AwaitServerHello(init);
            }
        }
        while let Some(m) = self.ep.try_recv() {
            let Some((&tag, body)) = m.payload.split_first() else {
                continue;
            };
            if tag == TAG_REJECT {
                trace::add("cstorm.flows.rejected", 1);
                if !self.garbage {
                    trace::add("cstorm.flows.rejected_credential", 1);
                }
                return Step::Done;
            }
            match std::mem::replace(&mut self.state, PrincipalState::Boot) {
                PrincipalState::AwaitServerHello(init) if tag == TAG_SERVER_HELLO => {
                    match init.feed(body) {
                        Ok((finished, ctx)) => {
                            self.send(TAG_FINISHED, &finished);
                            self.state = PrincipalState::AwaitProof(Box::new(ctx));
                        }
                        Err(_) => {
                            trace::add("cstorm.flows.bad_server_hello", 1);
                            return Step::Done;
                        }
                    }
                }
                PrincipalState::AwaitProof(mut ctx) if tag == TAG_PROOF => {
                    match ctx.unwrap(body) {
                        Ok(clear) if clear == PROOF => trace::add("cstorm.flows.established", 1),
                        _ => trace::add("cstorm.flows.bad_proof", 1),
                    }
                    return Step::Done;
                }
                _ => {
                    trace::add("cstorm.flows.protocol_error", 1);
                    return Step::Done;
                }
            }
        }
        Step::WaitMail { deadline: None }
    }
}

/// Run the storm to quiescence and report.
pub fn run_crypto_storm(opts: &CryptoStormOpts) -> CryptoStormReport {
    let wall = std::time::Instant::now();
    let net = Network::new();
    let mut sched = Scheduler::new(&net);

    let tracer = Tracer::new();
    let clock = sched.clock();
    tracer.set_clock(move || clock.now());
    let guard = trace::install(&tracer);

    // ---- Credential world --------------------------------------------
    let mut world_rng =
        ChaChaRng::from_seed_bytes(format!("cstorm world {:#x}", opts.seed).as_bytes());
    let ca = CertificateAuthority::create_root(
        &mut world_rng,
        dn("/O=Storm/CN=CA"),
        512,
        0,
        u64::MAX / 2,
    );
    let users: Vec<Credential> = (0..opts.credentials.max(1))
        .map(|i| {
            ca.issue_identity(
                &mut world_rng,
                dn(&format!("/O=Storm/CN=U{i}")),
                512,
                0,
                u64::MAX / 4,
            )
        })
        .collect();
    let service = ca.issue_identity(
        &mut world_rng,
        dn("/O=Storm/CN=Portal"),
        512,
        0,
        u64::MAX / 4,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());

    // One shared client-side pool: the DH fixed-base table once, a CRT
    // signing context per pooled credential — the initiator-side
    // amortization the mill's pool provides acceptor-side.
    let client_pool = Arc::new(Mutex::new(CryptoPool::new()));
    {
        let probe = TlsConfig::new(users[0].clone(), trust.clone(), 100);
        let mut p = client_pool.lock().expect("client pool lock");
        p.register_group(&probe.group);
        for u in &users {
            p.register_signer(u);
        }
    }

    // ---- Gateways ----------------------------------------------------
    let gateways = opts.gateways.max(1);
    let mut gateway_pools = Vec::with_capacity(gateways);
    for g in 0..gateways {
        let name = format!("cstorm-gw-{g}");
        let ep = net.register(&name);
        let acceptor = WaveAcceptor::new(TlsConfig::new(service.clone(), trust.clone(), 100));
        gateway_pools.push(acceptor.mill().pool());
        let rng = ChaChaRng::from_seed_bytes(format!("cstorm gw{g} {:#x}", opts.seed).as_bytes());
        sched.spawn_mailbox(
            &name,
            MillGateway {
                ep,
                acceptor,
                rng,
                routes: HashMap::new(),
            },
        );
    }

    // ---- Cohorts of principals ---------------------------------------
    let mut assign_rng = DetRng::seed_from_u64(opts.seed ^ 0xC59_7057);
    let mut spawned = 0usize;
    while spawned < opts.principals {
        let cohort = (opts.principals - spawned).min(opts.cohort.max(1));
        let base_now = sched.now();
        for i in spawned..spawned + cohort {
            let user = users[assign_rng.next_u64() as usize % users.len()].clone();
            let gateway = format!("cstorm-gw-{}", assign_rng.next_u64() as usize % gateways);
            let start_at = base_now
                + if opts.start_spread == 0 {
                    0
                } else {
                    assign_rng.next_u64() % (opts.start_spread + 1)
                };
            let garbage = opts.reject_every != 0 && (i + 1) % opts.reject_every == 0;
            let name = format!("c{i}");
            let ep = net.register(&name);
            let mut seed_bytes = [0u8; 16];
            seed_bytes[..8].copy_from_slice(&opts.seed.to_be_bytes());
            seed_bytes[8..].copy_from_slice(&(i as u64).to_be_bytes());
            let config =
                TlsConfig::new(user, trust.clone(), 100).with_pool(Arc::clone(&client_pool));
            let id = ep.id();
            sched.spawn_mailbox_id(
                id,
                Principal {
                    ep,
                    gateway,
                    config: Some(config),
                    rng: ChaChaRng::from_seed_bytes(&seed_bytes),
                    state: PrincipalState::Boot,
                    start_at,
                    garbage,
                },
            );
        }
        spawned += cohort;
        // Run this cohort to quiescence before admitting the next: the
        // live-task high-water mark stays ~cohort + gateways.
        sched.run();
    }

    let sched_stats = sched.run();
    let metrics = tracer.metrics();
    drop(guard);

    let (mut hits, mut misses) = (0u64, 0u64);
    for pool in &gateway_pools {
        let p = pool.lock().expect("gateway pool lock");
        hits += p.validator().hits();
        misses += p.validator().misses();
    }

    let counter = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
    CryptoStormReport {
        principals: opts.principals,
        established: counter("cstorm.flows.established"),
        rejected: counter("cstorm.flows.rejected"),
        sim_seconds: sched.now(),
        traffic: net.stats(),
        sched: sched_stats,
        validator_misses: misses,
        validator_hits: hits,
        metrics,
        wall_ms: wall.elapsed().as_millis(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_crypto_storm_establishes_and_is_deterministic() {
        let mut opts = CryptoStormOpts::new(600, 0x00C0_DE57);
        opts.cohort = 200;
        opts.credentials = 16;
        let r1 = run_crypto_storm(&opts);
        let r2 = run_crypto_storm(&opts);
        assert_eq!(
            r1.deterministic_render(),
            r2.deterministic_render(),
            "same seed, byte-identical crypto-storm report"
        );
        // Every session reached a verdict; only the garbage hellos were
        // refused (600/97 = 6 of them).
        assert_eq!(r1.established + r1.rejected, 600);
        assert_eq!(r1.rejected, 6);
        assert_eq!(
            r1.metrics
                .counters
                .get("cstorm.flows.rejected_credential")
                .copied()
                .unwrap_or(0),
            0,
            "no trusted credential may be refused"
        );
        // Real crypto amortized, not skipped: at most one chain walk
        // per distinct credential (pool users + the service identity)
        // per gateway pool, cache hits for everyone else.
        assert!(
            r1.validator_misses <= (opts.gateways * (opts.credentials + 1)) as u64,
            "misses: {}",
            r1.validator_misses
        );
        assert!(r1.validator_hits >= 500, "hits: {}", r1.validator_hits);
        // Cohorts bound task residency: population 600, but at most
        // cohort + gateways + 1 live at once.
        assert!(
            r1.sched.live_high_water <= (opts.cohort + opts.gateways + 1) as u64,
            "live high water {} exceeds cohort bound",
            r1.sched.live_high_water
        );
        // Cross-task batching actually happened.
        let waves = r1.metrics.counters.get("cstorm.gw.waves").copied().unwrap();
        assert!(waves > 0);
        let h = r1.metrics.hists.get("cstorm.wave_size").unwrap();
        assert!(h.max >= 2, "waves never batched: max {}", h.max);
        // A different seed is a different storm.
        let r3 = run_crypto_storm(&CryptoStormOpts {
            cohort: 200,
            credentials: 16,
            ..CryptoStormOpts::new(600, 0x00C0_DE58)
        });
        assert_ne!(r1.deterministic_render(), r3.deterministic_render());
    }
}
