//! Expiry storm: thousands of portal principals with fault-injected
//! credential lifetimes fanning cross-domain VO flows through shared
//! gateways, while a renewal coordinator batches each wave of
//! grace-window renewals through the [`HandshakeMill`].
//!
//! This is the scale companion to `scenarios::portal` and
//! `gsi::renewal`: where those prove the *mechanism* (exactly-once
//! issuance, typed fail-closed), the storm proves the *population
//! dynamics*. Every lifetime fault is drawn from one seeded
//! [`LifetimeFaults`] injector — clock-skewed issuers (proxies born in
//! the future or already stale), near-zero lifetimes, and staggered
//! sign-on offsets that pile renewal deadlines into waves — so two
//! runs under the same seed produce byte-identical transcripts and
//! metrics ([`ExpiryReport::deterministic_render`]; the CI
//! `cred_chaos` stage compares two runs).
//!
//! Population behavior:
//!
//! * A principal whose skewed issuance window doesn't even contain its
//!   sign-on instant is *stillborn* — it fails closed immediately.
//! * A live principal runs cross-domain VO flow legs (sign-on, hop,
//!   resource access — the `cross_domain_vo` shape) on a think-time
//!   loop, and enqueues itself with the renewal coordinator once its
//!   remaining lifetime drops inside the grace window.
//! * The coordinator fires on a fixed wave interval, draining the
//!   queue and pushing one ClientHello per renewing principal through
//!   the mill's batched acceptor path; mill-accepted principals get a
//!   fresh (fault-injected) lifetime, rejected ones stay on their
//!   dying credential and may re-enqueue.
//! * A principal that reaches hard expiry un-renewed fails closed —
//!   counted, never a panic or a hang.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use gridsec_crypto::rng::ChaChaRng;
use gridsec_gssapi::mill::HandshakeMill;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::credential::Credential;
use gridsec_pki::store::TrustStore;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::faults::LifetimeFaults;
use gridsec_testbed::net::{Endpoint, FaultProfile, FaultStats, Network, TrafficStats};
use gridsec_testbed::rpc::{self, CallPoll, PollingCall};
use gridsec_testbed::sched::{SchedStats, Scheduler, Step, Task, TaskCx};
use gridsec_tls::handshake::TlsConfig;
use gridsec_util::retry::RetryPolicy;
use gridsec_util::trace::{self, MetricsSnapshot, Tracer};

use crate::dn;

/// The cross-domain VO flow, leg by leg as (request, reply) byte
/// sizes: VO sign-on exchange, cross-domain gateway hop, then the
/// secured resource access (the `cross_domain_vo` scenario's shape).
const VO_LEGS: &[(usize, usize)] = &[(192, 160), (256, 224), (640, 96)];

/// Storm configuration. Everything behavioral is explicit and seeded.
#[derive(Clone, Debug)]
pub struct ExpiryOpts {
    /// Population size (one task + endpoint each).
    pub principals: usize,
    /// Master seed: lifetime faults, stagger, network faults, mill rng.
    pub seed: u64,
    /// VO gateways the population is sharded across.
    pub gateways: usize,
    /// Distinct real credentials backing the population's handshakes
    /// (principals share them round-robin; lifetime bookkeeping is
    /// per-principal).
    pub classes: usize,
    /// Nominal proxy lifetime in sim-seconds.
    pub nominal_lifetime: u64,
    /// Sign-on stagger window.
    pub spread: u64,
    /// Issuer clock-skew bound fed to [`LifetimeFaults`].
    pub skew_max: u64,
    /// Per-mille of issuances with a near-zero lifetime.
    pub short_permille: u64,
    /// Near-zero lifetime upper bound.
    pub short_max: u64,
    /// Issuers backdate `not_before` by this much (the classic
    /// five-minute grid allowance): only forward skew *beyond* it
    /// leaves a proxy stillborn.
    pub backdate: u64,
    /// Renew once remaining lifetime drops below this.
    pub grace: u64,
    /// Coordinator wave interval.
    pub wave_interval: u64,
    /// Principals stop working (and the coordinator stops renewing) at
    /// this sim time.
    pub horizon: u64,
    /// Think time between a principal's flows.
    pub think: u64,
    /// Fault profile for every link.
    pub profile: FaultProfile,
    /// Retry policy for every leg.
    pub policy: RetryPolicy,
}

impl ExpiryOpts {
    /// Defaults for a population of `principals` under `seed`: 50-min
    /// nominal lifetimes against a 90-min horizon (so the bulk of the
    /// population needs exactly one renewal), ~7% near-zero lifetimes,
    /// issuer skew up to 8 minutes, and the vo_storm WAN profile.
    pub fn new(principals: usize, seed: u64) -> Self {
        ExpiryOpts {
            principals,
            seed,
            gateways: (principals / 512).clamp(2, 16),
            classes: 8,
            nominal_lifetime: 3_000,
            spread: 1_200,
            skew_max: 480,
            short_permille: 70,
            short_max: 60,
            backdate: 300,
            grace: 700,
            wave_interval: 240,
            horizon: 5_400,
            think: 350,
            profile: super::vo_storm::StormOpts::storm_wan(),
            policy: super::policy(),
        }
    }
}

/// Everything one storm run produced; all fields except `wall_ms` are
/// pure functions of the seed.
#[derive(Clone, Debug)]
pub struct ExpiryReport {
    /// Population size.
    pub principals: usize,
    /// Principals that worked to the horizon on a live credential.
    pub survived: u64,
    /// Principals whose skewed issuance window excluded their own
    /// sign-on instant.
    pub stillborn: u64,
    /// Principals that reached hard expiry un-renewed and failed
    /// closed mid-storm.
    pub failed_closed: u64,
    /// Renewals granted across all waves.
    pub renewals: u64,
    /// Coordinator waves that processed at least one hello.
    pub waves: u64,
    /// Hellos the mill rejected (corrupt openers).
    pub mill_rejected: u64,
    /// Issuances the injector skewed / shortened.
    pub skewed: u64,
    /// Near-zero lifetimes drawn.
    pub shortened: u64,
    /// Flow legs completed / flows failed on the network.
    pub flows_completed: u64,
    /// Flows that exhausted a retry budget.
    pub flows_failed: u64,
    /// Sim time at quiescence.
    pub sim_seconds: u64,
    /// Network traffic.
    pub traffic: TrafficStats,
    /// Fault-layer counters.
    pub fault_stats: FaultStats,
    /// Scheduler counters.
    pub sched: SchedStats,
    /// Trace counters + histograms.
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration (excluded from the deterministic render).
    pub wall_ms: u128,
}

impl ExpiryReport {
    /// The byte-identical-per-seed artifact the `cred_chaos` CI stage
    /// compares across two runs: everything except wall time.
    pub fn deterministic_render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "expiry_storm principals={} survived={} stillborn={} failed_closed={} sim_seconds={}",
            self.principals, self.survived, self.stillborn, self.failed_closed, self.sim_seconds
        );
        let _ = writeln!(
            out,
            "renewal waves={} renewals={} mill_rejected={} skewed={} shortened={}",
            self.waves, self.renewals, self.mill_rejected, self.skewed, self.shortened
        );
        let _ = writeln!(
            out,
            "flows completed={} failed={}",
            self.flows_completed, self.flows_failed
        );
        let _ = writeln!(
            out,
            "traffic messages={} bytes={}",
            self.traffic.messages, self.traffic.bytes
        );
        let f = &self.fault_stats;
        let _ = writeln!(
            out,
            "faults sent={} delivered={} dropped={} duplicated={} blocked={}",
            f.sent, f.delivered, f.dropped, f.duplicated, f.blocked
        );
        let s = &self.sched;
        let _ = writeln!(
            out,
            "sched spawned={} completed={} steps={} clock_advances={} mail_wakes={} timer_wakes={}",
            s.spawned, s.completed, s.steps, s.clock_advances, s.mail_wakes, s.timer_wakes
        );
        out.push_str(&self.metrics.render());
        out
    }
}

/// Per-principal credential-lifetime bookkeeping, shared between the
/// principal task and the renewal coordinator.
struct Window {
    not_before: u64,
    not_after: u64,
    pending: bool,
    renewals: u64,
    class: usize,
}

struct StormState {
    windows: Vec<Window>,
    queue: Vec<usize>,
}

/// A VO gateway: answers every leg statelessly (the storm's real
/// at-most-once discipline lives in the chaos suite's services).
struct Gateway {
    ep: Endpoint,
}

impl Task for Gateway {
    fn step(&mut self, _cx: &TaskCx) -> Step {
        while let Some(m) = self.ep.try_recv() {
            let Some((id, body)) = rpc::decode_request(&m.payload) else {
                continue;
            };
            let reply_len = body
                .first()
                .and_then(|leg| VO_LEGS.get(*leg as usize))
                .map(|(_, rep)| *rep)
                .unwrap_or(0);
            let _ = self
                .ep
                .send(&m.from, rpc::encode_reply(id, &vec![0u8; reply_len]));
        }
        Step::WaitMail { deadline: None }
    }
}

/// One portal principal: staggered sign-on, think-time flow loop,
/// grace-window renewal enqueue, hard-expiry fail-closed.
struct Principal {
    ep: Endpoint,
    gateway: String,
    index: usize,
    state: Rc<RefCell<StormState>>,
    start_at: u64,
    leg: usize,
    call: Option<PollingCall>,
    next_id: u64,
    next_flow_at: u64,
    policy: RetryPolicy,
    horizon: u64,
    grace: u64,
}

impl Principal {
    /// Expiry/grace checks against the shared window; enqueues for the
    /// next renewal wave when inside grace.
    fn credential_state(&self, now: u64) -> CredState {
        let mut st = self.state.borrow_mut();
        let w = &mut st.windows[self.index];
        if now < w.not_before || now > w.not_after {
            return CredState::Expired;
        }
        if w.not_after - now < self.grace && !w.pending {
            w.pending = true;
            let idx = self.index;
            st.queue.push(idx);
            trace::add("expiry.enqueued", 1);
        }
        CredState::Live
    }
}

enum CredState {
    Live,
    Expired,
}

impl Task for Principal {
    fn step(&mut self, cx: &TaskCx) -> Step {
        let now = cx.now();
        if now < self.start_at {
            return Step::Sleep(self.start_at);
        }
        if now >= self.horizon {
            trace::add("expiry.survived", 1);
            return Step::Done;
        }
        // Fail closed the moment the credential window no longer
        // contains `now` — a principal never authenticates on a dead
        // proxy, and never panics or spins either.
        if matches!(self.credential_state(now), CredState::Expired) {
            if self.start_at == now && self.next_id == 0 {
                trace::add("expiry.stillborn", 1);
            } else {
                trace::add("expiry.failed_closed", 1);
            }
            return Step::Done;
        }
        if self.call.is_none() {
            if now < self.next_flow_at {
                // Wake for the next flow, or at hard expiry (to fail
                // closed promptly), whichever is earlier.
                let expiry = self.state.borrow().windows[self.index].not_after + 1;
                return Step::Sleep(self.next_flow_at.min(expiry).min(self.horizon));
            }
            let (req_len, _) = VO_LEGS[self.leg];
            let mut payload = vec![0u8; req_len.max(1)];
            payload[0] = self.leg as u8;
            self.next_id += 1;
            self.call = Some(PollingCall::new(
                &self.gateway,
                self.next_id,
                &payload,
                self.policy,
            ));
        }
        let call = self.call.as_mut().expect("call ensured above");
        match call.poll(&self.ep, now) {
            CallPoll::Ready(_) => {
                self.call = None;
                self.leg += 1;
                if self.leg == VO_LEGS.len() {
                    self.leg = 0;
                    self.next_flow_at = now + self.policy.base_timeout.max(1) + self.thinks();
                    trace::add("expiry.flows.completed", 1);
                }
                Step::Yield
            }
            CallPoll::Wait { deadline } => Step::WaitMail {
                deadline: Some(deadline),
            },
            CallPoll::Exhausted => {
                trace::add("expiry.flows.failed", 1);
                self.call = None;
                self.leg = 0;
                self.next_flow_at = now + self.thinks();
                Step::Yield
            }
        }
    }
}

impl Principal {
    fn thinks(&self) -> u64 {
        // Deterministic per-principal think jitter, cheap and seedless:
        // spreads flow starts so gateway mailboxes don't spike in
        // lockstep.
        300 + (self.index as u64 * 37) % 151
    }
}

/// The renewal coordinator: drains the grace queue on a fixed wave
/// interval and batches the wave through the mill.
struct Coordinator {
    state: Rc<RefCell<StormState>>,
    mill: HandshakeMill,
    rng: ChaChaRng,
    classes: Vec<Credential>,
    trust: TrustStore,
    faults: LifetimeFaults,
    next_wave: u64,
    wave_interval: u64,
    horizon: u64,
    nominal: u64,
    hellos_sent: u64,
}

impl Task for Coordinator {
    fn step(&mut self, cx: &TaskCx) -> Step {
        let now = cx.now();
        if now >= self.horizon {
            return Step::Done;
        }
        if now < self.next_wave {
            return Step::Sleep(self.next_wave.min(self.horizon));
        }
        self.next_wave = now + self.wave_interval;
        let wave: Vec<usize> = {
            let mut st = self.state.borrow_mut();
            std::mem::take(&mut st.queue)
        };
        if wave.is_empty() {
            return Step::Sleep(self.next_wave.min(self.horizon));
        }
        trace::add("expiry.waves", 1);
        trace::record("expiry.wave_size", wave.len() as u64);
        // One ClientHello per renewing principal, from its credential
        // class; every 29th hello across the run is corrupt,
        // exercising the mill's rejection path deterministically.
        let hellos: Vec<Vec<u8>> = wave
            .iter()
            .map(|&p| {
                self.hellos_sent += 1;
                if self.hellos_sent.is_multiple_of(29) {
                    format!("not a hello {p}").into_bytes()
                } else {
                    let class = self.state.borrow().windows[p].class;
                    let cfg = TlsConfig::new(self.classes[class].clone(), self.trust.clone(), now);
                    let (_init, hello) =
                        gridsec_gssapi::context::InitiatorContext::new(cfg, &mut self.rng);
                    hello
                }
            })
            .collect();
        let refs: Vec<&[u8]> = hellos.iter().map(|h| h.as_slice()).collect();
        let results = self.mill.accept_wave(&mut self.rng, &refs);
        let mut st = self.state.borrow_mut();
        for (&p, result) in wave.iter().zip(&results) {
            let w = &mut st.windows[p];
            w.pending = false;
            match result {
                Ok(_) => {
                    // A renewed proxy: fresh fault-injected lifetime
                    // from `now` (renewal issuers are honest about the
                    // clock; the injector may still shorten).
                    w.not_after = now + self.faults.lifetime(self.nominal).max(1);
                    w.not_before = w.not_before.min(now);
                    w.renewals += 1;
                    trace::add("expiry.renewals", 1);
                }
                Err(_) => {
                    trace::add("expiry.mill_rejected", 1);
                }
            }
        }
        Step::Sleep(self.next_wave.min(self.horizon))
    }
}

/// Run the expiry storm to quiescence and report.
pub fn run_expiry_storm(opts: &ExpiryOpts) -> ExpiryReport {
    let wall = std::time::Instant::now();
    let net = Network::new();
    let clock = SimClock::new();
    net.enable_faults(clock.clone(), opts.seed, opts.profile);
    // As in vo_storm: per-send transcript lines would dominate memory
    // at storm scale; determinism is asserted on the metrics render.
    net.set_transcript_recording(false);

    let tracer = Tracer::new();
    let c = clock.clone();
    tracer.set_clock(move || c.now());
    let guard = trace::install(&tracer);

    // The small pool of real credentials behind the population.
    let mut rng = ChaChaRng::from_seed_bytes(format!("expiry world {:#x}", opts.seed).as_bytes());
    let ca =
        CertificateAuthority::create_root(&mut rng, dn("/O=Storm/CN=CA"), 512, 0, u64::MAX / 2);
    let classes: Vec<Credential> = (0..opts.classes.max(1))
        .map(|i| {
            ca.issue_identity(
                &mut rng,
                dn(&format!("/O=Storm/CN=Class{i}")),
                512,
                0,
                u64::MAX / 4,
            )
        })
        .collect();
    let service = ca.issue_identity(&mut rng, dn("/O=Storm/CN=Portal"), 512, 0, u64::MAX / 4);
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());

    // One injector seeds every lifetime fault in the run; a second,
    // independently salted one drives renewal-time lifetimes so the
    // coordinator's draw order can't perturb the mint sequence.
    let mut mint_faults = LifetimeFaults::seeded(
        opts.seed,
        opts.skew_max,
        opts.short_permille,
        opts.short_max,
    );
    let renew_faults = LifetimeFaults::seeded(
        opts.seed ^ 0x7E9E_3A11,
        0, // renewal issuers are clock-honest
        opts.short_permille,
        opts.short_max,
    );

    let mut sched = Scheduler::new(&net);
    let gateways = opts.gateways.max(1);
    for g in 0..gateways {
        let name = format!("exp-gw-{g}");
        let ep = net.register(&name);
        sched.spawn_mailbox(&name, Gateway { ep });
    }

    let state = Rc::new(RefCell::new(StormState {
        windows: Vec::with_capacity(opts.principals),
        queue: Vec::new(),
    }));

    for i in 0..opts.principals {
        // The mint sequence: staggered sign-on, skewed issuer clock,
        // fault-injected lifetime — all from the one injector, in
        // principal order.
        let start_at = mint_faults.storm_offset(opts.spread.max(1));
        let issued_at = mint_faults.issuer_now(start_at);
        let lifetime = mint_faults.lifetime(opts.nominal_lifetime);
        state.borrow_mut().windows.push(Window {
            not_before: issued_at.saturating_sub(opts.backdate),
            not_after: issued_at.saturating_add(lifetime),
            pending: false,
            renewals: 0,
            class: i % opts.classes.max(1),
        });
        let name = format!("e{i}");
        let ep = net.register(&name);
        sched.spawn_mailbox(
            &name,
            Principal {
                ep,
                gateway: format!("exp-gw-{}", i % gateways),
                index: i,
                state: state.clone(),
                start_at,
                leg: 0,
                call: None,
                next_id: 0,
                next_flow_at: 0,
                policy: opts.policy,
                horizon: opts.horizon,
                grace: opts.grace,
            },
        );
    }

    let skewed = mint_faults.skewed();
    let shortened_minted = mint_faults.shortened();

    let mill = HandshakeMill::new(TlsConfig::new(service, trust.clone(), 0));
    sched.spawn(Coordinator {
        state: state.clone(),
        mill,
        rng: ChaChaRng::from_seed_bytes(format!("expiry mill {:#x}", opts.seed).as_bytes()),
        classes,
        trust,
        faults: renew_faults,
        next_wave: opts.wave_interval,
        wave_interval: opts.wave_interval,
        horizon: opts.horizon,
        nominal: opts.nominal_lifetime,
        hellos_sent: 0,
    });

    let sched_stats = sched.run();
    let metrics = tracer.metrics();
    drop(guard);

    let counter = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
    let st = state.borrow();
    ExpiryReport {
        principals: opts.principals,
        survived: counter("expiry.survived"),
        stillborn: counter("expiry.stillborn"),
        failed_closed: counter("expiry.failed_closed"),
        renewals: st.windows.iter().map(|w| w.renewals).sum(),
        waves: counter("expiry.waves"),
        mill_rejected: counter("expiry.mill_rejected"),
        skewed,
        shortened: shortened_minted,
        flows_completed: counter("expiry.flows.completed"),
        flows_failed: counter("expiry.flows.failed"),
        sim_seconds: clock.now(),
        traffic: net.stats(),
        fault_stats: net.fault_stats().expect("faults are armed"),
        sched: sched_stats,
        metrics,
        wall_ms: wall.elapsed().as_millis(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_storm_exercises_every_lifetime_fault_and_is_deterministic() {
        let opts = ExpiryOpts::new(400, 0x0E59_0057);
        let a = run_expiry_storm(&opts);
        // Every fault dimension fired at this scale.
        assert!(a.stillborn > 0, "skewed issuers produced stillborn proxies");
        assert!(a.failed_closed > 0, "near-zero lifetimes failed closed");
        assert!(a.renewals > 0, "waves renewed the graceful majority");
        assert!(a.waves > 1, "renewals arrived in waves");
        assert!(a.mill_rejected > 0, "corrupt openers were rejected");
        assert!(a.survived > (opts.principals as u64) / 2, "{a:?}");
        // Population conservation: every principal ended exactly one way.
        assert_eq!(
            a.survived + a.stillborn + a.failed_closed,
            opts.principals as u64
        );
        let b = run_expiry_storm(&opts);
        assert_eq!(
            a.deterministic_render(),
            b.deterministic_render(),
            "same seed, byte-identical storm"
        );
    }

    #[test]
    fn different_seed_diverges() {
        let a = run_expiry_storm(&ExpiryOpts::new(120, 1));
        let b = run_expiry_storm(&ExpiryOpts::new(120, 2));
        assert_ne!(a.deterministic_render(), b.deterministic_render());
    }
}
