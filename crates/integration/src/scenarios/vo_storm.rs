//! VO-scale load storm over the discrete-event scheduler.
//!
//! The paper's architecture is sized for virtual-organization
//! populations, but the thread-per-endpoint testbed capped chaos runs
//! at a few hundred principals. This generator drives **tens to
//! hundreds of thousands** of concurrent principals through
//! message-level emulations of the paper's two canonical flows —
//! figure 1 (GSI context establishment + a secured request) and
//! figure 4 (GRAM job submission with delegation) — in one process,
//! every principal a resumable [`Task`] on one [`Scheduler`].
//!
//! The emulation is *message-shaped*, not crypto-real: each flow is its
//! sequence of request/reply legs with paper-scale payload sizes, run
//! through the full retry/RPC framing ([`PollingCall`]) over the seeded
//! fault layer. Real RSA/DH handshakes cost ~milliseconds each, which
//! at 10⁵ principals would measure the crypto kernel, not the
//! event-loop; the cryptographic correctness of both flows is already
//! covered end-to-end by the chaos suite. What the storm measures is
//! what only scale can: scheduler throughput, retry behavior under
//! congestion-free loss, and latency distributions across a population.
//!
//! Everything observable — flow latency histograms, throughput
//! counters, fault stats, scheduler stats — is a pure function of
//! [`StormOpts::seed`]. [`StormReport::deterministic_render`] is the
//! byte-identical two-run CI artifact; wall-clock time is reported
//! separately and excluded from it.
//!
//! The gateway emulation is stateless (every reply is a function of the
//! request), so duplicates are re-answered by recomputation rather than
//! an at-most-once reply cache — caching ~10⁵ replies would dominate
//! memory without changing any observable. The real at-most-once
//! discipline is exercised by the chaos suite's stateful services.

use std::fmt::Write as _;

use gridsec_testbed::clock::SimClock;
use gridsec_testbed::net::{Endpoint, FaultProfile, FaultStats, Network, TrafficStats};
use gridsec_testbed::rpc::{self, CallPoll, PollingCall};
use gridsec_testbed::sched::{SchedStats, Scheduler, Step, Task, TaskCx};
use gridsec_util::retry::RetryPolicy;
use gridsec_util::rng::{DetRng, RngCore};
use gridsec_util::trace::{self, MetricsSnapshot, Tracer};

/// Figure-1 legs (request, reply) in bytes: two GSS token rounds, then
/// the secured application exchange (paper §3, figure 1 shape).
const FIG1_LEGS: &[(usize, usize)] = &[(620, 380), (240, 160), (410, 300)];

/// Figure-4 legs: submit, two GSS rounds with the gatekeeper,
/// delegation request/chain, job start, job state (paper §5, figure 4
/// shape).
const FIG4_LEGS: &[(usize, usize)] = &[
    (300, 90),
    (620, 380),
    (240, 160),
    (150, 520),
    (680, 120),
    (200, 90),
    (120, 140),
];

const FIG1_TAG: u8 = 1;
const FIG4_TAG: u8 = 4;

fn legs_for(tag: u8) -> &'static [(usize, usize)] {
    if tag == FIG4_TAG {
        FIG4_LEGS
    } else {
        FIG1_LEGS
    }
}

/// Storm configuration. Everything that affects behavior is explicit,
/// so a report names its own reproduction.
#[derive(Clone, Debug)]
pub struct StormOpts {
    /// Number of principals (one scheduled task + endpoint each).
    pub principals: usize,
    /// Master seed: fault layer, flow mix, gateway assignment, stagger.
    pub seed: u64,
    /// Per-mille of principals running the figure-4 GRAM flow; the
    /// rest run figure 1.
    pub fig4_permille: u32,
    /// Start-time stagger window in sim seconds (uniform draw).
    pub start_spread: u64,
    /// VO gateway endpoints the population is sharded across.
    pub gateways: usize,
    /// Fault profile for every link.
    pub profile: FaultProfile,
    /// Retry policy for every leg.
    pub policy: RetryPolicy,
}

impl StormOpts {
    /// Defaults for a population of `principals` under `seed`: 30%
    /// figure-4, a 10-minute stagger window, gateway count scaled to
    /// the population, the light-loss WAN profile, and the chaos
    /// suite's retry policy.
    pub fn new(principals: usize, seed: u64) -> Self {
        StormOpts {
            principals,
            seed,
            fig4_permille: 300,
            start_spread: 600,
            gateways: (principals / 4096).clamp(4, 64),
            profile: Self::storm_wan(),
            policy: super::policy(),
        }
    }

    /// The storm's WAN: 1% loss, 1% duplication, 1–3s latency, 5%
    /// reorder jitter — lossy enough to exercise retransmission on a
    /// meaningful fraction of 10⁵ flows, reliable enough that the
    /// retry budget virtually never exhausts.
    pub fn storm_wan() -> FaultProfile {
        FaultProfile {
            drop: 0.01,
            duplicate: 0.01,
            max_extra_copies: 1,
            min_latency: 1,
            max_latency: 3,
            reorder: 0.05,
            reorder_jitter: 2,
        }
    }
}

/// Everything one storm run produced. All fields except `wall_ms` are
/// pure functions of the seed.
#[derive(Clone, Debug)]
pub struct StormReport {
    /// Population size.
    pub principals: usize,
    /// Flows that completed every leg.
    pub completed: u64,
    /// Flows that exhausted a leg's retry budget.
    pub failed: u64,
    /// Sim time at quiescence.
    pub sim_seconds: u64,
    /// Network traffic (messages/bytes delivered).
    pub traffic: TrafficStats,
    /// Fault-layer counters.
    pub fault_stats: FaultStats,
    /// Scheduler counters.
    pub sched: SchedStats,
    /// Trace counters + latency histograms.
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration (NOT deterministic; excluded from the
    /// deterministic render).
    pub wall_ms: u128,
}

impl StormReport {
    /// The byte-identical-per-seed artifact the CI gate compares across
    /// two runs: population, outcomes, traffic, fault and scheduler
    /// counters, and the full metrics render — everything except wall
    /// time.
    pub fn deterministic_render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "storm principals={} completed={} failed={} sim_seconds={}",
            self.principals, self.completed, self.failed, self.sim_seconds
        );
        let _ = writeln!(
            out,
            "traffic messages={} bytes={}",
            self.traffic.messages, self.traffic.bytes
        );
        let f = &self.fault_stats;
        let _ = writeln!(
            out,
            "faults sent={} delivered={} dropped={} duplicated={} blocked={}",
            f.sent, f.delivered, f.dropped, f.duplicated, f.blocked
        );
        let s = &self.sched;
        let _ = writeln!(
            out,
            "sched spawned={} completed={} steps={} clock_advances={} mail_wakes={} timer_wakes={}",
            s.spawned, s.completed, s.steps, s.clock_advances, s.mail_wakes, s.timer_wakes
        );
        out.push_str(&self.metrics.render());
        out
    }

    /// Completed flows per simulated second (the storm's headline
    /// throughput figure).
    pub fn flows_per_sim_second(&self) -> f64 {
        if self.sim_seconds == 0 {
            return 0.0;
        }
        self.completed as f64 / self.sim_seconds as f64
    }
}

/// A VO gateway: answers every leg of both flows, statelessly.
struct Gateway {
    ep: Endpoint,
}

impl Task for Gateway {
    fn step(&mut self, _cx: &TaskCx) -> Step {
        let mut answered = 0u64;
        while let Some(m) = self.ep.try_recv() {
            let Some((id, body)) = rpc::decode_request(&m.payload) else {
                continue;
            };
            // body[0] = flow tag, body[1] = leg index; anything shorter
            // or out of range is answered with an empty reply rather
            // than dropped, so a corrupted frame fails fast client-side.
            let reply_len = body
                .first()
                .zip(body.get(1))
                .and_then(|(tag, leg)| legs_for(*tag).get(*leg as usize))
                .map(|(_, rep)| *rep)
                .unwrap_or(0);
            let _ = self
                .ep
                .send(&m.from, rpc::encode_reply(id, &vec![0u8; reply_len]));
            answered += 1;
        }
        if answered > 0 {
            trace::add("storm.gw.answered", answered);
        }
        Step::WaitMail { deadline: None }
    }
}

/// One principal: sleeps until its staggered start, then runs its
/// flow's legs as sequential [`PollingCall`]s.
struct Principal {
    ep: Endpoint,
    gateway: String,
    tag: u8,
    leg: usize,
    call: Option<PollingCall>,
    start_at: u64,
    began: Option<u64>,
    retransmissions: u64,
    policy: RetryPolicy,
}

impl Task for Principal {
    fn step(&mut self, cx: &TaskCx) -> Step {
        let now = cx.now();
        if self.began.is_none() {
            if now < self.start_at {
                return Step::Sleep(self.start_at);
            }
            self.began = Some(now);
        }
        let legs = legs_for(self.tag);
        loop {
            if self.call.is_none() {
                let (req_len, _) = legs[self.leg];
                let mut payload = vec![0u8; req_len.max(2)];
                payload[0] = self.tag;
                payload[1] = self.leg as u8;
                self.call = Some(PollingCall::new(
                    &self.gateway,
                    (self.leg + 1) as u64,
                    &payload,
                    self.policy,
                ));
            }
            let call = self.call.as_mut().expect("just ensured");
            match call.poll(&self.ep, now) {
                CallPoll::Ready(_reply) => {
                    self.retransmissions += call.retransmissions();
                    self.call = None;
                    self.leg += 1;
                    if self.leg == legs.len() {
                        let latency = now - self.began.expect("began set");
                        if self.tag == FIG4_TAG {
                            trace::record("storm.fig4.latency_s", latency);
                            trace::add("storm.fig4.completed", 1);
                        } else {
                            trace::record("storm.fig1.latency_s", latency);
                            trace::add("storm.fig1.completed", 1);
                        }
                        trace::add("storm.flows.completed", 1);
                        if self.retransmissions > 0 {
                            trace::add("storm.retransmissions", self.retransmissions);
                        }
                        return Step::Done;
                    }
                }
                CallPoll::Wait { deadline } => {
                    return Step::WaitMail {
                        deadline: Some(deadline),
                    }
                }
                CallPoll::Exhausted => {
                    trace::add("storm.flows.failed", 1);
                    return Step::Done;
                }
            }
        }
    }
}

/// Run the storm to quiescence and report.
pub fn run_vo_storm(opts: &StormOpts) -> StormReport {
    let wall = std::time::Instant::now();
    let net = Network::new();
    let clock = SimClock::new();
    net.enable_faults(clock.clone(), opts.seed, opts.profile);
    // One formatted transcript line per send would dominate memory at
    // storm scale; determinism is asserted on the metrics instead.
    net.set_transcript_recording(false);

    let tracer = Tracer::new();
    let c = clock.clone();
    tracer.set_clock(move || c.now());
    let guard = trace::install(&tracer);

    let mut sched = Scheduler::new(&net);
    let gateways = opts.gateways.max(1);
    for g in 0..gateways {
        let name = format!("vo-gw-{g}");
        let ep = net.register(&name);
        sched.spawn_mailbox(&name, Gateway { ep });
    }

    let mut rng = DetRng::seed_from_u64(opts.seed ^ 0x5702_4A11);
    for i in 0..opts.principals {
        let tag = if rng.next_u64() % 1000 < u64::from(opts.fig4_permille) {
            FIG4_TAG
        } else {
            FIG1_TAG
        };
        let gateway = format!("vo-gw-{}", rng.next_u64() as usize % gateways);
        let start_at = if opts.start_spread == 0 {
            0
        } else {
            rng.next_u64() % (opts.start_spread + 1)
        };
        let name = format!("p{i}");
        let ep = net.register(&name);
        sched.spawn_mailbox(
            &name,
            Principal {
                ep,
                gateway,
                tag,
                leg: 0,
                call: None,
                start_at,
                began: None,
                retransmissions: 0,
                policy: opts.policy,
            },
        );
    }

    let sched_stats = sched.run();
    let metrics = tracer.metrics();
    drop(guard);

    let counter = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
    StormReport {
        principals: opts.principals,
        completed: counter("storm.flows.completed"),
        failed: counter("storm.flows.failed"),
        sim_seconds: clock.now(),
        traffic: net.stats(),
        fault_stats: net.fault_stats().expect("faults are armed"),
        sched: sched_stats,
        metrics,
        wall_ms: wall.elapsed().as_millis(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_storm_completes_and_is_deterministic() {
        let opts = StormOpts::new(1200, 0x0057_0A11);
        let r1 = run_vo_storm(&opts);
        let r2 = run_vo_storm(&opts);
        assert_eq!(
            r1.deterministic_render(),
            r2.deterministic_render(),
            "same seed, byte-identical storm report"
        );
        assert_eq!(
            r1.completed + r1.failed,
            1200,
            "every flow reached a verdict"
        );
        assert!(
            r1.completed >= 1195,
            "1% loss with 8 attempts virtually never exhausts: {} completed",
            r1.completed
        );
        assert!(
            r1.metrics
                .counters
                .get("storm.retransmissions")
                .copied()
                .unwrap_or(0)
                > 0,
            "1% loss over thousands of messages must retransmit"
        );
        let h = r1.metrics.hists.get("storm.fig1.latency_s").unwrap();
        assert!(h.count > 0 && h.max >= h.min);
        // A different seed is a different storm.
        let r3 = run_vo_storm(&StormOpts::new(1200, 0x0057_0A12));
        assert_ne!(r1.deterministic_render(), r3.deterministic_render());
    }

    #[test]
    fn storm_scales_population_not_threads() {
        // 20k principals (and their ~28k tasks' worth of traffic) in
        // one process, no spawned threads: the tentpole claim at a
        // test-budget scale. The bench bin runs the 10⁵ version.
        let mut opts = StormOpts::new(20_000, 0xB16_570A);
        opts.start_spread = 1200;
        let r = run_vo_storm(&opts);
        assert_eq!(r.completed + r.failed, 20_000);
        assert!(r.completed >= 19_900);
        assert!(r.sched.steps > 100_000, "steps: {}", r.sched.steps);
    }
}
