//! Initiator-death recovery: the portal single-sign-on flow from
//! GridCertLib's MyProxy story, with the *client* as the crashing
//! process.
//!
//! A portal signs Jane on, stores her delegated credential at the
//! MyProxy repository, acquires a short-lived proxy, submits a GRAM
//! job with it, and later renews the proxy mid-job. The portal process
//! itself runs under a [`CrashPlan`] with client-side kill points:
//!
//! * `cred.store` — dies right after the credential store landed,
//!   before the portal uses it.
//! * `cred.reacquire` — dies right after a proxy issuance reply
//!   arrived, before the portal records completion (the worst window:
//!   the repository has already minted the proxy).
//! * `cred.renew` — same window, during the mid-job renewal.
//!
//! Every incarnation restarts from the portal's own write-ahead
//! journal. The exactly-once trick mirrors the server side: the portal
//! journals an *intent* record — the reserved RPC call id, the freshly
//! generated key pair, and the exact request bytes — before the first
//! transmission, and a reborn portal re-sends the *same* `(caller,
//! id)` frame via [`PollingCall`]. The repository's reply cache (and
//! the MyProxy issue journal behind it) answers with the *same* proxy
//! certificate, so no kill window can double-issue, and the in-flight
//! GRAM submission resumes exactly once (`cold_starts == 1`, one job
//! process) because submission is guarded by a journaled completion
//! record.

use std::cell::RefCell;
use std::rc::Rc;

use gridsec_crypto::rng::ChaChaRng;
use gridsec_crypto::rsa::RsaKeyPair;
use gridsec_gram::durable::DurableGram;
use gridsec_gram::remote::{job_state_remote, submit_job_resilient};
use gridsec_gram::resource::{GramConfig, GramResource};
use gridsec_gram::types::{JobDescription, JobState};
use gridsec_gram::Requestor;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::cert::{decode_public_key, Certificate};
use gridsec_pki::credential::Credential;
use gridsec_pki::encoding::{Codec, Decoder, Encoder};
use gridsec_pki::proxy::{issue_delegated_proxy, ProxyType};
use gridsec_pki::store::TrustStore;
use gridsec_pki::validate::validate_chain;
use gridsec_services::myproxy::{self, MyProxyServer, OP_GET, OP_RENEW};
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::faults::{CrashPlan, CrashableServer, Journal};
use gridsec_testbed::net::{Endpoint, FaultProfile, Network};
use gridsec_testbed::os::{SimOs, ROOT_UID};
use gridsec_testbed::rpc::{CallPoll, PollingCall, RpcClient};
use gridsec_util::trace;

use super::{crash_plan, policy, report, rig, ChaosOpts, ScenarioReport};
use crate::dn;

/// Portal journal tags.
const TAG_STORED: &str = "p-stored";
const TAG_INTENT: &str = "p-intent";
const TAG_SUBMITTED: &str = "p-submitted";

/// The portal died at an armed kill point mid-flow.
struct Killed;

/// A journaled issuance intent: enough to re-send the exact frame and
/// decode the replayed proxy after rebirth.
struct Intent {
    id: u64,
    op: String,
    key: RsaKeyPair,
    request: Vec<u8>,
}

fn encode_intent(id: u64, op: &str, key: &RsaKeyPair, request: &[u8]) -> Vec<u8> {
    let (p, q) = key.primes();
    let mut e = Encoder::new();
    e.put_u64(id)
        .put_str(op)
        .put_biguint(p)
        .put_biguint(q)
        .put_biguint(key.public().exponent())
        .put_bytes(request);
    e.finish()
}

fn decode_intent(body: &[u8]) -> Option<Intent> {
    let mut d = Decoder::new(body);
    let id = d.get_u64().ok()?;
    let op = d.get_str().ok()?;
    let p = d.get_biguint().ok()?;
    let q = d.get_biguint().ok()?;
    let e = d.get_biguint().ok()?;
    let request = d.get_bytes().ok()?;
    let key = RsaKeyPair::from_components(p, q, e).ok()?;
    Some(Intent {
        id,
        op,
        key,
        request,
    })
}

/// What one portal incarnation recovered from its journal.
struct Recovered {
    stored: bool,
    last_intent: Option<Intent>,
    submitted: Option<(String, String)>,
    next_id: u64,
}

fn replay_portal_journal(journal: &Journal) -> Recovered {
    let mut stored = false;
    let mut last_intent = None;
    let mut submitted = None;
    for (tag, body) in journal.records() {
        match tag.as_str() {
            TAG_STORED => stored = true,
            TAG_INTENT => last_intent = decode_intent(&body),
            TAG_SUBMITTED => {
                let mut d = Decoder::new(&body);
                if let (Ok(h), Ok(a)) = (d.get_str(), d.get_str()) {
                    submitted = Some((h, a));
                }
            }
            _ => {}
        }
    }
    Recovered {
        stored,
        last_intent,
        submitted,
        // Fresh call ids strictly above anything any earlier
        // incarnation can have used: the journal only grows.
        next_id: (journal.len() as u64 + 1) * 1_000,
    }
}

/// One portal incarnation's handles on the world.
struct Portal<'w> {
    ep: Endpoint,
    clock: &'w SimClock,
    repo_server: Rc<RefCell<CrashableServer>>,
    repo_app: Rc<RefCell<MyProxyServer>>,
    journal: Journal,
    plan: CrashPlan,
}

impl Portal<'_> {
    fn pump(&self) -> usize {
        self.repo_server
            .borrow_mut()
            .poll(&mut *self.repo_app.borrow_mut())
    }

    /// Drive one credential-repository call to completion, advancing
    /// the sim clock along the retry schedule (the blocking-client
    /// loop, re-expressed around an explicit call id so a reborn
    /// incarnation can re-send the identical frame).
    fn call(&self, id: u64, payload: &[u8]) -> Result<Vec<u8>, String> {
        let mut call = PollingCall::new("repo", id, payload, policy());
        loop {
            self.pump();
            match call.poll(&self.ep, self.clock.now()) {
                CallPoll::Ready(reply) => return Ok(reply),
                CallPoll::Wait { deadline } => {
                    self.clock.set(deadline.max(self.clock.now()));
                }
                CallPoll::Exhausted => return Err("retry budget exhausted".into()),
            }
        }
    }

    /// `fires` + death: returns `Err(Killed)` when the armed point hits.
    fn kill_point(&self, point: &str) -> Result<(), Killed> {
        if self.plan.fires(point) {
            trace::event("portal.killed", point);
            return Err(Killed);
        }
        Ok(())
    }
}

/// The two-round store flow, retried with fresh ids if the repository
/// crashed between rounds (its pending key is volatile by design).
fn store_at_repo(
    portal: &Portal<'_>,
    rng: &mut ChaChaRng,
    delegator: &Credential,
    next_id: &mut u64,
) -> Result<(), String> {
    for _ in 0..4 {
        let mut e = Encoder::new();
        e.put_str(myproxy::OP_STORE_BEGIN)
            .put_str("jane")
            .put_str("s3cret");
        let begin_id = *next_id;
        *next_id += 2;
        let body = myproxy::decode_verdict(&portal.call(begin_id, &e.finish())?)
            .map_err(|e| e.to_string())?;
        let mut d = Decoder::new(&body);
        let repo_key = decode_public_key(&mut d).map_err(|_| "bad repo key".to_string())?;
        let cert = issue_delegated_proxy(
            rng,
            delegator,
            &repo_key,
            ProxyType::Impersonation,
            portal.clock.now(),
            200_000,
        )
        .map_err(|e| format!("delegate: {e:?}"))?;
        let mut e = Encoder::new();
        e.put_str(myproxy::OP_STORE_COMMIT)
            .put_str("jane")
            .put_str("s3cret");
        cert.encode(&mut e);
        e.put_seq(delegator.chain(), |enc, c: &Certificate| c.encode(enc));
        match myproxy::decode_verdict(&portal.call(begin_id + 1, &e.finish())?) {
            Ok(_) => return Ok(()),
            // The pending key died with a repository crash between the
            // rounds — begin again with fresh ids.
            Err(myproxy::MyProxyError::Refused(_)) => continue,
            Err(e) => return Err(e.to_string()),
        }
    }
    Err("store never landed".into())
}

/// Send an issuance intent (or re-send a recovered one) and assemble
/// the proxy credential around the intent's key.
fn run_intent(portal: &Portal<'_>, intent: &Intent) -> Result<Credential, String> {
    let reply = portal.call(intent.id, &intent.request)?;
    let body = myproxy::decode_verdict(&reply).map_err(|e| e.to_string())?;
    let (p, q) = intent.key.primes();
    let key =
        RsaKeyPair::from_components(p.clone(), q.clone(), intent.key.public().exponent().clone())
            .map_err(|_| "intent key rebuild".to_string())?;
    myproxy::assemble_issued(&body, key).map_err(|e| e.to_string())
}

/// One incarnation of the portal process, from journal replay to a
/// verified running job. `Err(Killed)` means an armed kill point fired
/// and the supervisor should restart us.
#[allow(clippy::too_many_arguments)]
fn run_incarnation(
    portal: &Portal<'_>,
    incarnation: u64,
    seed: u64,
    net: &Network,
    gram_server: &Rc<RefCell<CrashableServer>>,
    gram_app: &Rc<RefCell<DurableGram>>,
    jane: &Credential,
    trust: &TrustStore,
) -> Result<Result<(Credential, String), String>, Killed> {
    trace::add("portal.incarnations", 1);
    let mut recovered = replay_portal_journal(&portal.journal);
    let mut rng = ChaChaRng::from_seed_bytes(
        &[&seed.to_be_bytes()[..], &incarnation.to_be_bytes()[..]].concat(),
    );

    // Phase 1: the credential must be stored at the repository.
    if !recovered.stored {
        if let Err(e) = store_at_repo(portal, &mut rng, jane, &mut recovered.next_id) {
            return Ok(Err(e));
        }
        if portal.journal.append(TAG_STORED, &[]).is_err() {
            return Ok(Err("portal journal unavailable".into()));
        }
        portal.kill_point("cred.store")?;
    }

    // Phase 2: hold a live proxy — recover the in-flight issuance if
    // one is journaled (re-sending its exact frame), else start fresh.
    let (credential, renewed) = match recovered.last_intent {
        Some(intent) => {
            trace::add("portal.intents.recovered", 1);
            let cred = match run_intent(portal, &intent) {
                Ok(c) => c,
                Err(e) => return Ok(Err(e)),
            };
            portal.kill_point("cred.reacquire")?;
            (cred, intent.op == OP_RENEW)
        }
        None => {
            let key = RsaKeyPair::generate(&mut rng, 512);
            let request =
                myproxy::encode_issue_request(OP_GET, "jane", "s3cret", key.public(), 3_600);
            let intent = Intent {
                id: recovered.next_id,
                op: OP_GET.to_string(),
                key,
                request,
            };
            recovered.next_id += 1;
            if portal
                .journal
                .append(
                    TAG_INTENT,
                    &encode_intent(intent.id, &intent.op, &intent.key, &intent.request),
                )
                .is_err()
            {
                return Ok(Err("portal journal unavailable".into()));
            }
            let cred = match run_intent(portal, &intent) {
                Ok(c) => c,
                Err(e) => return Ok(Err(e)),
            };
            portal.kill_point("cred.reacquire")?;
            (cred, false)
        }
    };

    // Phase 3: the GRAM submission, exactly once — guarded by the
    // journaled completion record, not by luck. Each incarnation uses
    // its own client endpoint name (a reborn process on a new port),
    // so fresh call ids can never collide with a dead incarnation's
    // cached replies.
    let handle = match recovered.submitted {
        Some((handle, account)) => {
            assert_eq!(account, "jdoe");
            handle
        }
        None => {
            let gram_ep = net.register(&format!("portal-g{incarnation}"));
            let mut rpc = RpcClient::new(gram_ep, "mjs-host", policy());
            let hook_server = gram_server.clone();
            let hook_app = gram_app.clone();
            rpc.set_pump(move || hook_server.borrow_mut().poll(&mut *hook_app.borrow_mut()));
            let mut requestor = Requestor::new(credential.clone(), trust.clone(), b"portal req");
            let job = match submit_job_resilient(
                &mut requestor,
                &mut rpc,
                &JobDescription::new("/bin/portal-sim"),
                &dn("/O=G/CN=host compute1"),
                portal.clock.now(),
                6,
            ) {
                Ok(j) => j,
                Err(e) => return Ok(Err(format!("submit: {e:?}"))),
            };
            assert_eq!(job.account, "jdoe");
            let mut e = Encoder::new();
            e.put_str(&job.handle).put_str(&job.account);
            if portal.journal.append(TAG_SUBMITTED, &e.finish()).is_err() {
                return Ok(Err("portal journal unavailable".into()));
            }
            trace::add("portal.submissions", 1);
            job.handle
        }
    };

    // Phase 4: the mid-job renewal (once). A recovered renew intent
    // *is* the renewal, completed on rebirth.
    if renewed {
        return Ok(Ok((credential, handle)));
    }
    portal.clock.advance(3_000);
    let key = RsaKeyPair::generate(&mut rng, 512);
    let request = myproxy::encode_issue_request(OP_RENEW, "jane", "s3cret", key.public(), 3_600);
    let intent = Intent {
        id: recovered.next_id,
        op: OP_RENEW.to_string(),
        key,
        request,
    };
    if portal
        .journal
        .append(
            TAG_INTENT,
            &encode_intent(intent.id, &intent.op, &intent.key, &intent.request),
        )
        .is_err()
    {
        return Ok(Err("portal journal unavailable".into()));
    }
    let renewed_cred = match run_intent(portal, &intent) {
        Ok(c) => c,
        Err(e) => return Ok(Err(e)),
    };
    portal.kill_point("cred.renew")?;
    Ok(Ok((renewed_cred, handle)))
}

/// The portal-recovery chaos scenario. Arm `cred.store`,
/// `cred.reacquire`, and/or `cred.renew` via
/// [`ChaosOpts::armed_crashes`] to kill the portal at each window; the
/// scenario asserts exactly-once proxy issuance and exactly-once job
/// submission regardless.
pub fn portal_recovery(seed: u64, opts: &ChaosOpts) -> ScenarioReport {
    let net = Network::new();
    let clock = SimClock::starting_at(100);
    net.enable_faults(clock.clone(), seed ^ 0xB0B7, FaultProfile::lossy_wan());
    let r = rig(&clock, opts);
    let _guard = trace::install(&r.tracer);
    let _dump = trace::dump_on_panic(&r.tracer, "portal_recovery");

    let mut rng = ChaChaRng::from_seed_bytes(b"chaos portal");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
    let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
    let host_cred = ca.issue_host_identity(
        &mut rng,
        dn("/O=G/CN=host compute1"),
        vec!["compute1".into()],
        512,
        0,
        500_000,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    let gridmap = gridsec_authz::gridmap::GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n").unwrap();
    let os = SimOs::new();
    os.add_host("repo");
    os.add_host("portal");

    // The compute resource (server side, stable in this scenario's
    // armed mode; seeded mode can crash it too).
    let resource = GramResource::install(
        os.clone(),
        clock.clone(),
        "compute1",
        trust.clone(),
        host_cred,
        &gridmap,
        GramConfig::default(),
    )
    .unwrap();
    let shared = Rc::new(RefCell::new(resource));
    let gram_plan = crash_plan(opts, seed, 0xC4A7, 0.02, 1);
    let gram_journal = Journal::open(os.clone(), "compute1", "/var/gram/journal.wal", ROOT_UID);
    let gram_app = Rc::new(RefCell::new(DurableGram::new(
        shared.clone(),
        b"portal mjs",
        gram_plan.clone(),
        gram_journal.clone(),
    )));
    let gram_server = Rc::new(RefCell::new(CrashableServer::new(
        net.register("mjs-host"),
        "gram",
        gram_plan.clone(),
        gram_journal,
        true,
    )));

    // The MyProxy repository.
    let repo_plan = crash_plan(opts, seed, 0xC4A8, 0.02, 1);
    let repo_journal = Journal::open(os.clone(), "repo", "/var/myproxy/journal.wal", ROOT_UID);
    let repo_app = Rc::new(RefCell::new(MyProxyServer::new(
        clock.clone(),
        b"portal repo",
        repo_plan.clone(),
        repo_journal.clone(),
        100_000,
    )));
    let repo_server = Rc::new(RefCell::new(CrashableServer::new(
        net.register("repo"),
        "myproxy",
        repo_plan,
        repo_journal,
        true,
    )));

    // The portal process itself: the crashing *client*.
    let portal_plan = crash_plan(opts, seed, 0xC4A9, 0.05, 3);
    let portal_journal = Journal::open(os.clone(), "portal", "/var/portal/journal.wal", ROOT_UID);

    if opts.partition_all {
        net.partition("portal-cred", "repo");
        let portal = Portal {
            ep: net.register("portal-cred"),
            clock: &clock,
            repo_server,
            repo_app,
            journal: portal_journal,
            plan: portal_plan.clone(),
        };
        let err = store_at_repo(&portal, &mut rng, &jane, &mut 1_000);
        assert!(err.is_err(), "partition must fail the store");
        return report("portal", &net, r, false, &portal_plan);
    }

    let mut incarnation = 0u64;
    let (credential, handle) = loop {
        incarnation += 1;
        assert!(incarnation <= 16, "portal must converge");
        // A reborn portal re-registers its endpoint: replies addressed
        // to the dead incarnation are gone — only the journal survives.
        let portal = Portal {
            ep: net.register("portal-cred"),
            clock: &clock,
            repo_server: repo_server.clone(),
            repo_app: repo_app.clone(),
            journal: portal_journal.clone(),
            plan: portal_plan.clone(),
        };
        match run_incarnation(
            &portal,
            incarnation,
            seed,
            &net,
            &gram_server,
            &gram_app,
            &jane,
            &trust,
        ) {
            Ok(Ok(done)) => break done,
            Ok(Err(e)) => panic!("portal incarnation {incarnation} failed: {e}"),
            Err(Killed) => {
                let line = portal_plan.confirm_kill("portal", clock.now());
                assert!(line.is_some(), "a kill point latched");
                clock.advance(portal_plan.restart_delay());
                portal_plan.confirm_restart("portal", clock.now(), portal_journal.len());
            }
        }
    };

    // The renewed proxy validates and the job is still running.
    let id = validate_chain(credential.chain(), &trust, clock.now())
        .expect("renewed portal proxy validates");
    assert_eq!(id.base_identity, dn("/O=G/CN=Jane"));
    let mut rpc = RpcClient::new(net.register("portal-verify"), "mjs-host", policy());
    let hook_server = gram_server.clone();
    let hook_app = gram_app.clone();
    rpc.set_pump(move || hook_server.borrow_mut().poll(&mut *hook_app.borrow_mut()));
    assert_eq!(
        job_state_remote(&mut rpc, &handle).expect("state query"),
        JobState::Active
    );

    // Exactly-once, end to end: one cold start, one job process, and
    // exactly two visible proxy issuances (the acquire and the renew)
    // no matter how many times the portal died and re-sent.
    assert_eq!(shared.borrow().stats.cold_starts, 1);
    let jobs = os
        .processes("compute1")
        .unwrap()
        .into_iter()
        .filter(|p| p.alive && p.name.starts_with("job:"))
        .count();
    assert_eq!(jobs, 1, "exactly one job process spawned");
    assert_eq!(
        repo_app.borrow().issued_count(),
        2,
        "no duplicate proxy issuance across portal deaths"
    );
    trace::add("portal.completed", 1);

    report("portal", &net, r, true, &portal_plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_portal_flow_completes_without_crashes() {
        let rep = portal_recovery(0xB0B7, &ChaosOpts::default());
        assert!(rep.completed);
        assert_eq!(rep.crashes, 0);
        assert_eq!(rep.metrics.counters.get("portal.incarnations"), Some(&1));
    }

    #[test]
    fn armed_kills_at_every_cred_point_recover_exactly_once() {
        let opts = ChaosOpts {
            armed_crashes: vec![
                ("cred.store".into(), 1),
                ("cred.reacquire".into(), 1),
                ("cred.renew".into(), 1),
            ],
            ..ChaosOpts::default()
        };
        let rep = portal_recovery(0xB0B7, &opts);
        // The scenario itself asserts exactly-once issuance and a
        // single job process; here we pin the crash/restart shape.
        assert!(rep.completed);
        assert_eq!(rep.crashes, 3, "all three cred kill points fired");
        assert_eq!(rep.restarts, 3);
        assert_eq!(rep.metrics.counters.get("portal.incarnations"), Some(&4));
        assert_eq!(
            rep.metrics.counters.get("portal.intents.recovered"),
            Some(&2),
            "the acquire and the renew were each completed by a reborn portal"
        );
    }

    #[test]
    fn portal_recovery_is_deterministic_per_seed() {
        let opts = ChaosOpts {
            armed_crashes: vec![("cred.reacquire".into(), 1)],
            ..ChaosOpts::default()
        };
        let a = portal_recovery(0x5EED, &opts);
        let b = portal_recovery(0x5EED, &opts);
        assert_eq!(a.lines, b.lines);
        assert_eq!(a.metrics.counters, b.metrics.counters);
    }
}
