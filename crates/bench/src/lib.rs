//! # gridsec-bench
//!
//! The experiment harness for the `gridsec` reproduction of *Security for
//! Grid Services* (Welch et al., HPDC 2003).
//!
//! One Criterion bench target per figure/claim in the DESIGN.md
//! experiment index (`benches/f1..f4, c1..c3, c5`), plus the `c4_report`
//! binary for the least-privilege accounting (a count/report experiment,
//! not a timing one). `EXPERIMENTS.md` records paper-claim vs. measured
//! for every entry.
//!
//! This library holds the shared fixtures so every bench measures the
//! same world.

#![forbid(unsafe_code)]

use gridsec_crypto::rng::ChaChaRng;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;

/// Key size used across benches. Deliberately small (research stack on a
/// single core); the *relative* shapes are what the experiments check.
pub const KEY_BITS: usize = 512;

/// Parse a DN (bench helper).
pub fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).expect("bench DN")
}

/// A standard single-CA bench world.
pub struct BenchWorld {
    /// Deterministic RNG.
    pub rng: ChaChaRng,
    /// Root CA.
    pub ca: CertificateAuthority,
    /// Trust store with the CA.
    pub trust: TrustStore,
    /// User credential.
    pub user: Credential,
    /// Service credential.
    pub service: Credential,
    /// Host credential (GRAM benches).
    pub host: Credential,
}

/// Build the standard world.
pub fn bench_world(seed: &[u8]) -> BenchWorld {
    let mut rng = ChaChaRng::from_seed_bytes(seed);
    let ca =
        CertificateAuthority::create_root(&mut rng, dn("/O=B/CN=CA"), KEY_BITS, 0, u64::MAX / 2);
    let user = ca.issue_identity(&mut rng, dn("/O=B/CN=User"), KEY_BITS, 0, u64::MAX / 4);
    let service = ca.issue_identity(&mut rng, dn("/O=B/CN=Service"), KEY_BITS, 0, u64::MAX / 4);
    let host = ca.issue_host_identity(
        &mut rng,
        dn("/O=B/CN=host node1"),
        vec!["node1".to_string()],
        KEY_BITS,
        0,
        u64::MAX / 4,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    BenchWorld {
        rng,
        ca,
        trust,
        user,
        service,
        host,
    }
}

pub mod least_privilege;
pub mod striped;
