//! Shared harness for the striped-GridFTP goodput experiments.
//!
//! `striped_xfer` (the bench bin) and `perf_guard` (the CI gate) must
//! measure the *same* deterministic quantity, so the world construction
//! and per-cell runner live here: one CA/host/user world, one seeded
//! payload, and one `run_get_cell` that fetches it over N lossy stripes
//! and reports the tick-model outcome. Everything is a pure function of
//! the seeds — no wall clock enters the goodput figures.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use gridsec_authz::gridmap::GridMapFile;
use gridsec_crypto::rng::ChaChaRng;
use gridsec_gridftp::congestion::AimdConfig;
use gridsec_gridftp::poll::{Dialect, SessionTask};
use gridsec_gridftp::stripe::{striped_get, StripeOpts, StripedOutcome};
use gridsec_gridftp::GridFtpServer;
use gridsec_pki::credential::Credential;
use gridsec_pki::store::TrustStore;
use gridsec_testbed::faults::CrashPlan;
use gridsec_testbed::net::{with_stream_pump, Network, SimStream, StreamPair, StreamStats};
use gridsec_testbed::os::{FileMode, SimOs};
use gridsec_testbed::sched::Scheduler;
use gridsec_tls::handshake::TlsConfig;
use gridsec_tls::TlsError;
use gridsec_util::retry::RetryPolicy;

use crate::bench_world;

/// One GridFTP server plus the client credential that maps into it.
pub struct StripedWorld {
    /// Trust anchors shared by both sides.
    pub trust: TrustStore,
    /// Client credential (maps to `jdoe` via the grid-mapfile).
    pub user: Credential,
    /// The server, shared by every spawned data-channel session.
    pub server: Arc<Mutex<GridFtpServer>>,
}

/// Build the striped bench world: single CA, host `node1`, user mapped
/// to `jdoe`. Reuses [`bench_world`] so every bench shares key sizes.
pub fn striped_world(seed: &[u8]) -> StripedWorld {
    let w = bench_world(seed);
    let gridmap = GridMapFile::parse("\"/O=B/CN=User\" jdoe\n").expect("bench gridmap");
    let server = GridFtpServer::new(SimOs::new(), "node1", w.host, w.trust.clone(), gridmap)
        .expect("bench gridftp server");
    StripedWorld {
        trust: w.trust,
        user: w.user,
        server: Arc::new(Mutex::new(server)),
    }
}

/// Deterministic payload shared by every cell.
pub fn striped_payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

/// Seed `path` on the server with `data`, owned by `jdoe`.
pub fn seed_file(w: &StripedWorld, path: &str, data: &[u8]) {
    let s = w.server.lock().expect("server lock");
    let uid = s.os().uid_of("node1", "jdoe").expect("jdoe uid");
    s.os()
        .write_file("node1", path, uid, FileMode::private(), data.to_vec())
        .expect("seed bench file");
}

/// Dialer spawning one sans-io striped server task per dial over a
/// seeded lossy pair. `base_seed` isolates cells from each other.
fn dialer(
    w: &StripedWorld,
    sched: &Rc<RefCell<Scheduler>>,
    net: &Network,
    base_seed: u64,
    drop: f64,
) -> impl FnMut(usize, u32) -> Result<(SimStream, StreamStats), TlsError> {
    let task = SessionTask {
        server: Arc::clone(&w.server),
        dialect: Dialect::Striped,
        now: 100,
        plan: CrashPlan::disabled(),
    };
    let sched = Rc::clone(sched);
    let net = net.clone();
    let mut n = 0u64;
    move |slot, _attempt| {
        n += 1;
        let seed = base_seed.wrapping_add(n).wrapping_add((slot as u64) << 32);
        let (a, b, stats) = StreamPair::lossy(seed, drop);
        let mailbox = format!("bench-stripe-{base_seed:x}-{slot}-{n}");
        task.spawn(
            &mut sched.borrow_mut(),
            &net,
            &mailbox,
            b,
            &seed.to_be_bytes(),
        );
        Ok((a, stats))
    }
}

/// Fetch `path` once with `drop` loss. `stripes = Some(n)` pins the
/// stripe count (the goodput-vs-parallelism curve); `None` lets the
/// AIMD controller adapt. Deterministic for a given `(base_seed, drop,
/// stripes)` triple.
pub fn run_get_cell(
    w: &StripedWorld,
    base_seed: u64,
    drop: f64,
    stripes: Option<u32>,
    path: &str,
) -> StripedOutcome {
    let aimd = match stripes {
        Some(n) => AimdConfig::pinned_stripes(n),
        None => AimdConfig::default(),
    };
    let opts = StripeOpts {
        aimd,
        max_sessions: 256,
        seed: base_seed ^ 0x57A1_BE11,
        ..StripeOpts::default()
    };
    let net = Network::new();
    let sched = Rc::new(RefCell::new(Scheduler::new(&net)));
    let mut rng = ChaChaRng::from_seed_bytes(&base_seed.to_be_bytes());
    let config = TlsConfig::new(w.user.clone(), w.trust.clone(), 100);
    let dial = dialer(w, &sched, &net, base_seed, drop);
    let pump = Rc::clone(&sched);
    with_stream_pump(
        move || pump.borrow_mut().pump(),
        move || {
            striped_get(&config, &mut rng, RetryPolicy::default(), dial, path, opts)
                .expect("striped bench cell completes")
        },
    )
}
