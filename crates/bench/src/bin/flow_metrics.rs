//! Deterministic flow-metrics smoke bench: replay the four paper-figure
//! chaos scenarios from a pinned seed and emit their trace metrics
//! (handshake latency in simulated seconds, retransmit counts, bytes on
//! the wire) as `BENCH_flows.json` for `regen_experiments`; then replay
//! the credential expiry storm at reduced scale and emit its renewal /
//! fail-closed / mill counters as `BENCH_expiry_storm.json`.
//!
//! Unlike the timing benches, every number here comes from the
//! `SimClock`-driven tracer, so the report is a pure function of the
//! seed — which is what lets CI run this as a drift gate:
//! regenerate EXPERIMENTS.md and `git diff --exit-code` it.
//!
//! Usage:
//!
//! ```text
//! flow_metrics [--seed 0xC4A05EED]    # reports -> $GRIDSEC_BENCH_DIR (default .)
//! ```

use gridsec_integration::scenarios::expiry_storm::{run_expiry_storm, ExpiryOpts};
use gridsec_integration::scenarios::{run_all, ChaosOpts};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut seed: u64 = 0xC4A0_5EED;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                let v = v.trim();
                seed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    u64::from_str_radix(hex, 16).expect("hex seed")
                } else {
                    v.parse().expect("decimal seed")
                };
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let dir = std::env::var("GRIDSEC_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let run = run_all(seed, &ChaosOpts::default());
    let path = run
        .metrics
        .write_bench_json("flows", &dir)
        .expect("write BENCH_flows.json");
    println!(
        "flow_metrics: seed=0x{seed:016x} {} metrics -> {path}",
        run.metrics.counters.len() + run.metrics.hists.len()
    );

    // The credential expiry storm at drift-gate scale: every counter is
    // SimClock-driven, so the report is a pure function of the seed.
    let storm = run_expiry_storm(&ExpiryOpts::new(400, seed));
    let storm_path = storm
        .metrics
        .write_bench_json("expiry_storm", &dir)
        .expect("write BENCH_expiry_storm.json");
    println!(
        "flow_metrics: expiry_storm survived={} stillborn={} failed_closed={} renewals={} -> {storm_path}",
        storm.survived, storm.stillborn, storm.failed_closed, storm.renewals
    );
}
