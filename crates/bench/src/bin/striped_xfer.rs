//! Striped-transfer goodput bench: fetch one seeded payload over the
//! loss × parallelism grid — drop rates {1%, 5%, 10%} × pinned stripe
//! counts {1, 2, 4, 8} — plus the adaptive AIMD controller at 5% loss,
//! and record the tick-model goodput of every cell.
//!
//! Time is simulated ticks (see `gridsec_gridftp::stripe::TickModel`),
//! so **every** figure in `BENCH_striped_xfer.json` is a pure function
//! of the seed: CI runs a reduced-scale version twice and byte-compares
//! the `--metrics-out` render. Wall time goes to stdout only. The
//! ≥1.5× striping-vs-single-stream gate lives in `perf_guard`, which
//! recomputes the same two cells through the same harness.
//!
//! Usage:
//!
//! ```text
//! striped_xfer [--seed 0x5712] [--bytes 32768] [--metrics-out FILE]
//! # reports -> $GRIDSEC_BENCH_DIR (default .)
//! # env overrides: GRIDSEC_STRIPED_SEED, GRIDSEC_STRIPED_BYTES
//! ```

use std::collections::BTreeMap;
use std::time::Instant;

use gridsec_bench::striped::{run_get_cell, seed_file, striped_payload, striped_world};
use gridsec_util::trace::MetricsSnapshot;

fn parse_u64(v: &str, what: &str) -> u64 {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).unwrap_or_else(|_| panic!("hex {what}"))
    } else {
        v.parse().unwrap_or_else(|_| panic!("decimal {what}"))
    }
}

const LOSSES_PERMILLE: [u64; 3] = [10, 50, 100];
const STRIPE_COUNTS: [u32; 4] = [1, 2, 4, 8];
const PATH: &str = "/home/jdoe/bench.dat";

/// Cell seed: isolates every (loss, stripes) cell's loss-layer and
/// controller draws. `stripes = 0` encodes the adaptive cell.
fn cell_seed(seed: u64, loss_permille: u64, stripes: u32) -> u64 {
    seed ^ (loss_permille << 32) ^ ((stripes as u64) << 16)
}

fn main() {
    let mut seed: u64 = 0x5712;
    let mut bytes: usize = 32 * 1024;
    if let Ok(v) = std::env::var("GRIDSEC_STRIPED_SEED") {
        seed = parse_u64(&v, "GRIDSEC_STRIPED_SEED");
    }
    if let Ok(v) = std::env::var("GRIDSEC_STRIPED_BYTES") {
        bytes = parse_u64(&v, "GRIDSEC_STRIPED_BYTES") as usize;
    }
    let mut metrics_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--seed" => seed = parse_u64(&take("--seed"), "seed"),
            "--bytes" => bytes = parse_u64(&take("--bytes"), "bytes") as usize,
            "--metrics-out" => metrics_out = Some(take("--metrics-out")),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let bytes = bytes.max(1024);

    let world = striped_world(format!("striped world {seed:#x}").as_bytes());
    let data = striped_payload(bytes);
    seed_file(&world, PATH, &data);

    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    counters.insert("striped.bytes".into(), bytes as u64);
    let t0 = Instant::now();

    let mut record = |label: String, loss_permille: u64, stripes: u32| {
        let drop = loss_permille as f64 / 1000.0;
        let pinned = (stripes > 0).then_some(stripes);
        let out = run_get_cell(
            &world,
            cell_seed(seed, loss_permille, stripes),
            drop,
            pinned,
            PATH,
        );
        assert_eq!(out.bytes, data, "cell {label} corrupted the payload");
        counters.insert(format!("{label}.ticks"), out.ticks);
        counters.insert(format!("{label}.goodput_bpkt"), out.goodput_bpkt);
        counters.insert(format!("{label}.tears"), out.tears as u64);
        counters.insert(format!("{label}.sessions"), out.sessions as u64);
        counters.insert(format!("{label}.peak_stripes"), out.peak_stripes as u64);
        println!(
            "striped_xfer: {label} loss={}% ticks={} goodput={}B/kt tears={} sessions={} peak={}",
            loss_permille / 10,
            out.ticks,
            out.goodput_bpkt,
            out.tears,
            out.sessions,
            out.peak_stripes,
        );
    };

    for &lp in &LOSSES_PERMILLE {
        for &s in &STRIPE_COUNTS {
            record(format!("striped.l{lp:03}.s{s}"), lp, s);
        }
    }
    record("striped.l050.adaptive".into(), 50, 0);

    let metrics = MetricsSnapshot {
        counters,
        hists: BTreeMap::new(),
    };
    if let Some(path) = &metrics_out {
        let mut render = format!("striped_xfer seed=0x{seed:x} bytes={bytes}\n");
        render.push_str(&metrics.render());
        std::fs::write(path, render).expect("write --metrics-out file");
    }
    let dir = std::env::var("GRIDSEC_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = metrics
        .write_bench_json("striped_xfer", &dir)
        .expect("write BENCH_striped_xfer.json");
    println!(
        "striped_xfer: seed=0x{seed:x} bytes={bytes} cells={} wall_ms={} -> {path}",
        LOSSES_PERMILLE.len() * STRIPE_COUNTS.len() + 1,
        t0.elapsed().as_millis(),
    );
}
