//! Crypto-storm scale bench: run `scenarios::crypto_storm` at 5×10⁵
//! principals — every one performing real per-session handshake crypto
//! against mill gateways, zero threads — and emit the storm's trace
//! metrics as `BENCH_crypto_storm.json`.
//!
//! Every metric except wall time is a pure function of the seed, so CI
//! runs a reduced-scale version twice and byte-compares the metrics
//! files plus the deterministic render (see `scripts/verify.sh`). The
//! recorded BENCH json additionally carries wall-clock throughput rows
//! (`cstorm.wall_ms`, `cstorm.established_per_sec`) — those are
//! measurements, not invariants, and stay out of the deterministic
//! render.
//!
//! Usage:
//!
//! ```text
//! crypto_storm [--seed 0xC57] [--principals 500000] [--metrics-out FILE]
//! # reports -> $GRIDSEC_BENCH_DIR (default .)
//! # env overrides: GRIDSEC_STORM_PRINCIPALS, GRIDSEC_STORM_SEED
//! ```

use gridsec_integration::scenarios::crypto_storm::{run_crypto_storm, CryptoStormOpts};

fn parse_u64(v: &str, what: &str) -> u64 {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).unwrap_or_else(|_| panic!("hex {what}"))
    } else {
        v.parse().unwrap_or_else(|_| panic!("decimal {what}"))
    }
}

fn main() {
    let mut seed: u64 = 0x0000_0C57;
    let mut principals: usize = 500_000;
    let mut metrics_out: Option<String> = None;
    if let Ok(v) = std::env::var("GRIDSEC_STORM_SEED") {
        seed = parse_u64(&v, "GRIDSEC_STORM_SEED");
    }
    if let Ok(v) = std::env::var("GRIDSEC_STORM_PRINCIPALS") {
        principals = parse_u64(&v, "GRIDSEC_STORM_PRINCIPALS") as usize;
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = parse_u64(&args.next().expect("--seed needs a value"), "seed");
            }
            "--principals" => {
                principals = parse_u64(
                    &args.next().expect("--principals needs a value"),
                    "principals",
                ) as usize;
            }
            "--metrics-out" => {
                metrics_out = Some(args.next().expect("--metrics-out needs a value"));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let dir = std::env::var("GRIDSEC_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let report = run_crypto_storm(&CryptoStormOpts::new(principals, seed));

    if let Some(path) = &metrics_out {
        std::fs::write(path, report.deterministic_render()).expect("write --metrics-out file");
    }

    // The BENCH artifact = deterministic counters + wall-clock
    // throughput rows (two-run CI compares the render, not this file).
    let mut bench = report.metrics.clone();
    bench
        .counters
        .insert("cstorm.principals".into(), report.principals as u64);
    bench.counters.insert(
        "cstorm.live_high_water".into(),
        report.sched.live_high_water,
    );
    bench
        .counters
        .insert("cstorm.wall_ms".into(), report.wall_ms as u64);
    bench.counters.insert(
        "cstorm.established_per_sec".into(),
        report.flows_per_wall_second() as u64,
    );
    bench.counters.insert(
        "cstorm.messages_per_sec".into(),
        (report.traffic.messages as u128 * 1000)
            .checked_div(report.wall_ms)
            .unwrap_or(0) as u64,
    );
    let path = bench
        .write_bench_json("crypto_storm", &dir)
        .expect("write BENCH_crypto_storm.json");

    println!(
        "crypto_storm: seed=0x{seed:016x} principals={} established={} rejected={} \
         sim_s={} msgs={} waves={} live_hw={} steps={} est/wall_s={:.1} wall_ms={} -> {path}",
        report.principals,
        report.established,
        report.rejected,
        report.sim_seconds,
        report.traffic.messages,
        report
            .metrics
            .counters
            .get("cstorm.gw.waves")
            .copied()
            .unwrap_or(0),
        report.sched.live_high_water,
        report.sched.steps,
        report.flows_per_wall_second(),
        report.wall_ms,
    );
}
