//! CI bench-smoke guard: asserts the perf claims this stack depends
//! on, offline and in seconds, exiting nonzero on regression.
//!
//! 1. **Kernel**: Montgomery-form `mod_pow` beats the classic 4-bit
//!    window reference on 512-bit RSA-sign-shaped operands.
//! 2. **Session resumption**: the abbreviated handshake beats the full
//!    asymmetric handshake.
//! 3. **Batched acceptance**: a [`HandshakeMill`] wave (pooled
//!    validator, shared verify contexts, precomp registry populated)
//!    accepts hellos at ≥2× the per-session baseline rate (fresh
//!    acceptor per hello, precomp registry cleared) — the headline
//!    claim behind `handshake_storm`.
//! 4. **Striping**: four pinned stripes finish the 32 KiB reference
//!    fetch at 5% loss in ≤2/3 the simulated ticks of a single stream
//!    (≥1.5× goodput) — the headline claim behind `striped_xfer`.
//!    Claim 4 is tick-model arithmetic, deterministic by seed.
//! 5. **Mill-batched poll establishment**: the full three-leg poll
//!    establishment (hello → ServerHello → Finished) through a
//!    [`WaveAcceptor`] wave runs the acceptor side at ≥2× the
//!    per-session baseline (fresh [`AcceptorContext`] per hello,
//!    precomp registry cleared) — the headline claim behind
//!    `crypto_storm`.
//! 6. **Storm scale**: the recorded `crypto_storm` run covers ≥5× the
//!    recorded `vo_storm` population with real per-principal handshake
//!    crypto, at a live-task high-water mark (the peak-RSS proxy) at
//!    least 20× smaller than the population — cohort admission bounds
//!    residency. Claim 6 reads the recorded artifacts; it measures the
//!    repo's evidence, not this machine.
//!
//! Claims 1–3 and 5 use median-of-N wall times on identical inputs,
//! with a safety factor so scheduler noise cannot flake CI: a real win
//! is several-fold, so requiring only `faster < slower` (or a 2× floor
//! on a ~3× win for claims 3 and 5) leaves margin.
//!
//! Every claim prints its measured ratio, its threshold, and the
//! recorded bench artifact it gates (`BENCH_*.json`), pass or fail.

use std::time::Instant;

use gridsec_bench::bench_world;
use gridsec_bench::striped::{run_get_cell, seed_file, striped_payload, striped_world};
use gridsec_bignum::modular::{mod_pow, mod_pow_classic};
use gridsec_bignum::precomp;
use gridsec_bignum::prime::random_bits;
use gridsec_bignum::BigUint;
use gridsec_crypto::rng::ChaChaRng;
use gridsec_gssapi::context::{AcceptorContext, InitiatorContext, StepResult};
use gridsec_gssapi::mill::HandshakeMill;
use gridsec_gssapi::poll::{PollInitiator, WaveAcceptor};
use gridsec_tls::handshake::{handshake_in_memory, TlsConfig};
use gridsec_tls::session::{resume_client, ClientSession, ServerSessionCache};

/// Median wall time in nanoseconds of `rounds` runs of `f`.
fn median_ns(rounds: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..rounds)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Uniform claim verdict: prints measured ratio, threshold, and the
/// recorded `BENCH_*.json` the claim gates — pass or fail — and counts
/// the failure.
fn claim(failures: &mut u32, name: &str, measured: f64, threshold: f64, bench: &str) {
    let dir = std::env::var("GRIDSEC_PERF_SOURCE_DIR")
        .unwrap_or_else(|_| "bench-results/after".to_string());
    let pass = measured >= threshold;
    println!(
        "[perf_guard] {name}: measured x{measured:.2} threshold x{threshold:.2} \
         source {dir}/BENCH_{bench}.json -> {}",
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        *failures += 1;
    }
}

fn main() {
    let mut failures = 0u32;

    // --- Claim 1: Montgomery beats classic on 512-bit sign shapes. ---
    let mut rng = ChaChaRng::from_seed_bytes(b"perf guard modexp");
    let mut modulus = random_bits(&mut rng, 512);
    if modulus.is_even() {
        modulus = modulus + BigUint::from(1u64);
    }
    let base = &random_bits(&mut rng, 512) % &modulus;
    let exp = random_bits(&mut rng, 512);
    assert_eq!(
        mod_pow(&base, &exp, &modulus),
        mod_pow_classic(&base, &exp, &modulus),
        "kernels disagree — correctness before speed"
    );
    let mont = median_ns(15, || {
        std::hint::black_box(mod_pow(&base, &exp, &modulus));
    });
    let classic = median_ns(15, || {
        std::hint::black_box(mod_pow_classic(&base, &exp, &modulus));
    });
    println!("[perf_guard] modexp 512-bit sign: montgomery {mont}ns vs classic {classic}ns");
    claim(
        &mut failures,
        "modexp-montgomery-vs-classic",
        classic as f64 / mont as f64,
        1.0,
        "k1_modexp",
    );

    // --- Claim 2: resumed handshake beats the full handshake. ---
    let mut w = bench_world(b"perf guard resume");
    let client_cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 10);
    let server_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 10);
    let (chan, _) =
        handshake_in_memory(client_cfg.clone(), server_cfg.clone(), &mut w.rng).unwrap();
    let session = ClientSession::from_channel(&chan).expect("resumption state");
    let mut sessions = ServerSessionCache::new(8, 1_000_000);
    sessions.store(&chan);

    let full = median_ns(9, || {
        std::hint::black_box(
            handshake_in_memory(client_cfg.clone(), server_cfg.clone(), &mut w.rng).unwrap(),
        );
    });
    let resumed = median_ns(9, || {
        let (resume, t1) = resume_client(session.clone(), 10, 1_000, &mut w.rng);
        let (t2, wait) = sessions.accept(&t1, 10, &mut w.rng).unwrap();
        let (t3, client_chan) = resume.step(&t2).unwrap();
        let server_chan = wait.step(&t3).unwrap();
        std::hint::black_box((client_chan, server_chan));
    });
    println!("[perf_guard] handshake: resumed {resumed}ns vs full {full}ns");
    claim(
        &mut failures,
        "handshake-resumed-vs-full",
        full as f64 / resumed as f64,
        1.0,
        "c1_establishment",
    );

    // --- Claim 3: batched wave ≥2× the per-session baseline. ---
    // One wave of hellos, accepted two ways. The baseline runs first,
    // with the precomp registry cleared, so `Montgomery::new` takes the
    // unamortized path a fresh PR-5-era acceptor would take; the mill
    // then registers its precomp and gets a warm-up wave so the timed
    // waves measure the steady state a login storm settles into.
    const WAVE: usize = 24;
    let mut w = bench_world(b"perf guard wave");
    let server_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 10);
    let hellos: Vec<Vec<u8>> = (0..WAVE)
        .map(|_| {
            let cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 10);
            InitiatorContext::new(cfg, &mut w.rng).1
        })
        .collect();
    let hello_refs: Vec<&[u8]> = hellos.iter().map(|h| h.as_slice()).collect();

    precomp::clear();
    let per_session = median_ns(7, || {
        for hello in &hello_refs {
            let mut acceptor = AcceptorContext::new(server_cfg.clone());
            std::hint::black_box(acceptor.step(&mut w.rng, hello).unwrap());
        }
    });

    let mut mill = HandshakeMill::new(server_cfg.clone());
    for r in mill.accept_wave(&mut w.rng, &hello_refs) {
        r.expect("warm-up wave accepts");
    }
    let batched = median_ns(7, || {
        for r in mill.accept_wave(&mut w.rng, &hello_refs) {
            std::hint::black_box(r.expect("timed wave accepts"));
        }
    });
    println!("[perf_guard] wave of {WAVE}: batched {batched}ns vs per-session {per_session}ns");
    claim(
        &mut failures,
        "batched-wave-vs-per-session",
        per_session as f64 / batched as f64,
        2.0,
        "handshake_storm",
    );

    // --- Claim 4: 4 stripes ≥1.5× a single stream at 5% loss. ---
    // Deterministic tick-model arithmetic through the same harness and
    // seeds as the recorded `striped_xfer` run (32 KiB, 5% drop).
    let world = striped_world(format!("striped world {:#x}", 0x5712u64).as_bytes());
    let data = striped_payload(32 * 1024);
    seed_file(&world, "/home/jdoe/bench.dat", &data);
    let cell = |stripes: u32| {
        let base = 0x5712u64 ^ (50u64 << 32) ^ ((stripes as u64) << 16);
        run_get_cell(&world, base, 0.05, Some(stripes), "/home/jdoe/bench.dat")
    };
    let single = cell(1);
    let four = cell(4);
    assert_eq!(single.bytes, data, "single-stream cell corrupted payload");
    assert_eq!(four.bytes, data, "four-stripe cell corrupted payload");
    println!(
        "[perf_guard] striped 32KiB at 5% loss: s4 {} ticks ({}B/kt) vs s1 {} ticks ({}B/kt)",
        four.ticks, four.goodput_bpkt, single.ticks, single.goodput_bpkt
    );
    claim(
        &mut failures,
        "striped-4-vs-1-at-5pct-loss",
        single.ticks as f64 / four.ticks as f64,
        1.5,
        "striped_xfer",
    );

    // --- Claim 5: mill-batched poll establishment ≥2× per-session. ---
    // Full three-leg establishment, acceptor side timed: hello wave
    // (or per-session hello step) plus Finished processing. Client-side
    // work — initiator creation and ServerHello feeding — happens off
    // the clock in both arms, so the ratio isolates the acceptor path
    // the storm gateways run. Baseline first with the precomp registry
    // cleared (the unamortized path); the WaveAcceptor then gets a
    // warm-up wave so the timed waves measure the steady state.
    const POLL_WAVE: usize = 24;
    let mut w = bench_world(b"perf guard poll wave");
    let server_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 10);
    let mk_inits = |w: &mut gridsec_bench::BenchWorld| -> Vec<(PollInitiator, Vec<u8>)> {
        (0..POLL_WAVE)
            .map(|_| {
                let cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 10);
                PollInitiator::new(cfg, &mut w.rng)
            })
            .collect()
    };

    let mut wave_acceptor = WaveAcceptor::new(server_cfg.clone());
    let run_wave = |wave_acceptor: &mut WaveAcceptor, w: &mut gridsec_bench::BenchWorld| -> u128 {
        let inits = mk_inits(w);
        let mut parked = Vec::with_capacity(POLL_WAVE);
        let t = Instant::now();
        for (id, (_, hello)) in inits.iter().enumerate() {
            wave_acceptor.submit_hello(id as u64, hello.clone());
        }
        let replies = wave_acceptor.flush_wave(&mut w.rng);
        let acceptor_ns = t.elapsed().as_nanos();
        for ((id, reply), (init, _)) in replies.into_iter().zip(inits) {
            let (finished, _ctx) = init.feed(&reply.expect("wave accepts")).unwrap();
            parked.push((id, finished));
        }
        let t = Instant::now();
        for (id, finished) in parked {
            std::hint::black_box(
                wave_acceptor
                    .submit_finished(id, &mut w.rng, &finished)
                    .expect("finished accepted"),
            );
        }
        acceptor_ns + t.elapsed().as_nanos()
    };
    run_wave(&mut wave_acceptor, &mut w); // warm-up: registers precomp
    let batched = {
        let mut times: Vec<u128> = (0..7)
            .map(|_| run_wave(&mut wave_acceptor, &mut w))
            .collect();
        times.sort_unstable();
        times[times.len() / 2]
    };
    // Baseline the same way (acceptor-side only) for a like-for-like
    // ratio: fresh acceptor per session, precomp registry cleared.
    precomp::clear();
    let per_session_acceptor = {
        let mut times: Vec<u128> = (0..7)
            .map(|_| {
                let inits = mk_inits(&mut w);
                let mut acceptor_ns = 0u128;
                for (init, hello) in inits {
                    let mut acceptor = AcceptorContext::new(server_cfg.clone());
                    let t = Instant::now();
                    let server_hello = match acceptor.step(&mut w.rng, &hello).unwrap() {
                        StepResult::ContinueWith(tok) => tok,
                        StepResult::Established { .. } => unreachable!(),
                    };
                    acceptor_ns += t.elapsed().as_nanos();
                    let (finished, _ctx) = init.feed(&server_hello).unwrap();
                    let t = Instant::now();
                    std::hint::black_box(acceptor.step(&mut w.rng, &finished).unwrap());
                    acceptor_ns += t.elapsed().as_nanos();
                }
                acceptor_ns
            })
            .collect();
        times.sort_unstable();
        times[times.len() / 2]
    };
    println!(
        "[perf_guard] poll wave of {POLL_WAVE}: batched {batched}ns vs \
         per-session {per_session_acceptor}ns (acceptor side)"
    );
    claim(
        &mut failures,
        "mill-batched-poll-vs-per-session",
        per_session_acceptor as f64 / batched as f64,
        2.0,
        "crypto_storm",
    );

    // --- Claim 6: recorded storm scale, bounded residency. ---
    // Reads the recorded artifacts: crypto_storm population ≥5× the
    // vo_storm population, and ≥20× its own live-task high-water mark.
    let dir = std::env::var("GRIDSEC_PERF_SOURCE_DIR")
        .unwrap_or_else(|_| "bench-results/after".to_string());
    let counter_from = |bench: &str, name: &str| -> Option<f64> {
        let text = std::fs::read_to_string(format!("{dir}/BENCH_{bench}.json")).ok()?;
        let needle = format!("\"name\": \"{name}\"");
        let line = text.lines().find(|l| l.contains(&needle))?;
        let value = line.split("\"value\": ").nth(1)?;
        value.trim_end_matches(['}', ',', ' ']).parse::<f64>().ok()
    };
    match (
        counter_from("crypto_storm", "cstorm.principals"),
        counter_from("vo_storm", "storm.principals"),
        counter_from("crypto_storm", "cstorm.live_high_water"),
    ) {
        (Some(cstorm), Some(vstorm), Some(live_hw)) if vstorm > 0.0 && live_hw > 0.0 => {
            println!(
                "[perf_guard] recorded storms: crypto_storm {cstorm:.0} principals, \
                 vo_storm {vstorm:.0}, crypto_storm live high-water {live_hw:.0}"
            );
            claim(
                &mut failures,
                "crypto-storm-vs-vo-storm-population",
                cstorm / vstorm,
                5.0,
                "crypto_storm",
            );
            claim(
                &mut failures,
                "crypto-storm-population-vs-live-high-water",
                cstorm / live_hw,
                20.0,
                "crypto_storm",
            );
        }
        _ => {
            eprintln!(
                "[perf_guard] storm-scale counters missing from {dir} \
                 (need BENCH_crypto_storm.json and BENCH_vo_storm.json)"
            );
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("[perf_guard] {failures} perf claim(s) regressed");
        std::process::exit(1);
    }
    println!("[perf_guard] all perf claims hold");
}
