//! CI bench-smoke guard: asserts the two amortization claims this stack
//! depends on, offline and in seconds, exiting nonzero on regression.
//!
//! 1. **Kernel**: Montgomery-form `mod_pow` beats the classic 4-bit
//!    window reference on 512-bit RSA-sign-shaped operands.
//! 2. **Session resumption**: the abbreviated handshake beats the full
//!    asymmetric handshake.
//! 3. **Batched acceptance**: a [`HandshakeMill`] wave (pooled
//!    validator, shared verify contexts, precomp registry populated)
//!    accepts hellos at ≥2× the per-session baseline rate (fresh
//!    acceptor per hello, precomp registry cleared) — the headline
//!    claim behind `handshake_storm`.
//!
//! All comparisons use median-of-N wall times on identical inputs, with
//! a safety factor so scheduler noise cannot flake CI: a real win is
//! several-fold, so requiring only `faster < slower` (or a 2× floor on
//! a ~3× win for claim 3) leaves margin.

use std::time::Instant;

use gridsec_bench::bench_world;
use gridsec_bignum::modular::{mod_pow, mod_pow_classic};
use gridsec_bignum::precomp;
use gridsec_bignum::prime::random_bits;
use gridsec_bignum::BigUint;
use gridsec_crypto::rng::ChaChaRng;
use gridsec_gssapi::context::{AcceptorContext, InitiatorContext};
use gridsec_gssapi::mill::HandshakeMill;
use gridsec_tls::handshake::{handshake_in_memory, TlsConfig};
use gridsec_tls::session::{resume_client, ClientSession, ServerSessionCache};

/// Median wall time in nanoseconds of `rounds` runs of `f`.
fn median_ns(rounds: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..rounds)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let mut failures = 0u32;

    // --- Claim 1: Montgomery beats classic on 512-bit sign shapes. ---
    let mut rng = ChaChaRng::from_seed_bytes(b"perf guard modexp");
    let mut modulus = random_bits(&mut rng, 512);
    if modulus.is_even() {
        modulus = modulus + BigUint::from(1u64);
    }
    let base = &random_bits(&mut rng, 512) % &modulus;
    let exp = random_bits(&mut rng, 512);
    assert_eq!(
        mod_pow(&base, &exp, &modulus),
        mod_pow_classic(&base, &exp, &modulus),
        "kernels disagree — correctness before speed"
    );
    let mont = median_ns(15, || {
        std::hint::black_box(mod_pow(&base, &exp, &modulus));
    });
    let classic = median_ns(15, || {
        std::hint::black_box(mod_pow_classic(&base, &exp, &modulus));
    });
    println!(
        "[perf_guard] modexp 512-bit sign: montgomery {mont}ns vs classic {classic}ns (x{:.2})",
        classic as f64 / mont as f64
    );
    if mont >= classic {
        eprintln!("[perf_guard] FAIL: Montgomery modexp no faster than classic");
        failures += 1;
    }

    // --- Claim 2: resumed handshake beats the full handshake. ---
    let mut w = bench_world(b"perf guard resume");
    let client_cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 10);
    let server_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 10);
    let (chan, _) =
        handshake_in_memory(client_cfg.clone(), server_cfg.clone(), &mut w.rng).unwrap();
    let session = ClientSession::from_channel(&chan).expect("resumption state");
    let mut sessions = ServerSessionCache::new(8, 1_000_000);
    sessions.store(&chan);

    let full = median_ns(9, || {
        std::hint::black_box(
            handshake_in_memory(client_cfg.clone(), server_cfg.clone(), &mut w.rng).unwrap(),
        );
    });
    let resumed = median_ns(9, || {
        let (resume, t1) = resume_client(session.clone(), 10, 1_000, &mut w.rng);
        let (t2, wait) = sessions.accept(&t1, 10, &mut w.rng).unwrap();
        let (t3, client_chan) = resume.step(&t2).unwrap();
        let server_chan = wait.step(&t3).unwrap();
        std::hint::black_box((client_chan, server_chan));
    });
    println!(
        "[perf_guard] handshake: resumed {resumed}ns vs full {full}ns (x{:.2})",
        full as f64 / resumed as f64
    );
    if resumed >= full {
        eprintln!("[perf_guard] FAIL: resumed handshake no faster than full");
        failures += 1;
    }

    // --- Claim 3: batched wave ≥2× the per-session baseline. ---
    // One wave of hellos, accepted two ways. The baseline runs first,
    // with the precomp registry cleared, so `Montgomery::new` takes the
    // unamortized path a fresh PR-5-era acceptor would take; the mill
    // then registers its precomp and gets a warm-up wave so the timed
    // waves measure the steady state a login storm settles into.
    const WAVE: usize = 24;
    let mut w = bench_world(b"perf guard wave");
    let server_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 10);
    let hellos: Vec<Vec<u8>> = (0..WAVE)
        .map(|_| {
            let cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 10);
            InitiatorContext::new(cfg, &mut w.rng).1
        })
        .collect();
    let hello_refs: Vec<&[u8]> = hellos.iter().map(|h| h.as_slice()).collect();

    precomp::clear();
    let per_session = median_ns(7, || {
        for hello in &hello_refs {
            let mut acceptor = AcceptorContext::new(server_cfg.clone());
            std::hint::black_box(acceptor.step(&mut w.rng, hello).unwrap());
        }
    });

    let mut mill = HandshakeMill::new(server_cfg.clone());
    for r in mill.accept_wave(&mut w.rng, &hello_refs) {
        r.expect("warm-up wave accepts");
    }
    let batched = median_ns(7, || {
        for r in mill.accept_wave(&mut w.rng, &hello_refs) {
            std::hint::black_box(r.expect("timed wave accepts"));
        }
    });
    println!(
        "[perf_guard] wave of {WAVE}: batched {batched}ns vs per-session {per_session}ns (x{:.2})",
        per_session as f64 / batched as f64
    );
    if batched.saturating_mul(2) > per_session {
        eprintln!("[perf_guard] FAIL: batched wave under 2x the per-session baseline");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("[perf_guard] {failures} perf claim(s) regressed");
        std::process::exit(1);
    }
    println!("[perf_guard] all perf claims hold");
}
