//! CI bench-smoke guard: asserts the two amortization claims this stack
//! depends on, offline and in seconds, exiting nonzero on regression.
//!
//! 1. **Kernel**: Montgomery-form `mod_pow` beats the classic 4-bit
//!    window reference on 512-bit RSA-sign-shaped operands.
//! 2. **Session resumption**: the abbreviated handshake beats the full
//!    asymmetric handshake.
//!
//! Both comparisons use median-of-N wall times on identical inputs, with
//! a safety factor so scheduler noise cannot flake CI: a real win is
//! several-fold, so requiring only `faster < slower` leaves margin.

use std::time::Instant;

use gridsec_bench::bench_world;
use gridsec_bignum::modular::{mod_pow, mod_pow_classic};
use gridsec_bignum::prime::random_bits;
use gridsec_bignum::BigUint;
use gridsec_crypto::rng::ChaChaRng;
use gridsec_tls::handshake::{handshake_in_memory, TlsConfig};
use gridsec_tls::session::{resume_client, ClientSession, ServerSessionCache};

/// Median wall time in nanoseconds of `rounds` runs of `f`.
fn median_ns(rounds: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..rounds)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let mut failures = 0u32;

    // --- Claim 1: Montgomery beats classic on 512-bit sign shapes. ---
    let mut rng = ChaChaRng::from_seed_bytes(b"perf guard modexp");
    let mut modulus = random_bits(&mut rng, 512);
    if modulus.is_even() {
        modulus = modulus + BigUint::from(1u64);
    }
    let base = &random_bits(&mut rng, 512) % &modulus;
    let exp = random_bits(&mut rng, 512);
    assert_eq!(
        mod_pow(&base, &exp, &modulus),
        mod_pow_classic(&base, &exp, &modulus),
        "kernels disagree — correctness before speed"
    );
    let mont = median_ns(15, || {
        std::hint::black_box(mod_pow(&base, &exp, &modulus));
    });
    let classic = median_ns(15, || {
        std::hint::black_box(mod_pow_classic(&base, &exp, &modulus));
    });
    println!(
        "[perf_guard] modexp 512-bit sign: montgomery {mont}ns vs classic {classic}ns (x{:.2})",
        classic as f64 / mont as f64
    );
    if mont >= classic {
        eprintln!("[perf_guard] FAIL: Montgomery modexp no faster than classic");
        failures += 1;
    }

    // --- Claim 2: resumed handshake beats the full handshake. ---
    let mut w = bench_world(b"perf guard resume");
    let client_cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 10);
    let server_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 10);
    let (chan, _) =
        handshake_in_memory(client_cfg.clone(), server_cfg.clone(), &mut w.rng).unwrap();
    let session = ClientSession::from_channel(&chan).expect("resumption state");
    let mut sessions = ServerSessionCache::new(8, 1_000_000);
    sessions.store(&chan);

    let full = median_ns(9, || {
        std::hint::black_box(
            handshake_in_memory(client_cfg.clone(), server_cfg.clone(), &mut w.rng).unwrap(),
        );
    });
    let resumed = median_ns(9, || {
        let (resume, t1) = resume_client(session.clone(), 10, 1_000, &mut w.rng);
        let (t2, wait) = sessions.accept(&t1, 10, &mut w.rng).unwrap();
        let (t3, client_chan) = resume.step(&t2).unwrap();
        let server_chan = wait.step(&t3).unwrap();
        std::hint::black_box((client_chan, server_chan));
    });
    println!(
        "[perf_guard] handshake: resumed {resumed}ns vs full {full}ns (x{:.2})",
        full as f64 / resumed as f64
    );
    if resumed >= full {
        eprintln!("[perf_guard] FAIL: resumed handshake no faster than full");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("[perf_guard] {failures} perf claim(s) regressed");
        std::process::exit(1);
    }
    println!("[perf_guard] all perf claims hold");
}
