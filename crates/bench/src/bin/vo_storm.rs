//! VO-storm scale bench: run `scenarios::vo_storm` at 10⁵ principals
//! (one scheduled task each, zero threads) and emit the storm's trace
//! metrics as `BENCH_vo_storm.json`.
//!
//! Every metric except wall time is a pure function of the seed, so CI
//! runs a reduced-scale version twice and byte-compares the metrics
//! files plus the deterministic render (see `scripts/verify.sh`).
//!
//! Usage:
//!
//! ```text
//! vo_storm [--seed 0x570A11] [--principals 100000] [--metrics-out FILE]
//! # reports -> $GRIDSEC_BENCH_DIR (default .)
//! # env overrides: GRIDSEC_STORM_PRINCIPALS, GRIDSEC_STORM_SEED
//! ```
//!
//! `--metrics-out FILE` additionally writes the deterministic render
//! (report header + metrics, no wall time) to FILE — the artifact the
//! CI two-run gate compares.

use gridsec_integration::scenarios::vo_storm::{run_vo_storm, StormOpts};

fn parse_u64(v: &str, what: &str) -> u64 {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).unwrap_or_else(|_| panic!("hex {what}"))
    } else {
        v.parse().unwrap_or_else(|_| panic!("decimal {what}"))
    }
}

fn main() {
    let mut seed: u64 = 0x0057_0A11;
    let mut principals: usize = 100_000;
    let mut metrics_out: Option<String> = None;
    if let Ok(v) = std::env::var("GRIDSEC_STORM_SEED") {
        seed = parse_u64(&v, "GRIDSEC_STORM_SEED");
    }
    if let Ok(v) = std::env::var("GRIDSEC_STORM_PRINCIPALS") {
        principals = parse_u64(&v, "GRIDSEC_STORM_PRINCIPALS") as usize;
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = parse_u64(&args.next().expect("--seed needs a value"), "seed");
            }
            "--principals" => {
                principals = parse_u64(
                    &args.next().expect("--principals needs a value"),
                    "principals",
                ) as usize;
            }
            "--metrics-out" => {
                metrics_out = Some(args.next().expect("--metrics-out needs a value"));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let dir = std::env::var("GRIDSEC_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let report = run_vo_storm(&StormOpts::new(principals, seed));

    if let Some(path) = &metrics_out {
        std::fs::write(path, report.deterministic_render()).expect("write --metrics-out file");
    }
    let path = report
        .metrics
        .write_bench_json("vo_storm", &dir)
        .expect("write BENCH_vo_storm.json");

    println!(
        "vo_storm: seed=0x{seed:016x} principals={} completed={} failed={} \
         sim_s={} msgs={} retx={} steps={} flows/sim_s={:.1} wall_ms={} -> {path}",
        report.principals,
        report.completed,
        report.failed,
        report.sim_seconds,
        report.traffic.messages,
        report
            .metrics
            .counters
            .get("storm.retransmissions")
            .copied()
            .unwrap_or(0),
        report.sched.steps,
        report.flows_per_sim_second(),
        report.wall_ms,
    );
}
