//! Handshake-storm scale bench: drive a portal login wave — ~10k
//! sessions from a modest set of distinct clients — through the
//! batched, precomputed acceptor path ([`HandshakeMill`]) and through
//! the per-session PR-5 baseline (fresh [`AcceptorContext`] per hello,
//! precomp registry cleared), and report both rates.
//!
//! Every metric except the wall-time figures is a pure function of the
//! seed and the scale parameters, so CI runs a reduced-scale version
//! twice and byte-compares the `--metrics-out` render plus
//! `BENCH_handshake_storm.json` (see `scripts/verify.sh`). Wall times
//! and the speedup ratio go to stdout only; the ≥2× perf gate lives in
//! `perf_guard`, which medians over repeated waves.
//!
//! Usage:
//!
//! ```text
//! handshake_storm [--seed 0x4A5D] [--sessions 10000] [--clients 64]
//!                 [--wave 256] [--baseline-sessions 1000]
//!                 [--metrics-out FILE]
//! # reports -> $GRIDSEC_BENCH_DIR (default .)
//! # env overrides: GRIDSEC_STORM_SESSIONS, GRIDSEC_STORM_SEED
//! ```

use std::collections::BTreeMap;
use std::time::Instant;

use gridsec_bench::{dn, KEY_BITS};
use gridsec_bignum::precomp;
use gridsec_crypto::rng::ChaChaRng;
use gridsec_gssapi::context::{AcceptorContext, InitiatorContext, StepResult};
use gridsec_gssapi::mill::HandshakeMill;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::credential::Credential;
use gridsec_pki::store::TrustStore;
use gridsec_tls::handshake::TlsConfig;
use gridsec_util::trace::MetricsSnapshot;

fn parse_u64(v: &str, what: &str) -> u64 {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).unwrap_or_else(|_| panic!("hex {what}"))
    } else {
        v.parse().unwrap_or_else(|_| panic!("decimal {what}"))
    }
}

struct StormOpts {
    seed: u64,
    sessions: usize,
    clients: usize,
    wave: usize,
    baseline_sessions: usize,
}

struct StormWorld {
    trust: TrustStore,
    users: Vec<Credential>,
    service: Credential,
}

fn build_world(opts: &StormOpts) -> StormWorld {
    let mut rng = ChaChaRng::from_seed_bytes(format!("storm world {:#x}", opts.seed).as_bytes());
    let ca = CertificateAuthority::create_root(
        &mut rng,
        dn("/O=Storm/CN=CA"),
        KEY_BITS,
        0,
        u64::MAX / 2,
    );
    let users = (0..opts.clients)
        .map(|i| {
            ca.issue_identity(
                &mut rng,
                dn(&format!("/O=Storm/CN=User{i}")),
                KEY_BITS,
                0,
                u64::MAX / 4,
            )
        })
        .collect();
    let service = ca.issue_identity(
        &mut rng,
        dn("/O=Storm/CN=Portal"),
        KEY_BITS,
        0,
        u64::MAX / 4,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    StormWorld {
        trust,
        users,
        service,
    }
}

/// Generate `n` session openers: each is a fresh ClientHello from one
/// of the distinct clients, round-robin — plus its initiator so the
/// session can be completed. Every 97th "session" is a garbage token
/// (a client that speaks the wrong protocol), exercising the
/// rejection path deterministically.
fn make_hellos(
    world: &StormWorld,
    rng: &mut ChaChaRng,
    n: usize,
) -> Vec<(Option<InitiatorContext>, Vec<u8>)> {
    (0..n)
        .map(|i| {
            if i % 97 == 96 {
                (None, format!("not a hello {i}").into_bytes())
            } else {
                let user = &world.users[i % world.users.len()];
                let cfg = TlsConfig::new(user.clone(), world.trust.clone(), 100);
                let (init, hello) = InitiatorContext::new(cfg, rng);
                (Some(init), hello)
            }
        })
        .collect()
}

fn main() {
    let mut opts = StormOpts {
        seed: 0x4A5D,
        sessions: 10_000,
        clients: 64,
        wave: 256,
        baseline_sessions: 1_000,
    };
    if let Ok(v) = std::env::var("GRIDSEC_STORM_SEED") {
        opts.seed = parse_u64(&v, "GRIDSEC_STORM_SEED");
    }
    if let Ok(v) = std::env::var("GRIDSEC_STORM_SESSIONS") {
        opts.sessions = parse_u64(&v, "GRIDSEC_STORM_SESSIONS") as usize;
    }
    let mut metrics_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = parse_u64(&take("--seed"), "seed"),
            "--sessions" => opts.sessions = parse_u64(&take("--sessions"), "sessions") as usize,
            "--clients" => opts.clients = parse_u64(&take("--clients"), "clients") as usize,
            "--wave" => opts.wave = parse_u64(&take("--wave"), "wave") as usize,
            "--baseline-sessions" => {
                opts.baseline_sessions =
                    parse_u64(&take("--baseline-sessions"), "baseline sessions") as usize;
            }
            "--metrics-out" => metrics_out = Some(take("--metrics-out")),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    opts.clients = opts.clients.max(1);
    opts.wave = opts.wave.max(1);
    opts.baseline_sessions = opts.baseline_sessions.min(opts.sessions).max(1);

    let world = build_world(&opts);

    // ---- Baseline: per-session acceptor, no pool, no precomp --------
    // PR-5 shape: every hello gets a fresh AcceptorContext with a plain
    // config; the precomp registry is cleared so `Montgomery::new` runs
    // the unamortized path.
    precomp::clear();
    let mut rng = ChaChaRng::from_seed_bytes(format!("storm baseline {:#x}", opts.seed).as_bytes());
    let mut baseline_hellos = make_hellos(&world, &mut rng, opts.baseline_sessions);
    let plain_cfg = TlsConfig::new(world.service.clone(), world.trust.clone(), 100);
    let mut baseline_accepted = 0u64;
    let mut baseline_rejected = 0u64;
    let t0 = Instant::now();
    for (_init, hello) in &baseline_hellos {
        let mut acceptor = AcceptorContext::new(plain_cfg.clone());
        match acceptor.step(&mut rng, hello) {
            Ok(_) => baseline_accepted += 1,
            Err(_) => baseline_rejected += 1,
        }
    }
    let baseline_ns = t0.elapsed().as_nanos().max(1);
    baseline_hellos.clear();

    // ---- Storm: batched waves through the mill ----------------------
    let mut rng = ChaChaRng::from_seed_bytes(format!("storm batch {:#x}", opts.seed).as_bytes());
    let mut mill = HandshakeMill::new(TlsConfig::new(
        world.service.clone(),
        world.trust.clone(),
        100,
    ));
    let mut sessions = make_hellos(&world, &mut rng, opts.sessions);
    let mut completed = 0u64;
    let mut batch_ns = 0u128;
    let mut waves = 0u64;
    for chunk in sessions.chunks_mut(opts.wave) {
        waves += 1;
        let hello_refs: Vec<&[u8]> = chunk.iter().map(|(_, h)| h.as_slice()).collect();
        let t0 = Instant::now();
        let wave = mill.accept_wave(&mut rng, &hello_refs);
        batch_ns += t0.elapsed().as_nanos();
        // Outside the timed region: complete the first good session of
        // the wave end-to-end to prove the contexts actually work.
        for ((init, _), accepted) in chunk.iter_mut().zip(wave) {
            let (Some(init), Ok((server_hello, mut acceptor))) = (init.as_mut(), accepted) else {
                continue;
            };
            let StepResult::Established {
                token: Some(finished),
                context: mut ictx,
            } = init.step(&server_hello).expect("initiator finishes")
            else {
                panic!("initiator should establish on ServerHello");
            };
            let StepResult::Established {
                context: mut actx, ..
            } = acceptor
                .step(&mut rng, &finished)
                .expect("acceptor finishes")
            else {
                panic!("acceptor should establish on Finished");
            };
            let sealed = ictx.wrap(b"login");
            assert_eq!(actx.unwrap(&sealed).expect("unwrap"), b"login");
            completed += 1;
            break;
        }
    }
    let batch_ns = batch_ns.max(1);

    // ---- Report ------------------------------------------------------
    let pool = mill.pool();
    let pool = pool.lock().expect("pool lock");
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    counters.insert("storm.sessions".into(), opts.sessions as u64);
    counters.insert("storm.clients".into(), opts.clients as u64);
    counters.insert("storm.wave_size".into(), opts.wave as u64);
    counters.insert("storm.waves".into(), waves);
    counters.insert("storm.accepted".into(), mill.accepted());
    counters.insert("storm.rejected".into(), mill.rejected());
    counters.insert("storm.completed".into(), completed);
    counters.insert("storm.validator_hits".into(), pool.validator().hits());
    counters.insert("storm.validator_misses".into(), pool.validator().misses());
    counters.insert(
        "storm.precomputed_issuer_keys".into(),
        pool.validator().precomputed_keys() as u64,
    );
    counters.insert("storm.binding_hits".into(), pool.binding_hits());
    counters.insert("storm.binding_misses".into(), pool.binding_misses());
    counters.insert("baseline.sessions".into(), opts.baseline_sessions as u64);
    counters.insert("baseline.accepted".into(), baseline_accepted);
    counters.insert("baseline.rejected".into(), baseline_rejected);
    let metrics = MetricsSnapshot {
        counters,
        hists: BTreeMap::new(),
    };

    if let Some(path) = &metrics_out {
        let mut render = format!(
            "handshake_storm seed=0x{:x} sessions={} clients={} wave={} baseline={}\n",
            opts.seed, opts.sessions, opts.clients, opts.wave, opts.baseline_sessions
        );
        render.push_str(&metrics.render());
        std::fs::write(path, render).expect("write --metrics-out file");
    }
    let dir = std::env::var("GRIDSEC_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = metrics
        .write_bench_json("handshake_storm", &dir)
        .expect("write BENCH_handshake_storm.json");

    let batch_rate = mill.accepted() as f64 * 1e9 / batch_ns as f64;
    let baseline_rate = baseline_accepted as f64 * 1e9 / baseline_ns as f64;
    println!(
        "handshake_storm: seed=0x{:x} sessions={} clients={} wave={} \
         accepted={} rejected={} completed={} \
         batch={:.1}/s baseline={:.1}/s speedup=x{:.2} \
         batch_ms={} baseline_ms={} -> {path}",
        opts.seed,
        opts.sessions,
        opts.clients,
        opts.wave,
        mill.accepted(),
        mill.rejected(),
        completed,
        batch_rate,
        baseline_rate,
        batch_rate / baseline_rate,
        batch_ns / 1_000_000,
        baseline_ns / 1_000_000,
    );
}
