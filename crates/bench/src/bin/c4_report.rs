//! Experiment C4: print the least-privilege accounting table
//! (paper §5.2). Run with `cargo run --release -p gridsec-bench --bin c4_report`.

fn main() {
    let data = gridsec_bench::least_privilege::collect();
    print!("{}", gridsec_bench::least_privilege::render(&data));
}
