//! Experiment C4: least-privilege accounting and fault injection
//! (paper §5.2). This is a counting experiment, not a timing one; the
//! `c4_report` binary prints the table recorded in `EXPERIMENTS.md`.

use gridsec_authz::gridmap::GridMapFile;
use gridsec_gram::gt2::Gt2Gatekeeper;
use gridsec_gram::resource::{GramConfig, GramResource};
use gridsec_gram::types::JobDescription;
use gridsec_gram::Requestor;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::faults::{compromise, CompromiseReport};
use gridsec_testbed::os::SimOs;

use crate::{bench_world, BenchWorld, KEY_BITS};

/// One row of the C4 table.
#[derive(Clone, Debug)]
pub struct ComponentRow {
    /// Architecture (`"GT2"` / `"GT3"`).
    pub architecture: &'static str,
    /// Component name.
    pub component: String,
    /// Was the process privileged while running?
    pub privileged: bool,
    /// Does it accept network input?
    pub network_facing: bool,
    /// Is it a long-running service (vs. a one-shot setuid program)?
    pub long_running: bool,
    /// Blast radius if compromised.
    pub compromise: CompromiseReport,
}

/// The complete C4 dataset: both architectures after identical workloads.
pub struct LeastPrivilegeData {
    /// Per-component rows.
    pub rows: Vec<ComponentRow>,
    /// GT3: count of privileged network-facing services.
    pub gt3_privileged_network: usize,
    /// GT2: count of privileged network-facing services.
    pub gt2_privileged_network: usize,
}

/// Run the C4 workload (2 users × 2 jobs on each architecture) and
/// collect the accounting.
pub fn collect() -> LeastPrivilegeData {
    let mut w: BenchWorld = bench_world(b"c4 least privilege");
    let clock = SimClock::starting_at(100);
    let gridmap = GridMapFile::parse("\"/O=B/CN=User\" u1\n\"/O=B/CN=User2\" u2\n").unwrap();
    let user2 = w.ca.issue_identity(
        &mut w.rng,
        crate::dn("/O=B/CN=User2"),
        KEY_BITS,
        0,
        u64::MAX / 4,
    );

    // ---- GT3 workload.
    let mut gt3 = GramResource::install(
        SimOs::new(),
        clock.clone(),
        "gt3host",
        w.trust.clone(),
        w.host.clone(),
        &gridmap,
        GramConfig::default(),
    )
    .unwrap();
    let mut r1 = Requestor::new(w.user.clone(), w.trust.clone(), b"c4 r1");
    let mut r2 = Requestor::new(user2.clone(), w.trust.clone(), b"c4 r2");
    for _ in 0..2 {
        r1.submit_job(&mut gt3, &JobDescription::new("/bin/x"), clock.now())
            .unwrap();
        r2.submit_job(&mut gt3, &JobDescription::new("/bin/y"), clock.now())
            .unwrap();
    }

    // ---- GT2 workload.
    let mut gt2 = Gt2Gatekeeper::install(
        SimOs::new(),
        clock.clone(),
        "gt2host",
        w.trust.clone(),
        w.host.clone(),
        &gridmap,
    )
    .unwrap();
    for _ in 0..2 {
        gt2.submit(&w.user, &JobDescription::new("/bin/x")).unwrap();
        gt2.submit(&user2, &JobDescription::new("/bin/y")).unwrap();
    }

    // ---- Accounting rows: every live process + the (now dead) setuid
    // programs, compromised one at a time.
    let mut rows = Vec::new();
    for p in gt3.os().processes("gt3host").unwrap() {
        let report = compromise(gt3.os(), "gt3host", p.pid).unwrap();
        rows.push(ComponentRow {
            architecture: "GT3",
            component: p.name.clone(),
            privileged: p.is_privileged(),
            network_facing: p.network_facing,
            long_running: !p.via_setuid_binary,
            compromise: report,
        });
    }
    for p in gt2.os().processes("gt2host").unwrap() {
        let report = compromise(gt2.os(), "gt2host", p.pid).unwrap();
        rows.push(ComponentRow {
            architecture: "GT2",
            component: p.name.clone(),
            privileged: p.is_privileged(),
            network_facing: p.network_facing,
            long_running: !p.via_setuid_binary,
            compromise: report,
        });
    }

    LeastPrivilegeData {
        gt3_privileged_network: gt3.os().privileged_network_facing("gt3host").unwrap().len(),
        gt2_privileged_network: gt2.os().privileged_network_facing("gt2host").unwrap().len(),
        rows,
    }
}

/// Render the report table as text.
pub fn render(data: &LeastPrivilegeData) -> String {
    let mut out = String::new();
    out.push_str("Experiment C4 — least-privilege accounting (paper §5.2)\n");
    out.push_str("========================================================\n\n");
    out.push_str(&format!(
        "privileged network-facing services:  GT2 = {}   GT3 = {}\n\n",
        data.gt2_privileged_network, data.gt3_privileged_network
    ));
    out.push_str(&format!(
        "{:<4} {:<22} {:>4} {:>4} {:>5} {:>6} {:>5}\n",
        "arch", "component", "priv", "net", "blast", "creds", "accts"
    ));
    out.push_str(&format!("{}\n", "-".repeat(58)));
    let mut rows = data.rows.clone();
    rows.sort_by(|a, b| {
        (a.architecture, b.compromise.blast_radius())
            .cmp(&(b.architecture, a.compromise.blast_radius()))
    });
    for r in &rows {
        out.push_str(&format!(
            "{:<4} {:<22} {:>4} {:>4} {:>5} {:>6} {:>5}{}\n",
            r.architecture,
            r.component,
            if r.privileged { "YES" } else { "no" },
            if r.network_facing { "YES" } else { "no" },
            r.compromise.blast_radius(),
            r.compromise.credentials_exposed.len(),
            r.compromise.accounts_reachable.len(),
            if r.compromise.full_host_compromise {
                "  << FULL HOST"
            } else {
                ""
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c4_shape_holds() {
        let data = collect();
        assert_eq!(data.gt3_privileged_network, 0);
        assert_eq!(data.gt2_privileged_network, 1);
        // The worst GT2 component is strictly worse than the worst GT3 one.
        let worst = |arch: &str| {
            data.rows
                .iter()
                .filter(|r| r.architecture == arch)
                .map(|r| r.compromise.blast_radius())
                .max()
                .unwrap()
        };
        assert!(worst("GT2") > worst("GT3"));
        // No GT3 component is both privileged and network facing.
        assert!(data
            .rows
            .iter()
            .filter(|r| r.architecture == "GT3")
            .all(|r| !(r.privileged && r.network_facing)));
        // Render runs.
        let text = render(&data);
        assert!(text.contains("FULL HOST"));
    }
}
