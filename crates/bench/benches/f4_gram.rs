//! Experiment F4 (Figure 4): GT3 GRAM job initiation — cold path (MMJFS
//! → Setuid Starter → GRIM → LMJFS) vs. warm path (resident LMJFS) vs.
//! the GT2 gatekeeper baseline.
//!
//! Expected shape: cold ≫ warm (the cold path pays two setuid program
//! executions and a GRIM key generation); GT2 sits near the warm path in
//! latency — its problem is privilege, not speed (see c4_report).

use gridsec_authz::gridmap::GridMapFile;
use gridsec_bench::{bench_world, KEY_BITS};
use gridsec_gram::gt2::Gt2Gatekeeper;
use gridsec_gram::resource::{GramConfig, GramResource};
use gridsec_gram::types::JobDescription;
use gridsec_gram::Requestor;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::os::SimOs;
use gridsec_util::bench::{criterion_group, criterion_main, Criterion};

fn gram_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_gram");
    group.sample_size(10);
    let w = bench_world(b"f4 gram");
    let clock = SimClock::starting_at(100);
    let gridmap = GridMapFile::parse("\"/O=B/CN=User\" u1\n").unwrap();
    let config = GramConfig {
        key_bits: KEY_BITS,
        ..GramConfig::default()
    };

    // Cold path: fresh resource each iteration (first job of a user).
    group.bench_function("cold_submission", |b| {
        let mut requestor = Requestor::new(w.user.clone(), w.trust.clone(), b"f4 cold");
        b.iter_batched(
            || {
                GramResource::install(
                    SimOs::new(),
                    clock.clone(),
                    "node",
                    w.trust.clone(),
                    w.host.clone(),
                    &gridmap,
                    config.clone(),
                )
                .unwrap()
            },
            |mut resource| {
                requestor
                    .submit_job(&mut resource, &JobDescription::new("/bin/x"), clock.now())
                    .unwrap()
            },
            gridsec_util::bench::BatchSize::SmallInput,
        )
    });

    // Warm path: LMJFS resident after a priming job.
    let mut resource = GramResource::install(
        SimOs::new(),
        clock.clone(),
        "node",
        w.trust.clone(),
        w.host.clone(),
        &gridmap,
        config.clone(),
    )
    .unwrap();
    let mut requestor = Requestor::new(w.user.clone(), w.trust.clone(), b"f4 warm");
    requestor
        .submit_job(
            &mut resource,
            &JobDescription::new("/bin/prime"),
            clock.now(),
        )
        .unwrap();
    group.bench_function("warm_submission", |b| {
        b.iter(|| {
            requestor
                .submit_job(&mut resource, &JobDescription::new("/bin/x"), clock.now())
                .unwrap()
        })
    });

    // Steps 1–6 only (no step-7 connect): the signed-request fast half.
    // This isolates the cold-path overhead — Setuid Starter + GRIM key
    // generation — from the delegation keygen both paths pay in step 7.
    group.bench_function("warm_steps_1_to_6_only", |b| {
        b.iter(|| {
            let signed = requestor.signed_request(&JobDescription::new("/bin/x"), clock.now());
            resource.submit(&signed).unwrap()
        })
    });
    group.bench_function("cold_steps_1_to_6_only", |b| {
        b.iter_batched(
            || {
                let r = GramResource::install(
                    SimOs::new(),
                    clock.clone(),
                    "node",
                    w.trust.clone(),
                    w.host.clone(),
                    &gridmap,
                    config.clone(),
                )
                .unwrap();
                let signed = requestor.signed_request(&JobDescription::new("/bin/x"), clock.now());
                (r, signed)
            },
            |(mut r, signed)| r.submit(&signed).unwrap(),
            gridsec_util::bench::BatchSize::SmallInput,
        )
    });

    // GT2 baseline.
    let mut gatekeeper = Gt2Gatekeeper::install(
        SimOs::new(),
        clock.clone(),
        "gt2node",
        w.trust.clone(),
        w.host.clone(),
        &gridmap,
    )
    .unwrap();
    group.bench_function("gt2_gatekeeper_submission", |b| {
        b.iter(|| {
            gatekeeper
                .submit(&w.user, &JobDescription::new("/bin/x"))
                .unwrap()
        })
    });
    group.finish();

    // Cold/warm factor (printed once; recorded in EXPERIMENTS.md).
    let stats = resource.stats;
    println!(
        "\n[f4] resource stats after bench: {} jobs, {} cold, {} warm",
        stats.jobs_submitted, stats.cold_starts, stats.warm_starts
    );
}

criterion_group!(benches, gram_paths);
criterion_main!(benches);
