//! Kernel benchmark: the Montgomery-form modexp dispatched by
//! [`gridsec_bignum::modular::mod_pow`] against the classic 4-bit-window
//! reference it replaced, on RSA-sign-shaped operands (full-width
//! exponent, odd modulus) plus the short-exponent verify shape.
//!
//! `perf_guard` re-times the 512-bit sign shape with `Instant` and fails
//! CI if Montgomery ever regresses below classic; this bench records the
//! same comparison (and the 1024-bit point) in `BENCH_k1_modexp.json`
//! for EXPERIMENTS.md.

use gridsec_bignum::modular::{mod_pow, mod_pow_classic};
use gridsec_bignum::prime::random_bits;
use gridsec_bignum::BigUint;
use gridsec_crypto::rng::ChaChaRng;
use gridsec_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// RSA-sign-shaped operands: odd modulus, full-width base and exponent.
fn sign_shape(rng: &mut ChaChaRng, bits: usize) -> (BigUint, BigUint, BigUint) {
    let mut modulus = random_bits(rng, bits);
    if modulus.is_even() {
        modulus = modulus + BigUint::from(1u64);
    }
    let base = &random_bits(rng, bits) % &modulus;
    let exp = random_bits(rng, bits);
    (base, exp, modulus)
}

fn modexp(c: &mut Criterion) {
    let mut group = c.benchmark_group("k1_modexp");
    group.sample_size(10);
    let mut rng = ChaChaRng::from_seed_bytes(b"k1 modexp");

    for bits in [512usize, 1024] {
        let (base, exp, modulus) = sign_shape(&mut rng, bits);
        group.bench_with_input(BenchmarkId::new("montgomery_sign", bits), &(), |b, ()| {
            b.iter(|| mod_pow(&base, &exp, &modulus))
        });
        group.bench_with_input(BenchmarkId::new("classic_sign", bits), &(), |b, ()| {
            b.iter(|| mod_pow_classic(&base, &exp, &modulus))
        });
    }

    // RSA verify: e = 65537 — the short-exponent fast path.
    let (base, _, modulus) = sign_shape(&mut rng, 512);
    let e = BigUint::from(65_537u64);
    group.bench_function("montgomery_verify_e65537/512", |b| {
        b.iter(|| mod_pow(&base, &e, &modulus))
    });
    group.bench_function("classic_verify_e65537/512", |b| {
        b.iter(|| mod_pow_classic(&base, &e, &modulus))
    });
    group.finish();
}

criterion_group!(benches, modexp);
criterion_main!(benches);
