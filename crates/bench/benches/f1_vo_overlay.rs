//! Experiment F1 (Figure 1): building a VO policy-domain overlay over D
//! classical domains, and the unilateral-vs-bilateral trust-establishment
//! scaling argument of §3.
//!
//! Expected shape: overlay formation cost grows with D (quadratically in
//! trust-store insertions), but every act is unilateral; the Kerberos
//! alternative needs D(D−1)/2 *coordinated* agreements, which is the
//! organizational cost the paper argues against.

use gridsec_crypto::rng::ChaChaRng;
use gridsec_gsi::vo::{create_domain, form_vo, kerberos_bilateral_agreements};
use gridsec_pki::validate::validate_chain;
use gridsec_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn overlay_formation(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_overlay_formation");
    group.sample_size(10);

    for d in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("form_vo_domains", d), &d, |b, &d| {
            // Domains (CA keygen etc.) are pre-built; we measure overlay
            // formation itself: VO infra + trust edits + enrollment.
            let mut rng = ChaChaRng::from_seed_bytes(b"f1 bench");
            b.iter_batched(
                || {
                    (0..d)
                        .map(|i| create_domain(&mut rng, &format!("s{i}"), 2, 512, u64::MAX / 2))
                        .collect::<Vec<_>>()
                },
                |mut domains| {
                    let mut rng2 = ChaChaRng::from_seed_bytes(b"f1 inner");
                    form_vo(&mut rng2, "vo", &mut domains, 512, u64::MAX / 2)
                },
                gridsec_util::bench::BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    // The scaling table (printed once; recorded in EXPERIMENTS.md).
    println!("\n[f1] trust-establishment acts (overlay vs Kerberos mesh):");
    println!("      D   unilateral(GSI)   bilateral(Kerberos)");
    let mut rng = ChaChaRng::from_seed_bytes(b"f1 table");
    for d in [2usize, 4, 8, 16, 32] {
        let mut domains: Vec<_> = (0..d)
            .map(|i| create_domain(&mut rng, &format!("s{i}"), 1, 512, u64::MAX / 2))
            .collect();
        let vo = form_vo(&mut rng, "vo", &mut domains, 512, u64::MAX / 2);
        println!(
            "    {:>3}   {:>15}   {:>19}",
            d,
            vo.unilateral_acts,
            kerberos_bilateral_agreements(d)
        );
    }
}

fn cross_domain_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_cross_domain_auth");
    group.sample_size(10);

    let mut rng = ChaChaRng::from_seed_bytes(b"f1 validation");
    let mut domains: Vec<_> = (0..4)
        .map(|i| create_domain(&mut rng, &format!("s{i}"), 2, 512, u64::MAX / 2))
        .collect();
    let _vo = form_vo(&mut rng, "vo", &mut domains, 512, u64::MAX / 2);
    let foreign_user = domains[0].users[0].clone();
    let local_user = domains[3].users[0].clone();
    let gate_trust = domains[3].resource_trust.clone();

    group.bench_function("validate_foreign_user", |b| {
        b.iter(|| validate_chain(foreign_user.chain(), &gate_trust, 100).unwrap())
    });
    group.bench_function("validate_local_user", |b| {
        b.iter(|| validate_chain(local_user.chain(), &gate_trust, 100).unwrap())
    });
    group.finish();
}

criterion_group!(benches, overlay_formation, cross_domain_validation);
criterion_main!(benches);
