//! Experiment F2 (Figure 2): the three-step CAS flow — assertion
//! issuance, presentation, and resource-side `local ∩ VO` enforcement —
//! with a VO-policy-size sweep, against a no-CAS local-only baseline.
//!
//! Expected shape: per-request enforcement stays cheap and flat-ish in
//! policy size (the assertion carries the user's slice); issuance scales
//! with the number of rules scanned.

use gridsec_authz::cas::{CasServer, ResourceGate};
use gridsec_authz::policy::{CombiningAlg, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_bench::{bench_world, dn, KEY_BITS};
use gridsec_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn setup_cas(rules: usize) -> (CasServer, ResourceGate) {
    let mut w = bench_world(b"f2 cas");
    let cas_cred =
        w.ca.issue_identity(&mut w.rng, dn("/O=B/CN=CAS"), KEY_BITS, 0, u64::MAX / 4);
    let cas = CasServer::new("bench-vo", cas_cred, 100_000);
    cas.enroll(&dn("/O=B/CN=User"), vec!["group:g".to_string()]);
    // VO policy with `rules` entries; the user's group matches a handful.
    for i in 0..rules {
        let subject = if i % 100 == 0 {
            "group:g".to_string()
        } else {
            format!("group:other{i}")
        };
        cas.add_rule(Rule::new(
            SubjectMatch::Exact(subject),
            &format!("/data/part{i}/*"),
            "read",
            Effect::Permit,
        ));
    }
    let mut local = PolicySet::new(CombiningAlg::DenyOverrides);
    local.add(Rule::new(
        SubjectMatch::Exact("vo:bench-vo".to_string()),
        "/data/*",
        "read",
        Effect::Permit,
    ));
    let mut gate = ResourceGate::new(local);
    gate.trust_cas("bench-vo", cas.public_key().clone());
    (cas, gate)
}

fn issuance(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_issue_assertion");
    group.sample_size(10);
    for rules in [10usize, 100, 1_000, 10_000] {
        let (cas, _gate) = setup_cas(rules);
        group.bench_with_input(BenchmarkId::new("vo_rules", rules), &rules, |b, _| {
            b.iter(|| cas.issue_assertion(&dn("/O=B/CN=User"), 100).unwrap())
        });
    }
    group.finish();
}

fn enforcement(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_enforcement");
    group.sample_size(10);
    for rules in [10usize, 1_000] {
        let (cas, gate) = setup_cas(rules);
        let assertion = cas.issue_assertion(&dn("/O=B/CN=User"), 100).unwrap();
        group.bench_with_input(BenchmarkId::new("with_cas_rules", rules), &rules, |b, _| {
            b.iter(|| {
                gate.authorize_with_cas(
                    &assertion,
                    &dn("/O=B/CN=User"),
                    "/data/part0/file",
                    "read",
                    200,
                )
                .unwrap()
            })
        });
    }
    // Baseline: a direct (no CAS) local decision.
    let (_cas, gate) = setup_cas(10);
    group.bench_function("local_only_baseline", |b| {
        b.iter(|| gate.authorize_direct(&dn("/O=B/CN=User"), "/data/part0/file", "read"))
    });
    group.finish();
}

criterion_group!(benches, issuance, enforcement);
criterion_main!(benches);
