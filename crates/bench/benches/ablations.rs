//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **A1 — DH group size**: handshake with the 256-bit test group vs.
//!   RFC 3526 MODP-2048 (what a 2003 deployment would run).
//! * **A2 — XML share of stateless signing**: canonicalization + digest
//!   alone vs. the full XML-Signature operation, across payload sizes —
//!   how much of GT3's stateless cost is XML vs. RSA.
//! * **A3 — revocation checking**: chain validation against an empty CRL
//!   store vs. one carrying a large CRL (the soft-fail default's cost).

use gridsec_bench::{bench_world, KEY_BITS};
use gridsec_crypto::dh::DhGroup;
use gridsec_crypto::sha256::sha256;
use gridsec_pki::store::CrlStore;
use gridsec_pki::validate::{validate_chain, validate_chain_with_crls};
use gridsec_tls::handshake::{handshake_in_memory, TlsConfig};
use gridsec_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::xmlsig::sign_envelope;
use gridsec_xml::Element;

fn a1_dh_group_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_dh_group");
    group.sample_size(10);
    let mut w = bench_world(b"a1 dh");
    let base_client = TlsConfig::new(w.user.clone(), w.trust.clone(), 10);
    let base_server = TlsConfig::new(w.service.clone(), w.trust.clone(), 10);

    group.bench_function("handshake_dh256_test_group", |b| {
        b.iter(|| {
            handshake_in_memory(base_client.clone(), base_server.clone(), &mut w.rng).unwrap()
        })
    });
    let big_client = base_client.clone().with_group(DhGroup::modp2048());
    let big_server = base_server.clone().with_group(DhGroup::modp2048());
    group.bench_function("handshake_dh2048_modp", |b| {
        b.iter(|| handshake_in_memory(big_client.clone(), big_server.clone(), &mut w.rng).unwrap())
    });
    group.finish();
}

fn a2_xml_share_of_signing(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_xml_share");
    group.sample_size(10);
    let w = bench_world(b"a2 xml");

    for size in [64usize, 4096, 65536] {
        let env = Envelope::request("op", Element::new("data").with_text("x".repeat(size)));
        let env_el = env.to_element();
        // XML-only: canonicalize + hash (what a cheaper binary encoding
        // would mostly eliminate).
        group.bench_with_input(
            BenchmarkId::new("c14n_digest_only", size),
            &env_el,
            |b, el| b.iter(|| sha256(el.canonical_xml().as_bytes())),
        );
        // Full stateless signing (XML + RSA + chain embedding).
        group.bench_with_input(BenchmarkId::new("full_sign", size), &env, |b, env| {
            b.iter(|| sign_envelope(env, &w.user, 100, 300))
        });
    }
    group.finish();
}

fn a3_revocation_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_revocation");
    group.sample_size(10);
    let mut w = bench_world(b"a3 crl");
    let cred = w.ca.issue_identity(
        &mut w.rng,
        gridsec_bench::dn("/O=B/CN=V"),
        KEY_BITS,
        0,
        1_000_000,
    );

    group.bench_function("validate_no_crl_store", |b| {
        b.iter(|| validate_chain(cred.chain(), &w.trust, 100).unwrap())
    });

    // A CRL listing 10 000 other serials.
    let revoked: Vec<u64> = (1_000_000..1_010_000).collect();
    let crl = w.ca.issue_crl(revoked, 10, 1_000_000);
    let mut crls = CrlStore::new();
    assert!(crls.add(crl, w.ca.certificate()));
    group.bench_function("validate_with_10k_entry_crl", |b| {
        b.iter(|| validate_chain_with_crls(cred.chain(), &w.trust, &crls, 100).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    a1_dh_group_size,
    a2_xml_share_of_signing,
    a3_revocation_cost
);
criterion_main!(benches);
