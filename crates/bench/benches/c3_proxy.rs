//! Experiment C3 (paper §3 claim): proxy creation is lightweight and
//! requires no administrator, in contrast with CA-issued certificates
//! and Kerberos cross-realm setup; and validation cost grows only
//! mildly with delegation-chain depth.

use gridsec_bench::{bench_world, dn, KEY_BITS};
use gridsec_kerberos::Kdc;
use gridsec_pki::proxy::{issue_proxy, ProxyType};
use gridsec_pki::validate::validate_chain;
use gridsec_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn issuance(c: &mut Criterion) {
    let mut group = c.benchmark_group("c3_issuance");
    group.sample_size(10);

    // Proxy issuance: the user's own machine, no third party.
    let mut w = bench_world(b"c3 issuance");
    group.bench_function("proxy_issue_512", |b| {
        b.iter(|| {
            issue_proxy(
                &mut w.rng,
                &w.user,
                ProxyType::Impersonation,
                KEY_BITS,
                10,
                3600,
            )
            .unwrap()
        })
    });
    group.bench_function("proxy_issue_1024", |b| {
        b.iter(|| {
            issue_proxy(
                &mut w.rng,
                &w.user,
                ProxyType::Impersonation,
                1024,
                10,
                3600,
            )
            .unwrap()
        })
    });

    // CA issuance: same crypto, but in deployment this also costs an
    // enrollment round-trip through a registration authority (humans).
    group.bench_function("ca_issue_identity_512", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            w.ca.issue_identity(&mut w.rng, dn(&format!("/O=B/CN=u{i}")), KEY_BITS, 0, 3600)
        })
    });

    // Kerberos cross-realm trust: per *pair* of realms, both admins.
    group.bench_function("kerberos_cross_realm_pair", |b| {
        b.iter(|| {
            let kdc_a = Kdc::new(&mut w.rng, "A", 1000);
            let kdc_b = Kdc::new(&mut w.rng, "B", 1000);
            let mut key = [0u8; 32];
            gridsec_bignum::prime::EntropySource::fill_bytes(&mut w.rng, &mut key);
            kdc_a.register_cross_realm_key("B", key);
            kdc_b.register_cross_realm_key("A", key);
            (kdc_a, kdc_b)
        })
    });
    group.finish();
}

fn validation_vs_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("c3_validate_depth");
    group.sample_size(10);
    let mut w = bench_world(b"c3 depth");

    for depth in [1usize, 2, 4, 8, 16] {
        let mut cred = w.user.clone();
        for _ in 0..depth {
            cred = issue_proxy(
                &mut w.rng,
                &cred,
                ProxyType::Impersonation,
                KEY_BITS,
                10,
                1_000_000,
            )
            .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("chain_depth", depth), &cred, |b, cred| {
            b.iter(|| validate_chain(cred.chain(), &w.trust, 100).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, issuance, validation_vs_depth);
criterion_main!(benches);
