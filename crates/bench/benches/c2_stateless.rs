//! Experiment C2 (paper §5.1): stateless signed messages need no
//! synchronous recipient, and win for one-shot interactions; stateful
//! contexts amortize their establishment over many messages.
//!
//! Expected shape: stateless cheaper at N=1; a crossover at small N
//! after which the stateful context wins per-interaction.

use gridsec_bench::bench_world;
use gridsec_pki::store::CrlStore;
use gridsec_tls::handshake::TlsConfig;
use gridsec_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::wssc::{establish, WsscResponder};
use gridsec_wsse::xmlsig;
use gridsec_xml::Element;
use std::time::Instant;

fn request_env(i: usize) -> Envelope {
    Envelope::request(
        "createService",
        Element::new("gram:Job").with_text(format!("/bin/task{i}")),
    )
}

fn one_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("c2_one_shot");
    group.sample_size(10);
    let mut w = bench_world(b"c2 one shot");
    let crls = CrlStore::new();

    // Stateless: sign, (wire), verify. No prior contact.
    group.bench_function("stateless_sign_verify", |b| {
        b.iter(|| {
            let signed = xmlsig::sign_envelope(&request_env(0), &w.user, 100, 300);
            let parsed = Envelope::parse(&signed.to_xml()).unwrap();
            xmlsig::verify_envelope(&parsed, &w.trust, &crls, 150).unwrap()
        })
    });

    // Stateful: establish a context and send one message through it.
    let client_cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 10);
    let server_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 10);
    group.bench_function("stateful_establish_plus_one", |b| {
        b.iter(|| {
            let mut responder = WsscResponder::new(server_cfg.clone());
            let mut session = establish(client_cfg.clone(), &mut responder, &mut w.rng).unwrap();
            let protected = session.protect(&request_env(0));
            responder
                .unprotect(&Envelope::parse(&protected.to_xml()).unwrap())
                .unwrap()
        })
    });
    group.finish();
}

fn per_interaction_series(c: &mut Criterion) {
    let mut group = c.benchmark_group("c2_n_messages");
    group.sample_size(10);
    let mut w = bench_world(b"c2 series");
    let crls = CrlStore::new();
    let client_cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 10);
    let server_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 10);

    for n in [1usize, 2, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("stateless", n), &n, |b, &n| {
            b.iter(|| {
                for i in 0..n {
                    let signed = xmlsig::sign_envelope(&request_env(i), &w.user, 100, 300);
                    let parsed = Envelope::parse(&signed.to_xml()).unwrap();
                    xmlsig::verify_envelope(&parsed, &w.trust, &crls, 150).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("stateful", n), &n, |b, &n| {
            b.iter(|| {
                let mut responder = WsscResponder::new(server_cfg.clone());
                let mut session =
                    establish(client_cfg.clone(), &mut responder, &mut w.rng).unwrap();
                for i in 0..n {
                    let protected = session.protect(&request_env(i));
                    responder
                        .unprotect(&Envelope::parse(&protected.to_xml()).unwrap())
                        .unwrap();
                }
            })
        });
    }
    group.finish();

    // Crossover search (printed once; recorded in EXPERIMENTS.md).
    let time_stateless = |n: usize, w: &mut gridsec_bench::BenchWorld| {
        let t = Instant::now();
        for i in 0..n {
            let signed = xmlsig::sign_envelope(&request_env(i), &w.user, 100, 300);
            let parsed = Envelope::parse(&signed.to_xml()).unwrap();
            xmlsig::verify_envelope(&parsed, &w.trust, &crls, 150).unwrap();
        }
        t.elapsed()
    };
    let time_stateful = |n: usize, w: &mut gridsec_bench::BenchWorld| {
        let t = Instant::now();
        let mut responder = WsscResponder::new(server_cfg.clone());
        let mut session = establish(client_cfg.clone(), &mut responder, &mut w.rng).unwrap();
        for i in 0..n {
            let protected = session.protect(&request_env(i));
            responder
                .unprotect(&Envelope::parse(&protected.to_xml()).unwrap())
                .unwrap();
        }
        t.elapsed()
    };
    let mut crossover = None;
    for n in 1..=128usize {
        let sl: u128 = (0..3).map(|_| time_stateless(n, &mut w).as_micros()).sum();
        let sf: u128 = (0..3).map(|_| time_stateful(n, &mut w).as_micros()).sum();
        if sf < sl {
            crossover = Some(n);
            break;
        }
    }
    match crossover {
        Some(n) => println!("\n[c2] stateful overtakes stateless at N = {n} messages"),
        None => println!("\n[c2] no crossover up to N = 128 messages"),
    }
}

criterion_group!(benches, one_shot, per_interaction_series);
criterion_main!(benches);
