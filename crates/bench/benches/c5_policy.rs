//! Experiment C5 (paper §4.3): published-policy negotiation. Clients
//! that discover mechanisms via WS-Policy intersection interoperate with
//! heterogeneous services that hardcoded-mechanism clients cannot reach.
//!
//! Expected shape: intersection cost grows linearly in the alternative
//! count and stays in the microsecond range — negligible against the
//! token exchanges it avoids; the success-rate table shows the
//! functional win.

use gridsec_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsec_wsse::policy::{intersect, PolicyAlternative, Protection, SecurityPolicy};

fn alt(mech: &str, token: &str) -> PolicyAlternative {
    PolicyAlternative {
        mechanism: mech.to_string(),
        token_types: vec![token.to_string()],
        trust_roots: vec![],
        protection: Protection::Sign,
    }
}

fn policy_with_n_alternatives(n: usize) -> SecurityPolicy {
    let mut alternatives: Vec<PolicyAlternative> = (0..n.saturating_sub(1))
        .map(|i| alt(&format!("exotic-mech-{i}"), "exotic-token"))
        .collect();
    // The match is last — worst case for the scan.
    alternatives.push(alt("xml-signature", "x509-chain"));
    SecurityPolicy {
        service: "svc".to_string(),
        alternatives,
    }
}

fn intersection_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("c5_intersection");
    let client = SecurityPolicy {
        service: "client".to_string(),
        alternatives: vec![
            alt("gsi-secure-conversation", "x509-chain"),
            alt("xml-signature", "x509-chain"),
        ],
    };
    for n in [1usize, 4, 8, 16, 32] {
        let server = policy_with_n_alternatives(n);
        group.bench_with_input(BenchmarkId::new("alternatives", n), &server, |b, s| {
            b.iter(|| intersect(&client, s).unwrap())
        });
    }

    // Parsing cost: policy documents arrive as XML from the service.
    let server = policy_with_n_alternatives(16);
    let xml = server.to_xml();
    group.bench_function("parse_policy_16_alts", |b| {
        b.iter(|| SecurityPolicy::parse(&xml).unwrap())
    });
    group.finish();
}

fn negotiation_success_rates(_c: &mut Criterion) {
    // A fleet of heterogeneous services; count how many each client kind
    // can reach (printed once; recorded in EXPERIMENTS.md).
    let services: Vec<SecurityPolicy> = vec![
        SecurityPolicy {
            service: "a".into(),
            alternatives: vec![alt("gsi-secure-conversation", "x509-chain")],
        },
        SecurityPolicy {
            service: "b".into(),
            alternatives: vec![alt("xml-signature", "x509-chain")],
        },
        SecurityPolicy {
            service: "c".into(),
            alternatives: vec![
                alt("xml-signature", "cas-assertion"),
                alt("gsi-secure-conversation", "x509-chain"),
            ],
        },
        SecurityPolicy {
            service: "d".into(),
            alternatives: vec![alt("xml-signature", "kerberos-ticket")],
        },
    ];

    let negotiate_client = SecurityPolicy {
        service: "negotiating".into(),
        alternatives: vec![
            alt("gsi-secure-conversation", "x509-chain"),
            alt("xml-signature", "x509-chain"),
            alt("xml-signature", "cas-assertion"),
        ],
    };
    let hardcoded_client = SecurityPolicy {
        service: "hardcoded".into(),
        alternatives: vec![alt("gsi-secure-conversation", "x509-chain")],
    };

    let reach = |client: &SecurityPolicy| {
        services
            .iter()
            .filter(|s| intersect(client, s).is_ok())
            .count()
    };
    println!(
        "\n[c5] services reachable out of {}: policy-negotiating client = {}, hardcoded client = {}",
        services.len(),
        reach(&negotiate_client),
        reach(&hardcoded_client)
    );
}

criterion_group!(benches, intersection_cost, negotiation_success_rates);
criterion_main!(benches);
