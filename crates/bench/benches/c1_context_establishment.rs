//! Experiment C1 (paper §5.1): GT3 carries the *same* context
//! establishment tokens as GT2, but over SOAP instead of TCP. Measures
//! context establishment latency and bytes-on-wire for both transports,
//! and message-protection cost across payload sizes.
//!
//! Expected shape: GT3/SOAP establishment is slower and bulkier (XML +
//! base64 framing around identical tokens); per-message protection
//! overhead is similarly XML-dominated.

use gridsec_bench::bench_world;
use gridsec_tls::handshake::{handshake_in_memory, TlsConfig};
use gridsec_tls::session::{resume_client, ClientSession, ServerSessionCache};
use gridsec_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::wssc::{establish, WsscResponder};
use gridsec_xml::Element;

fn establishment(c: &mut Criterion) {
    let mut group = c.benchmark_group("c1_establishment");
    group.sample_size(10);
    let mut w = bench_world(b"c1 establish");

    // GT2: raw token loop (TCP framing adds 4 bytes/token, negligible).
    let client_cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 10);
    let server_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 10);
    group.bench_function("gt2_tls_tokens", |b| {
        b.iter(|| handshake_in_memory(client_cfg.clone(), server_cfg.clone(), &mut w.rng).unwrap())
    });

    // GT3: the same tokens inside WS-Trust RST/RSTR SOAP envelopes,
    // parsed and re-serialized at each hop like a real SOAP stack.
    group.bench_function("gt3_ws_secureconversation", |b| {
        b.iter(|| {
            let mut responder = WsscResponder::new(server_cfg.clone());
            establish(client_cfg.clone(), &mut responder, &mut w.rng).unwrap()
        })
    });

    // Resumed: the abbreviated handshake from a banked session — no
    // certificate validation, RSA, or DH on either side, only symmetric
    // HKDF/HMAC work. The ratio against gt2_tls_tokens is the session
    // cache's amortization claim; perf_guard gates on it.
    let (chan, _server_chan) =
        handshake_in_memory(client_cfg.clone(), server_cfg.clone(), &mut w.rng).unwrap();
    let session = ClientSession::from_channel(&chan).expect("handshake mints resumption state");
    let mut sessions = ServerSessionCache::new(8, 1_000_000);
    sessions.store(&chan);
    group.bench_function("gt2_tls_resumed", |b| {
        b.iter(|| {
            let (resume, t1) = resume_client(session.clone(), 10, 1_000, &mut w.rng);
            let (t2, wait) = sessions.accept(&t1, 10, &mut w.rng).unwrap();
            let (t3, client_chan) = resume.step(&t2).unwrap();
            let server_chan = wait.step(&t3).unwrap();
            (client_chan, server_chan)
        })
    });
    group.finish();

    // Bytes-on-wire comparison (printed once; recorded in EXPERIMENTS.md).
    let (hs, t1) = gridsec_tls::handshake::ClientHandshake::new(client_cfg.clone(), &mut w.rng);
    let server = gridsec_tls::handshake::ServerHandshake::new(server_cfg.clone());
    let (t2, awaiting) = server.step(&mut w.rng, &t1).unwrap();
    let (t3, _chan) = hs.step(&t2).unwrap();
    let _ = awaiting.step(&t3).unwrap();
    let gt2_bytes = t1.len() + t2.len() + t3.len() + 3 * 4; // + frame headers

    let (initiator, rst1) =
        gridsec_wsse::wssc::WsscInitiator::begin(client_cfg.clone(), &mut w.rng);
    let mut responder = WsscResponder::new(server_cfg.clone());
    let rstr1 = responder.handle_rst(&rst1, &mut w.rng).unwrap();
    let (rst2, _session) = initiator.finish(&rstr1).unwrap();
    let ack = responder.handle_rst(&rst2, &mut w.rng).unwrap();
    let gt3_bytes =
        rst1.to_xml().len() + rstr1.to_xml().len() + rst2.to_xml().len() + ack.to_xml().len();
    println!(
        "\n[c1] bytes on wire: GT2-TLS = {gt2_bytes}, GT3-SOAP = {gt3_bytes} (x{:.2})",
        gt3_bytes as f64 / gt2_bytes as f64
    );
}

fn message_protection(c: &mut Criterion) {
    let mut group = c.benchmark_group("c1_message_protection");
    group.sample_size(10);
    let mut w = bench_world(b"c1 protect");
    let client_cfg = TlsConfig::new(w.user.clone(), w.trust.clone(), 10);
    let server_cfg = TlsConfig::new(w.service.clone(), w.trust.clone(), 10);

    let (mut gt2_client, mut gt2_server) =
        handshake_in_memory(client_cfg.clone(), server_cfg.clone(), &mut w.rng).unwrap();
    let mut responder = WsscResponder::new(server_cfg);
    let mut session = establish(client_cfg, &mut responder, &mut w.rng).unwrap();

    for size in [64usize, 1024, 16 * 1024, 64 * 1024] {
        let payload = vec![b'x'; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("gt2_record", size), &payload, |b, p| {
            b.iter(|| {
                let sealed = gt2_client.seal(p);
                gt2_server.open(&sealed).unwrap()
            })
        });
        let env = Envelope::request(
            "op",
            Element::new("data").with_text(String::from_utf8(payload.clone()).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("gt3_soap", size), &env, |b, env| {
            b.iter(|| {
                let protected = session.protect(env);
                // Wire roundtrip through XML like a real stack.
                let parsed = Envelope::parse(&protected.to_xml()).unwrap();
                responder.unprotect(&parsed).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, establishment, message_protection);
criterion_main!(benches);
