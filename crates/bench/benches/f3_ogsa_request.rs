//! Experiment F3 (Figure 3): the five-step secured OGSA request, with a
//! per-step breakdown and the credential-conversion variant (C6: a
//! Kerberos-site client through the KCA).
//!
//! Expected shape: cold invocations pay policy retrieval + token
//! exchange; warm invocations (cached policy + context) are an order of
//! magnitude cheaper; KCA conversion adds Kerberos exchanges + keygen on
//! top of the cold path.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic seed counter shared across the bench runner's repeated routine
/// invocations (a per-closure counter would reset and replay nonces).
static SEED: AtomicU64 = AtomicU64::new(1);

fn next_seed() -> [u8; 8] {
    SEED.fetch_add(1, Ordering::Relaxed).to_le_bytes()
}

use gridsec_authz::policy::{CombiningAlg, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_bench::{bench_world, dn, BenchWorld, KEY_BITS};
use gridsec_kerberos::Kdc;
use gridsec_ogsa::client::{CredentialSource, OgsaClient, StaticCredential};
use gridsec_ogsa::hosting::HostingEnvironment;
use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::transport::InProcessTransport;
use gridsec_ogsa::OgsaError;
use gridsec_services::kca::{KcaCredentialSource, KerberosCa};
use gridsec_testbed::clock::SimClock;
use gridsec_util::bench::{criterion_group, criterion_main, Criterion};
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_xml::Element;

struct Echo;
impl GridService for Echo {
    fn service_type(&self) -> &str {
        "echo"
    }
    fn invoke(
        &mut self,
        _ctx: &RequestContext,
        _op: &str,
        payload: &Element,
    ) -> Result<Element, OgsaError> {
        Ok(payload.clone())
    }
}

fn make_env(w: &BenchWorld, clock: &SimClock, allow: &str) -> Rc<RefCell<HostingEnvironment>> {
    let published = SecurityPolicy {
        service: "echo".to_string(),
        alternatives: vec![PolicyAlternative {
            mechanism: "gsi-secure-conversation".to_string(),
            token_types: vec!["x509-chain".to_string(), "kerberos-ticket".to_string()],
            trust_roots: vec![],
            protection: Protection::SignAndEncrypt,
        }],
    };
    let mut authz = PolicySet::new(CombiningAlg::DenyOverrides);
    authz.add(Rule::new(
        SubjectMatch::Exact(allow.to_string()),
        "factory:echo",
        "create",
        Effect::Permit,
    ));
    authz.add(Rule::new(
        SubjectMatch::Exact(allow.to_string()),
        "service:echo",
        "*",
        Effect::Permit,
    ));
    let mut env = HostingEnvironment::new(
        "bench-host",
        w.service.clone(),
        w.trust.clone(),
        clock.clone(),
        published,
        authz,
    );
    env.registry
        .register_factory("echo", Box::new(|_c, _a| Ok(Box::new(Echo))));
    Rc::new(RefCell::new(env))
}

fn pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_pipeline");
    group.sample_size(10);
    let w = bench_world(b"f3 pipeline");
    let clock = SimClock::starting_at(100);

    // Cold: fresh client each iteration — policy fetch + context + call.
    let env = make_env(&w, &clock, "/O=B/CN=User");
    group.bench_function("cold_full_pipeline", |b| {
        b.iter(|| {
            let mut client = OgsaClient::new(
                InProcessTransport::new(env.clone()),
                w.trust.clone(),
                clock.clone(),
                &next_seed(),
            );
            client.add_source(Box::new(StaticCredential(w.user.clone())));
            let h = client.create_service("echo", Element::new("a")).unwrap();
            client
                .invoke(&h, "run", Element::new("p").with_text("x"))
                .unwrap();
            client.destroy(&h).unwrap()
        })
    });

    // Warm: one client, cached policy + context; measure invoke only.
    let env2 = make_env(&w, &clock, "/O=B/CN=User");
    let mut client = OgsaClient::new(
        InProcessTransport::new(env2),
        w.trust.clone(),
        clock.clone(),
        b"warm client",
    );
    client.add_source(Box::new(StaticCredential(w.user.clone())));
    let handle = client.create_service("echo", Element::new("a")).unwrap();
    group.bench_function("warm_invoke", |b| {
        b.iter(|| {
            client
                .invoke(&handle, "run", Element::new("p").with_text("x"))
                .unwrap()
        })
    });

    // Step 1 alone: policy retrieval.
    let env3 = make_env(&w, &clock, "/O=B/CN=User");
    group.bench_function("step1_policy_fetch", |b| {
        b.iter(|| {
            let mut c2 = OgsaClient::new(
                InProcessTransport::new(env3.clone()),
                w.trust.clone(),
                clock.clone(),
                &next_seed(),
            );
            c2.add_source(Box::new(StaticCredential(w.user.clone())));
            c2.fetch_policy().unwrap()
        })
    });
    group.finish();
}

fn kca_conversion_path(c: &mut Criterion) {
    // Experiment C6 shares this harness: Figure 3 step 2 with a real
    // mechanism bridge in the loop.
    let mut group = c.benchmark_group("f3_kca_conversion");
    group.sample_size(10);
    let mut w = bench_world(b"f3 kca");
    let clock = SimClock::starting_at(100);

    let kdc = Kdc::new(&mut w.rng, "SITE.K", 1_000_000);
    kdc.add_principal("alice", "pw");
    let kca = Arc::new(KerberosCa::new(
        &mut w.rng,
        &kdc,
        KEY_BITS,
        u64::MAX / 4,
        50_000,
    ));
    let kdc = Arc::new(kdc);
    // The service must trust the KCA.
    let mut trust = w.trust.clone();
    trust.add_root(kca.certificate().clone());

    // Step 2 alone: Kerberos login + conversion.
    group.bench_function("step2_kca_convert", |b| {
        b.iter(|| {
            let mut source = KcaCredentialSource::new(
                kdc.clone(),
                kca.clone(),
                "alice",
                "pw",
                KEY_BITS,
                &next_seed(),
            );
            source.obtain(clock.now()).unwrap()
        })
    });

    // Full pipeline with conversion in the loop. Both sides use the
    // combined trust store (grid CA for the service, KCA for the client).
    let w2 = BenchWorld {
        trust: trust.clone(),
        ..w
    };
    let env = make_env(&w2, &clock, "/O=KCA SITE.K/CN=alice");
    group.bench_function("cold_pipeline_with_kca", |b| {
        b.iter(|| {
            let mut client = OgsaClient::new(
                InProcessTransport::new(env.clone()),
                trust.clone(),
                clock.clone(),
                &next_seed(),
            );
            client.add_source(Box::new(KcaCredentialSource::new(
                kdc.clone(),
                kca.clone(),
                "alice",
                "pw",
                KEY_BITS,
                &next_seed(),
            )));
            let h = client.create_service("echo", Element::new("a")).unwrap();
            client.invoke(&h, "run", Element::new("p")).unwrap()
        })
    });
    group.finish();
    let _ = dn("/O=B/CN=User");
}

criterion_group!(benches, pipeline, kca_conversion_path);
criterion_main!(benches);
