//! GRIM — the Grid Resource Identity Mapper (paper §5.3 step 5).
//!
//! "GRIM is a privileged program (typically setuid-root) that accesses
//! the local host credentials and from them generates a set of GSI proxy
//! credentials for the LMJFS. This proxy credential has embedded in it
//! the user's Grid identity, local account name, and local policy to
//! help the requestor verify that the LMJFS is appropriate for its
//! needs."
//!
//! The embedding uses a restricted proxy with policy language
//! `grim-policy-v1`; [`GrimPolicy`] is the payload. The requestor-side
//! check lives in [`crate::requestor`].

use gridsec_bignum::prime::EntropySource;
use gridsec_pki::credential::Credential;
use gridsec_pki::encoding::{Codec, Decoder, Encoder};
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::proxy::{issue_proxy, ProxyType};
use gridsec_pki::validate::ValidatedIdentity;
use gridsec_pki::PkiError;

use crate::GramError;

/// RFC 3820 policy-language id for GRIM-embedded attributes.
pub const GRIM_POLICY_LANGUAGE: &str = "grim-policy-v1";

/// The attributes GRIM embeds in the proxy it issues.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GrimPolicy {
    /// Grid identity of the user the LMJFS serves.
    pub user_identity: DistinguishedName,
    /// Local account the LMJFS runs in.
    pub account: String,
    /// Free-form local policy statement (e.g. permitted queues).
    pub local_policy: String,
}

impl Codec for GrimPolicy {
    fn encode(&self, enc: &mut Encoder) {
        self.user_identity.encode(enc);
        enc.put_str(&self.account).put_str(&self.local_policy);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PkiError> {
        Ok(GrimPolicy {
            user_identity: DistinguishedName::decode(dec)?,
            account: dec.get_str()?,
            local_policy: dec.get_str()?,
        })
    }
}

/// Run GRIM: from the host credential, mint a proxy credential for an
/// LMJFS serving `user_identity` in `account`.
///
/// In the simulation the caller (the resource) is responsible for the
/// privilege bookkeeping — spawning the setuid process in the OS table
/// and killing it after this single operation; see
/// [`crate::resource::GramResource`].
#[allow(clippy::too_many_arguments)]
pub fn issue_grim_credential<E: EntropySource>(
    rng: &mut E,
    host_credential: &Credential,
    user_identity: &DistinguishedName,
    account: &str,
    local_policy: &str,
    key_bits: usize,
    now: u64,
    lifetime: u64,
) -> Result<Credential, GramError> {
    let policy = GrimPolicy {
        user_identity: user_identity.clone(),
        account: account.to_string(),
        local_policy: local_policy.to_string(),
    };
    issue_proxy(
        rng,
        host_credential,
        ProxyType::Restricted {
            language: GRIM_POLICY_LANGUAGE.to_string(),
            policy: policy.to_bytes(),
        },
        key_bits,
        now,
        lifetime,
    )
    .map_err(|e| GramError::Os(format!("GRIM proxy issuance failed: {e}")))
}

/// Extract the GRIM policy from a validated peer identity (requestor-side
/// half of step 7's mutual authorization).
pub fn extract_grim_policy(identity: &ValidatedIdentity) -> Option<GrimPolicy> {
    identity
        .restrictions
        .iter()
        .find(|(lang, _)| lang == GRIM_POLICY_LANGUAGE)
        .and_then(|(_, bytes)| GrimPolicy::from_bytes(bytes).ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::store::TrustStore;
    use gridsec_pki::validate::validate_chain;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    #[test]
    fn grim_credential_chains_to_host_and_embeds_policy() {
        let mut rng = ChaChaRng::from_seed_bytes(b"grim tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let host = ca.issue_host_identity(
            &mut rng,
            dn("/O=G/CN=host compute1"),
            vec!["compute1".into()],
            512,
            0,
            500_000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());

        let cred = issue_grim_credential(
            &mut rng,
            &host,
            &dn("/O=G/CN=Jane"),
            "jdoe",
            "queues=batch",
            512,
            100,
            3600,
        )
        .unwrap();

        let id = validate_chain(cred.chain(), &trust, 200).unwrap();
        // Chains to the host identity.
        assert_eq!(id.base_identity, dn("/O=G/CN=host compute1"));
        // Embedded attributes are recoverable.
        let policy = extract_grim_policy(&id).unwrap();
        assert_eq!(policy.user_identity, dn("/O=G/CN=Jane"));
        assert_eq!(policy.account, "jdoe");
        assert_eq!(policy.local_policy, "queues=batch");
    }

    #[test]
    fn policy_codec_roundtrip() {
        let p = GrimPolicy {
            user_identity: dn("/O=G/CN=U"),
            account: "u1".to_string(),
            local_policy: String::new(),
        };
        assert_eq!(GrimPolicy::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn non_grim_identity_has_no_policy() {
        let mut rng = ChaChaRng::from_seed_bytes(b"no grim");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1000);
        let user = ca.issue_identity(&mut rng, dn("/O=G/CN=U"), 512, 0, 1000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        let id = validate_chain(user.chain(), &trust, 10).unwrap();
        assert!(extract_grim_policy(&id).is_none());
    }
}
