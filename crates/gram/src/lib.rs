//! # gridsec-gram
//!
//! GT3 Grid Resource Allocation and Management (GRAM) with the tight
//! least-privilege model of §5.2–§5.3 of *Security for Grid Services*
//! (Welch et al., HPDC 2003), plus the GT2 gatekeeper baseline it
//! improved upon.
//!
//! The GT3 architecture (Figure 4), fully reproduced on the simulated OS:
//!
//! 1. The requestor signs a job description (stateless XML-Signature —
//!    the target LMJFS may not exist yet).
//! 2. The **Proxy Router** (unprivileged, network-facing) routes to the
//!    user's LMJFS if resident, else to the MMJFS.
//! 3. The **MMJFS** (unprivileged, network-facing) verifies the
//!    signature and maps the grid identity via the grid-mapfile.
//! 4. The MMJFS invokes the **Setuid Starter** — a tiny setuid-root
//!    program whose *sole* function is to start a preconfigured LMJFS in
//!    the user's account.
//! 5. The new **LMJFS** invokes **GRIM** — the second tiny setuid-root
//!    program — which reads the host credential and mints a GRIM proxy
//!    embedding the user's grid identity, account, and policy; the LMJFS
//!    registers with the router.
//! 6. The LMJFS re-verifies the signed request and authorizes the user
//!    for its account, then creates an **MJS**.
//! 7. The requestor and MJS mutually authenticate; the requestor accepts
//!    the MJS *only* if it presents a GRIM credential from the right host
//!    embedding the requestor's own identity; then delegates job
//!    credentials and starts the job.
//!
//! The privilege discipline is enforced by `gridsec-testbed`'s simulated
//! OS: **no privileged process ever accepts network input** — only the
//! two setuid programs run with euid 0, each for one call, with no
//! network exposure. [`gt2`] implements the contrasting baseline: a
//! root, network-facing gatekeeper. Experiment C4 quantifies the
//! difference by fault injection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod grim;
pub mod gt2;
pub mod remote;
pub mod requestor;
pub mod resource;
pub mod types;

pub use requestor::Requestor;
pub use resource::GramResource;
pub use types::{JobDescription, JobState};

/// Errors across GRAM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GramError {
    /// Signature or chain on the job request was rejected.
    RequestRejected(String),
    /// No grid-mapfile entry for the requestor.
    NoMapping(String),
    /// The requestor is not authorized for the target account.
    NotAuthorized(String),
    /// OS-level failure (account, process, file).
    Os(String),
    /// Unknown MJS handle.
    NoSuchJob(String),
    /// The MJS presented an unacceptable credential (step 7 client-side
    /// authorization failed).
    GrimRejected(&'static str),
    /// Security-context failure during step 7.
    Context(String),
    /// Job is in the wrong state for the operation.
    BadState(&'static str),
    /// The network path to the resource failed (retries exhausted or a
    /// malformed reply). Remote submissions only.
    Transport(String),
}

impl core::fmt::Display for GramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GramError::RequestRejected(m) => write!(f, "request rejected: {m}"),
            GramError::NoMapping(dn) => write!(f, "no grid-mapfile entry for {dn}"),
            GramError::NotAuthorized(m) => write!(f, "not authorized: {m}"),
            GramError::Os(m) => write!(f, "OS error: {m}"),
            GramError::NoSuchJob(h) => write!(f, "no such job: {h}"),
            GramError::GrimRejected(m) => write!(f, "GRIM credential rejected: {m}"),
            GramError::Context(m) => write!(f, "security context error: {m}"),
            GramError::BadState(m) => write!(f, "bad job state: {m}"),
            GramError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for GramError {}
