//! The Figure-4 GRAM flow across the simulated (faulty) network.
//!
//! [`Requestor::submit_job`][crate::Requestor::submit_job] runs steps
//! 1–7 in process; this module runs the same chain through the
//! at-most-once RPC layer ([`gridsec_testbed::rpc`]) so every leg —
//! submission, the step-7 token loop, delegation, job start — survives
//! drop/duplicate/reorder faults with retransmission and exponential
//! backoff. The server-side reply cache is what makes this safe: a
//! retransmitted `gram-submit` must not start a second LMJFS, and a
//! duplicated `gram-tok3` must not re-step an established context.
//!
//! Wire format (via [`gridsec_pki::encoding`]): every request is
//! `op ‖ mjs-handle ‖ body`; replies are `"ok" ‖ body` or
//! `"err" ‖ reason`. The delegation tokens cross the wire in exactly
//! the order of the in-process flow — they are wrapped on the secured
//! GSS channel, whose sequence numbers make any other order fail.
//!
//! The requestor's client-side GRIM authorization is unchanged but
//! remote-aware: the caller names the host it *intended* to contact
//! (`expected_host`), and the MJS's GRIM credential must chain to that
//! identity — the remote analogue of checking
//! `resource.host_identity()` in process.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use gridsec_crypto::rng::ChaChaRng;
use gridsec_gssapi::context::{AcceptorContext, EstablishedContext, InitiatorContext, StepResult};
use gridsec_gssapi::delegation::{self, PendingDelegation};
use gridsec_pki::credential::Credential;
use gridsec_pki::encoding::{Decoder, Encoder};
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::proxy::ProxyType;
use gridsec_testbed::rpc::RpcClient;
use gridsec_tls::handshake::TlsConfig;
use gridsec_util::trace;

use crate::grim::extract_grim_policy;
use crate::requestor::{ActiveJob, Requestor};
use crate::resource::GramResource;
use crate::types::{JobDescription, JobState};
use crate::GramError;

/// Steps 1–6: deliver the signed job request, get back an MJS handle.
pub const OP_SUBMIT: &str = "gram-submit";
/// Step 7a: first GSS token to the MJS; reply carries token 2.
pub const OP_TOKEN1: &str = "gram-tok1";
/// Step 7b: finished token to the MJS; establishes the acceptor.
pub const OP_TOKEN3: &str = "gram-tok3";
/// Delegation round 1: wrapped request; reply carries the wrapped key.
pub const OP_DELEG_REQ: &str = "gram-deleg-req";
/// Delegation round 2: wrapped proxy chain; MJS finishes delegation.
pub const OP_DELEG_CHAIN: &str = "gram-deleg-chain";
/// Start command, wrapped on the secured channel.
pub const OP_START: &str = "gram-start";
/// Job state query.
pub const OP_STATE: &str = "gram-state";

fn request(op: &str, handle: &str, body: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_str(op).put_str(handle).put_bytes(body);
    e.finish()
}

fn reply_ok(body: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_str("ok").put_bytes(body);
    e.finish()
}

fn reply_err(reason: &str) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_str("err").put_bytes(reason.as_bytes());
    e.finish()
}

/// One RPC round: send `op ‖ handle ‖ body`, unwrap the `ok` body or
/// map the failure. Transport exhaustion becomes
/// [`GramError::Transport`]; a served `err` becomes `to_err(reason)`
/// so callers keep submission refusals distinct from context failures.
fn round(
    rpc: &mut RpcClient,
    op: &str,
    handle: &str,
    body: &[u8],
    to_err: impl FnOnce(String) -> GramError,
) -> Result<Vec<u8>, GramError> {
    trace::event("gram.round", &format!("op={op} handle={handle}"));
    let raw = rpc
        .call(&request(op, handle, body))
        .map_err(|e| GramError::Transport(e.to_string()))?;
    let mut d = Decoder::new(&raw);
    let status = d
        .get_str()
        .map_err(|_| GramError::Transport("malformed reply".into()))?;
    let payload = d
        .get_bytes()
        .map_err(|_| GramError::Transport("malformed reply".into()))?;
    match status.as_str() {
        "ok" => Ok(payload),
        _ => Err(to_err(String::from_utf8_lossy(&payload).into_owned())),
    }
}

/// The current wall time as the client sees it: the network's fault
/// clock when faults are armed (retries advance it, so a `now`
/// captured before submission can predate the GRIM proxy minted
/// during it), else the caller's fallback.
fn wall_now(rpc: &RpcClient, fallback: u64) -> u64 {
    rpc.endpoint()
        .network()
        .fault_clock()
        .map_or(fallback, |c| c.now())
}

/// Remote steps 1–7: submit the signed request over `rpc`, then run
/// [`connect_and_start_remote`] against the returned MJS handle.
///
/// `expected_host` is the host identity the requestor believes it is
/// talking to; the MJS is authorized only if its GRIM credential
/// chains to exactly that identity (§5.3 client-side authorization).
pub fn submit_job_remote(
    requestor: &mut Requestor,
    rpc: &mut RpcClient,
    description: &JobDescription,
    expected_host: &DistinguishedName,
    now: u64,
) -> Result<ActiveJob, GramError> {
    let mut sp = trace::span_with("gram.submit", &format!("host={expected_host}"));
    let result: Result<ActiveJob, GramError> = (|| {
        let job = submit_only(requestor, rpc, description, now)?;
        connect_and_start_remote(
            requestor,
            rpc,
            &job.handle,
            Some(&job.account),
            expected_host,
            now,
        )?;
        Ok(job)
    })();
    if let Err(e) = &result {
        sp.fail(&e.to_string());
    }
    result
}

/// Remote step 7 (mirrors
/// [`Requestor::connect_and_start`][crate::Requestor::connect_and_start]):
/// mutual authentication with the MJS over RPC, GRIM authorization
/// against `expected_host`, delegation, and the start command.
pub fn connect_and_start_remote(
    requestor: &mut Requestor,
    rpc: &mut RpcClient,
    handle: &str,
    expected_account: Option<&str>,
    expected_host: &DistinguishedName,
    now: u64,
) -> Result<(), GramError> {
    let mut sp = trace::span_with("gram.connect_start", &format!("handle={handle}"));
    let result =
        connect_and_start_inner(requestor, rpc, handle, expected_account, expected_host, now);
    if let Err(e) = &result {
        sp.fail(&e.to_string());
    }
    result
}

fn connect_and_start_inner(
    requestor: &mut Requestor,
    rpc: &mut RpcClient,
    handle: &str,
    expected_account: Option<&str>,
    expected_host: &DistinguishedName,
    now: u64,
) -> Result<(), GramError> {
    let ctxerr = |m: &str| GramError::Context(m.to_string());

    // Mutual authentication: the token loop, each leg an RPC call.
    // Validation time is re-read from the clock: the submission's
    // retransmissions may have pushed wall time past `now`, and the
    // GRIM proxy we are about to verify was minted at server-side now.
    let now = wall_now(rpc, now);
    let config = TlsConfig::new(requestor.credential.clone(), requestor.trust.clone(), now);
    let gss_sp = trace::span_with("gram.gss_loop", &format!("handle={handle}"));
    let (mut initiator, token1) = InitiatorContext::new(config, &mut requestor.rng);
    let token2 = round(rpc, OP_TOKEN1, handle, &token1, GramError::Context)?;
    let (token3, mut my_ctx) = match initiator
        .step(&token2)
        .map_err(|e| ctxerr(&e.to_string()))?
    {
        StepResult::Established { token, context } => {
            (token.ok_or(ctxerr("missing finished token"))?, context)
        }
        _ => return Err(ctxerr("initiator should finish")),
    };
    round(rpc, OP_TOKEN3, handle, &token3, GramError::Context)?;
    trace::event("gram.context.established", &format!("handle={handle}"));
    drop(gss_sp);

    // Client-side authorization of the MJS (unchanged from in-process,
    // except the host identity is the one the caller intended).
    let peer = my_ctx.peer().clone();
    let policy = extract_grim_policy(&peer)
        .ok_or(GramError::GrimRejected("peer presented no GRIM credential"))?;
    if peer.base_identity != *expected_host {
        trace::event("gram.grim.rejected", "wrong host");
        return Err(GramError::GrimRejected(
            "GRIM credential chains to the wrong host",
        ));
    }
    if &policy.user_identity != requestor.identity() {
        trace::event("gram.grim.rejected", "wrong user identity");
        return Err(GramError::GrimRejected(
            "GRIM credential embeds a different user identity",
        ));
    }
    if let Some(acct) = expected_account {
        if policy.account != acct {
            trace::event("gram.grim.rejected", "wrong account");
            return Err(GramError::GrimRejected(
                "GRIM credential names a different account",
            ));
        }
    }
    trace::event(
        "gram.grim.authorized",
        &format!("account={}", policy.account),
    );

    // Delegation, token for token as in process. The wrapped tokens are
    // sequence-numbered on the GSS channel, so the reply cache (not
    // re-execution) must answer any retransmission — which it does.
    let mut deleg_sp = trace::span_with("gram.delegation", &format!("handle={handle}"));
    let deleg: Result<(), GramError> = (|| {
        let d1 = delegation::request_delegation(&mut my_ctx);
        let d2 = round(rpc, OP_DELEG_REQ, handle, &d1, GramError::Context)?;
        let d3 = delegation::deliver_proxy(
            &mut my_ctx,
            &mut requestor.rng,
            &requestor.credential,
            &d2,
            ProxyType::Impersonation,
            now,
            requestor.delegation_lifetime,
        )
        .map_err(|e| ctxerr(&e.to_string()))?;
        round(rpc, OP_DELEG_CHAIN, handle, &d3, GramError::Context)?;
        trace::add("gram.delegations", 1);
        Ok(())
    })();
    if let Err(e) = &deleg {
        deleg_sp.fail(&e.to_string());
    }
    drop(deleg_sp);
    deleg?;

    // Start command over the secured channel.
    let start = my_ctx.wrap(b"start-job");
    round(rpc, OP_START, handle, &start, GramError::Context)?;
    trace::event("gram.job.started", &format!("handle={handle}"));
    Ok(())
}

/// Remote steps 1–7 with crash resilience: like [`submit_job_remote`],
/// but survives the service dying and restarting mid-chain.
///
/// The submission leg is safe to retry: the at-most-once RPC layer
/// absorbs retransmits, and a durable server
/// ([`DurableGram`][crate::durable::DurableGram]) answers a
/// re-executed submission from its journal. The step-7 leg holds
/// in-memory session state the server loses in a crash — a
/// [`Context`][GramError::Context] or
/// [`Transport`][GramError::Transport] failure there is answered by
/// re-running the whole handshake against the job the journal
/// preserved; the server's journaled start record keeps the job from
/// spawning twice.
pub fn submit_job_resilient(
    requestor: &mut Requestor,
    rpc: &mut RpcClient,
    description: &JobDescription,
    expected_host: &DistinguishedName,
    now: u64,
    max_attempts: u64,
) -> Result<ActiveJob, GramError> {
    let mut sp = trace::span_with("gram.submit_resilient", &format!("host={expected_host}"));
    let result: Result<ActiveJob, GramError> = (|| {
        let recoverable =
            |e: &GramError| matches!(e, GramError::Context(_) | GramError::Transport(_));
        let mut attempt = 0u64;
        // Land the submission.
        let job = loop {
            attempt += 1;
            match submit_only(requestor, rpc, description, now) {
                Ok(job) => break job,
                Err(e) if recoverable(&e) && attempt < max_attempts => {
                    trace::event("gram.reestablish", &format!("leg=submit cause={e}"));
                    trace::add("gram.reestablishes", 1);
                }
                Err(e) => return Err(e),
            }
        };
        // Drive step 7, re-establishing the security context from
        // scratch whenever the service's session state evaporates.
        loop {
            attempt += 1;
            match connect_and_start_remote(
                requestor,
                rpc,
                &job.handle,
                Some(&job.account),
                expected_host,
                now,
            ) {
                Ok(()) => return Ok(job),
                Err(e) if recoverable(&e) && attempt < max_attempts => {
                    trace::event("gram.reestablish", &format!("leg=start cause={e}"));
                    trace::add("gram.reestablishes", 1);
                }
                Err(e) => return Err(e),
            }
        }
    })();
    if let Err(e) = &result {
        sp.fail(&e.to_string());
    }
    result
}

/// Steps 1–6 only: deliver the signed request, decode the MJS handle.
fn submit_only(
    requestor: &mut Requestor,
    rpc: &mut RpcClient,
    description: &JobDescription,
    now: u64,
) -> Result<ActiveJob, GramError> {
    let signed = requestor.signed_request(description, now);
    let body = round(
        rpc,
        OP_SUBMIT,
        "",
        signed.as_bytes(),
        GramError::RequestRejected,
    )?;
    let mut d = Decoder::new(&body);
    let parse = |_: ()| GramError::Transport("malformed submit reply".into());
    let handle = d.get_str().map_err(|_| parse(()))?;
    let cold_start = d.get_u8().map_err(|_| parse(()))? != 0;
    let account = d.get_str().map_err(|_| parse(()))?;
    trace::event(
        "gram.submitted",
        &format!("handle={handle} cold_start={cold_start} account={account}"),
    );
    trace::add("gram.jobs_submitted", 1);
    Ok(ActiveJob {
        handle,
        cold_start,
        account,
    })
}

/// Query a job's state over `rpc`.
pub fn job_state_remote(rpc: &mut RpcClient, handle: &str) -> Result<JobState, GramError> {
    let body = round(rpc, OP_STATE, handle, &[], GramError::NoSuchJob)?;
    match body.as_slice() {
        b"unsubmitted" => Ok(JobState::Unsubmitted),
        b"active" => Ok(JobState::Active),
        b"done" => Ok(JobState::Done),
        b"cancelled" => Ok(JobState::Cancelled),
        b"failed" => Ok(JobState::Failed),
        _ => Err(GramError::Transport("unknown job state".into())),
    }
}

/// Step-7 session state the service keeps per (caller, MJS handle).
struct Session {
    acceptor: Option<AcceptorContext>,
    ctx: Option<Box<EstablishedContext>>,
    pending: Option<PendingDelegation>,
    delegated: Option<Credential>,
}

/// A [`GramResource`] served behind an RPC endpoint: plug
/// [`RemoteGram::handle`] into an
/// [`RpcServer::poll`][gridsec_testbed::rpc::RpcServer::poll] handler.
/// The resource is shared via `Rc<RefCell<..>>` so the test scaffold
/// (or a chaos harness) can still advance its clock and inspect jobs
/// between polls.
pub struct RemoteGram {
    resource: Rc<RefCell<GramResource>>,
    rng: ChaChaRng,
    sessions: HashMap<(String, String), Session>,
}

impl RemoteGram {
    /// Serve `resource`; `rng_seed` seeds the acceptor-side randomness
    /// (key generation during delegation), keeping runs reproducible.
    pub fn new(resource: Rc<RefCell<GramResource>>, rng_seed: &[u8]) -> Self {
        RemoteGram {
            resource,
            rng: ChaChaRng::from_seed_bytes(rng_seed),
            sessions: HashMap::new(),
        }
    }

    /// The shared resource handle.
    pub fn resource(&self) -> Rc<RefCell<GramResource>> {
        self.resource.clone()
    }

    /// Handle one request frame; returns the reply frame. Malformed
    /// input and out-of-order session ops get `err` replies, never
    /// panics — faulty networks deliver garbage, and a service that
    /// crashes on it fails the paper's availability story.
    pub fn handle(&mut self, from: &str, payload: &[u8]) -> Vec<u8> {
        let mut d = Decoder::new(payload);
        let parsed = d
            .get_str()
            .and_then(|op| Ok((op, d.get_str()?, d.get_bytes()?)));
        let (op, handle, body) = match parsed {
            Ok(x) => x,
            Err(_) => return reply_err("malformed request"),
        };
        let mut sp = trace::span_with("gram.serve", &format!("op={op} from={from}"));
        match self.dispatch(from, &op, &handle, &body) {
            Ok(reply) => reply,
            Err(e) => {
                sp.fail(&e.to_string());
                reply_err(&e.to_string())
            }
        }
    }

    fn dispatch(
        &mut self,
        from: &str,
        op: &str,
        handle: &str,
        body: &[u8],
    ) -> Result<Vec<u8>, GramError> {
        let ctxerr = |m: &str| GramError::Context(m.to_string());
        let key = (from.to_string(), handle.to_string());
        match op {
            OP_SUBMIT => {
                let xml = String::from_utf8_lossy(body).into_owned();
                let outcome = self.resource.borrow_mut().submit(&xml)?;
                let mut e = Encoder::new();
                e.put_str(&outcome.mjs_handle)
                    .put_u8(u8::from(outcome.cold_start))
                    .put_str(&outcome.account);
                Ok(reply_ok(&e.finish()))
            }
            OP_TOKEN1 => {
                // A fresh token 1 always starts a fresh session: a
                // requestor that timed out mid-handshake and started
                // over must not collide with its abandoned half.
                let mut acceptor = self.resource.borrow_mut().mjs_begin_accept(handle)?;
                let token2 = match acceptor
                    .step(&mut self.rng, body)
                    .map_err(|e| ctxerr(&e.to_string()))?
                {
                    StepResult::ContinueWith(t) => t,
                    _ => return Err(ctxerr("unexpected acceptor state")),
                };
                self.sessions.insert(
                    key,
                    Session {
                        acceptor: Some(acceptor),
                        ctx: None,
                        pending: None,
                        delegated: None,
                    },
                );
                Ok(reply_ok(&token2))
            }
            OP_TOKEN3 => {
                let session = self
                    .sessions
                    .get_mut(&key)
                    .ok_or(ctxerr("no handshake in progress"))?;
                let mut acceptor = session
                    .acceptor
                    .take()
                    .ok_or(ctxerr("handshake already finished"))?;
                let ctx = match acceptor
                    .step(&mut self.rng, body)
                    .map_err(|e| ctxerr(&e.to_string()))?
                {
                    StepResult::Established { context, .. } => context,
                    _ => return Err(ctxerr("acceptor should finish")),
                };
                session.ctx = Some(ctx);
                Ok(reply_ok(&[]))
            }
            OP_DELEG_REQ => {
                let session = self
                    .sessions
                    .get_mut(&key)
                    .ok_or(ctxerr("no established session"))?;
                let ctx = session
                    .ctx
                    .as_mut()
                    .ok_or(ctxerr("context not established"))?;
                let (d2, pending) = delegation::respond_with_key(ctx, &mut self.rng, body, 512)
                    .map_err(|e| ctxerr(&e.to_string()))?;
                session.pending = Some(pending);
                Ok(reply_ok(&d2))
            }
            OP_DELEG_CHAIN => {
                let session = self
                    .sessions
                    .get_mut(&key)
                    .ok_or(ctxerr("no established session"))?;
                let pending = session
                    .pending
                    .take()
                    .ok_or(ctxerr("no delegation in progress"))?;
                let ctx = session
                    .ctx
                    .as_mut()
                    .ok_or(ctxerr("context not established"))?;
                let delegated = pending
                    .finish(ctx, body)
                    .map_err(|e| ctxerr(&e.to_string()))?;
                session.delegated = Some(delegated);
                Ok(reply_ok(&[]))
            }
            OP_START => {
                let session = self
                    .sessions
                    .get_mut(&key)
                    .ok_or(ctxerr("no established session"))?;
                let ctx = session
                    .ctx
                    .as_mut()
                    .ok_or(ctxerr("context not established"))?;
                let plain = ctx.unwrap(body).map_err(|e| ctxerr(&e.to_string()))?;
                if plain != b"start-job" {
                    return Err(ctxerr("start command corrupted"));
                }
                let delegated = session
                    .delegated
                    .take()
                    .ok_or(ctxerr("no delegated credential"))?;
                let requestor_identity = ctx.peer().base_identity.clone();
                self.resource
                    .borrow_mut()
                    .mjs_start_job(handle, &requestor_identity, delegated)?;
                self.sessions.remove(&key);
                Ok(reply_ok(&[]))
            }
            OP_STATE => {
                let state = self.resource.borrow().job_state(handle)?;
                let name: &[u8] = match state {
                    JobState::Unsubmitted => b"unsubmitted",
                    JobState::Active => b"active",
                    JobState::Done => b"done",
                    JobState::Cancelled => b"cancelled",
                    JobState::Failed => b"failed",
                };
                Ok(reply_ok(name))
            }
            _ => Err(ctxerr("unknown gram op")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::GramConfig;
    use gridsec_authz::gridmap::GridMapFile;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::store::TrustStore;
    use gridsec_testbed::clock::SimClock;
    use gridsec_testbed::net::{FaultProfile, Network};
    use gridsec_testbed::os::SimOs;
    use gridsec_testbed::rpc::{RpcClient, RpcServer};
    use gridsec_util::retry::RetryPolicy;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        trust: TrustStore,
        jane: Credential,
        host_cred: Credential,
        clock: SimClock,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"gram remote tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
        let host_cred = ca.issue_host_identity(
            &mut rng,
            dn("/O=G/CN=host compute1"),
            vec!["compute1".into()],
            512,
            0,
            500_000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            trust,
            jane,
            host_cred,
            clock: SimClock::starting_at(100),
        }
    }

    fn resource(w: &World) -> GramResource {
        let gridmap = GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n").unwrap();
        GramResource::install(
            SimOs::new(),
            w.clock.clone(),
            "compute1",
            w.trust.clone(),
            w.host_cred.clone(),
            &gridmap,
            GramConfig::default(),
        )
        .unwrap()
    }

    fn rpc_pair(net: &Network, service: Rc<RefCell<RemoteGram>>) -> RpcClient {
        let server = Rc::new(RefCell::new(RpcServer::new(net.register("mjs-host"))));
        let mut rpc = RpcClient::new(
            net.register("jane"),
            "mjs-host",
            RetryPolicy {
                max_attempts: 8,
                base_timeout: 16,
                multiplier: 2,
                max_timeout: 64,
            },
        );
        rpc.set_pump(move || {
            server
                .borrow_mut()
                .poll(&mut |from, body| service.borrow_mut().handle(from, body))
        });
        rpc
    }

    fn submit_over(net: &Network, w: &World) -> (ActiveJob, Rc<RefCell<GramResource>>, RpcClient) {
        let shared = Rc::new(RefCell::new(resource(w)));
        let service = Rc::new(RefCell::new(RemoteGram::new(shared.clone(), b"mjs rng")));
        let mut rpc = rpc_pair(net, service);
        let mut jane = Requestor::new(w.jane.clone(), w.trust.clone(), b"jane remote");
        let host = dn("/O=G/CN=host compute1");
        let job = submit_job_remote(
            &mut jane,
            &mut rpc,
            &JobDescription::new("/bin/sim"),
            &host,
            w.clock.now(),
        )
        .unwrap();
        (job, shared, rpc)
    }

    #[test]
    fn full_chain_over_perfect_network() {
        let w = world();
        let net = Network::new();
        let (job, shared, mut rpc) = submit_over(&net, &w);
        assert!(job.cold_start);
        assert_eq!(job.account, "jdoe");
        assert_eq!(
            shared.borrow().job_state(&job.handle).unwrap(),
            JobState::Active
        );
        assert_eq!(
            job_state_remote(&mut rpc, &job.handle).unwrap(),
            JobState::Active
        );
    }

    #[test]
    fn full_chain_under_lossy_wan() {
        let w = world();
        let net = Network::new();
        net.enable_faults(w.clock.clone(), 0x6AA4, FaultProfile::lossy_wan());
        let (job, shared, mut rpc) = submit_over(&net, &w);
        assert_eq!(
            shared.borrow().job_state(&job.handle).unwrap(),
            JobState::Active
        );
        assert_eq!(
            job_state_remote(&mut rpc, &job.handle).unwrap(),
            JobState::Active
        );
        // The profile actually bit: something was dropped or duplicated,
        // and exactly one LMJFS/MJS chain was started regardless.
        let stats = net.fault_stats().unwrap();
        assert!(stats.dropped + stats.duplicated > 0, "{stats:?}");
        assert_eq!(shared.borrow().stats.cold_starts, 1);
    }

    #[test]
    fn wrong_expected_host_is_rejected_client_side() {
        let w = world();
        let net = Network::new();
        let shared = Rc::new(RefCell::new(resource(&w)));
        let service = Rc::new(RefCell::new(RemoteGram::new(shared, b"mjs rng")));
        let mut rpc = rpc_pair(&net, service);
        let mut jane = Requestor::new(w.jane.clone(), w.trust.clone(), b"jane remote");
        let err = submit_job_remote(
            &mut jane,
            &mut rpc,
            &JobDescription::new("/bin/sim"),
            &dn("/O=G/CN=host evil"),
            w.clock.now(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            GramError::GrimRejected("GRIM credential chains to the wrong host")
        );
    }

    #[test]
    fn partition_yields_transport_error_then_recovery() {
        let w = world();
        let net = Network::new();
        net.enable_faults(w.clock.clone(), 0x6AA5, FaultProfile::default());
        net.partition("jane", "mjs-host");
        let shared = Rc::new(RefCell::new(resource(&w)));
        let service = Rc::new(RefCell::new(RemoteGram::new(shared.clone(), b"mjs rng")));
        let mut rpc = rpc_pair(&net, service);
        let mut jane = Requestor::new(w.jane.clone(), w.trust.clone(), b"jane remote");
        let err = submit_job_remote(
            &mut jane,
            &mut rpc,
            &JobDescription::new("/bin/sim"),
            &dn("/O=G/CN=host compute1"),
            w.clock.now(),
        )
        .unwrap_err();
        assert!(matches!(err, GramError::Transport(_)), "{err:?}");

        net.heal_all();
        let job = submit_job_remote(
            &mut jane,
            &mut rpc,
            &JobDescription::new("/bin/sim"),
            &dn("/O=G/CN=host compute1"),
            w.clock.now(),
        )
        .unwrap();
        assert_eq!(
            shared.borrow().job_state(&job.handle).unwrap(),
            JobState::Active
        );
    }

    #[test]
    fn out_of_order_session_ops_get_err_replies() {
        let w = world();
        let shared = Rc::new(RefCell::new(resource(&w)));
        let mut service = RemoteGram::new(shared, b"mjs rng");
        // No handshake at all: every session op must refuse politely.
        for op in [OP_TOKEN3, OP_DELEG_REQ, OP_DELEG_CHAIN, OP_START] {
            let reply = service.handle("jane", &request(op, "mjs-0", b"junk"));
            let mut d = Decoder::new(&reply);
            assert_eq!(d.get_str().unwrap(), "err");
        }
        // Garbage frame.
        let reply = service.handle("jane", b"\xff\xfe");
        let mut d = Decoder::new(&reply);
        assert_eq!(d.get_str().unwrap(), "err");
    }
}
