//! The requestor side of GT3 GRAM (Figure 4, left).
//!
//! Implements step 1 (sign the job description) and step 7 (mutual
//! authentication with the MJS, *client-side authorization of the MJS via
//! its GRIM credential*, credential delegation, and job start).

use gridsec_crypto::rng::ChaChaRng;
use gridsec_gssapi::context::{EstablishedContext, InitiatorContext, StepResult};
use gridsec_gssapi::delegation;
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::proxy::ProxyType;
use gridsec_pki::store::TrustStore;
use gridsec_tls::handshake::TlsConfig;
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::xmlsig;

use crate::grim::extract_grim_policy;
use crate::resource::GramResource;
use crate::types::{JobDescription, JobState};
use crate::GramError;

/// A running job from the requestor's perspective.
#[derive(Debug)]
pub struct ActiveJob {
    /// The MJS handle.
    pub handle: String,
    /// Whether submission took the cold (MMJFS) path.
    pub cold_start: bool,
    /// The remote account the job runs in.
    pub account: String,
}

/// A GRAM client holding user proxy credentials.
pub struct Requestor {
    pub(crate) credential: Credential,
    pub(crate) trust: TrustStore,
    pub(crate) rng: ChaChaRng,
    pub(crate) request_ttl: u64,
    pub(crate) delegation_key_bits: usize,
    pub(crate) delegation_lifetime: u64,
}

impl Requestor {
    /// Create a requestor. `credential` is typically a proxy from
    /// `grid-proxy-init` style sign-on.
    pub fn new(credential: Credential, trust: TrustStore, rng_seed: &[u8]) -> Self {
        Requestor {
            credential,
            trust,
            rng: ChaChaRng::from_seed_bytes(rng_seed),
            request_ttl: 300,
            delegation_key_bits: 512,
            delegation_lifetime: 43_200,
        }
    }

    /// The requestor's grid identity.
    pub fn identity(&self) -> &DistinguishedName {
        self.credential.base_identity()
    }

    /// Step 1: form and sign the job request. The result is a
    /// transport-independent signed envelope — deliverable to a service
    /// that does not exist yet (the stateless property of §5.1).
    pub fn signed_request(&mut self, description: &JobDescription, now: u64) -> String {
        let env = Envelope::request("createManagedJob", description.to_element());
        xmlsig::sign_envelope(&env, &self.credential, now, self.request_ttl).to_xml()
    }

    /// Full submission: steps 1–7 against a resource, in process.
    pub fn submit_job(
        &mut self,
        resource: &mut GramResource,
        description: &JobDescription,
        now: u64,
    ) -> Result<ActiveJob, GramError> {
        // Steps 1–6.
        let request = self.signed_request(description, now);
        let outcome = resource.submit(&request)?;

        // Step 7.
        self.connect_and_start(resource, &outcome.mjs_handle, Some(&outcome.account), now)?;
        Ok(ActiveJob {
            handle: outcome.mjs_handle,
            cold_start: outcome.cold_start,
            account: outcome.account,
        })
    }

    /// Step 7: connect to the MJS, mutually authenticate, authorize the
    /// MJS via its GRIM credential, delegate, and start the job.
    ///
    /// `expected_account`, when known, is checked against the account the
    /// GRIM credential names — the paper's "running not only on the right
    /// host but also in an appropriate account".
    pub fn connect_and_start(
        &mut self,
        resource: &mut GramResource,
        handle: &str,
        expected_account: Option<&str>,
        now: u64,
    ) -> Result<(), GramError> {
        let ctxerr = |m: &str| GramError::Context(m.to_string());

        // Mutual authentication (token loop, in process).
        let config = TlsConfig::new(self.credential.clone(), self.trust.clone(), now);
        let (mut initiator, token1) = InitiatorContext::new(config, &mut self.rng);
        let mut acceptor = resource.mjs_begin_accept(handle)?;

        let token2 = match acceptor
            .step(&mut self.rng, &token1)
            .map_err(|e| ctxerr(&e.to_string()))?
        {
            StepResult::ContinueWith(t) => t,
            _ => return Err(ctxerr("unexpected acceptor state")),
        };
        let (token3, mut my_ctx) = match initiator
            .step(&token2)
            .map_err(|e| ctxerr(&e.to_string()))?
        {
            StepResult::Established { token, context } => {
                (token.ok_or(ctxerr("missing finished token"))?, context)
            }
            _ => return Err(ctxerr("initiator should finish")),
        };
        let mut mjs_ctx: Box<EstablishedContext> = match acceptor
            .step(&mut self.rng, &token3)
            .map_err(|e| ctxerr(&e.to_string()))?
        {
            StepResult::Established { context, .. } => context,
            _ => return Err(ctxerr("acceptor should finish")),
        };

        // Client-side authorization of the MJS: "the requestor authorizes
        // the MJS as having a GRIM credential issued from an appropriate
        // host credential and containing a Grid identity matching its
        // own."
        let peer = my_ctx.peer().clone();
        let policy = extract_grim_policy(&peer)
            .ok_or(GramError::GrimRejected("peer presented no GRIM credential"))?;
        // Right host: the GRIM chain must bottom out at the resource's
        // host identity (the client knows which host it contacted).
        if peer.base_identity != *resource.host_identity() {
            return Err(GramError::GrimRejected(
                "GRIM credential chains to the wrong host",
            ));
        }
        // Right user: the embedded identity must be our own.
        if &policy.user_identity != self.identity() {
            return Err(GramError::GrimRejected(
                "GRIM credential embeds a different user identity",
            ));
        }
        // Appropriate account.
        if let Some(acct) = expected_account {
            if policy.account != acct {
                return Err(GramError::GrimRejected(
                    "GRIM credential names a different account",
                ));
            }
        }

        // Delegation: the MJS generates a key locally; we sign a proxy.
        let d1 = delegation::request_delegation(&mut my_ctx);
        let (d2, pending) = delegation::respond_with_key(
            &mut mjs_ctx,
            &mut self.rng,
            &d1,
            self.delegation_key_bits,
        )
        .map_err(|e| ctxerr(&e.to_string()))?;
        let d3 = delegation::deliver_proxy(
            &mut my_ctx,
            &mut self.rng,
            &self.credential,
            &d2,
            ProxyType::Impersonation,
            now,
            self.delegation_lifetime,
        )
        .map_err(|e| ctxerr(&e.to_string()))?;
        let delegated = pending
            .finish(&mut mjs_ctx, &d3)
            .map_err(|e| ctxerr(&e.to_string()))?;

        // Start command over the secured channel.
        let start = my_ctx.wrap(b"start-job");
        let start_plain = mjs_ctx.unwrap(&start).map_err(|e| ctxerr(&e.to_string()))?;
        if start_plain != b"start-job" {
            return Err(ctxerr("start command corrupted"));
        }
        let requestor_identity = mjs_ctx.peer().base_identity.clone();
        resource.mjs_start_job(handle, &requestor_identity, delegated)?;
        Ok(())
    }

    /// Monitor a job.
    pub fn job_state(&self, resource: &GramResource, handle: &str) -> Result<JobState, GramError> {
        resource.job_state(handle)
    }

    /// Cancel a job we own.
    pub fn cancel(&mut self, resource: &mut GramResource, handle: &str) -> Result<(), GramError> {
        let me = self.identity().clone();
        resource.cancel(handle, &me)
    }
}
