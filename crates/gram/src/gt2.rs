//! The GT2 GRAM baseline: a **privileged, network-facing gatekeeper**.
//!
//! This is the architecture GT3 §5.2 improves on: the gatekeeper runs as
//! root and parses input straight off the network, so "logic errors,
//! buffer overflows, and the like" in it yield root. We reproduce it so
//! experiment C4 can measure the contrast: component counts, privileged
//! LoC proxies, and compromise blast radii.
//!
//! Flow: TLS-style mutual authentication with the client (over tokens,
//! as GT2 did over TCP), grid-mapfile lookup *by the root process*, then
//! a privileged fork+setuid of a per-user jobmanager which runs the job.

use std::collections::HashMap;

use gridsec_authz::gridmap::GridMapFile;
use gridsec_crypto::rng::ChaChaRng;
use gridsec_gssapi::context::{AcceptorContext, InitiatorContext, StepResult};
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::os::{FileMode, Pid, SimOs, ROOT_UID};
use gridsec_tls::handshake::TlsConfig;

use crate::types::{JobDescription, JobState};
use crate::GramError;

/// A GT2 gatekeeper installation on one host.
pub struct Gt2Gatekeeper {
    /// Host name in the simulated OS.
    pub host: String,
    os: SimOs,
    clock: SimClock,
    trust: TrustStore,
    host_credential: Credential,
    gatekeeper_pid: Pid,
    rng: ChaChaRng,
    jobs: HashMap<String, Gt2Job>,
    next_job: u64,
    /// Jobs run.
    pub jobs_submitted: u64,
}

struct Gt2Job {
    owner: DistinguishedName,
    #[allow(dead_code)]
    jobmanager_pid: Pid,
    job_pid: Pid,
    state: JobState,
}

impl Gt2Gatekeeper {
    /// Install the gatekeeper: writes the grid-mapfile and host
    /// credential, then starts the gatekeeper **as root, listening on the
    /// network, holding the host credential in memory** — the three
    /// properties GT3 eliminates.
    pub fn install(
        os: SimOs,
        clock: SimClock,
        host: &str,
        trust: TrustStore,
        host_credential: Credential,
        gridmap: &GridMapFile,
    ) -> Result<Self, GramError> {
        let oserr = |e: gridsec_testbed::TestbedError| GramError::Os(e.to_string());
        os.add_host(host);
        for entry in gridmap.entries() {
            for account in &entry.accounts {
                os.add_account(host, account).map_err(oserr)?;
            }
        }
        os.write_file(
            host,
            crate::resource::GRIDMAP_PATH,
            ROOT_UID,
            FileMode::world_readable(),
            gridmap.to_text().into_bytes(),
        )
        .map_err(oserr)?;
        os.write_file(
            host,
            crate::resource::HOSTCRED_PATH,
            ROOT_UID,
            FileMode::private(),
            b"host credential key material".to_vec(),
        )
        .map_err(oserr)?;

        let gatekeeper_pid = os.spawn_privileged(host, "gatekeeper").map_err(oserr)?;
        os.mark_network_facing(host, gatekeeper_pid)
            .map_err(oserr)?;
        os.grant_credential(host, gatekeeper_pid, "host credential (in memory)")
            .map_err(oserr)?;

        Ok(Gt2Gatekeeper {
            host: host.to_string(),
            os,
            clock,
            trust,
            host_credential,
            gatekeeper_pid,
            rng: ChaChaRng::from_seed_bytes(format!("gt2:{host}").as_bytes()),
            jobs: HashMap::new(),
            next_job: 0,
            jobs_submitted: 0,
        })
    }

    /// Pid of the gatekeeper (for fault injection).
    pub fn gatekeeper_pid(&self) -> Pid {
        self.gatekeeper_pid
    }

    /// Shared OS handle.
    pub fn os(&self) -> &SimOs {
        &self.os
    }

    /// Submit a job: TLS mutual authentication, root-side grid-mapfile
    /// lookup, privileged fork of the jobmanager, job start.
    pub fn submit(
        &mut self,
        client_credential: &Credential,
        description: &JobDescription,
    ) -> Result<String, GramError> {
        let ctxerr = |m: String| GramError::Context(m);
        let oserr = |e: gridsec_testbed::TestbedError| GramError::Os(e.to_string());
        let now = self.clock.now();

        // GT2 TLS mutual authentication (token loop in process).
        let client_config = TlsConfig::new(client_credential.clone(), self.trust.clone(), now);
        let server_config = TlsConfig::new(self.host_credential.clone(), self.trust.clone(), now);
        let (mut initiator, t1) = InitiatorContext::new(client_config, &mut self.rng);
        let mut acceptor = AcceptorContext::new(server_config);
        let t2 = match acceptor
            .step(&mut self.rng, &t1)
            .map_err(|e| ctxerr(e.to_string()))?
        {
            StepResult::ContinueWith(t) => t,
            _ => return Err(ctxerr("acceptor state".into())),
        };
        let (t3, mut client_ctx) = match initiator.step(&t2).map_err(|e| ctxerr(e.to_string()))? {
            StepResult::Established { token, context } => {
                (token.ok_or(ctxerr("missing token".into()))?, context)
            }
            _ => return Err(ctxerr("initiator state".into())),
        };
        let mut server_ctx = match acceptor
            .step(&mut self.rng, &t3)
            .map_err(|e| ctxerr(e.to_string()))?
        {
            StepResult::Established { context, .. } => context,
            _ => return Err(ctxerr("acceptor state".into())),
        };

        // Job description over the secured channel.
        let wire = client_ctx.wrap(description.to_element().to_xml().as_bytes());
        let received = server_ctx
            .unwrap(&wire)
            .map_err(|e| ctxerr(e.to_string()))?;
        let parsed = gridsec_xml::Element::parse(&String::from_utf8_lossy(&received))
            .ok()
            .and_then(|el| JobDescription::from_element(&el))
            .ok_or_else(|| GramError::RequestRejected("bad job description".into()))?;

        // Root-side grid-mapfile lookup.
        let user_dn = server_ctx.peer().base_identity.clone();
        let map_bytes = self
            .os
            .read_file(&self.host, crate::resource::GRIDMAP_PATH, ROOT_UID)
            .map_err(oserr)?;
        let gridmap = GridMapFile::parse(&String::from_utf8_lossy(&map_bytes))
            .map_err(|e| GramError::Os(e.to_string()))?;
        let account = gridmap
            .lookup(&user_dn)
            .ok_or_else(|| GramError::NoMapping(user_dn.to_string()))?
            .to_string();

        // Privileged fork: the root gatekeeper setuid-spawns the
        // jobmanager, which starts the job.
        let jobmanager_pid = self
            .os
            .setuid_spawn(
                &self.host,
                self.gatekeeper_pid,
                &format!("jobmanager-{account}"),
                &account,
            )
            .map_err(oserr)?;
        self.os
            .grant_credential(
                &self.host,
                jobmanager_pid,
                &format!("delegated proxy of {user_dn}"),
            )
            .map_err(oserr)?;
        let job_pid = self
            .os
            .spawn(&self.host, &format!("job:{}", parsed.executable), &account)
            .map_err(oserr)?;

        self.next_job += 1;
        let handle = format!("gt2:job-{}", self.next_job);
        self.jobs.insert(
            handle.clone(),
            Gt2Job {
                owner: user_dn,
                jobmanager_pid,
                job_pid,
                state: JobState::Active,
            },
        );
        self.jobs_submitted += 1;
        Ok(handle)
    }

    /// Job state.
    pub fn job_state(&self, handle: &str) -> Result<JobState, GramError> {
        self.jobs
            .get(handle)
            .map(|j| j.state)
            .ok_or_else(|| GramError::NoSuchJob(handle.to_string()))
    }

    /// Cancel (owner only).
    pub fn cancel(&mut self, handle: &str, caller: &DistinguishedName) -> Result<(), GramError> {
        let job = self
            .jobs
            .get_mut(handle)
            .ok_or_else(|| GramError::NoSuchJob(handle.to_string()))?;
        if &job.owner != caller {
            return Err(GramError::NotAuthorized(format!(
                "{caller} does not own {handle}"
            )));
        }
        self.os
            .kill(&self.host, job.job_pid)
            .map_err(|e| GramError::Os(e.to_string()))?;
        job.state = JobState::Cancelled;
        Ok(())
    }
}
