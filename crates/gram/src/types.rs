//! Job descriptions and lifecycle state.

use gridsec_xml::Element;

/// A GRAM job description (RSL in GT2, XML in GT3 — paper §5.3: "the
/// name of the executable, the working directory, where input and output
/// should be stored, and the queue in which it should run").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobDescription {
    /// Path of the executable to run.
    pub executable: String,
    /// Command-line arguments.
    pub arguments: Vec<String>,
    /// Working directory.
    pub directory: String,
    /// Where to write stdout.
    pub stdout: String,
    /// Target queue.
    pub queue: String,
}

impl JobDescription {
    /// A minimal description for `executable`.
    pub fn new(executable: &str) -> Self {
        JobDescription {
            executable: executable.to_string(),
            arguments: Vec::new(),
            directory: "/".to_string(),
            stdout: "/dev/null".to_string(),
            queue: "batch".to_string(),
        }
    }

    /// Builder: arguments.
    pub fn with_args(mut self, args: &[&str]) -> Self {
        self.arguments = args.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Builder: queue.
    pub fn with_queue(mut self, queue: &str) -> Self {
        self.queue = queue.to_string();
        self
    }

    /// Render as the XML payload of a job request.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("gram:JobDescription")
            .with_child(Element::new("gram:Executable").with_text(self.executable.clone()))
            .with_child(Element::new("gram:Directory").with_text(self.directory.clone()))
            .with_child(Element::new("gram:Stdout").with_text(self.stdout.clone()))
            .with_child(Element::new("gram:Queue").with_text(self.queue.clone()));
        for a in &self.arguments {
            el.push_child(Element::new("gram:Argument").with_text(a.clone()));
        }
        el
    }

    /// Parse from the XML payload.
    pub fn from_element(el: &Element) -> Option<JobDescription> {
        Some(JobDescription {
            executable: el.find("gram:Executable")?.text_content(),
            directory: el.find("gram:Directory")?.text_content(),
            stdout: el.find("gram:Stdout")?.text_content(),
            queue: el.find("gram:Queue")?.text_content(),
            arguments: el
                .find_all("gram:Argument")
                .map(|a| a.text_content())
                .collect(),
        })
    }
}

/// Lifecycle state of a managed job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    /// MJS exists, job not yet started (awaiting step 7).
    Unsubmitted,
    /// Running.
    Active,
    /// Completed.
    Done,
    /// Cancelled by the owner.
    Cancelled,
    /// Failed.
    Failed,
}

impl JobState {
    /// Short text form used in service data elements.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Unsubmitted => "unsubmitted",
            JobState::Active => "active",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_roundtrip() {
        let desc = JobDescription::new("/bin/simulate")
            .with_args(&["--steps", "100"])
            .with_queue("gpu");
        let parsed = JobDescription::from_element(&desc.to_element()).unwrap();
        assert_eq!(parsed, desc);
    }

    #[test]
    fn missing_fields_rejected() {
        let el = Element::new("gram:JobDescription")
            .with_child(Element::new("gram:Executable").with_text("/bin/x"));
        assert!(JobDescription::from_element(&el).is_none());
    }

    #[test]
    fn state_names() {
        assert_eq!(JobState::Active.as_str(), "active");
        assert_eq!(JobState::Unsubmitted.as_str(), "unsubmitted");
    }
}
