//! The resource side of GT3 GRAM: Proxy Router, MMJFS, Setuid Starter,
//! GRIM, LMJFS, and MJS instances, with full privilege bookkeeping on the
//! simulated OS.

use std::collections::HashMap;

use gridsec_authz::gridmap::GridMapFile;
use gridsec_crypto::rng::ChaChaRng;
use gridsec_gssapi::context::AcceptorContext;
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::CrlStore;
use gridsec_pki::store::TrustStore;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::os::{FileMode, Pid, SimOs, ROOT_UID};
use gridsec_tls::handshake::TlsConfig;
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::xmlsig;

use crate::grim::issue_grim_credential;
use crate::types::{JobDescription, JobState};
use crate::GramError;

/// Paths used on the simulated host.
pub const GRIDMAP_PATH: &str = "/etc/grid-security/grid-mapfile";
/// Host credential path (root-only).
pub const HOSTCRED_PATH: &str = "/etc/grid-security/hostcred.p12";
/// Name of the installed Setuid Starter binary.
pub const SETUID_STARTER: &str = "setuid-starter";
/// Name of the installed GRIM binary.
pub const GRIM_BINARY: &str = "grim";

/// Tunables for a GRAM installation.
#[derive(Clone, Debug)]
pub struct GramConfig {
    /// RSA key size for GRIM proxies and job delegation.
    pub key_bits: usize,
    /// Lifetime of GRIM credentials.
    pub grim_lifetime: u64,
    /// Local policy string GRIM embeds.
    pub local_policy: String,
}

impl Default for GramConfig {
    fn default() -> Self {
        GramConfig {
            key_bits: 512,
            grim_lifetime: 43_200,
            local_policy: "queues=batch".to_string(),
        }
    }
}

/// Counters describing a resource's GRAM activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GramStats {
    /// Total successful job submissions.
    pub jobs_submitted: u64,
    /// Submissions that had to start an LMJFS (MMJFS path).
    pub cold_starts: u64,
    /// Submissions routed to a resident LMJFS.
    pub warm_starts: u64,
    /// Rejected requests.
    pub denied: u64,
}

struct LmjfsInstance {
    pid: Pid,
    user_identity: DistinguishedName,
    credential: Credential,
}

struct MjsInstance {
    account: String,
    owner: DistinguishedName,
    credential: Credential,
    description: JobDescription,
    state: JobState,
    job_pid: Option<Pid>,
}

/// Result of routing a signed job request (steps 1–6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Handle of the created MJS.
    pub mjs_handle: String,
    /// `true` if the MMJFS cold path ran (Setuid Starter + GRIM).
    pub cold_start: bool,
    /// The account the job will run in.
    pub account: String,
}

/// One GRAM-managed compute resource.
pub struct GramResource {
    /// Host name in the simulated OS.
    pub host: String,
    os: SimOs,
    clock: SimClock,
    trust: TrustStore,
    crls: CrlStore,
    host_credential: Credential,
    config: GramConfig,
    rng: ChaChaRng,
    mmjfs_pid: Pid,
    router_pid: Pid,
    lmjfs: HashMap<String, LmjfsInstance>,
    mjs: HashMap<String, MjsInstance>,
    next_mjs_id: u64,
    /// Activity counters.
    pub stats: GramStats,
}

impl GramResource {
    /// Install GT3 GRAM on `host`: writes the grid-mapfile and host
    /// credential, installs the two setuid binaries, and starts the
    /// unprivileged Proxy Router and MMJFS.
    pub fn install(
        os: SimOs,
        clock: SimClock,
        host: &str,
        trust: TrustStore,
        host_credential: Credential,
        gridmap: &GridMapFile,
        config: GramConfig,
    ) -> Result<Self, GramError> {
        let oserr = |e: gridsec_testbed::TestbedError| GramError::Os(e.to_string());
        os.add_host(host);
        os.add_account(host, "gram").map_err(oserr)?;
        // Accounts for every mapped user.
        for entry in gridmap.entries() {
            for account in &entry.accounts {
                os.add_account(host, account).map_err(oserr)?;
            }
        }
        os.write_file(
            host,
            GRIDMAP_PATH,
            ROOT_UID,
            FileMode::world_readable(),
            gridmap.to_text().into_bytes(),
        )
        .map_err(oserr)?;
        os.write_file(
            host,
            HOSTCRED_PATH,
            ROOT_UID,
            FileMode::private(),
            b"host credential key material".to_vec(),
        )
        .map_err(oserr)?;
        os.install_setuid_binary(host, SETUID_STARTER)
            .map_err(oserr)?;
        os.install_setuid_binary(host, GRIM_BINARY).map_err(oserr)?;

        // The two long-running network services, both unprivileged.
        let router_pid = os.spawn(host, "proxy-router", "gram").map_err(oserr)?;
        os.mark_network_facing(host, router_pid).map_err(oserr)?;
        let mmjfs_pid = os.spawn(host, "MMJFS", "gram").map_err(oserr)?;
        os.mark_network_facing(host, mmjfs_pid).map_err(oserr)?;

        let rng = ChaChaRng::from_seed_bytes(format!("gram:{host}").as_bytes());
        Ok(GramResource {
            host: host.to_string(),
            os,
            clock,
            trust,
            crls: CrlStore::new(),
            host_credential,
            config,
            rng,
            mmjfs_pid,
            router_pid,
            lmjfs: HashMap::new(),
            mjs: HashMap::new(),
            next_mjs_id: 0,
            stats: GramStats::default(),
        })
    }

    /// Install revocation state checked on request verification.
    pub fn set_crls(&mut self, crls: CrlStore) {
        self.crls = crls;
    }

    /// Pid of the MMJFS (for fault injection).
    pub fn mmjfs_pid(&self) -> Pid {
        self.mmjfs_pid
    }

    /// Pid of the Proxy Router (for fault injection).
    pub fn router_pid(&self) -> Pid {
        self.router_pid
    }

    /// Pid of a resident LMJFS, if any.
    pub fn lmjfs_pid(&self, account: &str) -> Option<Pid> {
        self.lmjfs.get(account).map(|l| l.pid)
    }

    /// Shared OS handle (for privilege audits).
    pub fn os(&self) -> &SimOs {
        &self.os
    }

    /// The host's grid identity (publicly known; clients pin it in
    /// step 7's GRIM check).
    pub fn host_identity(&self) -> &DistinguishedName {
        self.host_credential.base_identity()
    }

    fn read_gridmap(&self, euid: u32) -> Result<GridMapFile, GramError> {
        let bytes = self
            .os
            .read_file(&self.host, GRIDMAP_PATH, euid)
            .map_err(|e| GramError::Os(e.to_string()))?;
        GridMapFile::parse(&String::from_utf8_lossy(&bytes))
            .map_err(|e| GramError::Os(e.to_string()))
    }

    /// Steps 1–6 of Figure 4: route a signed job request, cold-starting an
    /// LMJFS when needed, and create the MJS.
    pub fn submit(&mut self, signed_request_xml: &str) -> Result<SubmitOutcome, GramError> {
        let deny = |s: &mut GramStats| s.denied += 1;
        let now = self.clock.now();

        // ---- Step 2: the Proxy Router accepts the request. It verifies
        // the signature (it is unprivileged; verification needs no
        // secrets) to learn the requestor identity for routing.
        let env = Envelope::parse(signed_request_xml).map_err(|e| {
            deny(&mut self.stats);
            GramError::RequestRejected(e.to_string())
        })?;
        let verified =
            xmlsig::verify_envelope(&env, &self.trust, &self.crls, now).map_err(|e| {
                deny(&mut self.stats);
                GramError::RequestRejected(e.to_string())
            })?;
        let identity = verified.identity;
        // GT semantics: a *limited* proxy may move data but must not start
        // jobs (the site-defined reduced-rights set of §3). GridFTP-style
        // services accept limited proxies; GRAM refuses them.
        if identity.rights == gridsec_pki::validate::EffectiveRights::Limited {
            deny(&mut self.stats);
            return Err(GramError::NotAuthorized(
                "limited proxies may not submit jobs".to_string(),
            ));
        }
        let user_dn = identity.base_identity.clone();

        // ---- Step 3: grid-mapfile lookup (MMJFS euid can read it; it is
        // world-readable). Router and MMJFS run as the same account here.
        let mmjfs_euid = self
            .os
            .process(&self.host, self.mmjfs_pid)
            .map_err(|e| GramError::Os(e.to_string()))?
            .euid;
        let gridmap = self.read_gridmap(mmjfs_euid)?;
        let account = gridmap
            .lookup(&user_dn)
            .ok_or_else(|| {
                deny(&mut self.stats);
                GramError::NoMapping(user_dn.to_string())
            })?
            .to_string();

        // ---- Steps 4–5 (cold path) or direct routing (warm path).
        let cold_start = !self.lmjfs.contains_key(&account);
        if cold_start {
            self.cold_start_lmjfs(&account, &user_dn)?;
        }
        let lmjfs = self.lmjfs.get(&account).expect("just ensured");

        // ---- Step 6: the LMJFS re-verifies the signed request and checks
        // that the requestor is authorized for this account.
        if !gridmap.permits(&user_dn, &account) {
            deny(&mut self.stats);
            return Err(GramError::NotAuthorized(format!(
                "{user_dn} may not use account {account}"
            )));
        }
        // An LMJFS serves exactly one user identity; a different mapped
        // user gets their own LMJFS/account (enforced by mapping), but a
        // mismatch here would mean a routing bug or attack.
        if lmjfs.user_identity != user_dn {
            deny(&mut self.stats);
            return Err(GramError::NotAuthorized(format!(
                "LMJFS for {account} serves {}, not {user_dn}",
                lmjfs.user_identity
            )));
        }
        let description = env
            .payload()
            .and_then(JobDescription::from_element)
            .ok_or_else(|| {
                deny(&mut self.stats);
                GramError::RequestRejected("missing or malformed job description".to_string())
            })?;

        // Create the MJS inside the LMJFS's hosting environment.
        self.next_mjs_id += 1;
        let handle = format!("gsh:mjs-{}-{}", account, self.next_mjs_id);
        self.mjs.insert(
            handle.clone(),
            MjsInstance {
                account: account.clone(),
                owner: user_dn,
                credential: lmjfs.credential.clone(),
                description,
                state: JobState::Unsubmitted,
                job_pid: None,
            },
        );
        self.stats.jobs_submitted += 1;
        if cold_start {
            self.stats.cold_starts += 1;
        } else {
            self.stats.warm_starts += 1;
        }
        Ok(SubmitOutcome {
            mjs_handle: handle,
            cold_start,
            account,
        })
    }

    /// Steps 4–5: MMJFS invokes the Setuid Starter, which launches the
    /// LMJFS in the user's account; the LMJFS invokes GRIM for creds.
    fn cold_start_lmjfs(
        &mut self,
        account: &str,
        user_dn: &DistinguishedName,
    ) -> Result<(), GramError> {
        let oserr = |e: gridsec_testbed::TestbedError| GramError::Os(e.to_string());
        let now = self.clock.now();

        // Step 4: Setuid Starter — runs privileged for exactly one spawn.
        let starter_pid = self
            .os
            .exec_setuid_binary(&self.host, self.mmjfs_pid, SETUID_STARTER)
            .map_err(oserr)?;
        let lmjfs_pid = self
            .os
            .setuid_spawn(&self.host, starter_pid, "LMJFS", account)
            .map_err(oserr)?;
        self.os.kill(&self.host, starter_pid).map_err(oserr)?;

        // Step 5: GRIM — privileged read of the host credential, one
        // proxy issuance, then exit.
        let grim_pid = self
            .os
            .exec_setuid_binary(&self.host, lmjfs_pid, GRIM_BINARY)
            .map_err(oserr)?;
        // The privileged read (enforced by the simulated OS).
        let _host_key_material = self
            .os
            .read_file(&self.host, HOSTCRED_PATH, ROOT_UID)
            .map_err(oserr)?;
        let credential = issue_grim_credential(
            &mut self.rng,
            &self.host_credential,
            user_dn,
            account,
            &self.config.local_policy,
            self.config.key_bits,
            now,
            self.config.grim_lifetime,
        )?;
        self.os.kill(&self.host, grim_pid).map_err(oserr)?;
        self.os
            .grant_credential(
                &self.host,
                lmjfs_pid,
                &format!("GRIM proxy for {user_dn} in {account}"),
            )
            .map_err(oserr)?;
        // The LMJFS registers with the Proxy Router (our routing map).
        self.lmjfs.insert(
            account.to_string(),
            LmjfsInstance {
                pid: lmjfs_pid,
                user_identity: user_dn.clone(),
                credential,
            },
        );
        Ok(())
    }

    /// Step 7 server side: begin accepting a mutually-authenticated
    /// context on an MJS. The acceptor authenticates with the MJS's GRIM
    /// credential.
    pub fn mjs_begin_accept(&mut self, handle: &str) -> Result<AcceptorContext, GramError> {
        let mjs = self
            .mjs
            .get(handle)
            .ok_or_else(|| GramError::NoSuchJob(handle.to_string()))?;
        let config = TlsConfig::new(mjs.credential.clone(), self.trust.clone(), self.clock.now());
        Ok(AcceptorContext::new(config))
    }

    /// Step 7 completion, MJS side: after the context is established and
    /// the requestor has delegated `delegated`, verify the requestor is
    /// the MJS owner and start the job process in the local account.
    pub fn mjs_start_job(
        &mut self,
        handle: &str,
        requestor: &DistinguishedName,
        delegated: Credential,
    ) -> Result<Pid, GramError> {
        let oserr = |e: gridsec_testbed::TestbedError| GramError::Os(e.to_string());
        let mjs = self
            .mjs
            .get_mut(handle)
            .ok_or_else(|| GramError::NoSuchJob(handle.to_string()))?;
        if mjs.state != JobState::Unsubmitted {
            return Err(GramError::BadState("job already started"));
        }
        // "The MJS verifies that the requestor is authorized to initiate
        // processes in the local account."
        if &mjs.owner != requestor {
            return Err(GramError::NotAuthorized(format!(
                "{requestor} does not own {handle}"
            )));
        }
        // Delegated credential must speak for the requestor.
        if delegated.base_identity() != requestor {
            return Err(GramError::NotAuthorized(
                "delegated credential is not the requestor's".to_string(),
            ));
        }
        let job_pid = self
            .os
            .spawn(
                &self.host,
                &format!("job:{}", mjs.description.executable),
                &mjs.account,
            )
            .map_err(oserr)?;
        self.os
            .grant_credential(
                &self.host,
                job_pid,
                &format!("delegated proxy of {requestor}"),
            )
            .map_err(oserr)?;
        mjs.job_pid = Some(job_pid);
        mjs.state = JobState::Active;
        Ok(job_pid)
    }

    /// Monitoring: job state (any authenticated party may query in GT3;
    /// SDE access control is out of scope here).
    pub fn job_state(&self, handle: &str) -> Result<JobState, GramError> {
        self.mjs
            .get(handle)
            .map(|m| m.state)
            .ok_or_else(|| GramError::NoSuchJob(handle.to_string()))
    }

    /// The job description held by an MJS.
    pub fn job_description(&self, handle: &str) -> Result<&JobDescription, GramError> {
        self.mjs
            .get(handle)
            .map(|m| &m.description)
            .ok_or_else(|| GramError::NoSuchJob(handle.to_string()))
    }

    /// Management: cancel a job (owner only).
    pub fn cancel(&mut self, handle: &str, caller: &DistinguishedName) -> Result<(), GramError> {
        let mjs = self
            .mjs
            .get_mut(handle)
            .ok_or_else(|| GramError::NoSuchJob(handle.to_string()))?;
        if &mjs.owner != caller {
            return Err(GramError::NotAuthorized(format!(
                "{caller} does not own {handle}"
            )));
        }
        if mjs.state != JobState::Active {
            return Err(GramError::BadState("job not active"));
        }
        if let Some(pid) = mjs.job_pid {
            self.os
                .kill(&self.host, pid)
                .map_err(|e| GramError::Os(e.to_string()))?;
        }
        mjs.state = JobState::Cancelled;
        Ok(())
    }

    /// Simulation helper: mark an active job as completed.
    pub fn complete(&mut self, handle: &str) -> Result<(), GramError> {
        let mjs = self
            .mjs
            .get_mut(handle)
            .ok_or_else(|| GramError::NoSuchJob(handle.to_string()))?;
        if mjs.state != JobState::Active {
            return Err(GramError::BadState("job not active"));
        }
        if let Some(pid) = mjs.job_pid {
            self.os
                .kill(&self.host, pid)
                .map_err(|e| GramError::Os(e.to_string()))?;
        }
        mjs.state = JobState::Done;
        Ok(())
    }

    /// Live MJS handles.
    pub fn job_handles(&self) -> Vec<String> {
        let mut v: Vec<String> = self.mjs.keys().cloned().collect();
        v.sort();
        v
    }

    /// Pid of the job process an MJS started, if any.
    pub fn job_pid(&self, handle: &str) -> Result<Option<Pid>, GramError> {
        self.mjs
            .get(handle)
            .map(|m| m.job_pid)
            .ok_or_else(|| GramError::NoSuchJob(handle.to_string()))
    }

    /// Crash the MMJFS/MJS service process: every in-memory MJS instance
    /// is lost. LMJFS processes (separate processes in separate
    /// accounts), already-started job processes, and all on-disk state
    /// survive — exactly the blast radius of one service dying in the
    /// GT3 architecture. Counters are external accounting and persist.
    pub fn crash_mmjfs(&mut self) {
        self.mjs.clear();
    }

    /// Recovery: rebuild one MJS from a journal record. The GRIM
    /// credential is not serializable (private key material never
    /// leaves the process that holds it) — it is re-borrowed from the
    /// surviving LMJFS for `account`, which also re-establishes the
    /// owner binding the original submit enforced.
    pub fn restore_mjs(
        &mut self,
        handle: &str,
        account: &str,
        description: JobDescription,
        state: JobState,
        job_pid: Option<Pid>,
        mjs_id: u64,
    ) -> Result<(), GramError> {
        let lmjfs = self.lmjfs.get(account).ok_or_else(|| {
            GramError::Os(format!("no resident LMJFS for {account} during recovery"))
        })?;
        self.mjs.insert(
            handle.to_string(),
            MjsInstance {
                account: account.to_string(),
                owner: lmjfs.user_identity.clone(),
                credential: lmjfs.credential.clone(),
                description,
                state,
                job_pid,
            },
        );
        self.next_mjs_id = self.next_mjs_id.max(mjs_id);
        Ok(())
    }
}
