//! Crash-durable GRAM: the Figure-4 service side as a restartable
//! process.
//!
//! In the GT3 architecture the MMJFS and the MJS hosting environment
//! are one unprivileged service process; LMJFS processes run separately
//! in user accounts, and started jobs are ordinary OS processes. A
//! crash of the service therefore loses the in-memory job table and
//! every half-open step-7 session, but *not* the LMJFS credentials, the
//! job processes, or anything on disk. [`DurableGram`] reproduces
//! exactly that blast radius: submissions and job starts are journaled
//! write-ahead, recovery replays them through
//! [`GramResource::restore_mjs`], and step-7 sessions are simply gone —
//! clients re-establish them via
//! [`submit_job_resilient`][crate::remote::submit_job_resilient].
//!
//! GRIM credentials are never serialized (private keys do not leave the
//! process holding them); recovery re-borrows them from the surviving
//! LMJFS, which also re-pins the owner identity.
//!
//! Kill points (see `testbed::faults`):
//!
//! * `gram.submit.exec` — before the submission executes.
//! * `gram.submit.journaled` — MJS created and journaled, reply lost.
//! * `gram.session.exec` — during a step-7 token/delegation exchange
//!   (purely in-memory state; nothing to journal).
//! * `gram.start.exec` — before the job process spawns.
//! * `gram.start.journaled` — job spawned and journaled, reply lost.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use gridsec_pki::encoding::{Decoder, Encoder};
use gridsec_testbed::faults::{CrashPlan, CrashRecover, Journal};
use gridsec_testbed::os::Pid;
use gridsec_util::trace;

use crate::remote::{RemoteGram, OP_START, OP_SUBMIT};
use crate::resource::GramResource;
use crate::types::{JobDescription, JobState};

/// Journal tag for a completed submission (steps 1–6).
pub const TAG_SUBMIT: &str = "gram-submit";
/// Journal tag for a completed job start (step 7).
pub const TAG_START: &str = "gram-start";

/// A [`RemoteGram`] wrapped in write-ahead journaling and crash
/// recovery; plug into a
/// [`CrashableServer`][gridsec_testbed::faults::CrashableServer] as its
/// [`CrashRecover`] application.
pub struct DurableGram {
    resource: Rc<RefCell<GramResource>>,
    remote: RemoteGram,
    seed: Vec<u8>,
    /// Bumped on every restart so the reborn acceptor draws a fresh —
    /// but still seed-deterministic — randomness stream.
    generation: u64,
    plan: CrashPlan,
    journal: Journal,
    /// (caller, call-id) → exact submit reply already served.
    submitted: HashMap<(String, u64), Vec<u8>>,
    /// (caller, mjs-handle) pairs whose start command completed.
    started: HashSet<(String, String)>,
}

impl DurableGram {
    /// Serve `resource` durably, journaling into `journal`. An existing
    /// journal is replayed immediately.
    pub fn new(
        resource: Rc<RefCell<GramResource>>,
        seed: &[u8],
        plan: CrashPlan,
        journal: Journal,
    ) -> Self {
        let remote = RemoteGram::new(resource.clone(), seed);
        let mut durable = DurableGram {
            resource,
            remote,
            seed: seed.to_vec(),
            generation: 0,
            plan,
            journal,
            submitted: HashMap::new(),
            started: HashSet::new(),
        };
        durable.recover();
        durable
    }

    /// The shared resource handle.
    pub fn resource(&self) -> Rc<RefCell<GramResource>> {
        self.resource.clone()
    }

    /// Number of distinct submissions journaled (retransmits and
    /// replays do not count).
    pub fn submitted_count(&self) -> usize {
        self.submitted.len()
    }

    /// Number of distinct job starts journaled.
    pub fn started_count(&self) -> usize {
        self.started.len()
    }

    fn encode_submit_record(&self, from: &str, id: u64, reply: &[u8], handle: &str) -> Vec<u8> {
        let resource = self.resource.borrow();
        let account_desc = (|| {
            let desc = resource.job_description(handle).ok()?.clone();
            Some(desc)
        })();
        let desc = account_desc.unwrap_or_else(|| JobDescription::new("<unknown>"));
        // `gsh:mjs-<account>-<n>`: the trailing component is the MJS id
        // counter that recovery must not reuse.
        let mjs_id: u64 = handle
            .rsplit('-')
            .next()
            .and_then(|n| n.parse().ok())
            .unwrap_or(0);
        let mut d = Decoder::new(reply);
        let account = (|| {
            d.get_str().ok()?; // status
            let body = d.get_bytes().ok()?;
            let mut b = Decoder::new(&body);
            b.get_str().ok()?; // handle
            b.get_u8().ok()?; // cold
            b.get_str().ok()
        })()
        .unwrap_or_default();
        let mut e = Encoder::new();
        e.put_str(from)
            .put_u64(id)
            .put_bytes(reply)
            .put_str(handle)
            .put_str(&account)
            .put_u64(mjs_id)
            .put_str(&desc.executable);
        e.put_seq(&desc.arguments, |enc, a| {
            enc.put_str(a);
        });
        e.put_str(&desc.directory)
            .put_str(&desc.stdout)
            .put_str(&desc.queue);
        e.finish()
    }

    fn handle_submit(&mut self, from: &str, id: u64, payload: &[u8]) -> Vec<u8> {
        let key = (from.to_string(), id);
        if let Some(reply) = self.submitted.get(&key) {
            trace::event("gram.submit.replayed", &format!("from={from} id={id}"));
            return reply.clone();
        }
        if self.plan.fires("gram.submit.exec") {
            return Vec::new();
        }
        let reply = self.remote.handle(from, payload);
        let handle = submit_reply_handle(&reply);
        if let Some(handle) = handle {
            let record = self.encode_submit_record(from, id, &reply, &handle);
            self.journal
                .append(TAG_SUBMIT, &record)
                .expect("journal submit");
            if self.plan.fires("gram.submit.journaled") {
                return Vec::new();
            }
            self.submitted.insert(key, reply.clone());
        }
        reply
    }

    fn handle_start(&mut self, from: &str, handle: &str, payload: &[u8]) -> Vec<u8> {
        // Re-execution after a restart: the session died with the old
        // incarnation, but if the journal proves this exact start
        // already ran and the job is live, acknowledge instead of
        // failing (or worse, double-spawning).
        let key = (from.to_string(), handle.to_string());
        if self.started.contains(&key)
            && self.resource.borrow().job_state(handle) == Ok(JobState::Active)
        {
            trace::event("gram.start.replayed", &format!("handle={handle}"));
            let mut e = Encoder::new();
            e.put_str("ok").put_bytes(&[]);
            return e.finish();
        }
        if self.plan.fires("gram.start.exec") {
            return Vec::new();
        }
        let reply = self.remote.handle(from, payload);
        if reply_is_ok(&reply) {
            let job_pid = self
                .resource
                .borrow()
                .job_pid(handle)
                .ok()
                .flatten()
                .unwrap_or(0);
            let mut e = Encoder::new();
            e.put_str(from).put_str(handle).put_u64(job_pid);
            self.journal
                .append(TAG_START, &e.finish())
                .expect("journal start");
            if self.plan.fires("gram.start.journaled") {
                return Vec::new();
            }
            self.started.insert(key);
        }
        reply
    }
}

fn reply_is_ok(reply: &[u8]) -> bool {
    Decoder::new(reply).get_str().is_ok_and(|s| s == "ok")
}

/// Extract the MJS handle from an `ok` submit reply.
fn submit_reply_handle(reply: &[u8]) -> Option<String> {
    let mut d = Decoder::new(reply);
    if d.get_str().ok()? != "ok" {
        return None;
    }
    let body = d.get_bytes().ok()?;
    Decoder::new(&body).get_str().ok()
}

struct SubmitRecord {
    from: String,
    id: u64,
    reply: Vec<u8>,
    handle: String,
    account: String,
    mjs_id: u64,
    description: JobDescription,
}

fn decode_submit_record(body: &[u8]) -> Option<SubmitRecord> {
    let mut d = Decoder::new(body);
    Some(SubmitRecord {
        from: d.get_str().ok()?,
        id: d.get_u64().ok()?,
        reply: d.get_bytes().ok()?,
        handle: d.get_str().ok()?,
        account: d.get_str().ok()?,
        mjs_id: d.get_u64().ok()?,
        description: JobDescription {
            executable: d.get_str().ok()?,
            arguments: d.get_seq(|g| g.get_str()).ok()?,
            directory: d.get_str().ok()?,
            stdout: d.get_str().ok()?,
            queue: d.get_str().ok()?,
        },
    })
}

impl CrashRecover for DurableGram {
    fn handle(&mut self, from: &str, id: u64, body: &[u8]) -> Vec<u8> {
        let mut d = Decoder::new(body);
        let parsed = d.get_str().and_then(|op| Ok((op, d.get_str()?)));
        let Ok((op, handle)) = parsed else {
            return self.remote.handle(from, body);
        };
        match op.as_str() {
            OP_SUBMIT => self.handle_submit(from, id, body),
            OP_START => self.handle_start(from, &handle, body),
            _ => {
                // Token and delegation exchanges: in-memory session
                // state only, nothing durable to write.
                if self.plan.fires("gram.session.exec") {
                    return Vec::new();
                }
                self.remote.handle(from, body)
            }
        }
    }

    fn crash(&mut self) {
        // The service process dies: job table and sessions are gone.
        self.resource.borrow_mut().crash_mmjfs();
        self.generation += 1;
        let mut seed = self.seed.clone();
        seed.extend_from_slice(&self.generation.to_be_bytes());
        self.remote = RemoteGram::new(self.resource.clone(), &seed);
        self.submitted.clear();
        self.started.clear();
    }

    fn recover(&mut self) {
        self.crash();
        let records = self.journal.records();
        let mut submits: Vec<SubmitRecord> = Vec::new();
        let mut starts: HashMap<String, Pid> = HashMap::new();
        for (tag, body) in &records {
            match tag.as_str() {
                TAG_SUBMIT => {
                    if let Some(rec) = decode_submit_record(body) {
                        submits.push(rec);
                    }
                }
                TAG_START => {
                    let mut d = Decoder::new(body);
                    let parsed = (|| {
                        let from = d.get_str().ok()?;
                        let handle = d.get_str().ok()?;
                        let pid = d.get_u64().ok()?;
                        Some((from, handle, pid))
                    })();
                    if let Some((from, handle, pid)) = parsed {
                        starts.insert(handle.clone(), pid);
                        self.started.insert((from, handle));
                    }
                }
                _ => {}
            }
        }
        for rec in submits {
            let (state, job_pid) = match starts.get(&rec.handle) {
                Some(&pid) => (JobState::Active, (pid != 0).then_some(pid)),
                None => (JobState::Unsubmitted, None),
            };
            if self
                .resource
                .borrow_mut()
                .restore_mjs(
                    &rec.handle,
                    &rec.account,
                    rec.description,
                    state,
                    job_pid,
                    rec.mjs_id,
                )
                .is_ok()
            {
                self.submitted.insert((rec.from, rec.id), rec.reply);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::{job_state_remote, submit_job_resilient};
    use crate::requestor::Requestor;
    use crate::resource::GramConfig;
    use gridsec_authz::gridmap::GridMapFile;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::credential::Credential;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_testbed::clock::SimClock;
    use gridsec_testbed::faults::CrashableServer;
    use gridsec_testbed::net::{FaultProfile, Network};
    use gridsec_testbed::os::{SimOs, ROOT_UID};
    use gridsec_testbed::rpc::RpcClient;
    use gridsec_util::retry::RetryPolicy;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        trust: TrustStore,
        jane: Credential,
        host_cred: Credential,
        clock: SimClock,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"gram durable tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
        let host_cred = ca.issue_host_identity(
            &mut rng,
            dn("/O=G/CN=host compute1"),
            vec!["compute1".into()],
            512,
            0,
            500_000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        World {
            trust,
            jane,
            host_cred,
            clock: SimClock::starting_at(100),
        }
    }

    struct Rig {
        durable: Rc<RefCell<DurableGram>>,
        server: Rc<RefCell<CrashableServer>>,
        resource: Rc<RefCell<GramResource>>,
        rpc: RpcClient,
        os: SimOs,
    }

    fn rig(w: &World, plan: CrashPlan) -> Rig {
        let os = SimOs::new();
        let gridmap = GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n").unwrap();
        let resource = Rc::new(RefCell::new(
            GramResource::install(
                os.clone(),
                w.clock.clone(),
                "compute1",
                w.trust.clone(),
                w.host_cred.clone(),
                &gridmap,
                GramConfig::default(),
            )
            .unwrap(),
        ));
        let journal = Journal::open(os.clone(), "compute1", "/var/gram/journal.wal", ROOT_UID);
        let durable = Rc::new(RefCell::new(DurableGram::new(
            resource.clone(),
            b"durable mjs",
            plan.clone(),
            journal,
        )));
        let net = Network::new();
        net.enable_faults(w.clock.clone(), 0x6AAF, FaultProfile::default());
        let server = Rc::new(RefCell::new(CrashableServer::new(
            net.register("mjs-host"),
            "gram",
            plan,
            durable.borrow().journal.clone(),
            true,
        )));
        let mut rpc = RpcClient::new(
            net.register("jane"),
            "mjs-host",
            RetryPolicy {
                max_attempts: 8,
                base_timeout: 16,
                multiplier: 2,
                max_timeout: 64,
            },
        );
        let hook_server = server.clone();
        let hook_app = durable.clone();
        rpc.set_pump(move || hook_server.borrow_mut().poll(&mut *hook_app.borrow_mut()));
        Rig {
            durable,
            server,
            resource,
            rpc,
            os,
        }
    }

    fn submit(w: &World, rig: &mut Rig) -> crate::requestor::ActiveJob {
        let mut jane = Requestor::new(w.jane.clone(), w.trust.clone(), b"jane durable");
        submit_job_resilient(
            &mut jane,
            &mut rig.rpc,
            &JobDescription::new("/bin/sim"),
            &dn("/O=G/CN=host compute1"),
            w.clock.now(),
            8,
        )
        .unwrap()
    }

    #[test]
    fn full_chain_without_crashes() {
        let w = world();
        let mut r = rig(&w, CrashPlan::disabled());
        let job = submit(&w, &mut r);
        assert!(job.cold_start);
        assert_eq!(
            r.resource.borrow().job_state(&job.handle).unwrap(),
            JobState::Active
        );
        assert_eq!(r.durable.borrow().submitted_count(), 1);
        assert_eq!(r.durable.borrow().started_count(), 1);
    }

    #[test]
    fn crash_during_session_reestablishes_and_starts_once() {
        let w = world();
        let plan = CrashPlan::manual(3);
        plan.arm("gram.session.exec", 2);
        let mut r = rig(&w, plan);
        let job = submit(&w, &mut r);
        assert_eq!(r.server.borrow().restarts(), 1, "service was reborn");
        assert_eq!(
            r.resource.borrow().job_state(&job.handle).unwrap(),
            JobState::Active
        );
        // Exactly one job process exists.
        let jobs =
            r.os.processes("compute1")
                .unwrap()
                .into_iter()
                .filter(|p| p.name.starts_with("job:"))
                .count();
        assert_eq!(jobs, 1, "one job started despite the crash");
        assert_eq!(r.resource.borrow().stats.cold_starts, 1);
    }

    #[test]
    fn crash_after_start_journaled_does_not_double_spawn() {
        let w = world();
        let plan = CrashPlan::manual(3);
        plan.arm("gram.start.journaled", 1);
        let mut r = rig(&w, plan);
        let job = submit(&w, &mut r);
        assert_eq!(r.server.borrow().restarts(), 1);
        assert_eq!(
            r.resource.borrow().job_state(&job.handle).unwrap(),
            JobState::Active
        );
        let jobs =
            r.os.processes("compute1")
                .unwrap()
                .into_iter()
                .filter(|p| p.name.starts_with("job:"))
                .count();
        assert_eq!(jobs, 1, "journaled start is acknowledged, not re-run");
        assert_eq!(r.durable.borrow().started_count(), 1);
    }

    #[test]
    fn crash_before_submit_executes_yields_one_mjs() {
        let w = world();
        let plan = CrashPlan::manual(2);
        plan.arm("gram.submit.exec", 1);
        let mut r = rig(&w, plan);
        let job = submit(&w, &mut r);
        assert_eq!(
            r.resource.borrow().job_state(&job.handle).unwrap(),
            JobState::Active
        );
        assert_eq!(r.resource.borrow().job_handles().len(), 1);
        assert_eq!(r.resource.borrow().stats.jobs_submitted, 1);
    }

    #[test]
    fn job_table_survives_restart_for_state_queries() {
        let w = world();
        let mut r = rig(&w, CrashPlan::disabled());
        let job = submit(&w, &mut r);
        r.durable.borrow_mut().crash();
        assert!(r.resource.borrow().job_handles().is_empty());
        r.durable.borrow_mut().recover();
        assert_eq!(
            job_state_remote(&mut r.rpc, &job.handle).unwrap(),
            JobState::Active
        );
    }
}
