//! End-to-end tests of the Figure 4 GRAM flow and the §5.2
//! least-privilege properties, GT3 vs. GT2.

use gridsec_authz::gridmap::GridMapFile;
use gridsec_crypto::rng::ChaChaRng;
use gridsec_gram::gt2::Gt2Gatekeeper;
use gridsec_gram::resource::{GramConfig, GramResource};
use gridsec_gram::types::{JobDescription, JobState};
use gridsec_gram::{GramError, Requestor};
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::proxy::{issue_proxy, ProxyType};
use gridsec_pki::store::TrustStore;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::faults::compromise;
use gridsec_testbed::os::SimOs;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

struct World {
    rng: ChaChaRng,
    trust: TrustStore,
    ca: CertificateAuthority,
    jane: Credential,
    carl: Credential,
    host_cred: Credential,
    os: SimOs,
    clock: SimClock,
}

fn world() -> World {
    let mut rng = ChaChaRng::from_seed_bytes(b"gram figure4 tests");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
    let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
    let carl = ca.issue_identity(&mut rng, dn("/O=G/CN=Carl"), 512, 0, 500_000);
    let host_cred = ca.issue_host_identity(
        &mut rng,
        dn("/O=G/CN=host compute1"),
        vec!["compute1".into()],
        512,
        0,
        500_000,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    World {
        rng,
        trust,
        ca,
        jane,
        carl,
        host_cred,
        os: SimOs::new(),
        clock: SimClock::starting_at(100),
    }
}

fn gridmap() -> GridMapFile {
    GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n\"/O=G/CN=Carl\" carl\n").unwrap()
}

fn gt3(w: &World) -> GramResource {
    GramResource::install(
        w.os.clone(),
        w.clock.clone(),
        "compute1",
        w.trust.clone(),
        w.host_cred.clone(),
        &gridmap(),
        GramConfig::default(),
    )
    .unwrap()
}

#[test]
fn figure4_cold_then_warm_submission() {
    let mut w = world();
    let mut resource = gt3(&w);
    // Sign on with a proxy (single sign-on, step 0).
    let proxy = issue_proxy(
        &mut w.rng,
        &w.jane,
        ProxyType::Impersonation,
        512,
        100,
        50_000,
    )
    .unwrap();
    let mut requestor = Requestor::new(proxy, w.trust.clone(), b"jane requestor");

    // First job: cold path (MMJFS → Setuid Starter → GRIM → LMJFS).
    let job1 = requestor
        .submit_job(&mut resource, &JobDescription::new("/bin/sim1"), 100)
        .unwrap();
    assert!(job1.cold_start);
    assert_eq!(job1.account, "jdoe");
    assert_eq!(resource.job_state(&job1.handle).unwrap(), JobState::Active);

    // Second job: warm path through the resident LMJFS.
    let job2 = requestor
        .submit_job(&mut resource, &JobDescription::new("/bin/sim2"), 110)
        .unwrap();
    assert!(!job2.cold_start);
    assert_eq!(resource.stats.cold_starts, 1);
    assert_eq!(resource.stats.warm_starts, 1);

    // The jobs run in the user's account, and the job process holds the
    // delegated credential.
    let jdoe_uid = resource.os().uid_of("compute1", "jdoe").unwrap();
    let procs = resource.os().processes("compute1").unwrap();
    let jobs: Vec<_> = procs
        .iter()
        .filter(|p| p.name.starts_with("job:"))
        .collect();
    assert_eq!(jobs.len(), 2);
    for j in &jobs {
        assert_eq!(j.uid, jdoe_uid);
        assert!(!j.is_privileged());
        assert!(j.credentials.iter().any(|c| c.contains("delegated proxy")));
    }
}

#[test]
fn per_user_lmjfs_isolation() {
    let w = world();
    let mut resource = gt3(&w);
    let mut jane = Requestor::new(w.jane.clone(), w.trust.clone(), b"jane");
    let mut carl = Requestor::new(w.carl.clone(), w.trust.clone(), b"carl");

    let j1 = jane
        .submit_job(&mut resource, &JobDescription::new("/bin/a"), 100)
        .unwrap();
    let j2 = carl
        .submit_job(&mut resource, &JobDescription::new("/bin/b"), 100)
        .unwrap();
    // Each user cold-starts their own LMJFS in their own account.
    assert!(j1.cold_start && j2.cold_start);
    assert_ne!(j1.account, j2.account);
    assert!(resource.lmjfs_pid("jdoe").is_some());
    assert!(resource.lmjfs_pid("carl").is_some());

    // LMJFS processes are unprivileged and hold only their user's creds.
    let lm = resource
        .os()
        .process("compute1", resource.lmjfs_pid("jdoe").unwrap())
        .unwrap();
    assert!(!lm.is_privileged());
    assert!(lm.credentials.iter().all(|c| c.contains("Jane")));
}

#[test]
fn limited_proxy_may_not_submit_jobs() {
    let mut w = world();
    let mut resource = gt3(&w);
    // GT2 semantics: limited proxies are for data movement, not jobs.
    let limited = issue_proxy(&mut w.rng, &w.jane, ProxyType::Limited, 512, 100, 50_000).unwrap();
    let mut requestor = Requestor::new(limited, w.trust.clone(), b"jane limited");
    let err = requestor
        .submit_job(&mut resource, &JobDescription::new("/bin/x"), 100)
        .unwrap_err();
    assert!(matches!(err, GramError::NotAuthorized(_)));
    // A full proxy of the same user is fine.
    let full = issue_proxy(
        &mut w.rng,
        &w.jane,
        ProxyType::Impersonation,
        512,
        100,
        50_000,
    )
    .unwrap();
    let mut requestor = Requestor::new(full, w.trust.clone(), b"jane full");
    assert!(requestor
        .submit_job(&mut resource, &JobDescription::new("/bin/x"), 100)
        .is_ok());
}

#[test]
fn unmapped_user_rejected_at_mmjfs() {
    let mut w = world();
    let mut resource = gt3(&w);
    let mallory =
        w.ca.issue_identity(&mut w.rng, dn("/O=G/CN=Mallory"), 512, 0, 500_000);
    let mut requestor = Requestor::new(mallory, w.trust.clone(), b"mallory");
    let err = requestor
        .submit_job(&mut resource, &JobDescription::new("/bin/x"), 100)
        .unwrap_err();
    assert!(matches!(err, GramError::NoMapping(_)));
    assert_eq!(resource.stats.denied, 1);
    assert_eq!(resource.stats.jobs_submitted, 0);
}

#[test]
fn untrusted_signature_rejected() {
    let mut w = world();
    let mut resource = gt3(&w);
    let rogue_ca =
        CertificateAuthority::create_root(&mut w.rng, dn("/O=Evil/CN=CA"), 512, 0, 1_000_000);
    // Rogue CA certifies an identity that IS in the grid-mapfile.
    let fake_jane = rogue_ca.issue_identity(&mut w.rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
    let mut requestor = Requestor::new(fake_jane, w.trust.clone(), b"fake");
    let err = requestor
        .submit_job(&mut resource, &JobDescription::new("/bin/x"), 100)
        .unwrap_err();
    assert!(matches!(err, GramError::RequestRejected(_)));
}

#[test]
fn tampered_request_rejected() {
    let w = world();
    let mut resource = gt3(&w);
    let mut requestor = Requestor::new(w.jane.clone(), w.trust.clone(), b"jane");
    let signed = requestor.signed_request(&JobDescription::new("/bin/honest"), 100);
    let tampered = signed.replace("/bin/honest", "/bin/evil!!");
    let err = resource.submit(&tampered).unwrap_err();
    assert!(matches!(err, GramError::RequestRejected(_)));
}

#[test]
fn job_lifecycle_owner_controls() {
    let w = world();
    let mut resource = gt3(&w);
    let mut jane = Requestor::new(w.jane.clone(), w.trust.clone(), b"jane");
    let mut carl = Requestor::new(w.carl.clone(), w.trust.clone(), b"carl");

    let job = jane
        .submit_job(&mut resource, &JobDescription::new("/bin/longrun"), 100)
        .unwrap();
    // Carl cannot cancel Jane's job.
    let err = carl.cancel(&mut resource, &job.handle).unwrap_err();
    assert!(matches!(err, GramError::NotAuthorized(_)));
    // Jane can.
    jane.cancel(&mut resource, &job.handle).unwrap();
    assert_eq!(
        resource.job_state(&job.handle).unwrap(),
        JobState::Cancelled
    );
    // Cancelling twice is a state error.
    assert!(matches!(
        jane.cancel(&mut resource, &job.handle),
        Err(GramError::BadState(_))
    ));
}

#[test]
fn gt3_has_no_privileged_network_services() {
    let w = world();
    let mut resource = gt3(&w);
    let mut requestor = Requestor::new(w.jane.clone(), w.trust.clone(), b"jane");
    requestor
        .submit_job(&mut resource, &JobDescription::new("/bin/x"), 100)
        .unwrap();

    // The §5.2 claim, checked directly on the process table.
    let priv_net = resource.os().privileged_network_facing("compute1").unwrap();
    assert!(
        priv_net.is_empty(),
        "GT3 must run no privileged network services, found {priv_net:?}"
    );
    // The only processes that ever ran privileged were the two setuid
    // programs, both dead by now.
    let live_privileged = resource.os().privileged_processes("compute1").unwrap();
    assert!(live_privileged.is_empty());
}

#[test]
fn gt2_baseline_has_privileged_network_service() {
    let mut w = world();
    let os = SimOs::new();
    let mut gatekeeper = Gt2Gatekeeper::install(
        os,
        w.clock.clone(),
        "compute2",
        w.trust.clone(),
        w.host_cred.clone(),
        &gridmap(),
    )
    .unwrap();

    let handle = gatekeeper
        .submit(&w.jane, &JobDescription::new("/bin/x"))
        .unwrap();
    assert_eq!(gatekeeper.job_state(&handle).unwrap(), JobState::Active);

    let priv_net = gatekeeper
        .os()
        .privileged_network_facing("compute2")
        .unwrap();
    assert_eq!(priv_net.len(), 1);
    assert_eq!(priv_net[0].name, "gatekeeper");
    let _ = &mut w;
}

#[test]
fn compromise_blast_radius_gt2_vs_gt3() {
    // Experiment C4's core comparison as a test: compromising GT2's
    // gatekeeper owns the host; compromising GT3's MMJFS does not.
    let w = world();
    let mut resource = gt3(&w);
    let mut requestor = Requestor::new(w.jane.clone(), w.trust.clone(), b"jane");
    requestor
        .submit_job(&mut resource, &JobDescription::new("/bin/x"), 100)
        .unwrap();
    let gt3_report = compromise(resource.os(), "compute1", resource.mmjfs_pid()).unwrap();
    assert!(!gt3_report.full_host_compromise);
    // MMJFS holds no credentials at all.
    assert!(gt3_report.credentials_exposed.is_empty());
    // It cannot read the host key.
    assert!(!gt3_report
        .files_readable
        .contains(&gridsec_gram::resource::HOSTCRED_PATH.to_string()));

    let os2 = SimOs::new();
    let mut gatekeeper = Gt2Gatekeeper::install(
        os2,
        w.clock.clone(),
        "compute2",
        w.trust.clone(),
        w.host_cred.clone(),
        &gridmap(),
    )
    .unwrap();
    gatekeeper
        .submit(&w.jane, &JobDescription::new("/bin/x"))
        .unwrap();
    let gt2_report = compromise(gatekeeper.os(), "compute2", gatekeeper.gatekeeper_pid()).unwrap();
    assert!(gt2_report.full_host_compromise);
    assert!(gt2_report
        .files_readable
        .contains(&gridsec_gram::resource::HOSTCRED_PATH.to_string()));
    assert!(gt2_report.blast_radius() > gt3_report.blast_radius());
}

#[test]
fn delegated_credential_speaks_for_user() {
    let mut w = world();
    let mut resource = gt3(&w);
    let proxy = issue_proxy(
        &mut w.rng,
        &w.jane,
        ProxyType::Impersonation,
        512,
        100,
        50_000,
    )
    .unwrap();
    let mut requestor = Requestor::new(proxy, w.trust.clone(), b"jane");
    let job = requestor
        .submit_job(&mut resource, &JobDescription::new("/bin/x"), 100)
        .unwrap();
    // The job's description survived intact.
    assert_eq!(
        resource.job_description(&job.handle).unwrap().executable,
        "/bin/x"
    );
}
