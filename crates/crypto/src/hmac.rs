//! HMAC-SHA-256 (RFC 2104) and HKDF (RFC 5869).
//!
//! HKDF is the key-derivation workhorse for the `gridsec-tls` handshake
//! (master secret → record keys) and for WS-SecureConversation derived
//! keys in `gridsec-wsse`.

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Compute `HMAC-SHA256(key, data)`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

/// Streaming HMAC-SHA-256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Create a MAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..DIGEST_LEN].copy_from_slice(&sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalize and return the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// An HMAC key schedule precomputed once and reused: the SHA-256 states
/// with the ipad- and opad-xored key blocks already absorbed.
///
/// [`HmacSha256::new`] derives the padded key and absorbs one 64-byte
/// block into the inner hash on every call, and `finalize` absorbs the
/// opad block into a fresh outer hash — two compression-function
/// invocations of pure key schedule per MAC. When many MACs share one
/// key (every HKDF-Expand block is keyed by the same PRK; a TLS key
/// schedule MACs its Finished messages and derives its resumption
/// ticket under the same master secret), priming once and cloning the
/// two states per MAC skips that rework — the same fixed-base
/// amortization `gridsec_bignum::precomp` applies to modular
/// exponentiation, applied to the symmetric side.
///
/// Byte-identity with the one-shot path is pinned by tests here and in
/// `gridsec-tls` (the RFC 4231/5869 vectors run through this type via
/// [`hkdf_expand`]).
#[derive(Clone)]
pub struct PrimedHmac {
    /// SHA-256 state with `key ⊕ ipad` absorbed.
    inner: Sha256,
    /// SHA-256 state with `key ⊕ opad` absorbed.
    outer: Sha256,
}

impl PrimedHmac {
    /// Precompute the key schedule for `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..DIGEST_LEN].copy_from_slice(&sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        PrimedHmac { inner, outer }
    }

    /// Begin a streaming MAC from the primed states.
    pub fn begin(&self) -> PrimedMac {
        PrimedMac {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
        }
    }

    /// One-shot MAC over `data`. Identical bytes to
    /// [`hmac_sha256`]`(key, data)` for the priming key.
    pub fn mac(&self, data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut m = self.begin();
        m.update(data);
        m.finalize()
    }
}

/// A streaming MAC started from a [`PrimedHmac`].
pub struct PrimedMac {
    inner: Sha256,
    outer: Sha256,
}

impl PrimedMac {
    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalize and return the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// HKDF-Extract (RFC 5869 §2.2): `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand (RFC 5869 §2.3) producing `len` bytes (≤ 255 * 32).
pub fn hkdf_expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output too long");
    // Every block is keyed by the same PRK: prime the key schedule once
    // and clone it per block instead of re-deriving it.
    let primed = PrimedHmac::new(prk);
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut mac = primed.begin();
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        t = mac.finalize().to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&t[..take]);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    out
}

/// Convenience: extract-then-expand in one call.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_long_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hkdf_rfc5869_case1() {
        let ikm = unhex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let okm = hkdf(&salt, &ikm, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_rfc5869_case3_empty_salt_info() {
        let ikm = unhex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let key = b"streaming key";
        let data: Vec<u8> = (0..500u16).map(|i| i as u8).collect();
        let mut mac = HmacSha256::new(key);
        mac.update(&data[..123]);
        mac.update(&data[123..]);
        assert_eq!(mac.finalize(), hmac_sha256(key, &data));
    }

    #[test]
    fn primed_is_byte_identical_to_one_shot() {
        // Every key-length regime: empty, short, block-boundary
        // (63/64/65), and hashed-down long keys.
        let data: Vec<u8> = (0..300u16).map(|i| (i * 7) as u8).collect();
        for key_len in [0usize, 1, 31, 32, 63, 64, 65, 100, 131, 256] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 13 + 5) as u8).collect();
            let primed = PrimedHmac::new(&key);
            for msg_len in [0usize, 1, 55, 56, 64, 120, 300] {
                assert_eq!(
                    primed.mac(&data[..msg_len]),
                    hmac_sha256(&key, &data[..msg_len]),
                    "key_len={key_len} msg_len={msg_len}"
                );
            }
            // Streaming splits hit the same bytes, and a primed
            // schedule is reusable: the second begin() is unaffected by
            // the first.
            let mut m = primed.begin();
            m.update(&data[..123]);
            m.update(&data[123..]);
            assert_eq!(m.finalize(), hmac_sha256(&key, &data));
            assert_eq!(primed.mac(b"again"), hmac_sha256(&key, b"again"));
        }
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
        assert_ne!(hmac_sha256(b"k", b"msg1"), hmac_sha256(b"k", b"msg2"));
    }

    #[test]
    fn hkdf_expand_multiple_blocks() {
        let out = hkdf(b"salt", b"ikm", b"info", 100);
        assert_eq!(out.len(), 100);
        // Prefix property: shorter outputs are prefixes of longer ones.
        let short = hkdf(b"salt", b"ikm", b"info", 32);
        assert_eq!(&out[..32], &short[..]);
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn hkdf_output_cap() {
        hkdf_expand(&[0u8; 32], b"", 255 * 32 + 1);
    }
}
