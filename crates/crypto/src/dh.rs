//! Finite-field Diffie–Hellman key agreement.
//!
//! The `gridsec-tls` handshake is DHE-RSA-shaped: ephemeral DH shares are
//! signed with the parties' certificate keys, and the shared secret feeds
//! HKDF to derive record keys — the structure GT2's TLS channel relies on.

use gridsec_bignum::modular::mod_pow;
use gridsec_bignum::precomp;
use gridsec_bignum::prime::{random_below, EntropySource};
use gridsec_bignum::BigUint;

/// A Diffie–Hellman group (safe prime `p`, generator `g`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DhGroup {
    /// The group modulus (a safe prime).
    pub p: BigUint,
    /// The generator.
    pub g: BigUint,
}

impl DhGroup {
    /// RFC 3526 MODP group 14 (2048-bit). Interop-grade parameters.
    pub fn modp2048() -> Self {
        let p = BigUint::from_hex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
             020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
             4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
             EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
             98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
             9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
             E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
             3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
        )
        .expect("constant");
        DhGroup {
            p,
            g: BigUint::from(2u64),
        }
    }

    /// A small 256-bit test group (fast; **test use only**).
    ///
    /// `p` is a fixed safe prime generated once with
    /// `gridsec_bignum::prime::generate_safe_prime` and recorded here as a
    /// constant; the unit tests re-verify both `p` and `(p-1)/2`.
    pub fn test_group_256() -> Self {
        let p =
            BigUint::from_hex("a5e579f41b72505da9fce2ccb8c774b1690261ea0a07ccb37921a10d9644c0bf")
                .expect("constant");
        DhGroup {
            p,
            g: BigUint::from(2u64),
        }
    }

    /// Byte length of the group modulus.
    pub fn modulus_len(&self) -> usize {
        self.p.bit_len().div_ceil(8)
    }

    /// Register this group in the calling thread's
    /// [`gridsec_bignum::precomp`] registry: a fixed-base table for
    /// `g^x mod p` (every [`DhKeyPair::generate`] in the thread then
    /// runs squaring-free) and a shared Montgomery context for `p`
    /// (accelerating [`DhKeyPair::agree`], whose base is the peer's
    /// share). Pair with [`DhGroup::unregister_precomp`].
    pub fn register_precomp(&self) -> bool {
        let table_ok = precomp::register_fixed_base(&self.g, &self.p, self.p.bit_len());
        let ctx_ok = precomp::register_modulus(&self.p);
        table_ok && ctx_ok
    }

    /// Remove the registrations made by [`DhGroup::register_precomp`].
    pub fn unregister_precomp(&self) {
        precomp::unregister_fixed_base(&self.g, &self.p);
        precomp::unregister_modulus(&self.p);
    }
}

/// An ephemeral DH key pair within a group.
pub struct DhKeyPair {
    group: DhGroup,
    private: BigUint,
    /// The public share `g^x mod p`.
    pub public: BigUint,
}

impl DhKeyPair {
    /// Generate an ephemeral key pair: `x ∈ [2, p-2]`, `y = g^x mod p`.
    pub fn generate<E: EntropySource>(rng: &mut E, group: &DhGroup) -> Self {
        let two = BigUint::from(2u64);
        let range = group.p.sub_ref(&BigUint::from(3u64));
        let private = random_below(rng, &range).add_ref(&two);
        let public = mod_pow(&group.g, &private, &group.p);
        DhKeyPair {
            group: group.clone(),
            private,
            public,
        }
    }

    /// Compute the shared secret with a peer's public share, serialized as
    /// fixed-width big-endian bytes (input to HKDF).
    ///
    /// Returns `None` for degenerate peer shares (0, 1, p-1, ≥ p) — the
    /// classic small-subgroup / identity-element checks.
    pub fn agree(&self, peer_public: &BigUint) -> Option<Vec<u8>> {
        let one = BigUint::one();
        let p_minus_1 = self.group.p.sub_ref(&one);
        if peer_public.is_zero()
            || peer_public.is_one()
            || *peer_public >= self.group.p
            || *peer_public == p_minus_1
        {
            return None;
        }
        let secret = mod_pow(peer_public, &self.private, &self.group.p);
        Some(secret.to_bytes_be_padded(self.group.modulus_len()))
    }

    /// The group this key pair belongs to.
    pub fn group(&self) -> &DhGroup {
        &self.group
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::ChaChaRng;
    use gridsec_bignum::prime::{is_probably_prime, Primality};

    #[test]
    fn test_group_is_safe_prime() {
        let mut rng = ChaChaRng::from_seed_bytes(b"dh check");
        let g = DhGroup::test_group_256();
        assert_eq!(
            is_probably_prime(&g.p, 20, &mut rng),
            Primality::ProbablyPrime,
            "p must be prime"
        );
        let q = (&g.p - &BigUint::one()) >> 1;
        assert_eq!(
            is_probably_prime(&q, 20, &mut rng),
            Primality::ProbablyPrime,
            "(p-1)/2 must be prime"
        );
    }

    #[test]
    fn agreement_matches() {
        let mut rng = ChaChaRng::from_seed_bytes(b"dh agree");
        let group = DhGroup::test_group_256();
        let alice = DhKeyPair::generate(&mut rng, &group);
        let bob = DhKeyPair::generate(&mut rng, &group);
        let s1 = alice.agree(&bob.public).unwrap();
        let s2 = bob.agree(&alice.public).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), group.modulus_len());
    }

    #[test]
    fn different_sessions_different_secrets() {
        let mut rng = ChaChaRng::from_seed_bytes(b"dh fresh");
        let group = DhGroup::test_group_256();
        let alice = DhKeyPair::generate(&mut rng, &group);
        let bob1 = DhKeyPair::generate(&mut rng, &group);
        let bob2 = DhKeyPair::generate(&mut rng, &group);
        assert_ne!(alice.agree(&bob1.public), alice.agree(&bob2.public));
    }

    #[test]
    fn degenerate_shares_rejected() {
        let mut rng = ChaChaRng::from_seed_bytes(b"dh degen");
        let group = DhGroup::test_group_256();
        let kp = DhKeyPair::generate(&mut rng, &group);
        assert!(kp.agree(&BigUint::zero()).is_none());
        assert!(kp.agree(&BigUint::one()).is_none());
        assert!(kp.agree(&(&group.p - &BigUint::one())).is_none());
        assert!(kp.agree(&group.p).is_none());
        assert!(kp.agree(&(&group.p + &BigUint::one())).is_none());
    }

    #[test]
    fn modp2048_parses() {
        let g = DhGroup::modp2048();
        assert_eq!(g.p.bit_len(), 2048);
        assert_eq!(g.modulus_len(), 256);
    }
}
