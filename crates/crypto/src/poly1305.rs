//! The Poly1305 one-time authenticator (RFC 8439).
//!
//! Implemented in the classic five-26-bit-limb style ("poly1305-donna"),
//! using only safe 64-bit arithmetic. Verified against the RFC 8439 test
//! vector.

/// Key length in bytes (r || s).
pub const KEY_LEN: usize = 32;
/// Tag length in bytes.
pub const TAG_LEN: usize = 16;

const MASK26: u64 = (1 << 26) - 1;

/// Streaming Poly1305 authenticator. One key must never authenticate two
/// different messages; [`crate::aead`] derives a fresh key per nonce.
pub struct Poly1305 {
    r: [u64; 5],
    s: [u64; 4],
    h: [u64; 5],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Create an authenticator from a 32-byte one-time key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // r with clamping per RFC 8439 §2.5.
        let t0 = u32::from_le_bytes(key[0..4].try_into().unwrap()) as u64;
        let t1 = u32::from_le_bytes(key[4..8].try_into().unwrap()) as u64;
        let t2 = u32::from_le_bytes(key[8..12].try_into().unwrap()) as u64;
        let t3 = u32::from_le_bytes(key[12..16].try_into().unwrap()) as u64;

        let r = [
            t0 & 0x3ffffff,
            ((t0 >> 26) | (t1 << 6)) & 0x3ffff03,
            ((t1 >> 20) | (t2 << 12)) & 0x3ffc0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x3f03fff,
            (t3 >> 8) & 0x00fffff,
        ];
        let s = [
            u32::from_le_bytes(key[16..20].try_into().unwrap()) as u64,
            u32::from_le_bytes(key[20..24].try_into().unwrap()) as u64,
            u32::from_le_bytes(key[24..28].try_into().unwrap()) as u64,
            u32::from_le_bytes(key[28..32].try_into().unwrap()) as u64,
        ];
        Poly1305 {
            r,
            s,
            h: [0; 5],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, 1 << 24);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.process_block(&block, 1 << 24);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// h = (h + block + hibit·2^128) · r  mod 2^130 - 5
    fn process_block(&mut self, block: &[u8; 16], hibit: u64) {
        let t0 = u32::from_le_bytes(block[0..4].try_into().unwrap()) as u64;
        let t1 = u32::from_le_bytes(block[4..8].try_into().unwrap()) as u64;
        let t2 = u32::from_le_bytes(block[8..12].try_into().unwrap()) as u64;
        let t3 = u32::from_le_bytes(block[12..16].try_into().unwrap()) as u64;

        self.h[0] += t0 & MASK26;
        self.h[1] += ((t0 >> 26) | (t1 << 6)) & MASK26;
        self.h[2] += ((t1 >> 20) | (t2 << 12)) & MASK26;
        self.h[3] += ((t2 >> 14) | (t3 << 18)) & MASK26;
        self.h[4] += (t3 >> 8) | hibit;

        let [r0, r1, r2, r3, r4] = self.r;
        let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);
        let [h0, h1, h2, h3, h4] = self.h;

        let d0 = (h0 as u128) * r0 as u128
            + (h1 as u128) * s4 as u128
            + (h2 as u128) * s3 as u128
            + (h3 as u128) * s2 as u128
            + (h4 as u128) * s1 as u128;
        let d1 = (h0 as u128) * r1 as u128
            + (h1 as u128) * r0 as u128
            + (h2 as u128) * s4 as u128
            + (h3 as u128) * s3 as u128
            + (h4 as u128) * s2 as u128;
        let d2 = (h0 as u128) * r2 as u128
            + (h1 as u128) * r1 as u128
            + (h2 as u128) * r0 as u128
            + (h3 as u128) * s4 as u128
            + (h4 as u128) * s3 as u128;
        let d3 = (h0 as u128) * r3 as u128
            + (h1 as u128) * r2 as u128
            + (h2 as u128) * r1 as u128
            + (h3 as u128) * r0 as u128
            + (h4 as u128) * s4 as u128;
        let d4 = (h0 as u128) * r4 as u128
            + (h1 as u128) * r3 as u128
            + (h2 as u128) * r2 as u128
            + (h3 as u128) * r1 as u128
            + (h4 as u128) * r0 as u128;

        // Carry propagation.
        let mut c: u64;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;

        c = (d0 >> 26) as u64;
        self.h[0] = (d0 as u64) & MASK26;
        d1 += c as u128;
        c = (d1 >> 26) as u64;
        self.h[1] = (d1 as u64) & MASK26;
        d2 += c as u128;
        c = (d2 >> 26) as u64;
        self.h[2] = (d2 as u64) & MASK26;
        d3 += c as u128;
        c = (d3 >> 26) as u64;
        self.h[3] = (d3 as u64) & MASK26;
        d4 += c as u128;
        c = (d4 >> 26) as u64;
        self.h[4] = (d4 as u64) & MASK26;
        self.h[0] += c * 5;
        c = self.h[0] >> 26;
        self.h[0] &= MASK26;
        self.h[1] += c;
    }

    /// Finalize, consuming the authenticator, and return the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Final partial block: append 0x01 then zero-pad; hibit = 0.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, 0);
        }

        // Full carry on h.
        let mut h = self.h;
        let mut c = h[1] >> 26;
        h[1] &= MASK26;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= MASK26;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= MASK26;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= MASK26;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= MASK26;
        h[1] += c;

        // Compute g = h + 5 - 2^130 (i.e. h - p). If that does not borrow,
        // h >= p and the reduced value is g; otherwise it is h itself.
        let mut g = [0u64; 5];
        c = 5;
        for i in 0..4 {
            g[i] = h[i] + c;
            c = g[i] >> 26;
            g[i] &= MASK26;
        }
        g[4] = h[4].wrapping_add(c).wrapping_sub(1 << 26);
        // Borrow shows up as the sign bit of g[4].
        let mask = if (g[4] >> 63) == 0 { u64::MAX } else { 0 };
        let mut out = [0u64; 5];
        for i in 0..5 {
            out[i] = (h[i] & !mask) | (g[i] & mask);
        }
        out[4] &= MASK26;

        // h += s (mod 2^128), serializing into 4 little-endian u32 words.
        let h0 = out[0] | (out[1] << 26);
        let h1 = (out[1] >> 6) | (out[2] << 20);
        let h2 = (out[2] >> 12) | (out[3] << 14);
        let h3 = (out[3] >> 18) | (out[4] << 8);
        let words = [h0 as u32, h1 as u32, h2 as u32, h3 as u32];

        let mut tag = [0u8; TAG_LEN];
        let mut carry = 0u64;
        for i in 0..4 {
            let v = words[i] as u64 + self.s[i] + carry;
            tag[i * 4..i * 4 + 4].copy_from_slice(&(v as u32).to_le_bytes());
            carry = v >> 32;
        }
        tag
    }
}

/// One-shot Poly1305.
pub fn poly1305(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    let mut p = Poly1305::new(key);
    p.update(msg);
    p.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let msg = b"Cryptographic Forum Research Group";
        assert_eq!(
            hex(&poly1305(&key, msg)),
            "a8061dc1305136c6c22b8baf0c0127a9"
        );
    }

    #[test]
    fn empty_message() {
        let key = [1u8; 32];
        // Tag of empty message is just s (h stays 0).
        let tag = poly1305(&key, b"");
        assert_eq!(&tag[..], &key[16..32]);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let msg: Vec<u8> = (0..200u16).map(|i| (i * 7) as u8).collect();
        for split in [1usize, 15, 16, 17, 31, 32, 100, 199] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), poly1305(&key, &msg), "split={split}");
        }
    }

    #[test]
    fn tag_depends_on_every_byte() {
        let key = [0x42u8; 32];
        let msg = vec![0u8; 48];
        let base = poly1305(&key, &msg);
        for i in 0..48 {
            let mut m = msg.clone();
            m[i] ^= 1;
            assert_ne!(poly1305(&key, &m), base, "byte {i}");
        }
    }

    #[test]
    fn wraparound_values() {
        // All-0xff blocks force maximal limb values through reduction.
        let key: [u8; 32] =
            unhex("02000000000000000000000000000000ffffffffffffffffffffffffffffffff")
                .try_into()
                .unwrap();
        let msg = unhex("02000000000000000000000000000000");
        // r = 2, s = 2^128-1, m = 2 → h = (2+2^128)*2 mod p, tag = h + s mod 2^128
        // Known answer from the Poly1305 test suite (nacl test vectors):
        assert_eq!(
            hex(&poly1305(&key, &msg)),
            "03000000000000000000000000000000"
        );
    }
}
