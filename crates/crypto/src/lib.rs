//! # gridsec-crypto
//!
//! From-scratch cryptographic primitives for the `gridsec` reproduction of
//! *Security for Grid Services* (Welch et al., HPDC 2003).
//!
//! The paper's Grid Security Infrastructure rests on "public key
//! technologies" (X.509 identity and proxy certificates over TLS, and in
//! GT3 the same keys under XML-Signature / XML-Encryption). The Rust
//! ecosystem substitution documented in `DESIGN.md` is to implement the
//! required primitives here rather than bind OpenSSL:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4), validated against NIST vectors.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104) and HKDF (RFC 5869).
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439).
//! * [`poly1305`] — the Poly1305 one-time authenticator (RFC 8439).
//! * [`aead`] — ChaCha20-Poly1305 AEAD composition (RFC 8439).
//! * [`rsa`] — RSA key generation, PKCS#1 v1.5 signatures, and simple
//!   OAEP-less encryption for key transport (research use only).
//! * [`dh`] — finite-field Diffie–Hellman with RFC 3526-style groups.
//! * [`rng`] — a ChaCha20-based deterministic random bit generator plus a
//!   system-seeded convenience constructor.
//! * [`ct`] — constant-time byte comparison.
//!
//! ## Security disclaimer
//!
//! This crate exists so that the *architecture* of GSI can be reproduced
//! and measured. The primitives are correct against published test vectors
//! but are **not** hardened against timing or other side channels, and key
//! sizes used in tests are deliberately small. Do not use for real data.
//!
//! ## Example
//!
//! ```
//! use gridsec_crypto::rng::ChaChaRng;
//! use gridsec_crypto::rsa::RsaKeyPair;
//!
//! let mut rng = ChaChaRng::from_seed_bytes(b"doc example seed");
//! let key = RsaKeyPair::generate(&mut rng, 512);
//! let sig = key.sign_pkcs1_sha256(b"grid service request");
//! assert!(key.public().verify_pkcs1_sha256(b"grid service request", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod ct;
pub mod dh;
pub mod hmac;
pub mod poly1305;
pub mod rng;
pub mod rsa;
pub mod sha256;

/// Errors returned by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// An authentication tag or signature failed to verify.
    VerificationFailed,
    /// Ciphertext or message was malformed (wrong length, bad padding...).
    Malformed(&'static str),
    /// A key was unsuitable for the requested operation.
    InvalidKey(&'static str),
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::VerificationFailed => write!(f, "verification failed"),
            CryptoError::Malformed(m) => write!(f, "malformed input: {m}"),
            CryptoError::InvalidKey(m) => write!(f, "invalid key: {m}"),
        }
    }
}

impl std::error::Error for CryptoError {}
