//! A ChaCha20-based deterministic random bit generator.
//!
//! The whole `gridsec` stack draws randomness through [`ChaChaRng`]:
//! seeded from the OS for real runs, or from a fixed byte string for
//! reproducible tests and benchmarks (determinism matters for the
//! experiment harness in `gridsec-bench`).
//!
//! [`ChaChaRng`] implements [`gridsec_util::rng::RngCore`], which also
//! gives it the `gridsec_bignum::prime::EntropySource` blanket impl used
//! by prime generation.

use crate::chacha20;
use crate::sha256::sha256;
use gridsec_util::rng::{fill_os_entropy, CryptoRng, RngCore};

/// ChaCha20-based DRBG: the keystream of ChaCha20 under a hashed seed key,
/// with a 64-bit block counter in the nonce/counter space.
pub struct ChaChaRng {
    key: [u8; 32],
    counter: u64,
    buf: [u8; 64],
    buf_pos: usize,
}

impl ChaChaRng {
    /// Seed deterministically from arbitrary bytes (hashed to a key).
    pub fn from_seed_bytes(seed: &[u8]) -> Self {
        ChaChaRng {
            key: sha256(seed),
            counter: 0,
            buf: [0; 64],
            buf_pos: 64,
        }
    }

    /// Seed from the operating system's entropy source.
    pub fn from_os_entropy() -> Self {
        let mut seed = [0u8; 32];
        fill_os_entropy(&mut seed);
        Self::from_seed_bytes(&seed)
    }

    fn refill(&mut self) {
        // Nonce carries the high 32 bits of the counter; the ChaCha block
        // counter carries the low 32.
        let mut nonce = [0u8; 12];
        nonce[4..12].copy_from_slice(&(self.counter >> 32).to_le_bytes());
        self.buf = chacha20::block(&self.key, self.counter as u32, &nonce);
        self.counter = self.counter.wrapping_add(1);
        self.buf_pos = 0;
    }
}

impl RngCore for ChaChaRng {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut pos = 0;
        while pos < dest.len() {
            if self.buf_pos == 64 {
                self.refill();
            }
            let take = (64 - self.buf_pos).min(dest.len() - pos);
            dest[pos..pos + take].copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            pos += take;
        }
    }
}

impl CryptoRng for ChaChaRng {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaChaRng::from_seed_bytes(b"seed");
        let mut b = ChaChaRng::from_seed_bytes(b"seed");
        let mut buf_a = [0u8; 100];
        let mut buf_b = [0u8; 100];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaChaRng::from_seed_bytes(b"seed-1");
        let mut b = ChaChaRng::from_seed_bytes(b"seed-2");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn stream_is_not_trivially_repeating() {
        let mut r = ChaChaRng::from_seed_bytes(b"x");
        let a = r.next_u64();
        let b = r.next_u64();
        let c = r.next_u64();
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn chunked_reads_match_bulk() {
        let mut a = ChaChaRng::from_seed_bytes(b"chunked");
        let mut b = ChaChaRng::from_seed_bytes(b"chunked");
        let mut bulk = [0u8; 200];
        a.fill_bytes(&mut bulk);
        let mut pieced = Vec::new();
        for size in [1usize, 7, 64, 128] {
            let mut buf = vec![0u8; size];
            b.fill_bytes(&mut buf);
            pieced.extend_from_slice(&buf);
        }
        assert_eq!(&bulk[..], &pieced[..]);
    }

    #[test]
    fn os_entropy_seeding_differs_per_instance() {
        let mut a = ChaChaRng::from_os_entropy();
        let mut b = ChaChaRng::from_os_entropy();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn works_as_entropy_source_for_primes() {
        use gridsec_bignum::prime::{generate_prime, is_probably_prime, Primality};
        let mut r = ChaChaRng::from_seed_bytes(b"prime-seed");
        let p = generate_prime(&mut r, 64, 10);
        assert_eq!(p.bit_len(), 64);
        assert_eq!(is_probably_prime(&p, 20, &mut r), Primality::ProbablyPrime);
    }
}
