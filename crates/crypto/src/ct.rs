//! Constant-time helpers.

/// Constant-time byte-slice equality. Returns `false` for length
/// mismatches (length itself is not secret in our protocols).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"x"));
        // Differences at every position are caught.
        let a = [0xAAu8; 32];
        for i in 0..32 {
            let mut b = a;
            b[i] ^= 1;
            assert!(!ct_eq(&a, &b));
        }
    }
}
