//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! This is the message-protection workhorse of the stack: the
//! `gridsec-tls` record layer, Kerberos ticket encryption, and
//! XML-Encryption payloads all seal through this module.

use crate::chacha20::{self, KEY_LEN, NONCE_LEN};
use crate::ct::ct_eq;
use crate::poly1305::{Poly1305, TAG_LEN};
use crate::CryptoError;

/// Seal `plaintext` with `key`/`nonce`, binding `aad`. Returns
/// `ciphertext || tag`.
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    // One-time Poly1305 key = first 32 bytes of block 0 keystream.
    let block0 = chacha20::block(key, 0, nonce);
    let otk: [u8; 32] = block0[..32].try_into().unwrap();

    let mut out = chacha20::apply(key, nonce, 1, plaintext);
    let tag = compute_tag(&otk, aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// Open `ciphertext || tag`, verifying the tag over `aad` first.
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if sealed.len() < TAG_LEN {
        return Err(CryptoError::Malformed("AEAD input shorter than tag"));
    }
    let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let block0 = chacha20::block(key, 0, nonce);
    let otk: [u8; 32] = block0[..32].try_into().unwrap();
    let expect = compute_tag(&otk, aad, ct);
    if !ct_eq(&expect, tag) {
        return Err(CryptoError::VerificationFailed);
    }
    Ok(chacha20::apply(key, nonce, 1, ct))
}

/// MAC input layout per RFC 8439: aad, pad16, ct, pad16, len(aad) LE64,
/// len(ct) LE64.
fn compute_tag(otk: &[u8; 32], aad: &[u8], ct: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(otk);
    mac.update(aad);
    mac.update(&zero_pad(aad.len()));
    mac.update(ct);
    mac.update(&zero_pad(ct.len()));
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ct.len() as u64).to_le_bytes());
    mac.finalize()
}

fn zero_pad(len: usize) -> Vec<u8> {
    vec![0u8; (16 - len % 16) % 16]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_aead_vector() {
        // RFC 8439 §2.8.2
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

        let sealed = seal(&key, &nonce, &aad, plaintext);
        let (ct, tag) = sealed.split_at(sealed.len() - 16);
        assert_eq!(
            hex(ct),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116"
        );
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");

        let opened = open(&key, &nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = [5u8; 32];
        let nonce = [6u8; 12];
        let mut sealed = seal(&key, &nonce, b"aad", b"secret payload");
        sealed[3] ^= 0x80;
        assert_eq!(
            open(&key, &nonce, b"aad", &sealed),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn tampered_tag_rejected() {
        let key = [5u8; 32];
        let nonce = [6u8; 12];
        let mut sealed = seal(&key, &nonce, b"", b"secret payload");
        let n = sealed.len();
        sealed[n - 1] ^= 1;
        assert_eq!(
            open(&key, &nonce, b"", &sealed),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn wrong_aad_rejected() {
        let key = [5u8; 32];
        let nonce = [6u8; 12];
        let sealed = seal(&key, &nonce, b"context-A", b"payload");
        assert!(open(&key, &nonce, b"context-B", &sealed).is_err());
        assert!(open(&key, &nonce, b"context-A", &sealed).is_ok());
    }

    #[test]
    fn wrong_key_or_nonce_rejected() {
        let key = [5u8; 32];
        let nonce = [6u8; 12];
        let sealed = seal(&key, &nonce, b"", b"payload");
        let mut k2 = key;
        k2[0] ^= 1;
        assert!(open(&k2, &nonce, b"", &sealed).is_err());
        let mut n2 = nonce;
        n2[0] ^= 1;
        assert!(open(&key, &n2, b"", &sealed).is_err());
    }

    #[test]
    fn empty_plaintext() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let sealed = seal(&key, &nonce, b"header only", b"");
        assert_eq!(sealed.len(), 16);
        assert_eq!(open(&key, &nonce, b"header only", &sealed).unwrap(), b"");
    }

    #[test]
    fn too_short_input() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        assert!(matches!(
            open(&key, &nonce, b"", &[0u8; 15]),
            Err(CryptoError::Malformed(_))
        ));
    }
}
