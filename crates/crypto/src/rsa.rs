//! RSA key generation, PKCS#1 v1.5 signatures, and key-transport
//! encryption.
//!
//! GSI identity certificates, proxy certificates, GRIM host credentials,
//! CAS assertion signatures, and XML-Signature values in `gridsec-wsse`
//! all sign through this module.
//!
//! Supported operations:
//! * [`RsaKeyPair::generate`] — two-prime key generation with `e = 65537`,
//!   CRT parameters precomputed.
//! * [`RsaKeyPair::sign_pkcs1_sha256`] / [`RsaPublicKey::verify_pkcs1_sha256`]
//!   — EMSA-PKCS1-v1_5 with the SHA-256 `DigestInfo` prefix.
//! * [`RsaPublicKey::encrypt_pkcs1`] / [`RsaKeyPair::decrypt_pkcs1`] —
//!   EME-PKCS1-v1_5 (type 2) key transport, used to wrap AEAD content keys
//!   in XML-Encryption.
//! * [`RsaVerifyCtx`] — a precomputed verification context for one hot
//!   public key (CA verify key, a busy server's key), with
//!   [`RsaVerifyCtx::verify_batch`] verifying N signatures under one
//!   shared Montgomery context and attributing any failures by index.

use crate::ct::ct_eq;
use crate::sha256::sha256;
use crate::CryptoError;
use gridsec_bignum::modular::{mod_inv, mod_pow};
use gridsec_bignum::montgomery::Montgomery;
use gridsec_bignum::precomp;
use gridsec_bignum::prime::{generate_prime, EntropySource};
use gridsec_bignum::BigUint;

/// DER `DigestInfo` prefix for SHA-256 (RFC 8017 §9.2 note 1).
const SHA256_DIGEST_INFO: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// The public half of an RSA key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

impl RsaPublicKey {
    /// Construct from modulus and public exponent.
    pub fn new(n: BigUint, e: BigUint) -> Self {
        RsaPublicKey { n, e }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Modulus length in bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Verify an EMSA-PKCS1-v1_5 / SHA-256 signature over `msg`.
    pub fn verify_pkcs1_sha256(&self, msg: &[u8], signature: &[u8]) -> bool {
        let k = self.modulus_len();
        if signature.len() != k {
            return false;
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return false;
        }
        let em = mod_pow(&s, &self.e, &self.n).to_bytes_be_padded(k);
        let expected = match emsa_pkcs1_encode(msg, k) {
            Ok(v) => v,
            Err(_) => return false,
        };
        ct_eq(&em, &expected)
    }

    /// EME-PKCS1-v1_5 (type 2) encryption for key transport.
    ///
    /// `msg` must be at most `modulus_len() - 11` bytes.
    pub fn encrypt_pkcs1<E: EntropySource>(
        &self,
        rng: &mut E,
        msg: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        if msg.len() + 11 > k {
            return Err(CryptoError::Malformed("message too long for RSA modulus"));
        }
        let mut em = vec![0u8; k];
        em[1] = 0x02;
        let ps_len = k - 3 - msg.len();
        // Nonzero random padding bytes.
        let mut i = 0;
        while i < ps_len {
            let mut b = [0u8; 1];
            rng.fill_bytes(&mut b);
            if b[0] != 0 {
                em[2 + i] = b[0];
                i += 1;
            }
        }
        em[2 + ps_len] = 0x00;
        em[3 + ps_len..].copy_from_slice(msg);
        let m = BigUint::from_bytes_be(&em);
        Ok(mod_pow(&m, &self.e, &self.n).to_bytes_be_padded(k))
    }

    /// Raw public-key operation (`m^e mod n`), exposed for protocol code
    /// that layers its own encoding.
    pub fn raw_public_op(&self, m: &BigUint) -> BigUint {
        mod_pow(m, &self.e, &self.n)
    }

    /// A short, stable fingerprint of the key: SHA-256 over `n || e`.
    pub fn fingerprint(&self) -> [u8; 32] {
        let mut data = self.n.to_bytes_be();
        data.extend_from_slice(&self.e.to_bytes_be());
        sha256(&data)
    }

    /// Build a reusable verification context for this key (see
    /// [`RsaVerifyCtx`]).
    pub fn verify_ctx(&self) -> RsaVerifyCtx {
        RsaVerifyCtx::new(self)
    }
}

/// Per-index outcome of [`RsaVerifyCtx::verify_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    valid: Vec<bool>,
}

impl BatchOutcome {
    /// `true` when every signature in the batch verified.
    pub fn all_valid(&self) -> bool {
        self.valid.iter().all(|&v| v)
    }

    /// Per-item verdicts, batch order.
    pub fn valid(&self) -> &[bool] {
        &self.valid
    }

    /// Indices of the items that failed, ascending.
    pub fn invalid_indices(&self) -> Vec<usize> {
        (0..self.valid.len()).filter(|&i| !self.valid[i]).collect()
    }

    /// Number of items in the batch.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.valid.is_empty()
    }
}

/// Precomputed verification context for one RSA public key.
///
/// [`RsaPublicKey::verify_pkcs1_sha256`] rebuilds the Montgomery
/// context — including the `R^2 mod n` division — on every call. For a
/// key that verifies thousands of signatures per login wave (the CA
/// verify key, a portal server's key) this context builds it once, with
/// the fixed-limb kernel attached when the modulus width allows, and
/// reuses it for every verification.
///
/// `verify_batch` evaluates the **same predicate** as N individual
/// `verify_pkcs1_sha256` calls — each item is verified on its own under
/// the shared context, so a failure is attributed to its exact index
/// and an accept can never diverge from the individual path. (The
/// classic product-screening batch test `(∏ sᵢ)^e = ∏ mᵢ` is rejected
/// here by design: a compensating pair `t·s, t⁻¹·s'` passes the screen
/// with two invalid signatures, and randomized screening à la
/// Bellare–Garay–Rabin costs more than it saves for `e = 65537`. See
/// DESIGN.md §13.)
pub struct RsaVerifyCtx {
    key: RsaPublicKey,
    /// Shared context; `None` for degenerate (even/trivial) moduli,
    /// which keep the plain `mod_pow` fallback.
    mont: Option<Montgomery>,
}

impl RsaVerifyCtx {
    /// Build a context for `key`. Degenerate keys (even or trivial
    /// modulus) are accepted and simply keep the uncached path so the
    /// verdict always matches [`RsaPublicKey::verify_pkcs1_sha256`].
    pub fn new(key: &RsaPublicKey) -> Self {
        RsaVerifyCtx {
            key: key.clone(),
            mont: Montgomery::new_precomputed(&key.n),
        }
    }

    /// The key this context verifies under.
    pub fn key(&self) -> &RsaPublicKey {
        &self.key
    }

    /// `s^e mod n` through the shared context.
    fn public_op(&self, s: &BigUint) -> BigUint {
        match &self.mont {
            Some(m) => m.pow(s, &self.key.e),
            None => mod_pow(s, &self.key.e, &self.key.n),
        }
    }

    /// Verify one EMSA-PKCS1-v1_5 / SHA-256 signature — the same
    /// checks, in the same order, as
    /// [`RsaPublicKey::verify_pkcs1_sha256`], with the exponentiation
    /// routed through the shared context.
    pub fn verify_pkcs1_sha256(&self, msg: &[u8], signature: &[u8]) -> bool {
        let k = self.key.modulus_len();
        if signature.len() != k {
            return false;
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.key.n {
            return false;
        }
        let em = self.public_op(&s).to_bytes_be_padded(k);
        let expected = match emsa_pkcs1_encode(msg, k) {
            Ok(v) => v,
            Err(_) => return false,
        };
        ct_eq(&em, &expected)
    }

    /// Verify a batch of `(msg, signature)` pairs under this key.
    ///
    /// Each item runs under the shared context; any rejection falls
    /// back to the independent single-shot verifier to attribute the
    /// failure, so the outcome is exactly what N individual
    /// [`RsaPublicKey::verify_pkcs1_sha256`] calls would return, with
    /// failing indices reported via [`BatchOutcome::invalid_indices`].
    pub fn verify_batch(&self, items: &[(&[u8], &[u8])]) -> BatchOutcome {
        let valid = items
            .iter()
            .map(|(msg, sig)| {
                if self.verify_pkcs1_sha256(msg, sig) {
                    return true;
                }
                // Attribute through the uncached reference path. The
                // kernels are differentially tested identical, so this
                // is belt-and-braces: if they ever disagreed, the
                // individual verdict wins and batch/individual
                // agreement still holds.
                let individual = self.key.verify_pkcs1_sha256(msg, sig);
                debug_assert!(!individual, "batch and individual verify diverged");
                individual
            })
            .collect();
        BatchOutcome { valid }
    }
}

/// An RSA key pair with CRT acceleration parameters.
#[derive(Clone, Debug)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
}

impl RsaKeyPair {
    /// Generate a fresh key pair with a modulus of `bits` bits
    /// (`e = 65537`). Test code typically uses 512-bit keys for speed.
    pub fn generate<E: EntropySource>(rng: &mut E, bits: usize) -> Self {
        assert!(bits >= 128, "RSA modulus must be at least 128 bits");
        let e = BigUint::from(65537u64);
        let one = BigUint::one();
        loop {
            let p = generate_prime(rng, bits / 2, 16);
            let q = generate_prime(rng, bits - bits / 2, 16);
            if p == q {
                continue;
            }
            let n = p.mul_ref(&q);
            if n.bit_len() != bits {
                continue;
            }
            let p1 = p.sub_ref(&one);
            let q1 = q.sub_ref(&one);
            let phi = p1.mul_ref(&q1);
            let d = match mod_inv(&e, &phi) {
                Some(d) => d,
                None => continue, // gcd(e, phi) != 1; re-draw primes
            };
            let dp = d.rem_ref(&p1);
            let dq = d.rem_ref(&q1);
            let qinv = mod_inv(&q, &p).expect("p, q distinct primes");
            return RsaKeyPair {
                public: RsaPublicKey::new(n, e),
                d,
                p,
                q,
                dp,
                dq,
                qinv,
            };
        }
    }

    /// Reconstruct a key pair from its primes and public exponent
    /// (used by key (de)serialization in `gridsec-pki`).
    pub fn from_components(p: BigUint, q: BigUint, e: BigUint) -> Result<Self, CryptoError> {
        let one = BigUint::one();
        let n = p.mul_ref(&q);
        let p1 = p.sub_ref(&one);
        let q1 = q.sub_ref(&one);
        let phi = p1.mul_ref(&q1);
        let d = mod_inv(&e, &phi).ok_or(CryptoError::InvalidKey("e not invertible mod phi(n)"))?;
        let dp = d.rem_ref(&p1);
        let dq = d.rem_ref(&q1);
        let qinv = mod_inv(&q, &p).ok_or(CryptoError::InvalidKey("p and q not coprime"))?;
        Ok(RsaKeyPair {
            public: RsaPublicKey::new(n, e),
            d,
            p,
            q,
            dp,
            dq,
            qinv,
        })
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The prime factors `(p, q)` — exposed for serialization only.
    pub fn primes(&self) -> (&BigUint, &BigUint) {
        (&self.p, &self.q)
    }

    /// The private exponent `d` (kept for completeness; the hot path uses
    /// the CRT parameters instead).
    pub fn private_exponent(&self) -> &BigUint {
        &self.d
    }

    /// Register this key's CRT prime moduli in the calling thread's
    /// [`precomp`] registry, so repeated signing (a busy server during
    /// a login wave) reuses one Montgomery context per prime instead of
    /// rebuilding both per signature. Pair with
    /// [`RsaKeyPair::unregister_signing_precomp`]; returns `false` if
    /// either prime was refused (never the case for generated keys).
    pub fn register_signing_precomp(&self) -> bool {
        let p_ok = precomp::register_modulus(&self.p);
        let q_ok = precomp::register_modulus(&self.q);
        p_ok && q_ok
    }

    /// Remove the registrations made by
    /// [`RsaKeyPair::register_signing_precomp`].
    pub fn unregister_signing_precomp(&self) {
        precomp::unregister_modulus(&self.p);
        precomp::unregister_modulus(&self.q);
    }

    /// Private-key operation using the Chinese Remainder Theorem.
    fn raw_private_op(&self, c: &BigUint) -> BigUint {
        let m1 = mod_pow(&c.rem_ref(&self.p), &self.dp, &self.p);
        let m2 = mod_pow(&c.rem_ref(&self.q), &self.dq, &self.q);
        // h = qinv * (m1 - m2) mod p
        let diff = if m1 >= m2 {
            m1.sub_ref(&m2)
        } else {
            // (m1 - m2) mod p with borrow
            let t = m2.sub_ref(&m1).rem_ref(&self.p);
            if t.is_zero() {
                t
            } else {
                self.p.sub_ref(&t)
            }
        };
        let h = self.qinv.mul_ref(&diff).rem_ref(&self.p);
        m2.add_ref(&h.mul_ref(&self.q))
    }

    /// Sign `msg` with EMSA-PKCS1-v1_5 / SHA-256.
    pub fn sign_pkcs1_sha256(&self, msg: &[u8]) -> Vec<u8> {
        let k = self.public.modulus_len();
        let em = emsa_pkcs1_encode(msg, k).expect("modulus checked at generation");
        let m = BigUint::from_bytes_be(&em);
        self.raw_private_op(&m).to_bytes_be_padded(k)
    }

    /// Decrypt an EME-PKCS1-v1_5 ciphertext produced by
    /// [`RsaPublicKey::encrypt_pkcs1`].
    pub fn decrypt_pkcs1(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        if ciphertext.len() != k {
            return Err(CryptoError::Malformed(
                "ciphertext length != modulus length",
            ));
        }
        let c = BigUint::from_bytes_be(ciphertext);
        if c >= *self.public.modulus() {
            return Err(CryptoError::Malformed("ciphertext out of range"));
        }
        let em = self.raw_private_op(&c).to_bytes_be_padded(k);
        // Parse 0x00 0x02 PS 0x00 M.
        if em.len() < 11 || em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::Malformed("bad PKCS#1 type-2 header"));
        }
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(CryptoError::Malformed("missing PKCS#1 separator"))?;
        if sep < 8 {
            return Err(CryptoError::Malformed("PKCS#1 padding too short"));
        }
        Ok(em[2 + sep + 1..].to_vec())
    }
}

/// EMSA-PKCS1-v1_5 encoding: `0x00 0x01 FF..FF 0x00 DigestInfo || H(msg)`.
fn emsa_pkcs1_encode(msg: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let h = sha256(msg);
    let t_len = SHA256_DIGEST_INFO.len() + h.len();
    if k < t_len + 11 {
        return Err(CryptoError::InvalidKey(
            "modulus too small for SHA-256 PKCS#1",
        ));
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xFF);
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO);
    em.extend_from_slice(&h);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::ChaChaRng;

    fn test_key() -> RsaKeyPair {
        let mut rng = ChaChaRng::from_seed_bytes(b"rsa unit test key");
        RsaKeyPair::generate(&mut rng, 512)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = test_key();
        let sig = key.sign_pkcs1_sha256(b"hello grid");
        assert_eq!(sig.len(), key.public().modulus_len());
        assert!(key.public().verify_pkcs1_sha256(b"hello grid", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = test_key();
        let sig = key.sign_pkcs1_sha256(b"message A");
        assert!(!key.public().verify_pkcs1_sha256(b"message B", &sig));
    }

    #[test]
    fn verify_rejects_bitflips() {
        let key = test_key();
        let mut sig = key.sign_pkcs1_sha256(b"msg");
        sig[10] ^= 1;
        assert!(!key.public().verify_pkcs1_sha256(b"msg", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let key = test_key();
        let mut rng = ChaChaRng::from_seed_bytes(b"another key");
        let other = RsaKeyPair::generate(&mut rng, 512);
        let sig = key.sign_pkcs1_sha256(b"msg");
        assert!(!other.public().verify_pkcs1_sha256(b"msg", &sig));
    }

    #[test]
    fn verify_rejects_bad_lengths() {
        let key = test_key();
        let sig = key.sign_pkcs1_sha256(b"msg");
        assert!(!key.public().verify_pkcs1_sha256(b"msg", &sig[1..]));
        let mut long = sig.clone();
        long.push(0);
        assert!(!key.public().verify_pkcs1_sha256(b"msg", &long));
        assert!(!key.public().verify_pkcs1_sha256(b"msg", &[]));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = test_key();
        let mut rng = ChaChaRng::from_seed_bytes(b"enc");
        let msg = b"aead content key!";
        let ct = key.public().encrypt_pkcs1(&mut rng, msg).unwrap();
        assert_eq!(key.decrypt_pkcs1(&ct).unwrap(), msg);
    }

    #[test]
    fn encrypt_rejects_oversized() {
        let key = test_key();
        let mut rng = ChaChaRng::from_seed_bytes(b"enc");
        let big = vec![1u8; key.public().modulus_len() - 10];
        assert!(key.public().encrypt_pkcs1(&mut rng, &big).is_err());
    }

    #[test]
    fn decrypt_rejects_garbage() {
        let key = test_key();
        let garbage = vec![0x17u8; key.public().modulus_len()];
        assert!(key.decrypt_pkcs1(&garbage).is_err());
        assert!(key.decrypt_pkcs1(&[1, 2, 3]).is_err());
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let key = test_key();
        let mut rng = ChaChaRng::from_seed_bytes(b"enc rand");
        let a = key.public().encrypt_pkcs1(&mut rng, b"m").unwrap();
        let b = key.public().encrypt_pkcs1(&mut rng, b"m").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn from_components_matches_generate() {
        let key = test_key();
        let (p, q) = key.primes();
        let rebuilt =
            RsaKeyPair::from_components(p.clone(), q.clone(), key.public().exponent().clone())
                .unwrap();
        let sig = rebuilt.sign_pkcs1_sha256(b"rebuild");
        assert!(key.public().verify_pkcs1_sha256(b"rebuild", &sig));
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let key = test_key();
        assert_eq!(key.public().fingerprint(), key.public().fingerprint());
        let mut rng = ChaChaRng::from_seed_bytes(b"fp other");
        let other = RsaKeyPair::generate(&mut rng, 512);
        assert_ne!(key.public().fingerprint(), other.public().fingerprint());
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let key = test_key();
        let m = BigUint::from(0xDEADBEEFu64);
        let c = key.public().raw_public_op(&m);
        let back = key.raw_private_op(&c);
        assert_eq!(back, m);
        // And the textbook way (without CRT) agrees:
        let plain = mod_pow(&c, &key.d, key.public.modulus());
        assert_eq!(plain, m);
    }
}
