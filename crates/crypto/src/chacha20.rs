//! The ChaCha20 stream cipher (RFC 8439).
//!
//! Used directly by the AEAD construction in [`crate::aead`] and as the
//! core of the deterministic random bit generator in [`crate::rng`].
//!
//! The block core lives in [`gridsec_util::chacha`] so the workspace's
//! deterministic test RNG shares the same audited keystream; this module
//! re-exports it under the crate's historical path.

pub use gridsec_util::chacha::{apply, block, xor_stream, BLOCK_LEN, KEY_LEN, NONCE_LEN};
