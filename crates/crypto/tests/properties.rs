//! Property-based tests over the crypto primitives.

use gridsec_crypto::aead;
use gridsec_crypto::chacha20;
use gridsec_crypto::hmac::{hkdf, hmac_sha256};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_crypto::rsa::RsaKeyPair;
use gridsec_crypto::sha256::sha256;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sha256_is_deterministic(data in prop::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(sha256(&data), sha256(&data));
    }

    #[test]
    fn sha256_streaming_split_invariance(
        data in prop::collection::vec(any::<u8>(), 1..512),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut h = gridsec_crypto::sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn chacha20_roundtrip(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        data in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let ct = chacha20::apply(&key, &nonce, 0, &data);
        prop_assert_eq!(chacha20::apply(&key, &nonce, 0, &ct), data);
    }

    #[test]
    fn aead_roundtrip(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        aad in prop::collection::vec(any::<u8>(), 0..64),
        data in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let sealed = aead::seal(&key, &nonce, &aad, &data);
        prop_assert_eq!(sealed.len(), data.len() + 16);
        prop_assert_eq!(aead::open(&key, &nonce, &aad, &sealed).unwrap(), data);
    }

    #[test]
    fn aead_detects_any_single_bitflip(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        data in prop::collection::vec(any::<u8>(), 1..64),
        flip_byte_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let mut sealed = aead::seal(&key, &nonce, b"", &data);
        let idx = ((sealed.len() as f64) * flip_byte_frac) as usize % sealed.len();
        sealed[idx] ^= 1 << flip_bit;
        prop_assert!(aead::open(&key, &nonce, b"", &sealed).is_err());
    }

    #[test]
    fn hmac_keys_separate_domains(
        k1 in prop::collection::vec(any::<u8>(), 1..48),
        k2 in prop::collection::vec(any::<u8>(), 1..48),
        msg in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        if k1 != k2 {
            prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        }
    }

    #[test]
    fn hkdf_length_contract(len in 1usize..500) {
        prop_assert_eq!(hkdf(b"salt", b"ikm", b"info", len).len(), len);
    }
}

// RSA generation is too slow for per-case proptest; use one shared key.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rsa_sign_verify_any_message(msg in prop::collection::vec(any::<u8>(), 0..256)) {
        use std::sync::OnceLock;
        static KEY: OnceLock<RsaKeyPair> = OnceLock::new();
        let key = KEY.get_or_init(|| {
            let mut rng = ChaChaRng::from_seed_bytes(b"proptest rsa");
            RsaKeyPair::generate(&mut rng, 512)
        });
        let sig = key.sign_pkcs1_sha256(&msg);
        prop_assert!(key.public().verify_pkcs1_sha256(&msg, &sig));
        let mut other = msg.clone();
        other.push(0x55);
        prop_assert!(!key.public().verify_pkcs1_sha256(&other, &sig));
    }

    #[test]
    fn rsa_encrypt_decrypt_any_short_message(msg in prop::collection::vec(any::<u8>(), 0..48)) {
        use std::sync::OnceLock;
        static KEY: OnceLock<RsaKeyPair> = OnceLock::new();
        let key = KEY.get_or_init(|| {
            let mut rng = ChaChaRng::from_seed_bytes(b"proptest rsa enc");
            RsaKeyPair::generate(&mut rng, 512)
        });
        let mut rng = ChaChaRng::from_seed_bytes(&msg);
        let ct = key.public().encrypt_pkcs1(&mut rng, &msg).unwrap();
        prop_assert_eq!(key.decrypt_pkcs1(&ct).unwrap(), msg);
    }
}
