//! Property-based tests over the crypto primitives.

use gridsec_crypto::aead;
use gridsec_crypto::chacha20;
use gridsec_crypto::hmac::{hkdf, hmac_sha256};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_crypto::rsa::RsaKeyPair;
use gridsec_crypto::sha256::sha256;
use gridsec_util::check::check;

const CASES: u64 = 64;

#[test]
fn sha256_is_deterministic() {
    check("sha256_is_deterministic", CASES, |g| {
        let data = g.bytes(0..512);
        assert_eq!(sha256(&data), sha256(&data));
    });
}

#[test]
fn sha256_streaming_split_invariance() {
    check("sha256_streaming_split_invariance", CASES, |g| {
        let data = g.bytes(1..512);
        let split = ((data.len() as f64) * g.f64_unit()) as usize;
        let mut h = gridsec_crypto::sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), sha256(&data));
    });
}

#[test]
fn chacha20_roundtrip() {
    check("chacha20_roundtrip", CASES, |g| {
        let key: [u8; 32] = g.byte_array();
        let nonce: [u8; 12] = g.byte_array();
        let data = g.bytes(0..512);
        let ct = chacha20::apply(&key, &nonce, 0, &data);
        assert_eq!(chacha20::apply(&key, &nonce, 0, &ct), data);
    });
}

#[test]
fn aead_roundtrip() {
    check("aead_roundtrip", CASES, |g| {
        let key: [u8; 32] = g.byte_array();
        let nonce: [u8; 12] = g.byte_array();
        let aad = g.bytes(0..64);
        let data = g.bytes(0..256);
        let sealed = aead::seal(&key, &nonce, &aad, &data);
        assert_eq!(sealed.len(), data.len() + 16);
        assert_eq!(aead::open(&key, &nonce, &aad, &sealed).unwrap(), data);
    });
}

#[test]
fn aead_detects_any_single_bitflip() {
    check("aead_detects_any_single_bitflip", CASES, |g| {
        let key: [u8; 32] = g.byte_array();
        let nonce: [u8; 12] = g.byte_array();
        let data = g.bytes(1..64);
        let mut sealed = aead::seal(&key, &nonce, b"", &data);
        let idx = ((sealed.len() as f64) * g.f64_unit()) as usize % sealed.len();
        sealed[idx] ^= 1 << g.u8_in(0..8);
        assert!(aead::open(&key, &nonce, b"", &sealed).is_err());
    });
}

#[test]
fn hmac_keys_separate_domains() {
    check("hmac_keys_separate_domains", CASES, |g| {
        let k1 = g.bytes(1..48);
        let k2 = g.bytes(1..48);
        let msg = g.bytes(0..128);
        if k1 != k2 {
            assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        }
    });
}

#[test]
fn hkdf_length_contract() {
    check("hkdf_length_contract", CASES, |g| {
        let len = g.usize_in(1..500);
        assert_eq!(hkdf(b"salt", b"ikm", b"info", len).len(), len);
    });
}

// RSA generation is too slow for per-case generation; use one shared key.

#[test]
fn rsa_sign_verify_any_message() {
    use std::sync::OnceLock;
    static KEY: OnceLock<RsaKeyPair> = OnceLock::new();
    check("rsa_sign_verify_any_message", 16, |g| {
        let msg = g.bytes(0..256);
        let key = KEY.get_or_init(|| {
            let mut rng = ChaChaRng::from_seed_bytes(b"proptest rsa");
            RsaKeyPair::generate(&mut rng, 512)
        });
        let sig = key.sign_pkcs1_sha256(&msg);
        assert!(key.public().verify_pkcs1_sha256(&msg, &sig));
        let mut other = msg.clone();
        other.push(0x55);
        assert!(!key.public().verify_pkcs1_sha256(&other, &sig));
    });
}

#[test]
fn rsa_encrypt_decrypt_any_short_message() {
    use std::sync::OnceLock;
    static KEY: OnceLock<RsaKeyPair> = OnceLock::new();
    check("rsa_encrypt_decrypt_any_short_message", 16, |g| {
        let msg = g.bytes(0..48);
        let key = KEY.get_or_init(|| {
            let mut rng = ChaChaRng::from_seed_bytes(b"proptest rsa enc");
            RsaKeyPair::generate(&mut rng, 512)
        });
        let mut rng = ChaChaRng::from_seed_bytes(&msg);
        let ct = key.public().encrypt_pkcs1(&mut rng, &msg).unwrap();
        assert_eq!(key.decrypt_pkcs1(&ct).unwrap(), msg);
    });
}
