//! Adversarial tests for PKCS#1 batch signature verification.
//!
//! The batch verifier's contract is exact agreement with N individual
//! `verify_pkcs1_sha256` calls plus per-index failure attribution, so
//! the suite attacks exactly those properties: single and multiple
//! corruptions must be rejected *and pinned to the right indices*, a
//! randomized cross-check compares every batch verdict against the
//! individual path item by item, and the compensating-pair forgery
//! that defeats naive product screening must be rejected outright —
//! the attack the per-item design exists to be immune to.

use gridsec_bignum::modular::mod_inv;
use gridsec_bignum::BigUint;
use gridsec_crypto::rng::ChaChaRng;
use gridsec_crypto::rsa::{RsaKeyPair, RsaPublicKey, RsaVerifyCtx};
use gridsec_util::check::check;

fn key_from(seed: &[u8]) -> RsaKeyPair {
    let mut rng = ChaChaRng::from_seed_bytes(seed);
    RsaKeyPair::generate(&mut rng, 512)
}

#[test]
fn single_corruption_attributed_to_exact_index() {
    let key = key_from(b"batch attribution key");
    let ctx = key.public().verify_ctx();
    let msgs: Vec<Vec<u8>> = (0..12)
        .map(|i| format!("proxy request {i}").into_bytes())
        .collect();
    let sigs: Vec<Vec<u8>> = msgs.iter().map(|m| key.sign_pkcs1_sha256(m)).collect();

    // Clean batch accepts.
    let items: Vec<(&[u8], &[u8])> = msgs
        .iter()
        .zip(&sigs)
        .map(|(m, s)| (m.as_slice(), s.as_slice()))
        .collect();
    let clean = ctx.verify_batch(&items);
    assert!(clean.all_valid());
    assert!(clean.invalid_indices().is_empty());
    assert_eq!(clean.len(), 12);

    // One flipped byte, every position: rejected and attributed there.
    for bad in 0..msgs.len() {
        let mut sigs = sigs.clone();
        sigs[bad][7] ^= 0x40;
        let items: Vec<(&[u8], &[u8])> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s.as_slice()))
            .collect();
        let outcome = ctx.verify_batch(&items);
        assert!(!outcome.all_valid());
        assert_eq!(outcome.invalid_indices(), vec![bad], "corruption at {bad}");
        for (i, &ok) in outcome.valid().iter().enumerate() {
            assert_eq!(ok, i != bad, "index {i} with corruption at {bad}");
        }
    }
}

#[test]
fn multiple_corruptions_all_attributed() {
    let key = key_from(b"batch multi key");
    let ctx = key.public().verify_ctx();
    let msgs: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 24]).collect();
    let mut sigs: Vec<Vec<u8>> = msgs.iter().map(|m| key.sign_pkcs1_sha256(m)).collect();
    for &bad in &[1usize, 4, 9] {
        sigs[bad][0] ^= 1;
    }
    let items: Vec<(&[u8], &[u8])> = msgs
        .iter()
        .zip(&sigs)
        .map(|(m, s)| (m.as_slice(), s.as_slice()))
        .collect();
    assert_eq!(ctx.verify_batch(&items).invalid_indices(), vec![1, 4, 9]);
}

#[test]
fn compensating_pair_forgery_is_rejected() {
    // The classic attack on product-screened batch RSA: given two valid
    // signatures s1, s2, submit s1' = t·s1 and s2' = t⁻¹·s2 (mod n).
    // The product s1'·s2' = s1·s2 is unchanged, so the screen
    // (∏ sᵢ)^e = ∏ mᵢ accepts a batch containing two forgeries. The
    // per-item verifier must reject both and attribute both.
    let key = key_from(b"compensating pair key");
    let n = key.public().modulus();
    let ctx = key.public().verify_ctx();
    let (m1, m2): (&[u8], &[u8]) = (b"pay alice 1 credit", b"pay bob 1 credit");
    let s1 = BigUint::from_bytes_be(&key.sign_pkcs1_sha256(m1));
    let s2 = BigUint::from_bytes_be(&key.sign_pkcs1_sha256(m2));

    let t = BigUint::from(0x5eed_cafe_u64);
    let t_inv = mod_inv(&t, n).expect("t coprime to a two-prime modulus");
    let k = key.public().modulus_len();
    let s1f = s1.mul_ref(&t).rem_ref(n).to_bytes_be_padded(k);
    let s2f = s2.mul_ref(&t_inv).rem_ref(n).to_bytes_be_padded(k);

    // Sanity: the product of the forged pair really is preserved, i.e.
    // a multiplicative screen would have been blind to this batch.
    let prod_forged = BigUint::from_bytes_be(&s1f)
        .mul_ref(&BigUint::from_bytes_be(&s2f))
        .rem_ref(n);
    let prod_valid = s1.mul_ref(&s2).rem_ref(n);
    assert_eq!(prod_forged, prod_valid, "compensating pair construction");

    let outcome = ctx.verify_batch(&[(m1, &s1f), (m2, &s2f)]);
    assert_eq!(outcome.invalid_indices(), vec![0, 1]);
    // And the individual path agrees, of course.
    assert!(!key.public().verify_pkcs1_sha256(m1, &s1f));
    assert!(!key.public().verify_pkcs1_sha256(m2, &s2f));
}

#[test]
fn batch_never_diverges_from_individual_randomized() {
    let key = key_from(b"batch cross-check key");
    let other = key_from(b"batch cross-check other");
    let ctx = key.public().verify_ctx();
    check("batch_never_diverges_from_individual", 64, |g| {
        let n_items = g.usize_in(0..9);
        let mut msgs: Vec<Vec<u8>> = Vec::new();
        let mut sigs: Vec<Vec<u8>> = Vec::new();
        for _ in 0..n_items {
            let msg = g.bytes(0..40);
            // Draw one adversarial shape per item.
            let sig = match g.usize_in(0..8) {
                0 | 1 => key.sign_pkcs1_sha256(&msg), // valid
                2 => {
                    // Valid signature over a different message.
                    let other_msg = g.bytes(0..40);
                    key.sign_pkcs1_sha256(&other_msg)
                }
                3 => other.sign_pkcs1_sha256(&msg), // wrong key
                4 => {
                    // Bit flip at a random position.
                    let mut s = key.sign_pkcs1_sha256(&msg);
                    let i = g.usize_in(0..s.len());
                    s[i] ^= 1 << g.usize_in(0..8);
                    s
                }
                5 => {
                    // Truncated.
                    let s = key.sign_pkcs1_sha256(&msg);
                    let keep = g.usize_in(0..s.len());
                    s[..keep].to_vec()
                }
                6 => {
                    // Oversized.
                    let mut s = key.sign_pkcs1_sha256(&msg);
                    s.push(0);
                    s
                }
                // Pure garbage of random length (including s >= n
                // shapes when the top bytes come out large).
                _ => g.bytes(0..80),
            };
            msgs.push(msg);
            sigs.push(sig);
        }
        let items: Vec<(&[u8], &[u8])> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s.as_slice()))
            .collect();
        let outcome = ctx.verify_batch(&items);
        let individual: Vec<bool> = items
            .iter()
            .map(|(m, s)| key.public().verify_pkcs1_sha256(m, s))
            .collect();
        assert_eq!(outcome.valid(), individual.as_slice());
        assert_eq!(outcome.all_valid(), individual.iter().all(|&v| v));
        // The ctx's single-shot verifier agrees item by item too.
        for (i, (m, s)) in items.iter().enumerate() {
            assert_eq!(ctx.verify_pkcs1_sha256(m, s), individual[i], "item {i}");
        }
    });
}

#[test]
fn empty_batch_is_vacuously_valid() {
    let key = key_from(b"batch empty key");
    let outcome = key.public().verify_ctx().verify_batch(&[]);
    assert!(outcome.all_valid());
    assert!(outcome.is_empty());
    assert!(outcome.invalid_indices().is_empty());
}

#[test]
fn degenerate_keys_match_individual_and_never_panic() {
    // Even, zero, one, and tiny moduli; zero exponent. The context must
    // refuse nothing loudly — it just keeps the uncached path — and
    // every verdict must match the individual verifier.
    let shapes = [
        (BigUint::zero(), BigUint::from(65537u64)),
        (BigUint::one(), BigUint::from(65537u64)),
        (BigUint::from(65536u64), BigUint::from(65537u64)), // even n
        (BigUint::from(65537u64), BigUint::zero()),         // e = 0
        (BigUint::from(3u64), BigUint::from(3u64)),
    ];
    for (n, e) in shapes {
        let key = RsaPublicKey::new(n.clone(), e.clone());
        let ctx = RsaVerifyCtx::new(&key);
        for sig_len in [0usize, 1, 8, 64, 65] {
            let sig = vec![0xA5u8; sig_len];
            let got = ctx.verify_pkcs1_sha256(b"msg", &sig);
            let want = key.verify_pkcs1_sha256(b"msg", &sig);
            assert_eq!(got, want, "n={n} e={e} sig_len={sig_len}");
            let batch = ctx.verify_batch(&[(b"msg".as_slice(), sig.as_slice())]);
            assert_eq!(batch.valid(), &[want]);
        }
    }
}
