//! # gridsec-xml
//!
//! A minimal XML infoset for the `gridsec` reproduction of *Security for
//! Grid Services* (Welch et al., HPDC 2003).
//!
//! GT3 moves all GSI exchanges onto SOAP with WS-Security headers,
//! XML-Signature, and XML-Encryption. The Rust ecosystem substitution
//! (`DESIGN.md` §2) is to implement the minimal XML machinery those
//! layers need, from scratch:
//!
//! * [`Element`]/[`Node`] — an element tree with attributes and text.
//! * [`Element::parse`] — a strict, entity-aware, non-validating parser
//!   (no DTDs, no processing instructions beyond the XML declaration).
//! * [`Element::to_xml`] — compact serialization with escaping.
//! * [`Element::canonical_xml`] — deterministic canonical form
//!   ("c14n-lite"): attributes sorted by name, fixed quoting, no
//!   insignificant whitespace. This plays the role Exclusive XML
//!   Canonicalization plays under real XML-Signature: both signer and
//!   verifier derive identical bytes from equivalent infosets.
//!
//! Namespace prefixes are kept as literal parts of names (`wsse:Security`)
//! — sufficient for a closed protocol suite where we control both ends,
//! and documented as a simplification in `DESIGN.md`.
//!
//! ## Example
//!
//! ```
//! use gridsec_xml::Element;
//!
//! let env = Element::new("soap:Envelope")
//!     .with_attr("xmlns:soap", "http://schemas.xmlsoap.org/soap/envelope/")
//!     .with_child(Element::new("soap:Body").with_text("hi & bye"));
//! let xml = env.to_xml();
//! let parsed = Element::parse(&xml).unwrap();
//! assert_eq!(parsed.find("soap:Body").unwrap().text_content(), "hi & bye");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parser;

pub use parser::XmlError;

/// A node in an element's child list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// A text run (unescaped form).
    Text(String),
}

/// An XML element: name, attributes, children.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Element {
    /// Qualified name as written, e.g. `wsse:Security`.
    pub name: String,
    /// Attributes in document order (qualified name, unescaped value).
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Create an empty element.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Builder API
    // ------------------------------------------------------------------

    /// Builder: add an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder: append a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: append a text node.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Set (or replace) an attribute in place.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Append a child element in place.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Append a text node in place.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Attribute value by qualified name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The element's local name (after any `prefix:`).
    pub fn local_name(&self) -> &str {
        self.name.rsplit(':').next().unwrap_or(&self.name)
    }

    /// First direct child element with the given qualified name, or —
    /// when `name` has no prefix — matching by local name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| Self::name_matches(e, name))
    }

    /// All direct child elements matching (same rule as [`Element::find`]).
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements()
            .filter(move |e| Self::name_matches(e, name))
    }

    fn name_matches(e: &Element, name: &str) -> bool {
        if name.contains(':') {
            e.name == name
        } else {
            e.local_name() == name
        }
    }

    /// Walk a path of child names from this element.
    pub fn path(&self, names: &[&str]) -> Option<&Element> {
        let mut cur = self;
        for n in names {
            cur = cur.find(n)?;
        }
        Some(cur)
    }

    /// Direct child elements.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Concatenated text of direct text children.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }

    /// Depth-first search for an element with attribute `attr` == `value`
    /// (how XML-Signature `Reference URI="#id"` resolution works).
    pub fn find_by_attr<'a>(&'a self, attr: &str, value: &str) -> Option<&'a Element> {
        if self.attr(attr) == Some(value) {
            return Some(self);
        }
        for c in self.child_elements() {
            if let Some(found) = c.find_by_attr(attr, value) {
                return Some(found);
            }
        }
        None
    }

    /// Depth-first search for the first descendant with the given name
    /// (self included).
    pub fn find_descendant(&self, name: &str) -> Option<&Element> {
        if Self::name_matches(self, name) {
            return Some(self);
        }
        for c in self.child_elements() {
            if let Some(found) = c.find_descendant(name) {
                return Some(found);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Serialization
    // ------------------------------------------------------------------

    /// Compact serialization, attributes in document order.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, false);
        out
    }

    /// Canonical serialization: attributes sorted by name, fixed quoting,
    /// explicit end tags. Equivalent infosets yield identical bytes, which
    /// is the property XML-Signature digesting requires.
    pub fn canonical_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, true);
        out
    }

    fn write(&self, out: &mut String, canonical: bool) {
        out.push('<');
        out.push_str(&self.name);
        if canonical {
            let mut attrs = self.attributes.clone();
            attrs.sort();
            for (k, v) in &attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_attr(v));
                out.push('"');
            }
        } else {
            for (k, v) in &self.attributes {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_attr(v));
                out.push('"');
            }
        }
        if self.children.is_empty() && !canonical {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for c in &self.children {
            match c {
                Node::Element(e) => e.write(out, canonical),
                Node::Text(t) => out.push_str(&escape_text(t)),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Parse a document; returns the root element.
    pub fn parse(input: &str) -> Result<Element, XmlError> {
        parser::parse(input)
    }
}

fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_queries() {
        let el = Element::new("a")
            .with_attr("id", "1")
            .with_child(Element::new("b").with_text("x"))
            .with_child(Element::new("ns:c"))
            .with_child(Element::new("b").with_text("y"));
        assert_eq!(el.attr("id"), Some("1"));
        assert_eq!(el.attr("missing"), None);
        assert_eq!(el.find("b").unwrap().text_content(), "x");
        assert_eq!(el.find_all("b").count(), 2);
        // Local-name matching for prefixed elements.
        assert_eq!(el.find("c").unwrap().name, "ns:c");
        assert_eq!(el.find("ns:c").unwrap().name, "ns:c");
        assert!(el.find("ns2:c").is_none());
    }

    #[test]
    fn path_navigation() {
        let el = Element::new("env")
            .with_child(Element::new("hdr").with_child(Element::new("sec").with_text("s")));
        assert_eq!(el.path(&["hdr", "sec"]).unwrap().text_content(), "s");
        assert!(el.path(&["hdr", "nope"]).is_none());
    }

    #[test]
    fn find_by_attr_recurses() {
        let el = Element::new("a")
            .with_child(Element::new("b").with_child(Element::new("c").with_attr("Id", "target")));
        assert_eq!(el.find_by_attr("Id", "target").unwrap().name, "c");
        assert!(el.find_by_attr("Id", "other").is_none());
    }

    #[test]
    fn find_descendant_works() {
        let el =
            Element::new("a").with_child(Element::new("b").with_child(Element::new("deep:target")));
        assert_eq!(el.find_descendant("target").unwrap().name, "deep:target");
    }

    #[test]
    fn escaping_roundtrip() {
        let el = Element::new("t")
            .with_attr("a", "x\"<>&'y")
            .with_text("a < b && c > \"d\"");
        let xml = el.to_xml();
        let parsed = Element::parse(&xml).unwrap();
        assert_eq!(parsed.attr("a"), Some("x\"<>&'y"));
        assert_eq!(parsed.text_content(), "a < b && c > \"d\"");
    }

    #[test]
    fn canonical_sorts_attributes() {
        let a = Element::new("t").with_attr("z", "1").with_attr("a", "2");
        let b = Element::new("t").with_attr("a", "2").with_attr("z", "1");
        assert_ne!(a.to_xml(), b.to_xml());
        assert_eq!(a.canonical_xml(), b.canonical_xml());
    }

    #[test]
    fn canonical_never_self_closes() {
        let el = Element::new("empty");
        assert_eq!(el.to_xml(), "<empty/>");
        assert_eq!(el.canonical_xml(), "<empty></empty>");
        // Self-closing and explicit forms parse to the same infoset,
        // hence the same canonical bytes.
        let a = Element::parse("<empty/>").unwrap();
        let b = Element::parse("<empty></empty>").unwrap();
        assert_eq!(a.canonical_xml(), b.canonical_xml());
    }

    #[test]
    fn set_attr_replaces() {
        let mut el = Element::new("t");
        el.set_attr("k", "1");
        el.set_attr("k", "2");
        assert_eq!(el.attributes.len(), 1);
        assert_eq!(el.attr("k"), Some("2"));
    }

    #[test]
    fn doc_shape() {
        let env = Element::new("soap:Envelope")
            .with_attr("xmlns:soap", "http://schemas.xmlsoap.org/soap/envelope/")
            .with_child(Element::new("soap:Header"))
            .with_child(Element::new("soap:Body").with_text("payload"));
        let xml = env.to_xml();
        assert!(xml.starts_with("<soap:Envelope"));
        let parsed = Element::parse(&xml).unwrap();
        assert_eq!(parsed, env);
    }
}
