//! A strict, non-validating XML parser.
//!
//! Supports: elements, attributes (single- or double-quoted), text with
//! the five predefined entities plus numeric character references,
//! comments, CDATA sections, and a leading XML declaration. Rejects:
//! DTDs, processing instructions, mismatched tags, and trailing content.

use crate::{Element, Node};

/// Parse errors with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input at which the error was detected.
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl core::fmt::Display for XmlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// Maximum element nesting depth. `parse_element` recurses per level,
/// so without a cap a wire-supplied document of ~10⁴ open tags
/// overflows the stack — an attacker-triggerable abort. Every real
/// envelope in this codebase nests < 20 deep; 128 leaves an order of
/// magnitude of headroom while bounding recursion.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Parse a document into its root element.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos != p.input.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip XML declaration, comments, and whitespace before the root.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                Some(rel) => self.pos += rel + 2,
                None => return Err(self.err("unterminated XML declaration")),
            }
        }
        self.skip_misc();
        if self.starts_with("<!DOCTYPE") {
            return Err(self.err("DTDs are not supported"));
        }
        Ok(())
    }

    /// Skip whitespace and comments.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if let Some(rel) = self.input[self.pos + 4..]
                    .windows(3)
                    .position(|w| w == b"-->")
                {
                    self.pos += 4 + rel + 3;
                    continue;
                }
                // Unterminated comment: leave for the element parser to fail.
                self.pos = self.input.len();
            }
            break;
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b':' | b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), XmlError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("element nesting exceeds {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let el = self.parse_element_inner();
        self.depth -= 1;
        el
    }

    fn parse_element_inner(&mut self) -> Result<Element, XmlError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut el = Element::new(name);

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(el); // self-closing
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => {
                            self.pos += 1;
                            q
                        }
                        _ => return Err(self.err("attribute value must be quoted")),
                    };
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        if c == b'<' {
                            return Err(self.err("'<' in attribute value"));
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.pos += 1;
                    let value = unescape(&raw).map_err(|m| self.err(m))?;
                    if el.attr(&attr_name).is_some() {
                        return Err(self.err(format!("duplicate attribute {attr_name:?}")));
                    }
                    el.attributes.push((attr_name, value));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }

        // Children until the matching end tag.
        loop {
            if self.starts_with("<!--") {
                let before = self.pos;
                self.skip_misc();
                if self.pos == before {
                    return Err(self.err("unterminated comment"));
                }
                continue;
            }
            if self.starts_with("<![CDATA[") {
                let start = self.pos + 9;
                match self.input[start..].windows(3).position(|w| w == b"]]>") {
                    Some(rel) => {
                        let text =
                            String::from_utf8_lossy(&self.input[start..start + rel]).into_owned();
                        el.children.push(Node::Text(text));
                        self.pos = start + rel + 3;
                        continue;
                    }
                    None => return Err(self.err("unterminated CDATA section")),
                }
            }
            if self.starts_with("</") {
                self.pos += 2;
                let end_name = self.parse_name()?;
                if end_name != el.name {
                    return Err(self.err(format!(
                        "mismatched end tag: expected </{}>, found </{}>",
                        el.name, end_name
                    )));
                }
                self.skip_ws();
                self.expect(b'>')?;
                return Ok(el);
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    el.children.push(Node::Element(child));
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    let text = unescape(&raw).map_err(|m| self.err(m))?;
                    // Whitespace-only runs between elements are not
                    // significant for our protocols; keep them only when
                    // the element has no element children yet mixed text.
                    if (!text.trim().is_empty() || el.children.is_empty())
                        && !text.trim().is_empty()
                    {
                        el.children.push(Node::Text(text));
                    }
                }
                None => return Err(self.err("unexpected end of input in element content")),
            }
        }
    }
}

/// Decode the predefined entities and numeric character references.
fn unescape(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i + 1..];
        let semi = rest.find(';').ok_or("unterminated entity reference")?;
        let entity = &rest[..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| "bad hex character reference")?;
                out.push(char::from_u32(code).ok_or("invalid character reference")?);
            }
            _ if entity.starts_with('#') => {
                let code = entity[1..]
                    .parse::<u32>()
                    .map_err(|_| "bad decimal character reference")?;
                out.push(char::from_u32(code).ok_or("invalid character reference")?);
            }
            other => return Err(format!("unknown entity &{other};")),
        }
        // Skip the consumed entity body.
        for _ in 0..semi + 1 {
            chars.next();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document() {
        let el = parse("<a/>").unwrap();
        assert_eq!(el.name, "a");
        assert!(el.children.is_empty());
    }

    #[test]
    fn xml_decl_and_comments_skipped() {
        let el = parse("<?xml version=\"1.0\"?><!-- hi --><a>x</a><!-- bye -->").unwrap();
        assert_eq!(el.text_content(), "x");
    }

    #[test]
    fn nested_elements_and_attrs() {
        let el = parse(r#"<a x="1" y='2'><b><c z="3"/></b>text</a>"#).unwrap();
        assert_eq!(el.attr("x"), Some("1"));
        assert_eq!(el.attr("y"), Some("2"));
        assert_eq!(el.path(&["b", "c"]).unwrap().attr("z"), Some("3"));
        assert_eq!(el.text_content(), "text");
    }

    #[test]
    fn entities_decoded() {
        let el = parse("<a t=\"&quot;&apos;\">&amp;&lt;&gt;&#65;&#x42;</a>").unwrap();
        assert_eq!(el.text_content(), "&<>AB");
        assert_eq!(el.attr("t"), Some("\"'"));
    }

    #[test]
    fn cdata_supported() {
        let el = parse("<a><![CDATA[<raw>&stuff]]></a>").unwrap();
        assert_eq!(el.text_content(), "<raw>&stuff");
    }

    #[test]
    fn interelement_whitespace_dropped() {
        let el = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(el.child_elements().count(), 2);
        assert_eq!(el.text_content(), "");
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse("<a></b>").is_err());
        assert!(parse("<a><b></a></b>").is_err());
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "<",
            "<a",
            "<a x=1/>",
            "<a x=\"1/>",
            "<a/><b/>",
            "junk<a/>",
            "<a>&nbsp;</a>",
            "<a>&unterminated</a>",
            "<!DOCTYPE html><a/>",
            "<a x=\"1\" x=\"2\"/>",
            "<a><![CDATA[x]]</a>",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let err = parse("<a></b>").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn deeply_nested_ok() {
        let mut doc = String::new();
        for _ in 0..100 {
            doc.push_str("<d>");
        }
        doc.push('x');
        for _ in 0..100 {
            doc.push_str("</d>");
        }
        let el = parse(&doc).unwrap();
        let mut depth = 1;
        let mut cur = &el;
        while let Some(c) = cur.find("d") {
            depth += 1;
            cur = c;
        }
        assert_eq!(depth, 100);
    }

    #[test]
    fn nesting_beyond_cap_is_an_error_not_a_stack_overflow() {
        // One past the cap fails cleanly...
        let mut doc = String::new();
        for _ in 0..MAX_DEPTH + 1 {
            doc.push_str("<d>");
        }
        let err = parse(&doc).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // ...and so does a wire-scale bomb that would otherwise blow
        // the stack (each level recurses parse_element).
        let bomb = "<d>".repeat(200_000);
        assert!(parse(&bomb).is_err());
        // Exactly at the cap still parses.
        let mut ok = String::new();
        for _ in 0..MAX_DEPTH {
            ok.push_str("<d>");
        }
        for _ in 0..MAX_DEPTH {
            ok.push_str("</d>");
        }
        assert!(parse(&ok).is_ok());
    }
}
