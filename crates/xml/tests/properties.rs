//! Property tests: serialize → parse roundtrips over random trees.

use gridsec_xml::{Element, Node};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9._-]{0,8}(:[A-Za-z][A-Za-z0-9._-]{0,8})?"
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Printable text including characters that need escaping; avoid
    // whitespace-only strings (dropped as insignificant by the parser).
    "[ -~]{0,24}".prop_map(|s| {
        if s.trim().is_empty() {
            "x".to_string()
        } else {
            s.trim().to_string()
        }
    })
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        prop::collection::vec((name_strategy(), text_strategy()), 0..4),
        prop::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| {
            let mut el = Element::new(name);
            for (k, v) in attrs {
                el.set_attr(k, v); // dedups names
            }
            if let Some(t) = text {
                el.push_text(t);
            }
            el
        });
    leaf.prop_recursive(4, 32, 4, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), text_strategy()), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut el = Element::new(name);
                for (k, v) in attrs {
                    el.set_attr(k, v);
                }
                for c in children {
                    el.push_child(c);
                }
                el
            })
    })
}

/// Merge adjacent text nodes the way a parser would see them.
fn normalize(el: &Element) -> Element {
    let mut out = Element::new(el.name.clone());
    out.attributes = el.attributes.clone();
    let mut pending_text = String::new();
    for c in &el.children {
        match c {
            Node::Text(t) => pending_text.push_str(t),
            Node::Element(e) => {
                if !pending_text.trim().is_empty() {
                    out.children.push(Node::Text(pending_text.clone()));
                }
                pending_text.clear();
                out.children.push(Node::Element(normalize(e)));
            }
        }
    }
    if !pending_text.trim().is_empty() {
        out.children.push(Node::Text(pending_text));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_parse_roundtrip(el in element_strategy()) {
        let xml = el.to_xml();
        let parsed = Element::parse(&xml).unwrap();
        prop_assert_eq!(normalize(&parsed), normalize(&el));
    }

    #[test]
    fn canonical_stable_under_reparse(el in element_strategy()) {
        let c1 = el.canonical_xml();
        let parsed = Element::parse(&c1).unwrap();
        prop_assert_eq!(parsed.canonical_xml(), c1);
    }

    #[test]
    fn parser_never_panics(s in "[ -~<>&\"']{0,200}") {
        let _ = Element::parse(&s);
    }
}
