//! Property tests: serialize → parse roundtrips over random trees.

use gridsec_util::check::{check, Gen};
use gridsec_xml::{Element, Node};

const CASES: u64 = 128;

const NAME_FIRST: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
const NAME_REST: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789._-";

/// An XML name `[A-Za-z][A-Za-z0-9._-]{0,8}`, optionally `prefix:local`.
fn name(g: &mut Gen) -> String {
    let part = |g: &mut Gen| {
        let mut s = String::new();
        s.push(g.char_from(NAME_FIRST));
        s.push_str(&g.string(NAME_REST, 0..9));
        s
    };
    let mut out = part(g);
    if g.pick(4) == 0 {
        out.push(':');
        out.push_str(&part(g));
    }
    out
}

/// Printable text including characters that need escaping; avoid
/// whitespace-only strings (dropped as insignificant by the parser).
fn text(g: &mut Gen) -> String {
    let s = g.printable_string(0..24);
    if s.trim().is_empty() {
        "x".to_string()
    } else {
        s.trim().to_string()
    }
}

fn element(g: &mut Gen, depth: usize) -> Element {
    let mut el = Element::new(name(g));
    for _ in 0..g.usize_in(0..4) {
        el.set_attr(name(g), text(g)); // dedups names
    }
    if depth == 0 {
        if g.bool() {
            el.push_text(text(g));
        }
    } else {
        for _ in 0..g.usize_in(0..4) {
            el.push_child(element(g, depth - 1));
        }
    }
    el
}

fn random_element(g: &mut Gen) -> Element {
    let depth = g.usize_in(0..4);
    element(g, depth)
}

/// Merge adjacent text nodes the way a parser would see them.
fn normalize(el: &Element) -> Element {
    let mut out = Element::new(el.name.clone());
    out.attributes = el.attributes.clone();
    let mut pending_text = String::new();
    for c in &el.children {
        match c {
            Node::Text(t) => pending_text.push_str(t),
            Node::Element(e) => {
                if !pending_text.trim().is_empty() {
                    out.children.push(Node::Text(pending_text.clone()));
                }
                pending_text.clear();
                out.children.push(Node::Element(normalize(e)));
            }
        }
    }
    if !pending_text.trim().is_empty() {
        out.children.push(Node::Text(pending_text));
    }
    out
}

#[test]
fn serialize_parse_roundtrip() {
    check("serialize_parse_roundtrip", CASES, |g| {
        let el = random_element(g);
        let xml = el.to_xml();
        let parsed = Element::parse(&xml).unwrap();
        assert_eq!(normalize(&parsed), normalize(&el));
    });
}

#[test]
fn canonical_stable_under_reparse() {
    check("canonical_stable_under_reparse", CASES, |g| {
        let el = random_element(g);
        let c1 = el.canonical_xml();
        let parsed = Element::parse(&c1).unwrap();
        assert_eq!(parsed.canonical_xml(), c1);
    });
}

#[test]
fn parser_never_panics() {
    check("parser_never_panics", CASES, |g| {
        // Printable ASCII is already heavy in <, >, &, quotes.
        let s = g.printable_string(0..200);
        let _ = Element::parse(&s);
    });
}
