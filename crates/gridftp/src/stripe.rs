//! Striped, congestion-controlled transfers (`GETS`/`PUTS`/`FINS`).
//!
//! Real GridFTP recovers goodput on lossy WAN links by striping one
//! file across several parallel TCP streams and adapting window size
//! and parallelism to observed loss. This module reproduces that on
//! the simulated testbed: a transfer is split into fixed-span tasks,
//! each task moves over one of N `StreamPair::lossy` data channels,
//! and an [`AimdController`] adapts the pull window and the target
//! stripe count from the fault layer's per-stripe loss stats.
//!
//! Protocol (per data channel, after the usual secure prologue):
//!
//! * `SIZE <path>` → `SIZE <total> <sha256>` — learn length + digest.
//! * `GETS <path> <from> <end>` → `RANGE <total> <sha256>`, then a
//!   credit loop: `PULL <n>` → up to `n` ≤[`CHUNK`]-byte records.
//!   Every delivered chunk is a per-stripe restart marker.
//! * `PUTS <path> <start> <end> <total>` → `OFFSET <abs>` read back
//!   from the durable `<path>.part.<start>-<end>` staging file, then a
//!   credit loop: `SEND <n>` + `n` chunks → `ACK <abs>`. Chunks are
//!   appended durably before they are acknowledged.
//! * `FINS <path> <total> <sha256> <ranges>` → `STORED <sha256>` —
//!   merge the completed range parts ([`merge_ranges`]), verify the
//!   digest, promote to the final path, and drop the staging files.
//!   Idempotent: repeating `FINS` after a merge-time crash succeeds
//!   from either the surviving parts or the already-promoted file.
//!
//! Kill points `xfer.stripe.get.chunk`, `xfer.stripe.put.chunk` and
//! `xfer.stripe.merge` let a [`CrashPlan`] kill the serving process
//! mid-stripe; recovery always restarts from durable state, so the
//! transferred bytes are SHA-256-equal across any crash window.
//!
//! **Time is simulated ticks, not wall clock.** The client engine is a
//! single-threaded event loop over per-stripe timelines ([`TickModel`]:
//! ticks per chunk, per round trip, per handshake attempt), with an
//! optional shared [`TokenBucket`] capping aggregate bytes per tick.
//! Because only one stripe exchange is in flight at a time, every
//! `CrashPlan` draw and every loss-layer draw is causally ordered by
//! the client loop — goodput, tears, and the controller's decision log
//! are pure functions of the seeds, which is what lets CI byte-compare
//! two runs of the striped chaos scenario.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::Mutex;

use gridsec_bignum::prime::EntropySource;
use gridsec_crypto::sha256::sha256;
use gridsec_testbed::faults::CrashPlan;
use gridsec_testbed::net::StreamStats;
use gridsec_tls::handshake::TlsConfig;
use gridsec_tls::retry::connect_with_retry;
use gridsec_tls::stream::SecureStream;
use gridsec_tls::TlsError;
use gridsec_util::retry::RetryPolicy;
use gridsec_util::throttle::TokenBucket;
use gridsec_util::trace;

use crate::congestion::{AimdConfig, AimdController};
use crate::resume::{greet, hex, parse_field, recv_text, tls_err, SessionErr, CHUNK};
use crate::{FtpError, GridFtpServer};

/// Simulated-tick costs of the transfer primitives. Goodput is measured
/// against this model, so it is a pure function of the seeds rather
/// than of host scheduling.
#[derive(Clone, Copy, Debug)]
pub struct TickModel {
    /// Ticks to move one ≤[`CHUNK`]-byte record over one stripe link.
    pub chunk_ticks: u64,
    /// Ticks for one control round trip (header, credit, ack).
    pub rtt_ticks: u64,
    /// Ticks per secure-handshake attempt when (re)dialing a stripe.
    pub handshake_ticks: u64,
}

impl Default for TickModel {
    fn default() -> Self {
        TickModel {
            chunk_ticks: 1,
            rtt_ticks: 2,
            handshake_ticks: 8,
        }
    }
}

/// Knobs for a striped transfer.
#[derive(Clone, Debug)]
pub struct StripeOpts {
    /// Bytes per work-queue task (rounded up to a [`CHUNK`] multiple).
    pub task_span: usize,
    /// Fatal-error budget: total tears (redials) the transfer may survive.
    pub max_sessions: u32,
    /// Congestion-controller bounds and seeds live here.
    pub aimd: AimdConfig,
    /// Tick costs for the goodput model.
    pub ticks: TickModel,
    /// Optional shared bandwidth cap (bytes per tick) across all stripes.
    pub bucket: Option<TokenBucket>,
    /// Replay seed for the controller's probabilistic moves.
    pub seed: u64,
}

impl Default for StripeOpts {
    fn default() -> Self {
        StripeOpts {
            task_span: 4 * CHUNK,
            max_sessions: 64,
            aimd: AimdConfig::default(),
            ticks: TickModel::default(),
            bucket: None,
            seed: 0,
        }
    }
}

/// Outcome of a completed striped transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StripedOutcome {
    /// Fetched bytes (GET) — empty for PUT.
    pub bytes: Vec<u8>,
    /// Hex SHA-256 of the transferred file, verified end to end.
    pub sha256: String,
    /// Secure sessions established across all stripes (≥ 1).
    pub sessions: u32,
    /// Torn connections survived (each cost a redial).
    pub tears: u32,
    /// Simulated ticks from start to last byte (and final ack).
    pub ticks: u64,
    /// Goodput in bytes per 1000 ticks.
    pub goodput_bpkt: u64,
    /// High-water mark of concurrently active stripes.
    pub peak_stripes: u32,
    /// The congestion controller's decision log (seed-deterministic).
    pub decisions: Vec<String>,
    /// Chunk grants the shared token bucket delayed.
    pub throttle_waits: u64,
    /// Total ticks of bucket-imposed waiting.
    pub throttle_waited_ticks: u64,
}

/// Durable staging path for one stripe range of `path`.
pub fn part_path(path: &str, start: usize, end: usize) -> String {
    format!("{path}.part.{start}-{end}")
}

/// Reassemble a file of `total` bytes from completed `(start, bytes)`
/// stripe ranges. Pure: any permutation of an exact tiling of
/// `[0, total)` yields byte-identical output; gaps and overlaps are
/// errors.
pub fn merge_ranges(total: usize, parts: &[(usize, Vec<u8>)]) -> Result<Vec<u8>, FtpError> {
    let mut order: Vec<usize> = (0..parts.len()).collect();
    order.sort_by_key(|&i| parts[i].0);
    let mut out: Vec<u8> = Vec::with_capacity(total);
    for i in order {
        let (start, data) = &parts[i];
        if *start != out.len() {
            return Err(FtpError::Protocol(format!(
                "stripe ranges do not tile: expected offset {}, got {start}",
                out.len()
            )));
        }
        out.extend_from_slice(data);
    }
    if out.len() != total {
        return Err(FtpError::Protocol(format!(
            "stripe ranges cover {} of {total} bytes",
            out.len()
        )));
    }
    Ok(out)
}

/// Serve one striped data channel: handshake, then `SIZE`/`GETS`/
/// `PUTS`/`FINS`/`QUIT` until the peer closes. Takes the shared server
/// behind a mutex so N channels can serve one [`GridFtpServer`]
/// concurrently: the lock is held only for the handshake prologue and
/// the transfer counter — file operations run on a cloned
/// [`SimOs`](gridsec_testbed::os::SimOs) handle, and per-range staging
/// files never collide across stripes.
///
/// Blocking compatibility shim over the sans-io
/// [`poll::ServerSession`](crate::poll::ServerSession) machine, which
/// holds the stripe credit-window protocol logic.
pub fn serve_striped<S: Read + Write, E: EntropySource>(
    server: &Mutex<GridFtpServer>,
    stream: S,
    rng: &mut E,
    now: u64,
    plan: &CrashPlan,
) -> Result<u64, FtpError> {
    let mut machine = {
        let guard = server.lock().expect("gridftp server mutex");
        crate::poll::ServerSession::new(&guard, crate::poll::Dialect::Striped, now, plan.clone())
    };
    let mut stream = stream;
    let out = crate::poll::drive_blocking(&mut machine, &mut stream, rng);
    server.lock().expect("gridftp server mutex").transfers += machine.completed();
    out
}

/// `"0-1024,1024-2048"` → pairs; `"-"` → no ranges (empty file).
pub(crate) fn parse_ranges(field: &str) -> Option<Vec<(usize, usize)>> {
    if field == "-" {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    for piece in field.split(',') {
        let (s, e) = piece.split_once('-')?;
        let s: usize = s.parse().ok()?;
        let e: usize = e.parse().ok()?;
        if s > e {
            return None;
        }
        out.push((s, e));
    }
    Some(out)
}

/// Unwrap an engine-invariant `Option` on a fault-reachable path. These
/// invariants are maintained by the transfer loop itself, but the loop
/// runs under injected tears and crashes — a violated invariant must
/// surface as a typed [`FtpError::Xfer`] the caller can handle, not a
/// panic that takes the client down mid-chaos-run.
macro_rules! xfer_invariant {
    ($sp:expr, $opt:expr, $msg:literal) => {
        match $opt {
            Some(v) => v,
            None => {
                $sp.fail($msg);
                return Err(FtpError::Xfer($msg));
            }
        }
    };
}

/// One stripe's slot in the client engine.
struct Slot<S: Read + Write> {
    stream: Option<SecureStream<S>>,
    stats: Option<StreamStats>,
    task: Option<Task>,
    header_done: bool,
    ready_at: u64,
    active: bool,
}

struct Task {
    start: usize,
    end: usize,
    got: usize,
    buf: Vec<u8>,
}

impl<S: Read + Write> Slot<S> {
    fn new() -> Self {
        Slot {
            stream: None,
            stats: None,
            task: None,
            header_done: false,
            ready_at: 0,
            active: false,
        }
    }
}

/// The active slot whose timeline is furthest behind (ties broken by
/// index) — the engine always advances that one next, which is what
/// makes the interleaving deterministic.
fn pick_slot<S: Read + Write>(slots: &[Slot<S>]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, s) in slots.iter().enumerate() {
        if !s.active {
            continue;
        }
        match best {
            Some(b) if (slots[b].ready_at, b) <= (s.ready_at, i) => {}
            _ => best = Some(i),
        }
    }
    best
}

fn active_count<S: Read + Write>(slots: &[Slot<S>]) -> usize {
    slots.iter().filter(|s| s.active).count()
}

/// Activate parked slots until `target` stripes run (only while tasks
/// remain to hand them).
fn grow_slots<S: Read + Write>(slots: &mut [Slot<S>], target: u32, pending: usize, t: u64) {
    if pending == 0 {
        return;
    }
    let mut active = active_count(slots);
    for s in slots.iter_mut() {
        if active >= target as usize {
            break;
        }
        if !s.active {
            s.active = true;
            s.ready_at = t;
            active += 1;
        }
    }
}

/// Tear bookkeeping: report to the controller with the stripe's
/// observed loss rate, reset the slot for a redial one RTT later.
fn note_tear<S: Read + Write>(
    slot: &mut Slot<S>,
    si: usize,
    ctl: &mut AimdController,
    tears: &mut u32,
    t: u64,
    rtt: u64,
) {
    let lp = slot
        .stats
        .as_ref()
        .map(|s| s.loss().loss_permille())
        .unwrap_or(0);
    *tears += 1;
    ctl.on_tear(si, lp, t);
    slot.stream = None;
    slot.stats = None;
    slot.header_done = false;
    slot.ready_at = t + rtt;
}

/// Close a stripe's channel (best-effort `QUIT`) and park the slot.
fn retire_slot<S: Read + Write>(slot: &mut Slot<S>, t: u64) {
    if let Some(mut s) = slot.stream.take() {
        let _ = s.send(b"QUIT");
        let _ = s.recv();
    }
    slot.stats = None;
    slot.header_done = false;
    slot.active = false;
    slot.ready_at = t;
}

/// Dial + handshake + greeting for one stripe. Returns the secured
/// stream, the pair's loss-stats handle, and handshake attempts made.
fn dial_slot<S, E, D>(
    config: &TlsConfig,
    rng: &mut E,
    policy: RetryPolicy,
    dial: &mut D,
    slot: usize,
) -> Result<(SecureStream<S>, StreamStats, u32), SessionErr>
where
    S: Read + Write,
    E: EntropySource,
    D: FnMut(usize, u32) -> Result<(S, StreamStats), TlsError>,
{
    let mut pair_stats: Option<StreamStats> = None;
    let result = connect_with_retry(
        config,
        rng,
        policy,
        |attempt| {
            let (s, st) = dial(slot, attempt)?;
            pair_stats = Some(st);
            Ok(s)
        },
        |_, _| {},
    );
    match result {
        Ok((mut stream, cstats)) => {
            greet(&mut stream)?;
            let stats = pair_stats.ok_or(SessionErr::Fatal(FtpError::Xfer(
                "dial succeeded without recording pair stats",
            )))?;
            Ok((stream, stats, cstats.attempts))
        }
        Err(e) => Err(tls_err(e)),
    }
}

fn fetch_size<S: Read + Write>(
    stream: &mut SecureStream<S>,
    path: &str,
) -> Result<(usize, String), SessionErr> {
    stream
        .send(format!("SIZE {path}").as_bytes())
        .map_err(tls_err)?;
    let reply = recv_text(stream)?;
    let rest = match reply.strip_prefix("SIZE ") {
        Some(r) => r.to_string(),
        None => return Err(SessionErr::Fatal(FtpError::File(reply))),
    };
    let mut it = rest.split_whitespace();
    let len: usize = parse_field(it.next())?;
    let sha = it
        .next()
        .ok_or_else(|| SessionErr::Fatal(FtpError::Protocol("bad SIZE reply".to_string())))?
        .to_string();
    Ok((len, sha))
}

fn gets_header<S: Read + Write>(
    stream: &mut SecureStream<S>,
    path: &str,
    from: usize,
    end: usize,
    total: usize,
    sha: &str,
) -> Result<(), SessionErr> {
    stream
        .send(format!("GETS {path} {from} {end}").as_bytes())
        .map_err(tls_err)?;
    let reply = recv_text(stream)?;
    let rest = match reply.strip_prefix("RANGE ") {
        Some(r) => r.to_string(),
        None => return Err(SessionErr::Fatal(FtpError::File(reply))),
    };
    let mut it = rest.split_whitespace();
    let len: usize = parse_field(it.next())?;
    let got_sha = it
        .next()
        .ok_or_else(|| SessionErr::Fatal(FtpError::Protocol("bad RANGE reply".to_string())))?;
    if len != total || got_sha != sha {
        return Err(SessionErr::Fatal(FtpError::Protocol(
            "file changed between stripe sessions".to_string(),
        )));
    }
    Ok(())
}

fn puts_header<S: Read + Write>(
    stream: &mut SecureStream<S>,
    path: &str,
    start: usize,
    end: usize,
    total: usize,
) -> Result<usize, SessionErr> {
    stream
        .send(format!("PUTS {path} {start} {end} {total}").as_bytes())
        .map_err(tls_err)?;
    let reply = recv_text(stream)?;
    let abs: usize = match reply.strip_prefix("OFFSET ") {
        Some(n) => parse_field(Some(n))?,
        None => return Err(SessionErr::Fatal(FtpError::File(reply))),
    };
    if abs < start || abs > end {
        return Err(SessionErr::Fatal(FtpError::Protocol(
            "server stripe offset out of range".to_string(),
        )));
    }
    Ok(abs)
}

fn fins_once<S: Read + Write>(
    stream: &mut SecureStream<S>,
    path: &str,
    total: usize,
    sha: &str,
    ranges: &str,
) -> Result<String, SessionErr> {
    stream
        .send(format!("FINS {path} {total} {sha} {ranges}").as_bytes())
        .map_err(tls_err)?;
    let reply = recv_text(stream)?;
    match reply.strip_prefix("STORED ") {
        Some(s) => Ok(s.to_string()),
        None => Err(SessionErr::Fatal(FtpError::File(reply))),
    }
}

/// Fetch `path` over adaptively many striped channels. `dial` produces
/// a fresh raw stream plus its loss-stats handle for `(slot, attempt)`.
pub fn striped_get<S, E, D>(
    config: &TlsConfig,
    rng: &mut E,
    policy: RetryPolicy,
    mut dial: D,
    path: &str,
    opts: StripeOpts,
) -> Result<StripedOutcome, FtpError>
where
    S: Read + Write,
    E: EntropySource,
    D: FnMut(usize, u32) -> Result<(S, StreamStats), TlsError>,
{
    let mut sp = trace::span_with("xfer.striped.get", path);
    let tm = opts.ticks;
    let span = opts.task_span.max(CHUNK).div_ceil(CHUNK) * CHUNK;
    let mut ctl = AimdController::new(opts.aimd, opts.seed);
    let mut bucket = opts.bucket.clone();
    let max_slots = opts.aimd.max_stripes.max(opts.aimd.min_stripes).max(1) as usize;
    let mut slots: Vec<Slot<S>> = (0..max_slots).map(|_| Slot::new()).collect();
    slots[0].active = true; // size discovery runs on one stripe
    let mut sessions = 0u32;
    let mut tears = 0u32;
    let mut peak = 1u32;
    let mut total: Option<usize> = None;
    let mut file_sha: Option<String> = None;
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    let mut parts: Vec<(usize, Vec<u8>)> = Vec::new();

    while let Some(si) = pick_slot(&slots) {
        let mut t = slots[si].ready_at;
        let budget_blown = tears >= opts.max_sessions;
        if budget_blown {
            sp.fail("striped resume budget exhausted");
            return Err(FtpError::Channel(
                "striped resume budget exhausted".to_string(),
            ));
        }
        // Task management needs no connection; do it before dialing so
        // a shed or drained stripe never wastes a handshake.
        if total.is_some() && slots[si].task.is_none() {
            if queue.is_empty() || active_count(&slots) > ctl.target_stripes() as usize {
                retire_slot(&mut slots[si], t + tm.rtt_ticks);
                continue;
            }
            let (s0, e0) = xfer_invariant!(sp, queue.pop_front(), "task queue drained mid-claim");
            slots[si].task = Some(Task {
                start: s0,
                end: e0,
                got: 0,
                buf: Vec::with_capacity(e0 - s0),
            });
            slots[si].header_done = false;
        }
        if slots[si].stream.is_none() {
            match dial_slot(config, rng, policy, &mut dial, si) {
                Ok((stream, stats, attempts)) => {
                    t += u64::from(attempts) * tm.handshake_ticks + tm.rtt_ticks;
                    sessions += 1;
                    slots[si].stream = Some(stream);
                    slots[si].stats = Some(stats);
                    slots[si].header_done = false;
                    slots[si].ready_at = t;
                }
                Err(SessionErr::Torn) => {
                    t += tm.handshake_ticks + tm.rtt_ticks;
                    tears += 1;
                    slots[si].ready_at = t;
                }
                Err(SessionErr::Fatal(e)) => {
                    sp.fail(&e.to_string());
                    return Err(e);
                }
            }
            continue;
        }
        if total.is_none() {
            let stream = xfer_invariant!(
                sp,
                slots[si].stream.as_mut(),
                "stripe stream lost after dial"
            );
            match fetch_size(stream, path) {
                Ok((len, sha)) => {
                    t += tm.rtt_ticks;
                    total = Some(len);
                    file_sha = Some(sha);
                    let mut pos = 0;
                    while pos < len {
                        let end = (pos + span).min(len);
                        queue.push_back((pos, end));
                        pos = end;
                    }
                    slots[si].ready_at = t;
                    grow_slots(&mut slots, ctl.target_stripes(), queue.len(), t);
                    peak = peak.max(active_count(&slots) as u32);
                }
                Err(SessionErr::Torn) => {
                    note_tear(&mut slots[si], si, &mut ctl, &mut tears, t, tm.rtt_ticks);
                }
                Err(SessionErr::Fatal(e)) => {
                    sp.fail(&e.to_string());
                    return Err(e);
                }
            }
            continue;
        }
        let (start, end, got) = {
            let task = xfer_invariant!(sp, slots[si].task.as_ref(), "stripe task lost mid-claim");
            (task.start, task.end, task.got)
        };
        if !slots[si].header_done {
            let range_total = xfer_invariant!(sp, total, "range header sent before size");
            let stream = xfer_invariant!(
                sp,
                slots[si].stream.as_mut(),
                "stripe stream lost after dial"
            );
            let sha = xfer_invariant!(sp, file_sha.as_deref(), "file digest lost after size");
            match gets_header(stream, path, start + got, end, range_total, sha) {
                Ok(()) => {
                    t += tm.rtt_ticks;
                    slots[si].header_done = true;
                    slots[si].ready_at = t;
                }
                Err(SessionErr::Torn) => {
                    note_tear(&mut slots[si], si, &mut ctl, &mut tears, t, tm.rtt_ticks);
                }
                Err(SessionErr::Fatal(e)) => {
                    sp.fail(&e.to_string());
                    return Err(e);
                }
            }
            continue;
        }
        // Pull one window of chunks on this stripe.
        let remaining = (end - start) - got;
        let n = remaining.div_ceil(CHUNK).min(ctl.window() as usize).max(1);
        let mut torn = false;
        let mut complete = false;
        {
            let slot = &mut slots[si];
            let stream = xfer_invariant!(sp, slot.stream.as_mut(), "stripe stream lost after dial");
            let task = xfer_invariant!(sp, slot.task.as_mut(), "stripe task lost mid-claim");
            if stream.send(format!("PULL {n}").as_bytes()).is_err() {
                torn = true;
            } else {
                t += tm.rtt_ticks;
                for _ in 0..n {
                    match stream.recv() {
                        Ok(chunk) => {
                            if task.got + chunk.len() > task.end - task.start {
                                sp.fail("stripe overrun");
                                return Err(FtpError::Protocol(
                                    "stripe download overruns its range".to_string(),
                                ));
                            }
                            task.buf.extend_from_slice(&chunk);
                            task.got += chunk.len();
                            let at = match bucket.as_mut() {
                                Some(b) => b.take_at(t, chunk.len() as u64),
                                None => t,
                            };
                            t = at + tm.chunk_ticks;
                        }
                        Err(_) => {
                            torn = true;
                            break;
                        }
                    }
                }
                if !torn && task.got == task.end - task.start {
                    complete = true;
                }
            }
        }
        if torn {
            note_tear(&mut slots[si], si, &mut ctl, &mut tears, t, tm.rtt_ticks);
            continue;
        }
        ctl.on_clean_round(si, t);
        if complete {
            let task = xfer_invariant!(sp, slots[si].task.take(), "completed task vanished");
            parts.push((task.start, task.buf));
        }
        slots[si].ready_at = t;
        grow_slots(&mut slots, ctl.target_stripes(), queue.len(), t);
        peak = peak.max(active_count(&slots) as u32);
    }

    let total = match total {
        Some(n) => n,
        None => {
            sp.fail("size never learned");
            return Err(FtpError::Channel(
                "striped transfer ended before size was learned".to_string(),
            ));
        }
    };
    let bytes = merge_ranges(total, &parts)?;
    let digest = hex(&sha256(&bytes));
    if file_sha.as_deref() != Some(digest.as_str()) {
        sp.fail("digest mismatch");
        return Err(FtpError::Protocol(
            "transferred data does not match server digest".to_string(),
        ));
    }
    let ticks = slots.iter().map(|s| s.ready_at).max().unwrap_or(1).max(1);
    let (waits, waited) = bucket
        .as_ref()
        .map(|b| (b.waits(), b.waited_ticks()))
        .unwrap_or((0, 0));
    trace::add("xfer.striped.bytes_got", total as u64);
    trace::add("xfer.striped.sessions", u64::from(sessions));
    trace::add("xfer.striped.tears", u64::from(tears));
    trace::add("xfer.throttle.waits", waits);
    trace::add("xfer.throttle.waited_ticks", waited);
    Ok(StripedOutcome {
        bytes,
        sha256: digest,
        sessions,
        tears,
        ticks,
        goodput_bpkt: (total as u64) * 1000 / ticks,
        peak_stripes: peak,
        decisions: ctl.decisions().to_vec(),
        throttle_waits: waits,
        throttle_waited_ticks: waited,
    })
}

/// Store `data` at `path` over adaptively many striped channels. Each
/// stripe range stages into its own durable part file; a final `FINS`
/// merges, verifies, and promotes (surviving any merge-time crash).
pub fn striped_put<S, E, D>(
    config: &TlsConfig,
    rng: &mut E,
    policy: RetryPolicy,
    mut dial: D,
    path: &str,
    data: &[u8],
    opts: StripeOpts,
) -> Result<StripedOutcome, FtpError>
where
    S: Read + Write,
    E: EntropySource,
    D: FnMut(usize, u32) -> Result<(S, StreamStats), TlsError>,
{
    let mut sp = trace::span_with("xfer.striped.put", path);
    let tm = opts.ticks;
    let span = opts.task_span.max(CHUNK).div_ceil(CHUNK) * CHUNK;
    let total = data.len();
    let local_sha = hex(&sha256(data));
    let mut ctl = AimdController::new(opts.aimd, opts.seed);
    let mut bucket = opts.bucket.clone();
    let max_slots = opts.aimd.max_stripes.max(opts.aimd.min_stripes).max(1) as usize;
    let mut slots: Vec<Slot<S>> = (0..max_slots).map(|_| Slot::new()).collect();
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    let mut pos = 0;
    while pos < total {
        let end = (pos + span).min(total);
        ranges.push((pos, end));
        queue.push_back((pos, end));
        pos = end;
    }
    let mut sessions = 0u32;
    let mut tears = 0u32;
    grow_slots(&mut slots, ctl.target_stripes(), queue.len(), 0);
    let mut peak = active_count(&slots) as u32;

    while let Some(si) = pick_slot(&slots) {
        let mut t = slots[si].ready_at;
        if tears >= opts.max_sessions {
            sp.fail("striped resume budget exhausted");
            return Err(FtpError::Channel(
                "striped resume budget exhausted".to_string(),
            ));
        }
        if slots[si].task.is_none() {
            if queue.is_empty() || active_count(&slots) > ctl.target_stripes() as usize {
                retire_slot(&mut slots[si], t + tm.rtt_ticks);
                continue;
            }
            let (s0, e0) = xfer_invariant!(sp, queue.pop_front(), "task queue drained mid-claim");
            slots[si].task = Some(Task {
                start: s0,
                end: e0,
                got: 0,
                buf: Vec::new(),
            });
            slots[si].header_done = false;
        }
        if slots[si].stream.is_none() {
            match dial_slot(config, rng, policy, &mut dial, si) {
                Ok((stream, stats, attempts)) => {
                    t += u64::from(attempts) * tm.handshake_ticks + tm.rtt_ticks;
                    sessions += 1;
                    slots[si].stream = Some(stream);
                    slots[si].stats = Some(stats);
                    slots[si].header_done = false;
                    slots[si].ready_at = t;
                }
                Err(SessionErr::Torn) => {
                    t += tm.handshake_ticks + tm.rtt_ticks;
                    tears += 1;
                    slots[si].ready_at = t;
                }
                Err(SessionErr::Fatal(e)) => {
                    sp.fail(&e.to_string());
                    return Err(e);
                }
            }
            continue;
        }
        if !slots[si].header_done {
            let mut torn = false;
            let mut fatal: Option<FtpError> = None;
            {
                let slot = &mut slots[si];
                let (start, end) = {
                    let task =
                        xfer_invariant!(sp, slot.task.as_ref(), "stripe task lost mid-claim");
                    (task.start, task.end)
                };
                let stream =
                    xfer_invariant!(sp, slot.stream.as_mut(), "stripe stream lost after dial");
                match puts_header(stream, path, start, end, total) {
                    Ok(abs) => {
                        t += tm.rtt_ticks;
                        slot.header_done = true;
                        slot.ready_at = t;
                        if abs == end {
                            // Range already fully durable server-side
                            // (idempotent re-put after a lost reply).
                            slot.task = None;
                        } else if let Some(task) = slot.task.as_mut() {
                            task.got = abs - start;
                        }
                    }
                    Err(SessionErr::Torn) => torn = true,
                    Err(SessionErr::Fatal(e)) => fatal = Some(e),
                }
            }
            if let Some(e) = fatal {
                sp.fail(&e.to_string());
                return Err(e);
            }
            if torn {
                note_tear(&mut slots[si], si, &mut ctl, &mut tears, t, tm.rtt_ticks);
            }
            continue;
        }
        // Send one window of chunks on this stripe, then await the ack.
        let mut torn = false;
        let mut fatal: Option<FtpError> = None;
        let mut complete = false;
        {
            let slot = &mut slots[si];
            let stream = xfer_invariant!(sp, slot.stream.as_mut(), "stripe stream lost after dial");
            let task = xfer_invariant!(sp, slot.task.as_mut(), "stripe task lost mid-claim");
            let remaining = (task.end - task.start) - task.got;
            let n = remaining.div_ceil(CHUNK).min(ctl.window() as usize).max(1);
            if stream.send(format!("SEND {n}").as_bytes()).is_err() {
                torn = true;
            } else {
                for _ in 0..n {
                    let from = task.start + task.got;
                    let to = (from + CHUNK).min(task.end);
                    let at = match bucket.as_mut() {
                        Some(b) => b.take_at(t, (to - from) as u64),
                        None => t,
                    };
                    t = at + tm.chunk_ticks;
                    if stream.send(&data[from..to]).is_err() {
                        torn = true;
                        break;
                    }
                    task.got = to - task.start;
                }
                if !torn {
                    match stream.recv() {
                        Ok(msg) => {
                            let text = String::from_utf8_lossy(&msg).into_owned();
                            match text
                                .strip_prefix("ACK ")
                                .and_then(|v| v.parse::<usize>().ok())
                            {
                                Some(abs) if abs >= task.start && abs <= task.end => {
                                    t += tm.rtt_ticks;
                                    task.got = abs - task.start;
                                    complete = task.got == task.end - task.start;
                                }
                                _ => fatal = Some(FtpError::File(text)),
                            }
                        }
                        Err(_) => torn = true,
                    }
                }
            }
        }
        if let Some(e) = fatal {
            sp.fail(&e.to_string());
            return Err(e);
        }
        if torn {
            note_tear(&mut slots[si], si, &mut ctl, &mut tears, t, tm.rtt_ticks);
            continue;
        }
        ctl.on_clean_round(si, t);
        if complete {
            slots[si].task = None;
        }
        slots[si].ready_at = t;
        grow_slots(&mut slots, ctl.target_stripes(), queue.len(), t);
        peak = peak.max(active_count(&slots) as u32);
    }

    // Every range is durable server-side; merge + promote via FINS on
    // a fresh control channel, retrying across tears and merge kills.
    let ranges_str = if ranges.is_empty() {
        "-".to_string()
    } else {
        ranges
            .iter()
            .map(|(s, e)| format!("{s}-{e}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut t = slots.iter().map(|s| s.ready_at).max().unwrap_or(0);
    loop {
        if tears >= opts.max_sessions {
            sp.fail("striped resume budget exhausted");
            return Err(FtpError::Channel(
                "striped resume budget exhausted".to_string(),
            ));
        }
        match dial_slot(config, rng, policy, &mut dial, 0) {
            Ok((mut stream, _stats, attempts)) => {
                t += u64::from(attempts) * tm.handshake_ticks + tm.rtt_ticks;
                sessions += 1;
                match fins_once(&mut stream, path, total, &local_sha, &ranges_str) {
                    Ok(server_sha) => {
                        t += tm.rtt_ticks;
                        if server_sha != local_sha {
                            sp.fail("digest mismatch");
                            return Err(FtpError::Protocol(
                                "server stored different bytes than sent".to_string(),
                            ));
                        }
                        let _ = stream.send(b"QUIT");
                        let _ = stream.recv();
                        t += tm.rtt_ticks;
                        break;
                    }
                    Err(SessionErr::Torn) => {
                        tears += 1;
                        t += tm.rtt_ticks;
                    }
                    Err(SessionErr::Fatal(e)) => {
                        sp.fail(&e.to_string());
                        return Err(e);
                    }
                }
            }
            Err(SessionErr::Torn) => {
                tears += 1;
                t += tm.handshake_ticks + tm.rtt_ticks;
            }
            Err(SessionErr::Fatal(e)) => {
                sp.fail(&e.to_string());
                return Err(e);
            }
        }
    }
    let ticks = t.max(1);
    let (waits, waited) = bucket
        .as_ref()
        .map(|b| (b.waits(), b.waited_ticks()))
        .unwrap_or((0, 0));
    trace::add("xfer.striped.bytes_put", total as u64);
    trace::add("xfer.striped.sessions", u64::from(sessions));
    trace::add("xfer.striped.tears", u64::from(tears));
    trace::add("xfer.throttle.waits", waits);
    trace::add("xfer.throttle.waited_ticks", waited);
    Ok(StripedOutcome {
        bytes: Vec::new(),
        sha256: local_sha,
        sessions,
        tears,
        ticks,
        goodput_bpkt: (total as u64) * 1000 / ticks,
        peak_stripes: peak.max(1),
        decisions: ctl.decisions().to_vec(),
        throttle_waits: waits,
        throttle_waited_ticks: waited,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::{Dialect, SessionTask};
    use gridsec_authz::gridmap::GridMapFile;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::credential::Credential;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_testbed::net::{with_stream_pump, Network, SimStream, StreamPair};
    use gridsec_testbed::os::{FileMode, SimOs};
    use gridsec_testbed::sched::Scheduler;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::{Arc, Mutex};

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        trust: TrustStore,
        jane: Credential,
        server: Arc<Mutex<GridFtpServer>>,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"gridftp stripe tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
        let host = ca.issue_host_identity(
            &mut rng,
            dn("/O=G/CN=host data1"),
            vec!["data1".into()],
            512,
            0,
            500_000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        let gridmap = GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n").unwrap();
        let server =
            GridFtpServer::new(SimOs::new(), "data1", host, trust.clone(), gridmap).unwrap();
        World {
            trust,
            jane,
            server: Arc::new(Mutex::new(server)),
        }
    }

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    /// One sans-io striped server task per dial, over a seeded lossy
    /// pair whose stats handle goes back to the client engine.
    fn dialer(
        w: &World,
        sched: &Rc<RefCell<Scheduler>>,
        net: &Network,
        plan: CrashPlan,
        base_seed: u64,
        drop: f64,
    ) -> impl FnMut(usize, u32) -> Result<(SimStream, StreamStats), TlsError> {
        let task = SessionTask {
            server: Arc::clone(&w.server),
            dialect: Dialect::Striped,
            now: 100,
            plan,
        };
        let sched = Rc::clone(sched);
        let net = net.clone();
        let mut n = 0u64;
        move |slot, _attempt| {
            n += 1;
            let seed = base_seed.wrapping_add(n).wrapping_add((slot as u64) << 32);
            let (a, b, stats) = StreamPair::lossy(seed, drop);
            let mailbox = format!("stripe-{base_seed:x}-{slot}-{n}");
            task.spawn(
                &mut sched.borrow_mut(),
                &net,
                &mailbox,
                b,
                &seed.to_be_bytes(),
            );
            Ok((a, stats))
        }
    }

    fn seed_file(w: &World, path: &str, data: &[u8]) {
        let s = w.server.lock().unwrap();
        let uid = s.os().uid_of("data1", "jdoe").unwrap();
        s.os()
            .write_file("data1", path, uid, FileMode::private(), data.to_vec())
            .unwrap();
    }

    fn run_get(
        w: &World,
        plan: CrashPlan,
        seed: u64,
        drop: f64,
        path: &str,
        opts: StripeOpts,
    ) -> StripedOutcome {
        let net = Network::new();
        let sched = Rc::new(RefCell::new(Scheduler::new(&net)));
        let mut rng = ChaChaRng::from_seed_bytes(b"stripe client");
        let config = TlsConfig::new(w.jane.clone(), w.trust.clone(), 100);
        let dial = dialer(w, &sched, &net, plan, seed, drop);
        let pump = Rc::clone(&sched);
        with_stream_pump(
            move || pump.borrow_mut().pump(),
            move || {
                striped_get(&config, &mut rng, RetryPolicy::default(), dial, path, opts).unwrap()
            },
        )
    }

    fn run_put(
        w: &World,
        plan: CrashPlan,
        seed: u64,
        drop: f64,
        path: &str,
        data: &[u8],
        opts: StripeOpts,
    ) -> StripedOutcome {
        let net = Network::new();
        let sched = Rc::new(RefCell::new(Scheduler::new(&net)));
        let mut rng = ChaChaRng::from_seed_bytes(b"stripe client");
        let config = TlsConfig::new(w.jane.clone(), w.trust.clone(), 100);
        let dial = dialer(w, &sched, &net, plan, seed, drop);
        let pump = Rc::clone(&sched);
        with_stream_pump(
            move || pump.borrow_mut().pump(),
            move || {
                striped_put(
                    &config,
                    &mut rng,
                    RetryPolicy::default(),
                    dial,
                    path,
                    data,
                    opts,
                )
                .unwrap()
            },
        )
    }

    #[test]
    fn merge_ranges_reassembles_any_exact_tiling() {
        let data = payload(1000);
        let parts = vec![
            (600, data[600..1000].to_vec()),
            (0, data[0..256].to_vec()),
            (256, data[256..600].to_vec()),
        ];
        assert_eq!(merge_ranges(1000, &parts).unwrap(), data);
        // Gap.
        let gap = vec![(0, data[0..256].to_vec()), (600, data[600..1000].to_vec())];
        assert!(merge_ranges(1000, &gap).is_err());
        // Overlap.
        let overlap = vec![(0, data[0..600].to_vec()), (256, data[256..1000].to_vec())];
        assert!(merge_ranges(1000, &overlap).is_err());
        // Short of total.
        assert!(merge_ranges(1001, &parts).is_err());
        // Empty file.
        assert_eq!(merge_ranges(0, &[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn get_hash_equal_under_10pct_drop() {
        let w = world();
        let data = payload(8192);
        seed_file(&w, "/home/jdoe/big.dat", &data);
        let opts = StripeOpts {
            seed: 1,
            ..StripeOpts::default()
        };
        let out = run_get(
            &w,
            CrashPlan::disabled(),
            0x57_01,
            0.10,
            "/home/jdoe/big.dat",
            opts,
        );
        assert_eq!(out.bytes, data);
        assert_eq!(out.sha256, hex(&sha256(&data)));
        assert!(out.tears >= 1, "expected tears, got {}", out.tears);
        assert!(out.peak_stripes >= 2, "striping never engaged");
        assert!(out.ticks > 0 && out.goodput_bpkt > 0);
    }

    #[test]
    fn get_is_deterministic_for_a_seed() {
        let run = || {
            let w = world();
            let data = payload(8192);
            seed_file(&w, "/home/jdoe/big.dat", &data);
            let opts = StripeOpts {
                seed: 1,
                ..StripeOpts::default()
            };
            run_get(
                &w,
                CrashPlan::disabled(),
                0x57_01,
                0.10,
                "/home/jdoe/big.dat",
                opts,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seeds must replay byte-identically");
        assert!(!a.decisions.is_empty(), "loss must drive controller moves");
    }

    #[test]
    fn put_round_trips_and_cleans_parts() {
        let w = world();
        let data = payload(8192);
        let opts = StripeOpts {
            seed: 2,
            ..StripeOpts::default()
        };
        let out = run_put(
            &w,
            CrashPlan::disabled(),
            0x57_02,
            0.10,
            "/home/jdoe/up.dat",
            &data,
            opts,
        );
        assert_eq!(out.sha256, hex(&sha256(&data)));
        assert!(out.tears >= 1, "expected tears, got {}", out.tears);
        let s = w.server.lock().unwrap();
        let uid = s.os().uid_of("data1", "jdoe").unwrap();
        let stored = s.os().read_file("data1", "/home/jdoe/up.dat", uid).unwrap();
        assert_eq!(stored, data, "no lost or duplicated bytes");
        // Every per-range staging file was merged and removed.
        let span = 4 * CHUNK;
        let mut pos = 0;
        while pos < data.len() {
            let end = (pos + span).min(data.len());
            let part = part_path("/home/jdoe/up.dat", pos, end);
            assert_eq!(s.os().file_len("data1", &part).unwrap(), None, "{part}");
            pos = end;
        }
    }

    #[test]
    fn get_survives_armed_mid_stripe_kill() {
        let w = world();
        let data = payload(4096);
        seed_file(&w, "/home/jdoe/k.dat", &data);
        let plan = CrashPlan::manual(0);
        plan.arm("xfer.stripe.get.chunk", 3);
        let out = run_get(
            &w,
            plan.clone(),
            0x57_03,
            0.0,
            "/home/jdoe/k.dat",
            StripeOpts::default(),
        );
        assert_eq!(out.bytes, data);
        assert_eq!(plan.crashes(), 1);
        assert!(out.tears >= 1);
        assert!(plan
            .transcript()
            .iter()
            .any(|l| l.contains("point=xfer.stripe.get.chunk")));
    }

    #[test]
    fn put_survives_armed_kills_at_chunk_and_merge() {
        let w = world();
        let data = payload(4096);
        let plan = CrashPlan::manual(0);
        plan.arm("xfer.stripe.put.chunk", 3);
        plan.arm("xfer.stripe.merge", 1);
        let out = run_put(
            &w,
            plan.clone(),
            0x57_04,
            0.0,
            "/home/jdoe/km.dat",
            &data,
            StripeOpts::default(),
        );
        assert_eq!(out.sha256, hex(&sha256(&data)));
        assert_eq!(plan.crashes(), 2, "both armed kills fired");
        let s = w.server.lock().unwrap();
        let uid = s.os().uid_of("data1", "jdoe").unwrap();
        let stored = s.os().read_file("data1", "/home/jdoe/km.dat", uid).unwrap();
        assert_eq!(stored, data, "kills must not lose or duplicate bytes");
    }

    #[test]
    fn throttle_slows_the_transfer_and_counts_waits() {
        let run = |bucket: Option<TokenBucket>| {
            let w = world();
            let data = payload(8192);
            seed_file(&w, "/home/jdoe/thr.dat", &data);
            let opts = StripeOpts {
                seed: 3,
                bucket,
                ..StripeOpts::default()
            };
            run_get(
                &w,
                CrashPlan::disabled(),
                0x57_05,
                0.0,
                "/home/jdoe/thr.dat",
                opts,
            )
        };
        let free = run(None);
        let capped = run(Some(TokenBucket::new(16, 256)));
        assert!(capped.ticks > free.ticks, "cap must cost simulated time");
        assert!(capped.throttle_waits > 0);
        assert!(capped.throttle_waited_ticks > 0);
        assert_eq!(free.throttle_waits, 0);
    }

    #[test]
    fn four_stripes_beat_one_at_5pct_loss() {
        let run = |stripes: u32| {
            let w = world();
            let data = payload(8192);
            seed_file(&w, "/home/jdoe/race.dat", &data);
            let opts = StripeOpts {
                seed: 4,
                aimd: AimdConfig::pinned_stripes(stripes),
                ..StripeOpts::default()
            };
            run_get(
                &w,
                CrashPlan::disabled(),
                0x57_06,
                0.05,
                "/home/jdoe/race.dat",
                opts,
            )
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.sha256, four.sha256);
        assert!(
            four.ticks < one.ticks,
            "4 stripes ({} ticks) should beat 1 ({} ticks)",
            four.ticks,
            one.ticks
        );
        assert!(four.goodput_bpkt > one.goodput_bpkt);
    }

    #[test]
    fn empty_file_round_trips() {
        let w = world();
        seed_file(&w, "/home/jdoe/empty.dat", b"");
        let got = run_get(
            &w,
            CrashPlan::disabled(),
            0x57_07,
            0.0,
            "/home/jdoe/empty.dat",
            StripeOpts::default(),
        );
        assert!(got.bytes.is_empty());
        let put = run_put(
            &w,
            CrashPlan::disabled(),
            0x57_08,
            0.0,
            "/home/jdoe/empty2.dat",
            b"",
            StripeOpts::default(),
        );
        assert_eq!(put.sha256, hex(&sha256(b"")));
        let s = w.server.lock().unwrap();
        let uid = s.os().uid_of("data1", "jdoe").unwrap();
        assert_eq!(
            s.os()
                .read_file("data1", "/home/jdoe/empty2.dat", uid)
                .unwrap(),
            Vec::<u8>::new()
        );
    }
}
