//! Sans-io GridFTP server sessions: one frame-driven state machine per
//! connection, runnable as a discrete-event scheduler task.
//!
//! The blocking session loops ([`GridFtpServer::serve_session`],
//! [`GridFtpServer::serve_resumable`](crate::resume),
//! [`serve_striped`](crate::stripe::serve_striped)) are now thin shims
//! over [`ServerSession`]: the protocol logic — handshake, rights
//! split, grid-map authorization, command dispatch, restart markers,
//! stripe credit windows, kill points — lives here as a pure
//! feed-bytes-in/frames-out machine with no blocking reads. That is
//! what retires the GT2 threading exception (DESIGN.md §12.4): a
//! GridFTP stripe is a [`Scheduler`] task woken by stream readability,
//! not a spawned server thread.
//!
//! Wire parity with the threaded implementation is structural: the
//! machine emits *unframed* sealed records and the transport writes
//! each through [`write_frame`] (one length write + one payload write),
//! so the per-write loss-draw schedule of a seeded
//! [`StreamPair::lossy`](gridsec_testbed::net::StreamPair::lossy) link
//! is hit in the same per-direction order as before.
//!
//! Failure semantics mirror process death: when the machine resolves —
//! `QUIT`, peer close, a torn write, or a fired
//! [`CrashPlan`](gridsec_testbed::faults::CrashPlan) kill point — the
//! task drops its stream, and the peer observes EOF or a reset exactly
//! as it observed a dying server thread.

use std::cell::RefCell;
use std::io::{Read, Write};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use gridsec_bignum::prime::EntropySource;
use gridsec_crypto::rng::ChaChaRng;
use gridsec_crypto::sha256::sha256;
use gridsec_testbed::faults::CrashPlan;
use gridsec_testbed::net::{Network, SimStream};
use gridsec_testbed::os::{FileMode, SimOs, Uid};
use gridsec_testbed::sched::{Scheduler, Step, TaskCx};
use gridsec_tls::handshake::TlsConfig;
use gridsec_tls::records::{frame, Accepted, RecordSession, ServerAcceptor};
use gridsec_tls::stream::write_frame;
use gridsec_tls::TlsError;

use gridsec_authz::gridmap::GridMapFile;

use crate::resume::{hex, parse_two, CHUNK};
use crate::stripe::{merge_ranges, parse_ranges, part_path};
use crate::{FtpError, GridFtpServer};

/// Which command set a [`ServerSession`] speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dialect {
    /// `GET`/`PUT`/`QUIT` — the classic session loop.
    Classic,
    /// `GETR`/`PUTR`/`QUIT` — restart-marker resumable transfers.
    Resumable,
    /// `SIZE`/`GETS`/`PUTS`/`FINS`/`QUIT` — striped data channels.
    Striped,
}

/// Where the session is in its protocol, between input frames.
enum Phase {
    /// TLS handshake in progress (acceptor holds the state).
    Handshake,
    /// Established and mapped; awaiting the next command frame.
    Command,
    /// Classic `PUT`: awaiting the single data frame.
    ClassicPut { path: String },
    /// Resumable `PUTR`: appending chunks to the durable staging file.
    PutrRecv {
        path: String,
        part: String,
        total: usize,
        pos: usize,
    },
    /// Striped `GETS`: serving `PULL` credit requests from `data`.
    GetsServe {
        data: Vec<u8>,
        pos: usize,
        end: usize,
    },
    /// Striped `PUTS`: inside the `SEND`-window credit loop. `window`
    /// is the chunks still owed for the current grant (0 = awaiting
    /// the next `SEND`).
    PutsRecv {
        part: String,
        start: usize,
        span: usize,
        pos: usize,
        window: usize,
    },
}

/// A sans-io GridFTP server session: feed raw transport bytes in with
/// [`feed`](ServerSession::feed), turn the crank with
/// [`drive`](ServerSession::drive), write out every frame from
/// [`take_output`](ServerSession::take_output), and stop when
/// [`outcome`](ServerSession::outcome) resolves.
pub struct ServerSession {
    dialect: Dialect,
    now: u64,
    plan: CrashPlan,
    os: SimOs,
    host: String,
    gridmap: GridMapFile,
    transfers_at_start: u64,
    acceptor: Option<ServerAcceptor>,
    session: Option<RecordSession>,
    uid: Option<Uid>,
    phase: Phase,
    out: Vec<Vec<u8>>,
    done: Option<Result<u64, FtpError>>,
    completed: u64,
}

impl ServerSession {
    /// Snapshot a server's identity, trust, grid-map, and OS handle
    /// into a fresh session machine. `plan` is consulted at the same
    /// kill points as the blocking loops; pass
    /// [`CrashPlan::disabled`] for the classic dialect.
    pub fn new(server: &GridFtpServer, dialect: Dialect, now: u64, plan: CrashPlan) -> Self {
        let config = TlsConfig::new(server.credential.clone(), server.trust.clone(), now);
        ServerSession {
            dialect,
            now,
            plan,
            os: server.os.clone(),
            host: server.host.clone(),
            gridmap: server.gridmap.clone(),
            transfers_at_start: server.transfers,
            acceptor: Some(ServerAcceptor::new(config)),
            session: None,
            uid: None,
            phase: Phase::Handshake,
            out: Vec::new(),
            done: None,
            completed: 0,
        }
    }

    /// Buffer raw transport bytes (length-framed records, any split).
    pub fn feed(&mut self, bytes: &[u8]) {
        match (&mut self.session, &mut self.acceptor) {
            (Some(s), _) => s.feed(bytes),
            (None, Some(a)) => a.feed(bytes),
            (None, None) => {}
        }
    }

    /// Process everything buffered: run the handshake, dispatch
    /// complete commands, and queue replies. Returns when more input
    /// is needed or the session has resolved.
    pub fn drive<E: EntropySource>(&mut self, rng: &mut E) {
        loop {
            if self.done.is_some() {
                return;
            }
            if let Some(acceptor) = self.acceptor.as_mut() {
                match acceptor.advance(rng) {
                    Ok(Accepted::Pending) => return,
                    Ok(Accepted::Respond(token)) => self.out.push(token),
                    Ok(Accepted::Established(session)) => {
                        self.acceptor = None;
                        self.session = Some(*session);
                        self.prologue();
                    }
                    Err(e) => {
                        self.done = Some(Err(FtpError::Channel(e.to_string())));
                        return;
                    }
                }
                continue;
            }
            let msg = match self
                .session
                .as_mut()
                .expect("session exists once the acceptor is gone")
                .next_message()
            {
                Ok(Some(m)) => m,
                Ok(None) => return,
                Err(e) => {
                    self.on_record_error(e);
                    return;
                }
            };
            self.on_message(msg);
        }
    }

    /// Sealed reply frames queued since the last call. The transport
    /// must write each through [`write_frame`] — one frame per record
    /// keeps the loss layer's per-write draw schedule intact.
    pub fn take_output(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.out)
    }

    /// The session's result, once resolved: transfers served on a
    /// clean close, or the refusal/tear/kill error — the same values
    /// the blocking loops returned.
    pub fn outcome(&self) -> Option<&Result<u64, FtpError>> {
        self.done.as_ref()
    }

    /// Consume the resolved outcome.
    pub fn take_outcome(&mut self) -> Option<Result<u64, FtpError>> {
        self.done.take()
    }

    /// Transfers completed so far this session (monotonic; callers
    /// sync deltas into [`GridFtpServer::transfers`]).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The transport closed (EOF or reset). At a command boundary
    /// that is a normal end of session; mid-transfer it is a tear.
    pub fn on_transport_close(&mut self) {
        if self.done.is_some() {
            return;
        }
        self.done = Some(match self.phase {
            Phase::Command => Ok(self.completed),
            Phase::Handshake => Err(FtpError::Channel(
                "connection lost during handshake".to_string(),
            )),
            _ => Err(FtpError::Channel(
                "connection torn mid-transfer".to_string(),
            )),
        });
    }

    fn on_record_error(&mut self, e: TlsError) {
        self.done = Some(match self.phase {
            Phase::Command => Ok(self.completed),
            _ => Err(FtpError::Channel(e.to_string())),
        });
    }

    fn uid(&self) -> Uid {
        self.uid.expect("uid is set before any command runs")
    }

    fn say(&mut self, text: &str) {
        self.say_bytes(text.as_bytes());
    }

    fn say_bytes(&mut self, payload: &[u8]) {
        let sealed = self
            .session
            .as_mut()
            .expect("replies only flow on an established session")
            .send(payload);
        self.out.push(sealed);
    }

    fn fail(&mut self, e: FtpError) {
        self.done = Some(Err(e));
    }

    fn complete_one(&mut self) {
        self.completed += 1;
    }

    fn kill(&mut self, point: &'static str) {
        self.plan.confirm_kill("gridftp", self.now);
        self.done = Some(Err(FtpError::Channel(format!("killed at {point}"))));
    }

    /// Rights split + grid-map authorization + greeting, exactly as
    /// the blocking `accept_and_map` prologue.
    fn prologue(&mut self) {
        let peer = self
            .session
            .as_ref()
            .expect("prologue runs on establishment")
            .peer()
            .clone();
        if peer.rights == gridsec_pki::validate::EffectiveRights::Independent {
            self.say("ERR independent proxies have no inherited rights");
            self.done = Some(Err(FtpError::RightsRefused("independent proxy")));
            return;
        }
        let account = match self.gridmap.lookup(&peer.base_identity) {
            Some(a) => a.to_string(),
            None => {
                self.say("ERR no mapping");
                self.done = Some(Err(FtpError::NoMapping(peer.base_identity.to_string())));
                return;
            }
        };
        let uid = match self.os.uid_of(&self.host, &account) {
            Ok(u) => u,
            Err(e) => {
                self.done = Some(Err(FtpError::File(e.to_string())));
                return;
            }
        };
        self.uid = Some(uid);
        self.say(&format!("OK mapped to {account}"));
        match self.dialect {
            Dialect::Classic => {}
            Dialect::Resumable => {
                self.plan
                    .confirm_restart("gridftp", self.now, self.transfers_at_start as usize);
            }
            Dialect::Striped => {
                self.plan.confirm_restart("gridftp", self.now, 0);
            }
        }
        self.phase = Phase::Command;
    }

    fn stat(&self, p: &str) -> Option<usize> {
        self.os.file_len(&self.host, p).ok().flatten()
    }

    /// Dispatch one decrypted message according to the current phase.
    fn on_message(&mut self, msg: Vec<u8>) {
        match std::mem::replace(&mut self.phase, Phase::Command) {
            Phase::Handshake => unreachable!("messages only decrypt after establishment"),
            Phase::Command => self.on_command(&msg),
            Phase::ClassicPut { path } => self.classic_put_data(&path, msg),
            Phase::PutrRecv {
                path,
                part,
                total,
                pos,
            } => self.putr_chunk(path, part, total, pos, msg),
            Phase::GetsServe { data, pos, end } => self.gets_pull(data, pos, end, &msg),
            Phase::PutsRecv {
                part,
                start,
                span,
                pos,
                window,
            } => self.puts_window(part, start, span, pos, window, msg),
        }
    }

    fn on_command(&mut self, msg: &[u8]) {
        let text = String::from_utf8_lossy(msg).into_owned();
        if text == "QUIT" {
            self.say("BYE");
            self.done = Some(Ok(self.completed));
            return;
        }
        match self.dialect {
            Dialect::Classic => {
                if let Some(path) = text.strip_prefix("GET ") {
                    self.classic_get(path);
                } else if let Some(path) = text.strip_prefix("PUT ") {
                    self.phase = Phase::ClassicPut {
                        path: path.to_string(),
                    };
                } else {
                    self.say("ERR unknown command");
                }
            }
            Dialect::Resumable => {
                if let Some(rest) = text.strip_prefix("GETR ") {
                    self.getr(rest);
                } else if let Some(rest) = text.strip_prefix("PUTR ") {
                    self.putr(rest);
                } else {
                    self.say("ERR unknown command");
                }
            }
            Dialect::Striped => {
                if let Some(rest) = text.strip_prefix("SIZE ") {
                    self.size(rest);
                } else if let Some(rest) = text.strip_prefix("GETS ") {
                    self.gets(rest);
                } else if let Some(rest) = text.strip_prefix("PUTS ") {
                    self.puts(rest);
                } else if let Some(rest) = text.strip_prefix("FINS ") {
                    self.fins(rest);
                } else {
                    self.say("ERR unknown command");
                }
            }
        }
    }

    // ---- classic -------------------------------------------------

    fn classic_get(&mut self, path: &str) {
        match self.os.read_file(&self.host, path, self.uid()) {
            Ok(data) => {
                self.say(&format!("DATA {}", data.len()));
                self.say_bytes(&data);
                self.complete_one();
            }
            Err(e) => self.say(&format!("ERR {e}")),
        }
    }

    fn classic_put_data(&mut self, path: &str, data: Vec<u8>) {
        match self
            .os
            .write_file(&self.host, path, self.uid(), FileMode::private(), data)
        {
            Ok(()) => {
                self.say("STORED");
                self.complete_one();
            }
            Err(e) => self.say(&format!("ERR {e}")),
        }
    }

    // ---- resumable -----------------------------------------------

    fn getr(&mut self, rest: &str) {
        let (path, offset) = match parse_two(rest) {
            Some(v) => v,
            None => return self.say("ERR bad GETR arguments"),
        };
        let data = match self.os.read_file(&self.host, &path, self.uid()) {
            Ok(d) => d,
            Err(e) => return self.say(&format!("ERR {e}")),
        };
        if offset > data.len() {
            return self.say("ERR offset beyond end of file");
        }
        let digest = hex(&sha256(&data));
        self.say(&format!("DATA {} {offset} {digest}", data.len()));
        let mut pos = offset;
        while pos < data.len() {
            if self.plan.fires("xfer.get.chunk") {
                return self.kill("xfer.get.chunk");
            }
            let end = (pos + CHUNK).min(data.len());
            self.say_bytes(&data[pos..end]);
            pos = end;
        }
        self.complete_one();
    }

    fn putr(&mut self, rest: &str) {
        let (path, total) = match parse_two(rest) {
            Some(v) => v,
            None => return self.say("ERR bad PUTR arguments"),
        };
        let part = format!("{path}.part");
        // Resume offset from durable state: the staging file if one
        // exists, else "complete" if a previous session already
        // promoted the final file to full length.
        let staged = match (self.stat(&part), self.stat(&path)) {
            (Some(n), _) => n,
            (None, Some(n)) if n == total => total,
            _ => 0,
        };
        if staged > total {
            return self.say("ERR staged data exceeds total");
        }
        self.say(&format!("OFFSET {staged}"));
        if staged < total {
            self.phase = Phase::PutrRecv {
                path,
                part,
                total,
                pos: staged,
            };
        } else {
            self.putr_finish(&path, &part, total);
        }
    }

    fn putr_chunk(&mut self, path: String, part: String, total: usize, pos: usize, chunk: Vec<u8>) {
        if self.plan.fires("xfer.put.chunk") {
            // Received but never made durable: the dead process drops
            // it, and the client re-sends from the OFFSET the
            // restarted server reads back from the staging file.
            return self.kill("xfer.put.chunk");
        }
        if pos + chunk.len() > total {
            return self.fail(FtpError::Protocol(
                "upload overruns declared total".to_string(),
            ));
        }
        if let Err(e) =
            self.os
                .append_file(&self.host, &part, self.uid(), FileMode::private(), &chunk)
        {
            return self.fail(FtpError::File(e.to_string()));
        }
        let pos = pos + chunk.len();
        if pos < total {
            self.phase = Phase::PutrRecv {
                path,
                part,
                total,
                pos,
            };
        } else {
            self.putr_finish(&path, &part, total);
        }
    }

    /// Promote the complete staging file (idempotent: a repeat PUTR of
    /// a finished transfer skips straight here with no staging file
    /// left), then reply with the stored digest.
    fn putr_finish(&mut self, path: &str, part: &str, total: usize) {
        if self.stat(part) == Some(total) {
            let data = match self.os.read_file(&self.host, part, self.uid()) {
                Ok(d) => d,
                Err(e) => return self.fail(FtpError::File(e.to_string())),
            };
            if let Err(e) =
                self.os
                    .write_file(&self.host, path, self.uid(), FileMode::private(), data)
            {
                return self.fail(FtpError::File(e.to_string()));
            }
            if let Err(e) = self.os.remove_file(&self.host, part, self.uid()) {
                return self.fail(FtpError::File(e.to_string()));
            }
        }
        let data = match self.os.read_file(&self.host, path, self.uid()) {
            Ok(d) => d,
            Err(e) => return self.fail(FtpError::File(e.to_string())),
        };
        self.say(&format!("STORED {}", hex(&sha256(&data))));
        self.complete_one();
    }

    // ---- striped -------------------------------------------------

    fn size(&mut self, rest: &str) {
        match self.os.read_file(&self.host, rest.trim(), self.uid()) {
            Ok(d) => self.say(&format!("SIZE {} {}", d.len(), hex(&sha256(&d)))),
            Err(e) => self.say(&format!("ERR {e}")),
        }
    }

    fn gets(&mut self, rest: &str) {
        let mut it = rest.split_whitespace();
        let (path, from, end) = match (
            it.next(),
            it.next().and_then(|v| v.parse::<usize>().ok()),
            it.next().and_then(|v| v.parse::<usize>().ok()),
            it.next(),
        ) {
            (Some(p), Some(f), Some(e), None) => (p.to_string(), f, e),
            _ => return self.say("ERR bad GETS arguments"),
        };
        let data = match self.os.read_file(&self.host, &path, self.uid()) {
            Ok(d) => d,
            Err(e) => return self.say(&format!("ERR {e}")),
        };
        if from > end || end > data.len() {
            return self.say("ERR bad stripe range");
        }
        self.say(&format!("RANGE {} {}", data.len(), hex(&sha256(&data))));
        if from < end {
            self.phase = Phase::GetsServe {
                data,
                pos: from,
                end,
            };
        } else {
            self.complete_one();
        }
    }

    fn gets_pull(&mut self, data: Vec<u8>, pos: usize, end: usize, msg: &[u8]) {
        let text = String::from_utf8_lossy(msg).into_owned();
        let n = match text
            .strip_prefix("PULL ")
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            // Transfer abandoned: back to the command loop, uncounted.
            _ => return self.say("ERR expected PULL"),
        };
        let mut pos = pos;
        for _ in 0..n {
            if pos >= end {
                break;
            }
            if self.plan.fires("xfer.stripe.get.chunk") {
                return self.kill("xfer.stripe.get.chunk");
            }
            let to = (pos + CHUNK).min(end);
            self.say_bytes(&data[pos..to]);
            pos = to;
        }
        if pos >= end {
            self.complete_one();
        } else {
            self.phase = Phase::GetsServe { data, pos, end };
        }
    }

    fn puts(&mut self, rest: &str) {
        let mut it = rest.split_whitespace();
        let parsed = (
            it.next(),
            it.next().and_then(|v| v.parse::<usize>().ok()),
            it.next().and_then(|v| v.parse::<usize>().ok()),
            it.next().and_then(|v| v.parse::<usize>().ok()),
            it.next(),
        );
        let (path, start, end, total) = match parsed {
            (Some(p), Some(s), Some(e), Some(t), None) if s <= e && e <= t => {
                (p.to_string(), s, e, t)
            }
            _ => return self.say("ERR bad PUTS arguments"),
        };
        let part = part_path(&path, start, end);
        let span = end - start;
        // Resume offset from durable state: this range's staging
        // file, or "complete" if the whole file was already promoted
        // by an earlier FINS.
        let staged = match (self.stat(&part), self.stat(&path)) {
            (Some(n), _) => n.min(span),
            (None, Some(n)) if n == total => span,
            _ => 0,
        };
        self.say(&format!("OFFSET {}", start + staged));
        if staged < span {
            self.phase = Phase::PutsRecv {
                part,
                start,
                span,
                pos: staged,
                window: 0,
            };
        } else {
            self.complete_one();
        }
    }

    fn puts_window(
        &mut self,
        part: String,
        start: usize,
        span: usize,
        pos: usize,
        window: usize,
        msg: Vec<u8>,
    ) {
        if window == 0 {
            let text = String::from_utf8_lossy(&msg).into_owned();
            let n = match text
                .strip_prefix("SEND ")
                .and_then(|v| v.parse::<usize>().ok())
            {
                Some(n) if n > 0 => n,
                // Transfer abandoned: back to the command loop.
                _ => return self.say("ERR expected SEND"),
            };
            self.phase = Phase::PutsRecv {
                part,
                start,
                span,
                pos,
                window: n,
            };
            return;
        }
        if self.plan.fires("xfer.stripe.put.chunk") {
            // Received but never made durable: the client re-sends
            // from the OFFSET the restarted server reads back from
            // this range's staging file.
            return self.kill("xfer.stripe.put.chunk");
        }
        if pos + msg.len() > span {
            return self.fail(FtpError::Protocol(
                "stripe upload overruns its range".to_string(),
            ));
        }
        if let Err(e) =
            self.os
                .append_file(&self.host, &part, self.uid(), FileMode::private(), &msg)
        {
            return self.fail(FtpError::File(e.to_string()));
        }
        let pos = pos + msg.len();
        let window = window - 1;
        if window == 0 || pos >= span {
            self.say(&format!("ACK {}", start + pos));
            if pos >= span {
                self.complete_one();
            } else {
                self.phase = Phase::PutsRecv {
                    part,
                    start,
                    span,
                    pos,
                    window: 0,
                };
            }
        } else {
            self.phase = Phase::PutsRecv {
                part,
                start,
                span,
                pos,
                window,
            };
        }
    }

    fn fins(&mut self, rest: &str) {
        let mut it = rest.split_whitespace();
        let parsed = (
            it.next(),
            it.next().and_then(|v| v.parse::<usize>().ok()),
            it.next(),
            it.next(),
            it.next(),
        );
        let (path, total, sha, ranges_field) = match parsed {
            (Some(p), Some(t), Some(s), Some(r), None) => {
                (p.to_string(), t, s.to_string(), r.to_string())
            }
            _ => return self.say("ERR bad FINS arguments"),
        };
        let ranges = match parse_ranges(&ranges_field) {
            Some(r) => r,
            None => return self.say("ERR bad FINS ranges"),
        };
        // Idempotent short-circuit: a merge that crashed after the
        // promote (or a lost STORED reply) retries into this arm.
        if self.stat(&path) == Some(total) {
            let data = match self.os.read_file(&self.host, &path, self.uid()) {
                Ok(d) => d,
                Err(e) => return self.fail(FtpError::File(e.to_string())),
            };
            if hex(&sha256(&data)) == sha {
                for (s, e) in &ranges {
                    let _ = self
                        .os
                        .remove_file(&self.host, &part_path(&path, *s, *e), self.uid());
                }
                self.say(&format!("STORED {sha}"));
                self.complete_one();
                return;
            }
        }
        let mut parts: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut bad: Option<String> = None;
        for (s, e) in &ranges {
            match self
                .os
                .read_file(&self.host, &part_path(&path, *s, *e), self.uid())
            {
                Ok(d) if d.len() == e - s => parts.push((*s, d)),
                Ok(d) => {
                    bad = Some(format!(
                        "stripe part {s}-{e} has {} of {} bytes",
                        d.len(),
                        e - s
                    ));
                    break;
                }
                Err(err) => {
                    bad = Some(format!("stripe part {s}-{e}: {err}"));
                    break;
                }
            }
        }
        if let Some(msg) = bad {
            return self.say(&format!("ERR {msg}"));
        }
        let merged = match merge_ranges(total, &parts) {
            Ok(m) => m,
            Err(e) => return self.say(&format!("ERR {e}")),
        };
        if hex(&sha256(&merged)) != sha {
            return self.say("ERR assembled file does not match client digest");
        }
        if self.plan.fires("xfer.stripe.merge") {
            // Parts are still durable; the retried FINS merges again.
            return self.kill("xfer.stripe.merge");
        }
        if let Err(e) =
            self.os
                .write_file(&self.host, &path, self.uid(), FileMode::private(), merged)
        {
            return self.fail(FtpError::File(e.to_string()));
        }
        for (s, e) in &ranges {
            let _ = self
                .os
                .remove_file(&self.host, &part_path(&path, *s, *e), self.uid());
        }
        self.say(&format!("STORED {sha}"));
        self.complete_one();
    }
}

/// Drive a [`ServerSession`] over a blocking byte stream — the engine
/// behind the `serve_*` compatibility shims. Reads one frame at a
/// time, feeds it, writes every queued reply, and returns the
/// machine's outcome.
pub(crate) fn drive_blocking<S: Read + Write, E: EntropySource>(
    machine: &mut ServerSession,
    stream: &mut S,
    rng: &mut E,
) -> Result<u64, FtpError> {
    loop {
        machine.drive(rng);
        for f in machine.take_output() {
            if let Err(e) = write_frame(stream, &f) {
                // A reply the blocking loops sent best-effort (BYE,
                // the prologue refusals) never masks the resolved
                // outcome; any other torn write is a channel error.
                return machine
                    .take_outcome()
                    .unwrap_or_else(|| Err(FtpError::Channel(e.to_string())));
            }
        }
        if let Some(out) = machine.take_outcome() {
            return out;
        }
        match gridsec_tls::stream::read_frame(stream) {
            Ok(payload) => machine.feed(&frame(&payload)),
            Err(_) => {
                machine.on_transport_close();
                return machine
                    .take_outcome()
                    .expect("transport close resolves the session");
            }
        }
    }
}

/// Spawns [`ServerSession`]s as scheduler tasks — the replacement for
/// the per-connection server threads the dialers used to detach.
pub struct SessionTask {
    /// The shared server all sessions serve; its
    /// [`transfers`](GridFtpServer::transfers) counter is kept in sync
    /// as transfers complete.
    pub server: Arc<Mutex<GridFtpServer>>,
    /// Command set for spawned sessions.
    pub dialect: Dialect,
    /// Validation time handed to each session's `TlsConfig`.
    pub now: u64,
    /// Kill-point plan shared by every spawned session.
    pub plan: CrashPlan,
}

impl SessionTask {
    /// Spawn one server session as a task on `sched`, woken whenever
    /// `stream` becomes readable. Returns a cell that receives the
    /// session outcome when it resolves (the value `serve_*` would
    /// have returned from a thread).
    pub fn spawn(
        &self,
        sched: &mut Scheduler,
        net: &Network,
        mailbox: &str,
        stream: SimStream,
        rng_seed: &[u8],
    ) -> Rc<RefCell<Option<Result<u64, FtpError>>>> {
        let outcome = Rc::new(RefCell::new(None));
        let sink = Rc::clone(&outcome);
        let mut machine = ServerSession::new(
            &self.server.lock().expect("gridftp server mutex"),
            self.dialect,
            self.now,
            self.plan.clone(),
        );
        let mut rng = ChaChaRng::from_seed_bytes(rng_seed);
        let server = Arc::clone(&self.server);
        let mut synced = 0u64;
        stream.wake_on_readable(net, mailbox);
        let mut stream = Some(stream);
        sched.spawn_mailbox(mailbox, move |_cx: &TaskCx| {
            let s = match stream.as_mut() {
                Some(s) => s,
                None => return Step::Done,
            };
            let mut closed = false;
            let mut tmp = [0u8; 4096];
            loop {
                match s.try_read(&mut tmp) {
                    Ok(Some(0)) | Err(_) => {
                        closed = true;
                        break;
                    }
                    Ok(Some(n)) => machine.feed(&tmp[..n]),
                    Ok(None) => break,
                }
            }
            machine.drive(&mut rng);
            if closed {
                machine.on_transport_close();
            }
            let mut write_failed = false;
            for f in machine.take_output() {
                if write_frame(s, &f).is_err() {
                    write_failed = true;
                    break;
                }
            }
            let completed = machine.completed();
            if completed > synced {
                server.lock().expect("gridftp server mutex").transfers += completed - synced;
                synced = completed;
            }
            if machine.outcome().is_some() || write_failed {
                let out = machine
                    .take_outcome()
                    .unwrap_or_else(|| Err(FtpError::Channel("connection torn".to_string())));
                *sink.borrow_mut() = Some(out);
                // Dropping the stream is the task's process death:
                // the peer sees EOF exactly as it saw a dead thread.
                stream = None;
                return Step::Done;
            }
            Step::WaitMail { deadline: None }
        });
        outcome
    }
}
