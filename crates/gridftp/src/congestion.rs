//! AIMD congestion control for striped transfers.
//!
//! Real GridFTP lets the client pick parallelism and window sizes; the
//! paper-era servers adapted both to observed loss. This controller
//! reproduces that loop on the simulated testbed: the striped engine
//! reports every torn stripe connection (with the stripe's
//! [`LossStats`](gridsec_testbed::net::LossStats)-derived loss rate)
//! and every cleanly delivered window, and the controller answers with
//! the pull-window size and the target stripe count.
//!
//! Window control is textbook AIMD: +1 chunk per clean window, halve on
//! a tear. Stripe control is slower and probabilistic — after a streak
//! of clean windows the controller *may* add a stripe, and on a tear
//! over a badly lossy stripe it *may* drop one. Both draws come from a
//! [`DetRng`] seeded by the caller, so a given seed replays the exact
//! same decision sequence; the decision log is part of the chaos
//! transcripts CI byte-compares across processes. Determinism holds
//! because every input is itself deterministic: tick times come from
//! the engine's simulated timeline, loss rates from the seeded stream
//! fault layer, and the draw sequence from the seed — no wall clock,
//! no thread scheduling, no ambient entropy.

use gridsec_util::rng::{DetRng, RngCore};

/// Bounds and starting points for the controller.
#[derive(Clone, Copy, Debug)]
pub struct AimdConfig {
    /// Smallest pull window (chunks per request round).
    pub min_window: u32,
    /// Largest pull window.
    pub max_window: u32,
    /// Initial pull window.
    pub init_window: u32,
    /// Fewest concurrently active stripes.
    pub min_stripes: u32,
    /// Most concurrently active stripes.
    pub max_stripes: u32,
    /// Initial stripe count.
    pub init_stripes: u32,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            min_window: 1,
            max_window: 16,
            init_window: 4,
            min_stripes: 1,
            max_stripes: 4,
            init_stripes: 2,
        }
    }
}

impl AimdConfig {
    /// A config pinned to exactly `n` stripes (bench baselines compare
    /// fixed stripe counts; only the window still adapts).
    pub fn pinned_stripes(n: u32) -> Self {
        AimdConfig {
            min_stripes: n.max(1),
            max_stripes: n.max(1),
            init_stripes: n.max(1),
            ..AimdConfig::default()
        }
    }
}

/// Clean-window streak length required before a stripe may be added.
const GROW_STREAK: u32 = 4;
/// Probability (in 1/256ths) of adding a stripe once the streak allows.
const GROW_P256: u64 = 192;
/// Loss rate (permille) above which a tear may also shed a stripe.
const SHED_LOSS_PERMILLE: u64 = 150;
/// Probability (in 1/256ths) of shedding a stripe on a qualifying tear.
const SHED_P256: u64 = 128;

/// Additive-increase / multiplicative-decrease controller over the
/// striped engine's window size and stripe count.
pub struct AimdController {
    cfg: AimdConfig,
    window: u32,
    stripes: u32,
    clean_streak: u32,
    rng: DetRng,
    decisions: Vec<String>,
    tears: u64,
    clean_rounds: u64,
}

impl AimdController {
    /// Create a controller from bounds and a replay seed.
    pub fn new(cfg: AimdConfig, seed: u64) -> Self {
        let cfg = AimdConfig {
            min_window: cfg.min_window.max(1),
            max_window: cfg.max_window.max(cfg.min_window.max(1)),
            init_window: cfg
                .init_window
                .clamp(cfg.min_window.max(1), cfg.max_window.max(1)),
            min_stripes: cfg.min_stripes.max(1),
            max_stripes: cfg.max_stripes.max(cfg.min_stripes.max(1)),
            init_stripes: cfg
                .init_stripes
                .clamp(cfg.min_stripes.max(1), cfg.max_stripes.max(1)),
        };
        AimdController {
            window: cfg.init_window,
            stripes: cfg.init_stripes,
            clean_streak: 0,
            rng: DetRng::seed_from_u64(seed ^ 0xA1_4D_C0_47),
            decisions: Vec::new(),
            tears: 0,
            clean_rounds: 0,
            cfg,
        }
    }

    /// Current pull window (chunks per request round).
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Stripe count the engine should be running right now.
    pub fn target_stripes(&self) -> u32 {
        self.stripes
    }

    /// Tears reported so far.
    pub fn tears(&self) -> u64 {
        self.tears
    }

    /// Clean windows reported so far.
    pub fn clean_rounds(&self) -> u64 {
        self.clean_rounds
    }

    /// The decision log: one line per state change, deterministic per
    /// seed (chaos transcripts embed it).
    pub fn decisions(&self) -> &[String] {
        &self.decisions
    }

    fn draw256(&mut self) -> u64 {
        self.rng.next_u64() & 0xFF
    }

    /// A stripe's connection tore at simulated tick `now`;
    /// `loss_permille` is the stripe's observed write-loss rate from
    /// the fault layer. Multiplicative decrease on the window, and on a
    /// badly lossy stripe possibly one fewer stripe.
    pub fn on_tear(&mut self, stripe: usize, loss_permille: u64, now: u64) {
        self.tears += 1;
        self.clean_streak = 0;
        let old_w = self.window;
        self.window = (self.window / 2).max(self.cfg.min_window);
        let mut line = format!(
            "t={now} stripe={stripe} tear loss={loss_permille}\u{2030} window {old_w}->{}",
            self.window
        );
        if loss_permille > SHED_LOSS_PERMILLE
            && self.stripes > self.cfg.min_stripes
            && self.draw256() < SHED_P256
        {
            let old_s = self.stripes;
            self.stripes -= 1;
            line.push_str(&format!(" stripes {old_s}->{}", self.stripes));
        }
        self.decisions.push(line);
    }

    /// A full pull window was delivered with no tear at tick `now`.
    /// Additive increase on the window; after a clean streak the
    /// controller may add a stripe.
    pub fn on_clean_round(&mut self, stripe: usize, now: u64) {
        self.clean_rounds += 1;
        self.clean_streak += 1;
        let old_w = self.window;
        self.window = (self.window + 1).min(self.cfg.max_window);
        let mut changed = self.window != old_w;
        let mut line = format!(
            "t={now} stripe={stripe} clean window {old_w}->{}",
            self.window
        );
        if self.clean_streak >= GROW_STREAK
            && self.stripes < self.cfg.max_stripes
            && self.draw256() < GROW_P256
        {
            let old_s = self.stripes;
            self.stripes += 1;
            self.clean_streak = 0;
            line.push_str(&format!(" stripes {old_s}->{}", self.stripes));
            changed = true;
        }
        if changed {
            self.decisions.push(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_follows_aimd() {
        let mut c = AimdController::new(AimdConfig::default(), 7);
        assert_eq!(c.window(), 4);
        c.on_clean_round(0, 1);
        c.on_clean_round(0, 2);
        assert_eq!(c.window(), 6);
        c.on_tear(0, 100, 3);
        assert_eq!(c.window(), 3);
        for t in 4..40 {
            c.on_clean_round(0, t);
        }
        assert_eq!(c.window(), 16, "additive increase caps at max_window");
    }

    #[test]
    fn stripes_stay_within_bounds() {
        let mut c = AimdController::new(AimdConfig::default(), 9);
        for t in 0..200 {
            c.on_clean_round(0, t);
        }
        assert!(c.target_stripes() <= 4);
        for t in 200..400 {
            c.on_tear(0, 900, t);
        }
        assert_eq!(c.target_stripes(), 1, "heavy loss sheds to min_stripes");
        assert_eq!(c.window(), 1);
    }

    #[test]
    fn pinned_config_never_moves_stripes() {
        let mut c = AimdController::new(AimdConfig::pinned_stripes(1), 11);
        for t in 0..100 {
            c.on_clean_round(0, t);
            if t % 7 == 0 {
                c.on_tear(0, 999, t);
            }
        }
        assert_eq!(c.target_stripes(), 1);
    }

    #[test]
    fn same_seed_replays_the_same_decisions() {
        let drive = |seed: u64| {
            let mut c = AimdController::new(AimdConfig::default(), seed);
            for t in 0..50 {
                if t % 9 == 5 {
                    c.on_tear((t % 3) as usize, 200, t);
                } else {
                    c.on_clean_round((t % 3) as usize, t);
                }
            }
            c.decisions().to_vec()
        };
        assert_eq!(drive(0xFEED), drive(0xFEED));
        assert_ne!(
            drive(0xFEED),
            drive(0xBEEF),
            "the seed drives the probabilistic moves"
        );
    }
}
