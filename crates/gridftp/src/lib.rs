//! # gridsec-gridftp
//!
//! A GridFTP-like secured data-movement service — the third GT2 service
//! family the paper names ("GT2 includes services for Grid Resource
//! Allocation and Management (GRAM), Monitoring and Discovery (MDS), and
//! data movement (GridFTP)", §3) — for the `gridsec` reproduction of
//! *Security for Grid Services* (Welch et al., HPDC 2003).
//!
//! Its role in the reproduction is to make the **limited proxy** policy
//! split observable end to end: GT2's site-defined reduced-rights set
//! lets a limited proxy *move data* but not *start jobs*. This service
//! accepts both `Full` and `Limited` rights; `gridsec-gram` refuses
//! `Limited`. (`Independent` proxies inherit nothing and are refused
//! here too.)
//!
//! Protocol: a GT2-style mutually-authenticated secure channel
//! (`gridsec-tls`), then length-framed commands — `GET <path>`,
//! `PUT <path>` + data, `QUIT` — against files in the mapped user's
//! account on the simulated OS, with SimOs permission enforcement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod poll;
pub mod resume;
pub mod stripe;

use std::io::{Read, Write};

use gridsec_authz::gridmap::GridMapFile;
use gridsec_bignum::prime::EntropySource;
use gridsec_pki::credential::Credential;
use gridsec_pki::store::TrustStore;
use gridsec_testbed::os::SimOs;
use gridsec_tls::handshake::TlsConfig;
use gridsec_tls::stream::{client_connect, SecureStream};

/// Errors from transfer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtpError {
    /// Channel establishment or I/O failure.
    Channel(String),
    /// The peer's rights do not permit data movement.
    RightsRefused(&'static str),
    /// No grid-mapfile entry for the client.
    NoMapping(String),
    /// File access denied or missing.
    File(String),
    /// Protocol violation.
    Protocol(String),
    /// A transfer-engine invariant did not hold (e.g. bookkeeping state
    /// lost across a torn session). Returned instead of panicking so
    /// fault-injection runs degrade into a failed transfer, never a
    /// crashed client.
    Xfer(&'static str),
}

impl core::fmt::Display for FtpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FtpError::Channel(m) => write!(f, "channel error: {m}"),
            FtpError::RightsRefused(m) => write!(f, "rights refused: {m}"),
            FtpError::NoMapping(dn) => write!(f, "no mapping for {dn}"),
            FtpError::File(m) => write!(f, "file error: {m}"),
            FtpError::Protocol(m) => write!(f, "protocol error: {m}"),
            FtpError::Xfer(m) => write!(f, "transfer invariant violated: {m}"),
        }
    }
}

impl std::error::Error for FtpError {}

/// A GridFTP-like server bound to one simulated host.
pub struct GridFtpServer {
    /// Host name in the simulated OS.
    pub host: String,
    os: SimOs,
    credential: Credential,
    trust: TrustStore,
    gridmap: GridMapFile,
    /// Transfers served (gets + puts).
    pub transfers: u64,
}

impl GridFtpServer {
    /// Create a server. Accounts for mapped users must already exist (or
    /// are created here).
    pub fn new(
        os: SimOs,
        host: &str,
        credential: Credential,
        trust: TrustStore,
        gridmap: GridMapFile,
    ) -> Result<Self, FtpError> {
        os.add_host(host);
        for e in gridmap.entries() {
            for a in &e.accounts {
                os.add_account(host, a)
                    .map_err(|e| FtpError::File(e.to_string()))?;
            }
        }
        Ok(GridFtpServer {
            host: host.to_string(),
            os,
            credential,
            trust,
            gridmap,
            transfers: 0,
        })
    }

    /// Serve one session on an accepted raw stream: handshake, then
    /// commands until `QUIT` or EOF. Returns the number of transfers.
    ///
    /// Blocking compatibility shim over the sans-io
    /// [`poll::ServerSession`] machine, which holds all the protocol
    /// logic.
    pub fn serve_session<S: Read + Write, E: EntropySource>(
        &mut self,
        stream: S,
        rng: &mut E,
        now: u64,
    ) -> Result<u64, FtpError> {
        use gridsec_testbed::faults::CrashPlan;
        let mut machine =
            poll::ServerSession::new(self, poll::Dialect::Classic, now, CrashPlan::disabled());
        let mut stream = stream;
        let out = poll::drive_blocking(&mut machine, &mut stream, rng);
        self.transfers += machine.completed();
        out
    }

    /// Shared OS handle (for test assertions).
    pub fn os(&self) -> &SimOs {
        &self.os
    }
}

/// A client session for one connected transfer channel.
pub struct GridFtpClient<S: Read + Write> {
    stream: SecureStream<S>,
}

impl<S: Read + Write> GridFtpClient<S> {
    /// Connect and authenticate over a raw stream.
    pub fn connect<E: EntropySource>(
        stream: S,
        credential: Credential,
        trust: TrustStore,
        now: u64,
        rng: &mut E,
    ) -> Result<Self, FtpError> {
        let config = TlsConfig::new(credential, trust, now);
        let mut secured =
            client_connect(stream, config, rng).map_err(|e| FtpError::Channel(e.to_string()))?;
        let greeting = secured
            .recv()
            .map_err(|e| FtpError::Channel(e.to_string()))?;
        let text = String::from_utf8_lossy(&greeting).into_owned();
        if !text.starts_with("OK") {
            return Err(FtpError::Protocol(text));
        }
        Ok(GridFtpClient { stream: secured })
    }

    /// Fetch a remote file.
    pub fn get(&mut self, path: &str) -> Result<Vec<u8>, FtpError> {
        self.stream
            .send(format!("GET {path}").as_bytes())
            .map_err(|e| FtpError::Channel(e.to_string()))?;
        let header = self
            .stream
            .recv()
            .map_err(|e| FtpError::Channel(e.to_string()))?;
        let text = String::from_utf8_lossy(&header).into_owned();
        if let Some(len) = text.strip_prefix("DATA ") {
            let expected: usize = len
                .parse()
                .map_err(|_| FtpError::Protocol("bad DATA header".to_string()))?;
            let data = self
                .stream
                .recv()
                .map_err(|e| FtpError::Channel(e.to_string()))?;
            if data.len() != expected {
                return Err(FtpError::Protocol("length mismatch".to_string()));
            }
            Ok(data)
        } else {
            Err(FtpError::File(text))
        }
    }

    /// Store a remote file.
    pub fn put(&mut self, path: &str, data: &[u8]) -> Result<(), FtpError> {
        self.stream
            .send(format!("PUT {path}").as_bytes())
            .map_err(|e| FtpError::Channel(e.to_string()))?;
        self.stream
            .send(data)
            .map_err(|e| FtpError::Channel(e.to_string()))?;
        let reply = self
            .stream
            .recv()
            .map_err(|e| FtpError::Channel(e.to_string()))?;
        if reply == b"STORED" {
            Ok(())
        } else {
            Err(FtpError::File(String::from_utf8_lossy(&reply).into_owned()))
        }
    }

    /// End the session.
    pub fn quit(mut self) -> Result<(), FtpError> {
        self.stream
            .send(b"QUIT")
            .map_err(|e| FtpError::Channel(e.to_string()))?;
        let _ = self.stream.recv();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::proxy::{issue_proxy, ProxyType};
    use gridsec_testbed::faults::CrashPlan;
    use gridsec_testbed::net::{with_stream_pump, Network, StreamPair};
    use gridsec_testbed::os::{FileMode, ROOT_UID};
    use gridsec_testbed::sched::Scheduler;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::{Arc, Mutex};

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        rng: ChaChaRng,
        trust: TrustStore,
        jane: Credential,
        server: Arc<Mutex<GridFtpServer>>,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"gridftp tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
        let host = ca.issue_host_identity(
            &mut rng,
            dn("/O=G/CN=host data1"),
            vec!["data1".into()],
            512,
            0,
            500_000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        let gridmap = GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n").unwrap();
        let server =
            GridFtpServer::new(SimOs::new(), "data1", host, trust.clone(), gridmap).unwrap();
        World {
            rng,
            trust,
            jane,
            server: Arc::new(Mutex::new(server)),
        }
    }

    /// Run client ops against the server on a stream pair; the server
    /// runs as a sans-io scheduler task, pumped whenever the blocking
    /// client waits for bytes.
    fn with_session<F, R>(
        w: &mut World,
        cred: Credential,
        f: F,
    ) -> (Result<R, FtpError>, Result<u64, FtpError>)
    where
        F: FnOnce(&mut GridFtpClient<gridsec_testbed::net::SimStream>) -> Result<R, FtpError>,
    {
        let net = Network::new();
        let sched = Rc::new(RefCell::new(Scheduler::new(&net)));
        let (a, b, _) = StreamPair::new();
        let task = poll::SessionTask {
            server: Arc::clone(&w.server),
            dialect: poll::Dialect::Classic,
            now: 100,
            plan: CrashPlan::disabled(),
        };
        let served = task.spawn(
            &mut sched.borrow_mut(),
            &net,
            "ftp-classic",
            b,
            b"server side",
        );
        let trust = w.trust.clone();
        let mut client_rng = ChaChaRng::from_seed_bytes(b"client side");
        let pump = Rc::clone(&sched);
        let result = with_stream_pump(
            move || pump.borrow_mut().pump(),
            move || {
                let mut client = GridFtpClient::connect(a, cred, trust, 100, &mut client_rng)?;
                let out = f(&mut client)?;
                client.quit()?;
                Ok(out)
            },
        );
        // Drain the scheduler so the server task observes the client's
        // close and resolves its outcome.
        while sched.borrow_mut().pump() > 0 {}
        let served = served.borrow_mut().take().expect("server session resolved");
        (result, served)
    }

    #[test]
    fn put_then_get_roundtrip() {
        let mut w = world();
        let jane = w.jane.clone();
        let (result, served) = with_session(&mut w, jane, |c| {
            c.put("/home/jdoe/results.dat", b"simulation output")?;
            c.get("/home/jdoe/results.dat")
        });
        assert_eq!(result.unwrap(), b"simulation output");
        assert_eq!(served.unwrap(), 2);
        // File landed under the mapped account's uid.
        let srv = w.server.lock().unwrap();
        let uid = srv.os().uid_of("data1", "jdoe").unwrap();
        assert!(srv
            .os()
            .read_file("data1", "/home/jdoe/results.dat", uid)
            .is_ok());
    }

    #[test]
    fn limited_proxy_may_transfer() {
        let mut w = world();
        let limited =
            issue_proxy(&mut w.rng, &w.jane, ProxyType::Limited, 512, 50, 10_000).unwrap();
        let (result, _) = with_session(&mut w, limited, |c| {
            c.put("/home/jdoe/from-limited.dat", b"data mover")
        });
        // The split the paper's §3 describes: limited is enough here
        // (GRAM refuses the same proxy — tested in gridsec-gram).
        assert!(result.is_ok());
    }

    #[test]
    fn independent_proxy_refused() {
        let mut w = world();
        let independent =
            issue_proxy(&mut w.rng, &w.jane, ProxyType::Independent, 512, 50, 10_000).unwrap();
        let (result, served) = with_session(&mut w, independent, |c| c.get("/x"));
        assert!(result.is_err());
        assert_eq!(
            served.unwrap_err(),
            FtpError::RightsRefused("independent proxy")
        );
    }

    #[test]
    fn unmapped_user_refused() {
        let mut w = world();
        let mut rng = ChaChaRng::from_seed_bytes(b"stranger");
        let ca2 = CertificateAuthority::create_root(&mut rng, dn("/O=G2/CN=CA"), 512, 0, 1000);
        // Trusted CA but unmapped user: add CA2 to server trust first.
        w.server
            .lock()
            .unwrap()
            .trust
            .add_root(ca2.certificate().clone());
        let mut trust2 = w.trust.clone();
        trust2.add_root(ca2.certificate().clone());
        w.trust = trust2;
        let stranger = ca2.issue_identity(&mut rng, dn("/O=G2/CN=Stray"), 512, 0, 1000);
        let (result, served) = with_session(&mut w, stranger, |c| c.get("/x"));
        assert!(result.is_err());
        assert!(matches!(served.unwrap_err(), FtpError::NoMapping(_)));
    }

    #[test]
    fn permissions_enforced_within_account() {
        let mut w = world();
        // A root-owned private file is invisible to jdoe.
        w.server
            .lock()
            .unwrap()
            .os()
            .write_file(
                "data1",
                "/etc/secret",
                ROOT_UID,
                FileMode::private(),
                b"root only".to_vec(),
            )
            .unwrap();
        let jane = w.jane.clone();
        let (result, _) = with_session(&mut w, jane, |c| c.get("/etc/secret"));
        assert!(matches!(result.unwrap_err(), FtpError::File(_)));
    }

    #[test]
    fn untrusted_client_cannot_even_handshake() {
        let mut w = world();
        let mut rng = ChaChaRng::from_seed_bytes(b"rogue");
        let rogue = CertificateAuthority::create_root(&mut rng, dn("/O=E/CN=CA"), 512, 0, 1000);
        let mallory = rogue.issue_identity(&mut rng, dn("/O=E/CN=M"), 512, 0, 1000);
        let (result, served) = with_session(&mut w, mallory, |c| c.get("/x"));
        assert!(matches!(result.unwrap_err(), FtpError::Channel(_)));
        assert!(matches!(served.unwrap_err(), FtpError::Channel(_)));
    }

    #[test]
    fn missing_file_reports_error_not_disconnect() {
        let mut w = world();
        let jane = w.jane.clone();
        let (result, served) = with_session(&mut w, jane, |c| {
            let miss = c.get("/home/jdoe/nope.dat");
            assert!(matches!(miss.unwrap_err(), FtpError::File(_)));
            // Session still usable afterwards.
            c.put("/home/jdoe/ok.dat", b"fine")
        });
        assert!(result.is_ok());
        assert_eq!(served.unwrap(), 1);
    }
}
