//! Restart-marker resumable transfers (`GETR`/`PUTR`).
//!
//! Real GridFTP survives WAN faults with *restart markers*: the
//! receiver periodically records how much data is safely on disk, and
//! after a failure the transfer resumes from the marker instead of from
//! byte zero. This module reproduces that contract on the simulated
//! testbed, where connections tear deterministically
//! ([`StreamPair::lossy`](gridsec_testbed::net::StreamPair::lossy)) and
//! the server process can be killed mid-transfer by a
//! [`CrashPlan`](gridsec_testbed::faults::CrashPlan).
//!
//! Protocol (after the same secure-channel prologue as the classic
//! session):
//!
//! * `GETR <path> <offset>` → `DATA <total> <offset> <sha256>` followed
//!   by ≤[`CHUNK`]-byte data records from `offset`. Every delivered
//!   chunk is a restart marker: the client's buffer length *is* the
//!   offset it asks for on the next session.
//! * `PUTR <path> <total>` → `OFFSET <n>`, where `n` is read back from
//!   the durable `<path>.part` staging file (the server's journal for
//!   uploads — it lives in [`SimOs`](gridsec_testbed::os::SimOs), so it
//!   survives process death). The client streams chunks from `n`; each
//!   is appended durably on receipt. At `total` bytes the server
//!   promotes `.part` to the final path and replies `STORED <sha256>`.
//!   A repeat `PUTR` of an already-complete file short-circuits to
//!   `OFFSET <total>` → `STORED`, so retransmitted uploads are
//!   idempotent.
//!
//! Recovery contract: a torn connection or a kill at `xfer.get.chunk` /
//! `xfer.put.chunk` never loses acknowledged bytes and never duplicates
//! bytes — the resume offset is always derived from durable state (the
//! client buffer for GET, the `.part` file for PUT), and the final
//! digests prove end-to-end integrity.
//!
//! Tracing is client-side only (`xfer.get` / `xfer.put` spans,
//! `xfer.resume` events, `xfer.bytes_*` / `xfer.resumes` counters), so
//! flight-recorder dumps stay deterministic: server sessions run on
//! detached threads with no installed tracer.

use std::io::{Read, Write};

use gridsec_bignum::prime::EntropySource;
use gridsec_crypto::sha256::sha256;
use gridsec_testbed::faults::CrashPlan;
use gridsec_tls::handshake::TlsConfig;
use gridsec_tls::retry::{connect_with_retry, is_transient};
use gridsec_tls::stream::SecureStream;
use gridsec_tls::TlsError;
use gridsec_util::retry::RetryPolicy;
use gridsec_util::trace;

use crate::{FtpError, GridFtpServer};

/// Data-record size: every `CHUNK` bytes delivered is a restart marker.
pub const CHUNK: usize = 256;

/// Lowercase hex of a digest.
pub(crate) fn hex(d: &[u8]) -> String {
    d.iter().map(|b| format!("{b:02x}")).collect()
}

impl GridFtpServer {
    /// Serve one *resumable* session: handshake, then `GETR`/`PUTR`/
    /// `QUIT` until the peer closes. `plan` is consulted at the
    /// `xfer.get.chunk` and `xfer.put.chunk` injection points; a fired
    /// point kills this session's process mid-transfer (the connection
    /// dies with it), leaving recovery to the durable staging file and
    /// the client's restart markers.
    ///
    /// Blocking compatibility shim over the sans-io
    /// [`poll::ServerSession`](crate::poll::ServerSession) machine,
    /// which holds the restart-marker protocol logic.
    pub fn serve_resumable<S: Read + Write, E: EntropySource>(
        &mut self,
        stream: S,
        rng: &mut E,
        now: u64,
        plan: &CrashPlan,
    ) -> Result<u64, FtpError> {
        let mut machine = crate::poll::ServerSession::new(
            self,
            crate::poll::Dialect::Resumable,
            now,
            plan.clone(),
        );
        let mut stream = stream;
        let out = crate::poll::drive_blocking(&mut machine, &mut stream, rng);
        self.transfers += machine.completed();
        out
    }
}

pub(crate) fn parse_two(rest: &str) -> Option<(String, usize)> {
    let mut it = rest.split_whitespace();
    let path = it.next()?.to_string();
    let n: usize = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((path, n))
}

/// Outcome of a completed resumable transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XferOutcome {
    /// Fetched bytes (GET) — empty for PUT.
    pub bytes: Vec<u8>,
    /// Sessions that ended in a torn connection and were resumed.
    pub resumes: u32,
    /// Total secure sessions established (≥ 1).
    pub sessions: u32,
    /// Hex SHA-256 of the transferred file, verified end to end.
    pub sha256: String,
}

/// How one session attempt ended.
pub(crate) enum SessionErr {
    /// Transport tear — redial and resume from the restart marker.
    /// Which side saw the tear first (own lost write, peer reset, or
    /// EOF from a killed server) is scheduling-dependent, so the tear
    /// carries no detail: nothing nondeterministic may reach the trace.
    Torn,
    /// Deterministic refusal (security, protocol, file) — give up.
    Fatal(FtpError),
}

pub(crate) fn tls_err(e: TlsError) -> SessionErr {
    if is_transient(&e) {
        SessionErr::Torn
    } else {
        SessionErr::Fatal(FtpError::Channel(e.to_string()))
    }
}

/// Fetch `path` with resume-on-tear. `dial` produces a fresh raw stream
/// per attempt (sessions and handshake retries share its counter);
/// `max_sessions` bounds how many times the transfer may resume.
pub fn resumable_get<S, E, D>(
    config: &TlsConfig,
    rng: &mut E,
    policy: RetryPolicy,
    mut dial: D,
    path: &str,
    max_sessions: u32,
) -> Result<XferOutcome, FtpError>
where
    S: Read + Write,
    E: EntropySource,
    D: FnMut(u32) -> Result<S, TlsError>,
{
    let mut sp = trace::span_with("xfer.get", path);
    let mut buf: Vec<u8> = Vec::new();
    let mut expected_sha: Option<String> = None;
    let mut resumes = 0u32;
    let mut sessions = 0u32;
    loop {
        if sessions >= max_sessions {
            sp.fail("resume budget exhausted");
            return Err(FtpError::Channel("resume budget exhausted".to_string()));
        }
        sessions += 1;
        if sessions > 1 {
            resumes += 1;
            trace::event("xfer.resume", &format!("get {path} offset={}", buf.len()));
            trace::add("xfer.resumes", 1);
        }
        let mut stream = match connect_with_retry(config, rng, policy, &mut dial, |_, _| {}) {
            Ok((s, _)) => s,
            Err(e) if is_transient(&e) => continue,
            Err(e) => {
                sp.fail("connect failed");
                return Err(FtpError::Channel(e.to_string()));
            }
        };
        match get_once(&mut stream, path, &mut buf, &mut expected_sha) {
            Ok(()) => {
                let digest = hex(&sha256(&buf));
                if expected_sha.as_deref() != Some(digest.as_str()) {
                    sp.fail("digest mismatch");
                    return Err(FtpError::Protocol(
                        "transferred data does not match server digest".to_string(),
                    ));
                }
                let _ = stream.send(b"QUIT");
                let _ = stream.recv();
                trace::add("xfer.bytes_got", buf.len() as u64);
                return Ok(XferOutcome {
                    bytes: buf,
                    resumes,
                    sessions,
                    sha256: digest,
                });
            }
            Err(SessionErr::Torn) => continue,
            Err(SessionErr::Fatal(e)) => {
                sp.fail(&e.to_string());
                return Err(e);
            }
        }
    }
}

/// One GET session: greet, request from the restart marker, drain
/// chunks into `buf` until complete or the connection tears.
fn get_once<S: Read + Write>(
    stream: &mut SecureStream<S>,
    path: &str,
    buf: &mut Vec<u8>,
    expected_sha: &mut Option<String>,
) -> Result<(), SessionErr> {
    greet(stream)?;
    stream
        .send(format!("GETR {path} {}", buf.len()).as_bytes())
        .map_err(tls_err)?;
    let header = recv_text(stream)?;
    let mut it = header.split_whitespace();
    if it.next() != Some("DATA") {
        return Err(SessionErr::Fatal(FtpError::File(header)));
    }
    let total: usize = parse_field(it.next())?;
    let offset: usize = parse_field(it.next())?;
    let sha = it
        .next()
        .ok_or_else(|| SessionErr::Fatal(FtpError::Protocol("bad DATA header".to_string())))?
        .to_string();
    if offset != buf.len() {
        return Err(SessionErr::Fatal(FtpError::Protocol(
            "server ignored restart marker".to_string(),
        )));
    }
    match expected_sha {
        Some(prev) if *prev != sha => {
            return Err(SessionErr::Fatal(FtpError::Protocol(
                "file changed between resume sessions".to_string(),
            )))
        }
        Some(_) => {}
        None => *expected_sha = Some(sha),
    }
    while buf.len() < total {
        let chunk = stream.recv().map_err(tls_err)?;
        if buf.len() + chunk.len() > total {
            return Err(SessionErr::Fatal(FtpError::Protocol(
                "download overruns declared total".to_string(),
            )));
        }
        buf.extend_from_slice(&chunk);
    }
    Ok(())
}

/// Store `data` at `path` with resume-on-tear; the server's durable
/// `.part` staging file carries progress across tears and crashes.
pub fn resumable_put<S, E, D>(
    config: &TlsConfig,
    rng: &mut E,
    policy: RetryPolicy,
    mut dial: D,
    path: &str,
    data: &[u8],
    max_sessions: u32,
) -> Result<XferOutcome, FtpError>
where
    S: Read + Write,
    E: EntropySource,
    D: FnMut(u32) -> Result<S, TlsError>,
{
    let mut sp = trace::span_with("xfer.put", path);
    let local_sha = hex(&sha256(data));
    let mut resumes = 0u32;
    let mut sessions = 0u32;
    loop {
        if sessions >= max_sessions {
            sp.fail("resume budget exhausted");
            return Err(FtpError::Channel("resume budget exhausted".to_string()));
        }
        sessions += 1;
        if sessions > 1 {
            resumes += 1;
            trace::event("xfer.resume", &format!("put {path}"));
            trace::add("xfer.resumes", 1);
        }
        let mut stream = match connect_with_retry(config, rng, policy, &mut dial, |_, _| {}) {
            Ok((s, _)) => s,
            Err(e) if is_transient(&e) => continue,
            Err(e) => {
                sp.fail("connect failed");
                return Err(FtpError::Channel(e.to_string()));
            }
        };
        match put_once(&mut stream, path, data) {
            Ok(server_sha) => {
                if server_sha != local_sha {
                    sp.fail("digest mismatch");
                    return Err(FtpError::Protocol(
                        "server stored different bytes than sent".to_string(),
                    ));
                }
                let _ = stream.send(b"QUIT");
                let _ = stream.recv();
                trace::add("xfer.bytes_put", data.len() as u64);
                return Ok(XferOutcome {
                    bytes: Vec::new(),
                    resumes,
                    sessions,
                    sha256: local_sha,
                });
            }
            Err(SessionErr::Torn) => continue,
            Err(SessionErr::Fatal(e)) => {
                sp.fail(&e.to_string());
                return Err(e);
            }
        }
    }
}

/// One PUT session: greet, learn the durable offset, stream the
/// remainder, collect the `STORED` digest.
fn put_once<S: Read + Write>(
    stream: &mut SecureStream<S>,
    path: &str,
    data: &[u8],
) -> Result<String, SessionErr> {
    greet(stream)?;
    stream
        .send(format!("PUTR {path} {}", data.len()).as_bytes())
        .map_err(tls_err)?;
    let reply = recv_text(stream)?;
    let offset: usize = match reply.strip_prefix("OFFSET ") {
        Some(n) => parse_field(Some(n))?,
        None => return Err(SessionErr::Fatal(FtpError::File(reply))),
    };
    if offset > data.len() {
        return Err(SessionErr::Fatal(FtpError::Protocol(
            "server claims more bytes than sent".to_string(),
        )));
    }
    let mut pos = offset;
    while pos < data.len() {
        let end = (pos + CHUNK).min(data.len());
        stream.send(&data[pos..end]).map_err(tls_err)?;
        pos = end;
    }
    let done = recv_text(stream)?;
    match done.strip_prefix("STORED ") {
        Some(sha) => Ok(sha.to_string()),
        None => Err(SessionErr::Fatal(FtpError::File(done))),
    }
}

pub(crate) fn greet<S: Read + Write>(stream: &mut SecureStream<S>) -> Result<(), SessionErr> {
    let text = recv_text(stream)?;
    if text.starts_with("OK") {
        Ok(())
    } else {
        Err(SessionErr::Fatal(FtpError::Protocol(text)))
    }
}

pub(crate) fn recv_text<S: Read + Write>(
    stream: &mut SecureStream<S>,
) -> Result<String, SessionErr> {
    let msg = stream.recv().map_err(tls_err)?;
    Ok(String::from_utf8_lossy(&msg).into_owned())
}

pub(crate) fn parse_field<T: std::str::FromStr>(f: Option<&str>) -> Result<T, SessionErr> {
    f.and_then(|s| s.parse().ok())
        .ok_or_else(|| SessionErr::Fatal(FtpError::Protocol("bad numeric field".to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::{Dialect, SessionTask};
    use gridsec_authz::gridmap::GridMapFile;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::credential::Credential;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_testbed::net::{with_stream_pump, Network, SimStream, StreamPair};
    use gridsec_testbed::os::{FileMode, SimOs};
    use gridsec_testbed::sched::Scheduler;
    use gridsec_util::trace::{install, Tracer};
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::{Arc, Mutex};

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct World {
        trust: TrustStore,
        jane: Credential,
        server: Arc<Mutex<GridFtpServer>>,
    }

    fn world() -> World {
        let mut rng = ChaChaRng::from_seed_bytes(b"gridftp resume tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
        let host = ca.issue_host_identity(
            &mut rng,
            dn("/O=G/CN=host data1"),
            vec!["data1".into()],
            512,
            0,
            500_000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        let gridmap = GridMapFile::parse("\"/O=G/CN=Jane\" jdoe\n").unwrap();
        let server =
            GridFtpServer::new(SimOs::new(), "data1", host, trust.clone(), gridmap).unwrap();
        World {
            trust,
            jane,
            server: Arc::new(Mutex::new(server)),
        }
    }

    /// Deterministic test payload: `len` bytes, low-entropy but varied.
    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    /// A dialer that spawns one sans-io server task per dial over a
    /// seeded lossy pair. Each dial gets a distinct loss schedule
    /// (`base_seed + n`) and a distinct, deterministic server rng.
    fn dialer(
        w: &World,
        sched: &Rc<RefCell<Scheduler>>,
        net: &Network,
        plan: CrashPlan,
        base_seed: u64,
        drop: f64,
    ) -> impl FnMut(u32) -> Result<SimStream, TlsError> {
        let task = SessionTask {
            server: Arc::clone(&w.server),
            dialect: Dialect::Resumable,
            now: 100,
            plan,
        };
        let sched = Rc::clone(sched);
        let net = net.clone();
        let mut n = 0u64;
        move |_| {
            n += 1;
            let seed = base_seed.wrapping_add(n);
            let (a, b, _) = StreamPair::lossy(seed, drop);
            let mailbox = format!("resume-{base_seed:x}-{n}");
            task.spawn(
                &mut sched.borrow_mut(),
                &net,
                &mailbox,
                b,
                &seed.to_be_bytes(),
            );
            Ok(a)
        }
    }

    fn seed_file(w: &World, path: &str, data: &[u8]) {
        let s = w.server.lock().unwrap();
        let uid = s.os().uid_of("data1", "jdoe").unwrap();
        s.os()
            .write_file("data1", path, uid, FileMode::private(), data.to_vec())
            .unwrap();
    }

    fn run_get(w: &World, plan: CrashPlan, seed: u64, drop: f64, path: &str) -> XferOutcome {
        let net = Network::new();
        let sched = Rc::new(RefCell::new(Scheduler::new(&net)));
        let mut rng = ChaChaRng::from_seed_bytes(b"resume client");
        let config = TlsConfig::new(w.jane.clone(), w.trust.clone(), 100);
        let dial = dialer(w, &sched, &net, plan, seed, drop);
        let pump = Rc::clone(&sched);
        with_stream_pump(
            move || pump.borrow_mut().pump(),
            move || {
                resumable_get(&config, &mut rng, RetryPolicy::default(), dial, path, 64).unwrap()
            },
        )
    }

    fn run_put(
        w: &World,
        plan: CrashPlan,
        seed: u64,
        drop: f64,
        path: &str,
        data: &[u8],
    ) -> XferOutcome {
        let net = Network::new();
        let sched = Rc::new(RefCell::new(Scheduler::new(&net)));
        let mut rng = ChaChaRng::from_seed_bytes(b"resume client");
        let config = TlsConfig::new(w.jane.clone(), w.trust.clone(), 100);
        let dial = dialer(w, &sched, &net, plan, seed, drop);
        let pump = Rc::clone(&sched);
        with_stream_pump(
            move || pump.borrow_mut().pump(),
            move || {
                resumable_put(
                    &config,
                    &mut rng,
                    RetryPolicy::default(),
                    dial,
                    path,
                    data,
                    64,
                )
                .unwrap()
            },
        )
    }

    #[test]
    fn get_hash_equal_under_10pct_drop() {
        let w = world();
        let data = payload(4096);
        seed_file(&w, "/home/jdoe/big.dat", &data);
        let out = run_get(
            &w,
            CrashPlan::disabled(),
            0x9e_17,
            0.10,
            "/home/jdoe/big.dat",
        );
        assert_eq!(out.bytes, data);
        assert_eq!(out.sha256, hex(&sha256(&data)));
        // 4 KiB in 256-byte chunks over a 10% per-write loss stream
        // cannot complete in one session with this seed.
        assert!(out.resumes >= 1, "expected tears, got {}", out.resumes);
    }

    #[test]
    fn get_is_deterministic_for_a_seed() {
        let w1 = world();
        let w2 = world();
        let data = payload(4096);
        seed_file(&w1, "/home/jdoe/big.dat", &data);
        seed_file(&w2, "/home/jdoe/big.dat", &data);
        let a = run_get(
            &w1,
            CrashPlan::disabled(),
            0x9e_17,
            0.10,
            "/home/jdoe/big.dat",
        );
        let b = run_get(
            &w2,
            CrashPlan::disabled(),
            0x9e_17,
            0.10,
            "/home/jdoe/big.dat",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn put_hash_equal_under_10pct_drop() {
        let w = world();
        let data = payload(4096);
        let out = run_put(
            &w,
            CrashPlan::disabled(),
            0x5a_31,
            0.10,
            "/home/jdoe/up.dat",
            &data,
        );
        assert_eq!(out.sha256, hex(&sha256(&data)));
        assert!(out.resumes >= 1, "expected tears, got {}", out.resumes);
        let s = w.server.lock().unwrap();
        let uid = s.os().uid_of("data1", "jdoe").unwrap();
        let stored = s.os().read_file("data1", "/home/jdoe/up.dat", uid).unwrap();
        assert_eq!(stored, data, "no lost or duplicated bytes");
        // Staging file was promoted and removed.
        assert_eq!(
            s.os().file_len("data1", "/home/jdoe/up.dat.part").unwrap(),
            None
        );
    }

    #[test]
    fn get_resumes_after_injected_crash() {
        let w = world();
        let data = payload(1024);
        seed_file(&w, "/home/jdoe/f.dat", &data);
        let plan = CrashPlan::manual(0);
        plan.arm("xfer.get.chunk", 2); // die sending the second chunk
        let out = run_get(&w, plan.clone(), 0x77, 0.0, "/home/jdoe/f.dat");
        assert_eq!(out.bytes, data);
        assert_eq!(plan.crashes(), 1);
        assert_eq!(out.sessions, 2);
        assert_eq!(out.resumes, 1);
        assert!(plan
            .transcript()
            .iter()
            .any(|l| l.contains("point=xfer.get.chunk")));
    }

    #[test]
    fn put_resumes_from_durable_offset_after_crash() {
        let w = world();
        let data = payload(1024);
        let plan = CrashPlan::manual(0);
        plan.arm("xfer.put.chunk", 3); // die with 2 chunks durable
        let out = run_put(&w, plan.clone(), 0x78, 0.0, "/home/jdoe/g.dat", &data);
        assert_eq!(plan.crashes(), 1);
        assert_eq!(out.sessions, 2);
        let s = w.server.lock().unwrap();
        let uid = s.os().uid_of("data1", "jdoe").unwrap();
        let stored = s.os().read_file("data1", "/home/jdoe/g.dat", uid).unwrap();
        assert_eq!(stored, data, "resume must not lose or duplicate bytes");
        assert_eq!(
            s.os().file_len("data1", "/home/jdoe/g.dat.part").unwrap(),
            None
        );
    }

    #[test]
    fn repeat_put_of_completed_file_is_idempotent() {
        let w = world();
        let data = payload(700);
        run_put(
            &w,
            CrashPlan::disabled(),
            0x80,
            0.0,
            "/home/jdoe/h.dat",
            &data,
        );
        let again = run_put(
            &w,
            CrashPlan::disabled(),
            0x81,
            0.0,
            "/home/jdoe/h.dat",
            &data,
        );
        assert_eq!(again.sha256, hex(&sha256(&data)));
        assert_eq!(again.sessions, 1);
        let s = w.server.lock().unwrap();
        let uid = s.os().uid_of("data1", "jdoe").unwrap();
        assert_eq!(
            s.os().read_file("data1", "/home/jdoe/h.dat", uid).unwrap(),
            data
        );
    }

    #[test]
    fn transfer_spans_and_resume_events_reach_the_tracer() {
        let w = world();
        let data = payload(1024);
        seed_file(&w, "/home/jdoe/t.dat", &data);
        let plan = CrashPlan::manual(0);
        plan.arm("xfer.get.chunk", 2);
        let tracer = Tracer::new();
        let dump = {
            let _g = install(&tracer);
            run_get(&w, plan, 0x90, 0.0, "/home/jdoe/t.dat");
            tracer.dump()
        };
        assert!(dump.contains("xfer.get"), "missing span: {dump}");
        assert!(dump.contains("xfer.resume"), "missing event: {dump}");
        let counters = tracer.metrics().counters;
        assert_eq!(counters.get("xfer.bytes_got"), Some(&1024));
        assert_eq!(counters.get("xfer.resumes"), Some(&1));
    }
}
