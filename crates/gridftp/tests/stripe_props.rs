//! Property tests for stripe-range reassembly.
//!
//! The crash-recovery argument for striped transfers rests on
//! `merge_ranges` being a pure function of the *set* of completed
//! ranges: any partition of the file into stripe tasks, completed and
//! reported in any order, must merge back to byte-identical contents —
//! and any gap or overlap (a lost or doubled staging file) must be
//! rejected rather than silently mis-assembled.

use gridsec_gridftp::stripe::merge_ranges;
use gridsec_util::check::check;

/// Random partition of `[0, total)` into contiguous `(start, bytes)`
/// parts, then shuffled.
fn random_partition(g: &mut gridsec_util::check::Gen, data: &[u8]) -> Vec<(usize, Vec<u8>)> {
    let total = data.len();
    let mut parts = Vec::new();
    let mut start = 0usize;
    while start < total {
        let end = start + g.usize_in(1..total - start + 1);
        parts.push((start, data[start..end].to_vec()));
        start = end;
    }
    // Fisher–Yates shuffle: completion order must not matter.
    for i in (1..parts.len()).rev() {
        parts.swap(i, g.usize_in(0..i + 1));
    }
    parts
}

#[test]
fn any_partition_in_any_order_merges_byte_identically() {
    check("stripe_merge_partition", 256, |g| {
        let total = g.usize_in(0..2048);
        let data: Vec<u8> = (0..total).map(|_| g.u8()).collect();
        let parts = random_partition(g, &data);
        let merged = merge_ranges(total, &parts).expect("exact tiling merges");
        assert_eq!(merged, data, "merge must reproduce the file");
    });
}

#[test]
fn gaps_and_overlaps_are_rejected() {
    check("stripe_merge_gap_overlap", 256, |g| {
        let total = g.usize_in(2..2048);
        let data: Vec<u8> = (0..total).map(|_| g.u8()).collect();
        let parts = random_partition(g, &data);
        if g.bool() {
            // Gap: lose one staging file. (A single all-covering part
            // removed leaves the empty set, which is a 0-of-total gap.)
            let mut broken = parts.clone();
            broken.remove(g.usize_in(0..broken.len()));
            assert!(
                merge_ranges(total, &broken).is_err(),
                "missing range must not merge"
            );
        } else {
            // Overlap: double one staging file. A duplicated part can
            // never tile — the second copy restates covered bytes.
            let mut broken = parts.clone();
            let dup = broken[g.usize_in(0..broken.len())].clone();
            broken.push(dup);
            assert!(
                merge_ranges(total, &broken).is_err(),
                "overlapping range must not merge"
            );
        }
    });
}
