//! Differential property tests for the batch/precomputed modexp paths.
//!
//! Every acceleration added for handshake batching — the const-generic
//! fixed-limb kernels, fixed-base windowed tables, and the per-thread
//! `precomp` registry consulted by `mod_pow` — must be byte-identical
//! to the division-per-step reference kernel `mod_pow_classic` on
//! random operands: random bases (including `0`, `1`, and values at or
//! above the modulus), exponent widths from 1 bit to 2048 bits, and
//! both even- and odd-modulus edge cases. Each test seeds its own
//! operands through the `check` harness, so failures replay.

use gridsec_bignum::fixed::{biguint_to_limbs, limbs_to_biguint};
use gridsec_bignum::modular::{mod_pow, mod_pow_classic};
use gridsec_bignum::montgomery::Montgomery;
use gridsec_bignum::precomp::{
    self, register_fixed_base, register_modulus, FixedBaseTable, PrecompStats,
};
use gridsec_bignum::BigUint;
use gridsec_util::check::{check, Gen};

const CASES: u64 = 96;

/// Random value with exactly `bits` significant bits (`bits >= 1`).
fn with_bits(g: &mut Gen, bits: usize) -> BigUint {
    let top = &BigUint::one() << (bits - 1);
    let r = BigUint::from_bytes_be(&g.bytes(0..bits / 8 + 2));
    top.add_ref(&r.rem_ref(&top))
}

/// Random odd modulus occupying exactly `limbs` 64-bit limbs.
fn odd_modulus_with_limbs(g: &mut Gen, limbs: usize) -> BigUint {
    let mut bytes = g.bytes(8 * limbs..8 * limbs + 1);
    bytes[0] |= 0x80; // full limb count
    let last = bytes.len() - 1;
    bytes[last] |= 1; // odd
    BigUint::from_bytes_be(&bytes)
}

/// Random base mixing the interesting shapes: 0, 1, below the modulus,
/// and at-or-above the modulus (exercising the entry reduction).
fn base_for(g: &mut Gen, m: &BigUint) -> BigUint {
    match g.usize_in(0..6) {
        0 => BigUint::zero(),
        1 => BigUint::one(),
        2 => m.clone(),
        3 => m.add_ref(&BigUint::from_bytes_be(&g.bytes(1..9))),
        _ => BigUint::from_bytes_be(&g.bytes(0..m.to_bytes_be().len() + 1)),
    }
}

/// Exponent widths that cross every dispatch boundary: the `u64`
/// short-exponent path, each sliding-window size, and the 2048-bit cap
/// the fixed-base tables are registered for.
const EXP_BITS: &[usize] = &[1, 2, 17, 63, 64, 65, 96, 97, 256, 384, 385, 1024, 2048];

#[test]
fn fixed_limb_kernel_matches_classic() {
    check("fixed_limb_kernel_matches_classic", CASES, |g| {
        // 4 limbs = the DH test-group width, 8 limbs = RSA-512 moduli.
        let limbs = if g.bool() { 4 } else { 8 };
        let m = odd_modulus_with_limbs(g, limbs);
        let ctx = Montgomery::new_precomputed(&m).expect("odd modulus > 1");
        assert!(ctx.has_fixed_kernel(), "limb count {limbs} must be hot");
        let plain = Montgomery::new(&m).expect("odd modulus > 1");
        assert!(!plain.has_fixed_kernel());

        let base = base_for(g, &m);
        let bits = EXP_BITS[g.usize_in(0..EXP_BITS.len())];
        for exp in [with_bits(g, bits), BigUint::zero(), BigUint::one()] {
            let want = mod_pow_classic(&base, &exp, &m);
            assert_eq!(ctx.pow(&base, &exp), want, "fixed m={m} b={base} e={exp}");
            assert_eq!(plain.pow(&base, &exp), want, "dyn m={m} b={base} e={exp}");
        }
    });
}

#[test]
fn fixed_limb_kernel_other_widths_fall_back() {
    check("fixed_limb_kernel_other_widths_fall_back", CASES, |g| {
        let limbs = [1usize, 2, 3, 5, 7, 9, 16][g.usize_in(0..7)];
        let m = odd_modulus_with_limbs(g, limbs);
        let ctx = Montgomery::new_precomputed(&m).expect("odd modulus > 1");
        assert!(!ctx.has_fixed_kernel(), "width {limbs} has no fixed kernel");
        let base = base_for(g, &m);
        let bits = g.usize_in(1..200);
        let exp = with_bits(g, bits);
        assert_eq!(ctx.pow(&base, &exp), mod_pow_classic(&base, &exp, &m));
    });
}

#[test]
fn limb_conversion_round_trips() {
    check("limb_conversion_round_trips", CASES, |g| {
        let x = BigUint::from_bytes_be(&g.bytes(0..64));
        if x.limbs().len() <= 8 {
            let arr = biguint_to_limbs::<8>(&x).expect("fits 8 limbs");
            assert_eq!(limbs_to_biguint(&arr), x);
        } else {
            assert!(biguint_to_limbs::<8>(&x).is_none());
        }
    });
}

#[test]
fn fixed_base_table_matches_classic() {
    check("fixed_base_table_matches_classic", CASES, |g| {
        // Random width up to ~320 bits; force odd and non-trivial.
        let mut m = BigUint::from_bytes_be(&g.bytes(1..40));
        if m.is_even() {
            m = m.add_ref(&BigUint::one());
        }
        if m.is_one() {
            m = BigUint::from(97u64);
        }
        let base = base_for(g, &m);
        let max_bits = g.usize_in(1..512);
        match FixedBaseTable::build(&base, &m, max_bits) {
            None => assert!(
                base.rem_ref(&m).is_zero(),
                "build only refuses base ≡ 0 here (m={m} base={base})"
            ),
            Some(t) => {
                let bits = g.usize_in(1..max_bits + 1);
                let random = with_bits(g, bits);
                for exp in [random, BigUint::zero()] {
                    assert_eq!(
                        t.pow(&exp).expect("exponent within table width"),
                        mod_pow_classic(&base, &exp, &m),
                        "m={m} base={base} e={exp}"
                    );
                }
                // One bit past the table width: refuse, never wrap.
                assert!(t.pow(&(&BigUint::one() << max_bits)).is_none());
            }
        }
    });
}

#[test]
fn registered_mod_pow_matches_classic() {
    check("registered_mod_pow_matches_classic", CASES, |g| {
        precomp::clear();
        let limbs = if g.bool() { 4 } else { 8 };
        let m = odd_modulus_with_limbs(g, limbs);
        let gen = BigUint::from(2u64);
        assert!(register_fixed_base(&gen, &m, 2048));
        assert!(register_modulus(&m));

        let bits = EXP_BITS[g.usize_in(0..EXP_BITS.len())];
        let exp = with_bits(g, bits);
        // Registered base -> table path.
        assert_eq!(mod_pow(&gen, &exp, &m), mod_pow_classic(&gen, &exp, &m));
        // Unregistered base, registered modulus -> shared-context path.
        let base = base_for(g, &m);
        assert_eq!(mod_pow(&base, &exp, &m), mod_pow_classic(&base, &exp, &m));
        // Exponent wider than the table -> falls back to the context,
        // still identical.
        let wide_bits = 2049 + g.usize_in(0..64);
        let wide = with_bits(g, wide_bits);
        assert_eq!(mod_pow(&gen, &wide, &m), mod_pow_classic(&gen, &wide, &m));
        // Unrelated odd and even moduli are untouched by the registry.
        let mut other = BigUint::from_bytes_be(&g.bytes(1..20));
        if other.is_zero() || other.is_one() {
            other = BigUint::from(6u64);
        }
        assert_eq!(
            mod_pow(&base, &exp, &other),
            mod_pow_classic(&base, &exp, &other)
        );

        let stats = precomp::stats();
        assert!(stats.fixed_base_hits >= 1, "table must have served");
        assert!(stats.context_hits >= 1, "context must have served");
        precomp::clear();
        assert_eq!(precomp::stats(), PrecompStats::default());
    });
}

#[test]
fn exponent_width_sweep_1_to_2048_bits() {
    // Deterministic sweep across every width class on one hot modulus,
    // all three paths at once: registry (table + context), fixed-limb
    // kernel, dynamic kernel, classic reference.
    precomp::clear();
    let m = BigUint::from_hex("f3a5c1d9e7b38f214a6d5c8e9f0b1a2c3d4e5f60718293a4b5c6d7e8f9012347")
        .unwrap(); // 256 bits, odd -> 4 limbs
    let gen = BigUint::from(2u64);
    assert!(register_fixed_base(&gen, &m, 2048));
    assert!(register_modulus(&m));
    let ctx = Montgomery::new_precomputed(&m).unwrap();
    for bits in [1usize, 2, 3, 17, 64, 65, 96, 97, 384, 385, 1024, 2047, 2048] {
        // Both all-ones (densest windows) and top-bit-only (sparsest).
        let top = &BigUint::one() << (bits - 1);
        let ones = &(&top << 1) - &BigUint::one();
        for exp in [top, ones] {
            let want = mod_pow_classic(&gen, &exp, &m);
            assert_eq!(mod_pow(&gen, &exp, &m), want, "registry bits={bits}");
            assert_eq!(ctx.pow(&gen, &exp), want, "fixed-limb bits={bits}");
        }
    }
    precomp::clear();
}
