//! Property-based tests for `BigUint` arithmetic invariants.

use gridsec_bignum::modular::{mod_inv, mod_mul, mod_pow, mod_pow_classic};
use gridsec_bignum::montgomery::Montgomery;
use gridsec_bignum::BigUint;
use gridsec_util::check::{check, Gen};

const CASES: u64 = 256;

/// Generator: random BigUint up to ~256 bits, built from raw bytes.
fn biguint(g: &mut Gen) -> BigUint {
    BigUint::from_bytes_be(&g.bytes(0..32))
}

/// Generator: nonzero BigUint.
fn biguint_nonzero(g: &mut Gen) -> BigUint {
    let v = biguint(g);
    if v.is_zero() {
        BigUint::one()
    } else {
        v
    }
}

#[test]
fn add_commutes() {
    check("add_commutes", CASES, |g| {
        let (a, b) = (biguint(g), biguint(g));
        assert_eq!(&a + &b, &b + &a);
    });
}

#[test]
fn add_associates() {
    check("add_associates", CASES, |g| {
        let (a, b, c) = (biguint(g), biguint(g), biguint(g));
        assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    });
}

#[test]
fn add_sub_roundtrip() {
    check("add_sub_roundtrip", CASES, |g| {
        let (a, b) = (biguint(g), biguint(g));
        assert_eq!(&(&a + &b) - &b, a);
    });
}

#[test]
fn mul_commutes() {
    check("mul_commutes", CASES, |g| {
        let (a, b) = (biguint(g), biguint(g));
        assert_eq!(&a * &b, &b * &a);
    });
}

#[test]
fn mul_distributes() {
    check("mul_distributes", CASES, |g| {
        let (a, b, c) = (biguint(g), biguint(g), biguint(g));
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    });
}

#[test]
fn div_rem_invariant() {
    check("div_rem_invariant", CASES, |g| {
        let (a, b) = (biguint(g), biguint_nonzero(g));
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    });
}

#[test]
fn shift_is_mul_by_power_of_two() {
    check("shift_is_mul_by_power_of_two", CASES, |g| {
        let a = biguint(g);
        let s = g.usize_in(0..200);
        let shifted = &a << s;
        let pow = &BigUint::one() << s;
        assert_eq!(shifted, &a * &pow);
    });
}

#[test]
fn bytes_roundtrip() {
    check("bytes_roundtrip", CASES, |g| {
        let bytes = g.bytes(0..64);
        let v = BigUint::from_bytes_be(&bytes);
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
    });
}

#[test]
fn hex_roundtrip() {
    check("hex_roundtrip", CASES, |g| {
        let a = biguint(g);
        assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    });
}

#[test]
fn decimal_roundtrip() {
    check("decimal_roundtrip", CASES, |g| {
        let a = biguint(g);
        assert_eq!(BigUint::from_decimal(&a.to_decimal()).unwrap(), a);
    });
}

#[test]
fn gcd_divides_both() {
    check("gcd_divides_both", CASES, |g| {
        let (a, b) = (biguint_nonzero(g), biguint_nonzero(g));
        let gcd = a.gcd(&b);
        assert!(a.div_rem(&gcd).1.is_zero());
        assert!(b.div_rem(&gcd).1.is_zero());
    });
}

#[test]
fn mod_pow_product_rule() {
    check("mod_pow_product_rule", CASES, |g| {
        let a = biguint(g);
        let e1 = g.u64_in(0..1000);
        let e2 = g.u64_in(0..1000);
        let m = biguint_nonzero(g);
        // a^(e1+e2) = a^e1 * a^e2 (mod m)
        let m = if m.is_one() { BigUint::from(2u64) } else { m };
        let lhs = mod_pow(&a, &BigUint::from(e1 + e2), &m);
        let rhs = mod_mul(
            &mod_pow(&a, &BigUint::from(e1), &m),
            &mod_pow(&a, &BigUint::from(e2), &m),
            &m,
        );
        assert_eq!(lhs, rhs);
    });
}

#[test]
fn mod_inv_is_inverse() {
    check("mod_inv_is_inverse", CASES, |g| {
        let a = biguint_nonzero(g);
        // Invert modulo a prime so the inverse always exists when a % p != 0.
        let p = BigUint::from_decimal("170141183460469231731687303715884105727").unwrap();
        let a = a.rem_ref(&p);
        if !a.is_zero() {
            let inv = mod_inv(&a, &p).unwrap();
            assert_eq!(mod_mul(&a, &inv, &p), BigUint::one());
        }
    });
}

#[test]
fn montgomery_mod_pow_agrees_with_classic_window() {
    check(
        "montgomery_mod_pow_agrees_with_classic_window",
        CASES,
        |g| {
            let base = biguint(g);
            // Mix short (fast-path) and wide (sliding-window) exponents.
            let exp = if g.bool() {
                BigUint::from(g.u64())
            } else {
                BigUint::from_bytes_be(&g.bytes(8..24))
            };
            // Half the cases force an odd modulus (Montgomery dispatch),
            // half force an even one (classic fallback); both must agree
            // with the division-per-step reference kernel.
            let mut m = biguint_nonzero(g);
            let odd = g.bool();
            if odd != m.is_odd() {
                m = m.add_ref(&BigUint::one());
            }
            if m.is_zero() || m.is_one() {
                m = BigUint::from(if odd { 3u64 } else { 2u64 });
            }
            assert_eq!(
                mod_pow(&base, &exp, &m),
                mod_pow_classic(&base, &exp, &m),
                "base={base} exp={exp} m={m}"
            );
        },
    );
}

#[test]
fn montgomery_mod_pow_edge_cases() {
    check("montgomery_mod_pow_edge_cases", CASES, |g| {
        let mut m = biguint_nonzero(g);
        if m.is_even() {
            m = m.add_ref(&BigUint::one());
        }
        if m.is_one() {
            m = BigUint::from(3u64);
        }
        let ctx = Montgomery::new(&m).expect("odd modulus > 1");
        let base = biguint(g);
        // exp = 0 -> 1; exp = 1 -> base mod m; base = 0 -> 0; base = 1 -> 1.
        assert_eq!(ctx.pow(&base, &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.pow(&base, &BigUint::one()), base.rem_ref(&m));
        assert_eq!(
            ctx.pow(&BigUint::zero(), &biguint_nonzero(g)),
            BigUint::zero()
        );
        assert_eq!(ctx.pow(&BigUint::one(), &biguint(g)), BigUint::one());
    });
}

#[test]
fn cmp_consistent_with_sub() {
    check("cmp_consistent_with_sub", CASES, |g| {
        let (a, b) = (biguint(g), biguint(g));
        match a.cmp(&b) {
            std::cmp::Ordering::Less => assert!(a.checked_sub(&b).is_none()),
            _ => assert!(a.checked_sub(&b).is_some()),
        }
    });
}

#[test]
fn bit_len_matches_shift() {
    check("bit_len_matches_shift", CASES, |g| {
        let s = g.usize_in(0..300);
        let v = &BigUint::one() << s;
        assert_eq!(v.bit_len(), s + 1);
    });
}
