//! Property-based tests for `BigUint` arithmetic invariants.

use gridsec_bignum::modular::{mod_inv, mod_mul, mod_pow};
use gridsec_bignum::BigUint;
use proptest::prelude::*;

/// Strategy: random BigUint up to ~256 bits, built from raw bytes.
fn biguint() -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u8>(), 0..32).prop_map(|b| BigUint::from_bytes_be(&b))
}

/// Strategy: nonzero BigUint.
fn biguint_nonzero() -> impl Strategy<Value = BigUint> {
    biguint().prop_map(|v| if v.is_zero() { BigUint::one() } else { v })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_sub_roundtrip(a in biguint(), b in biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn div_rem_invariant(a in biguint(), b in biguint_nonzero()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_is_mul_by_power_of_two(a in biguint(), s in 0usize..200) {
        let shifted = &a << s;
        let pow = &BigUint::one() << s;
        prop_assert_eq!(shifted, &a * &pow);
    }

    #[test]
    fn bytes_roundtrip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let v = BigUint::from_bytes_be(&bytes);
        prop_assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
    }

    #[test]
    fn hex_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn decimal_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_decimal(&a.to_decimal()).unwrap(), a);
    }

    #[test]
    fn gcd_divides_both(a in biguint_nonzero(), b in biguint_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.div_rem(&g).1.is_zero());
        prop_assert!(b.div_rem(&g).1.is_zero());
    }

    #[test]
    fn mod_pow_product_rule(a in biguint(), e1 in 0u64..1000, e2 in 0u64..1000, m in biguint_nonzero()) {
        // a^(e1+e2) = a^e1 * a^e2 (mod m)
        let m = if m.is_one() { BigUint::from(2u64) } else { m };
        let lhs = mod_pow(&a, &BigUint::from(e1 + e2), &m);
        let rhs = mod_mul(
            &mod_pow(&a, &BigUint::from(e1), &m),
            &mod_pow(&a, &BigUint::from(e2), &m),
            &m,
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mod_inv_is_inverse(a in biguint_nonzero()) {
        // Invert modulo a prime so the inverse always exists when a % p != 0.
        let p = BigUint::from_decimal("170141183460469231731687303715884105727").unwrap();
        let a = a.rem_ref(&p);
        if !a.is_zero() {
            let inv = mod_inv(&a, &p).unwrap();
            prop_assert_eq!(mod_mul(&a, &inv, &p), BigUint::one());
        }
    }

    #[test]
    fn cmp_consistent_with_sub(a in biguint(), b in biguint()) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }

    #[test]
    fn bit_len_matches_shift(s in 0usize..300) {
        let v = &BigUint::one() << s;
        prop_assert_eq!(v.bit_len(), s + 1);
    }
}
