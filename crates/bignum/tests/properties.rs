//! Property-based tests for `BigUint` arithmetic invariants.

use gridsec_bignum::modular::{mod_inv, mod_mul, mod_pow};
use gridsec_bignum::BigUint;
use gridsec_util::check::{check, Gen};

const CASES: u64 = 256;

/// Generator: random BigUint up to ~256 bits, built from raw bytes.
fn biguint(g: &mut Gen) -> BigUint {
    BigUint::from_bytes_be(&g.bytes(0..32))
}

/// Generator: nonzero BigUint.
fn biguint_nonzero(g: &mut Gen) -> BigUint {
    let v = biguint(g);
    if v.is_zero() {
        BigUint::one()
    } else {
        v
    }
}

#[test]
fn add_commutes() {
    check("add_commutes", CASES, |g| {
        let (a, b) = (biguint(g), biguint(g));
        assert_eq!(&a + &b, &b + &a);
    });
}

#[test]
fn add_associates() {
    check("add_associates", CASES, |g| {
        let (a, b, c) = (biguint(g), biguint(g), biguint(g));
        assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    });
}

#[test]
fn add_sub_roundtrip() {
    check("add_sub_roundtrip", CASES, |g| {
        let (a, b) = (biguint(g), biguint(g));
        assert_eq!(&(&a + &b) - &b, a);
    });
}

#[test]
fn mul_commutes() {
    check("mul_commutes", CASES, |g| {
        let (a, b) = (biguint(g), biguint(g));
        assert_eq!(&a * &b, &b * &a);
    });
}

#[test]
fn mul_distributes() {
    check("mul_distributes", CASES, |g| {
        let (a, b, c) = (biguint(g), biguint(g), biguint(g));
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    });
}

#[test]
fn div_rem_invariant() {
    check("div_rem_invariant", CASES, |g| {
        let (a, b) = (biguint(g), biguint_nonzero(g));
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    });
}

#[test]
fn shift_is_mul_by_power_of_two() {
    check("shift_is_mul_by_power_of_two", CASES, |g| {
        let a = biguint(g);
        let s = g.usize_in(0..200);
        let shifted = &a << s;
        let pow = &BigUint::one() << s;
        assert_eq!(shifted, &a * &pow);
    });
}

#[test]
fn bytes_roundtrip() {
    check("bytes_roundtrip", CASES, |g| {
        let bytes = g.bytes(0..64);
        let v = BigUint::from_bytes_be(&bytes);
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
    });
}

#[test]
fn hex_roundtrip() {
    check("hex_roundtrip", CASES, |g| {
        let a = biguint(g);
        assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    });
}

#[test]
fn decimal_roundtrip() {
    check("decimal_roundtrip", CASES, |g| {
        let a = biguint(g);
        assert_eq!(BigUint::from_decimal(&a.to_decimal()).unwrap(), a);
    });
}

#[test]
fn gcd_divides_both() {
    check("gcd_divides_both", CASES, |g| {
        let (a, b) = (biguint_nonzero(g), biguint_nonzero(g));
        let gcd = a.gcd(&b);
        assert!(a.div_rem(&gcd).1.is_zero());
        assert!(b.div_rem(&gcd).1.is_zero());
    });
}

#[test]
fn mod_pow_product_rule() {
    check("mod_pow_product_rule", CASES, |g| {
        let a = biguint(g);
        let e1 = g.u64_in(0..1000);
        let e2 = g.u64_in(0..1000);
        let m = biguint_nonzero(g);
        // a^(e1+e2) = a^e1 * a^e2 (mod m)
        let m = if m.is_one() { BigUint::from(2u64) } else { m };
        let lhs = mod_pow(&a, &BigUint::from(e1 + e2), &m);
        let rhs = mod_mul(
            &mod_pow(&a, &BigUint::from(e1), &m),
            &mod_pow(&a, &BigUint::from(e2), &m),
            &m,
        );
        assert_eq!(lhs, rhs);
    });
}

#[test]
fn mod_inv_is_inverse() {
    check("mod_inv_is_inverse", CASES, |g| {
        let a = biguint_nonzero(g);
        // Invert modulo a prime so the inverse always exists when a % p != 0.
        let p = BigUint::from_decimal("170141183460469231731687303715884105727").unwrap();
        let a = a.rem_ref(&p);
        if !a.is_zero() {
            let inv = mod_inv(&a, &p).unwrap();
            assert_eq!(mod_mul(&a, &inv, &p), BigUint::one());
        }
    });
}

#[test]
fn cmp_consistent_with_sub() {
    check("cmp_consistent_with_sub", CASES, |g| {
        let (a, b) = (biguint(g), biguint(g));
        match a.cmp(&b) {
            std::cmp::Ordering::Less => assert!(a.checked_sub(&b).is_none()),
            _ => assert!(a.checked_sub(&b).is_some()),
        }
    });
}

#[test]
fn bit_len_matches_shift() {
    check("bit_len_matches_shift", CASES, |g| {
        let s = g.usize_in(0..300);
        let v = &BigUint::one() << s;
        assert_eq!(v.bit_len(), s + 1);
    });
}
