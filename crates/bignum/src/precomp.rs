//! Fixed-base precomputation and the per-thread modexp acceleration
//! registry.
//!
//! A VO-scale login wave repeats exponentiations against the *same*
//! small set of operands: the DH generator under the group modulus
//! (every keypair), the CA verify key (every chain), a server's CRT
//! primes (every signature). This module amortises that repetition two
//! ways:
//!
//! * [`FixedBaseTable`] — a windowed table of `base^(j·2^(w·i))` built
//!   once per hot `(base, modulus)` pair. Exponentiation then needs
//!   only table multiplies, no squarings: ~64 multiplies for a 256-bit
//!   exponent against ~340 for the sliding-window scan.
//! * A thread-local **registry** consulted by
//!   [`mod_pow`](crate::modular::mod_pow): callers register hot bases
//!   (→ fixed-base table) and hot moduli (→ cached
//!   [`Montgomery::new_precomputed`] context, fixed-limb kernel
//!   included), and every `mod_pow` anywhere in the thread that matches
//!   a registration takes the precomputed path. Everything else falls
//!   through to the stock kernels unchanged.
//!
//! Registration is explicit and so is teardown: [`clear`] (or the
//! paired `unregister_*` calls) restores baseline behaviour, which the
//! perf guard relies on when it measures the per-session baseline.
//! Results are bit-identical with or without registrations — pinned by
//! the differential property suite in `tests/precomp_props.rs`.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::montgomery::Montgomery;
use crate::BigUint;

/// Window width in bits for fixed-base tables. With `w = 4` a 256-bit
/// exponent costs at most 64 table multiplies; the table for one base
/// holds `ceil(bits/4) * 15` Montgomery-form entries (~30 KiB at 4
/// limbs).
const WINDOW: usize = 4;

/// Precomputed powers of one fixed base under one fixed odd modulus.
///
/// Entry `(i, j)` holds `base^(j << (WINDOW*i)) mod n` in Montgomery
/// form for `j in 1..=15`, so `base^e` for any exponent up to
/// `max_exp_bits` is the product of one entry per non-zero nibble of
/// `e` — multiplies only, no squarings.
pub struct FixedBaseTable {
    base: BigUint,
    mont: Montgomery,
    max_exp_bits: usize,
    /// `positions * 15` Montgomery-form values, position-major.
    entries: Vec<Vec<u64>>,
}

impl FixedBaseTable {
    /// Build a table for `base^e mod modulus`, `e` up to `max_exp_bits`
    /// bits.
    ///
    /// Returns `None` when the modulus is even or `<= 1` (no Montgomery
    /// context), when `base ≡ 0 (mod modulus)` (the table cannot
    /// represent zero — callers fall back to the generic path, which
    /// handles it), or when `max_exp_bits` is zero.
    pub fn build(base: &BigUint, modulus: &BigUint, max_exp_bits: usize) -> Option<FixedBaseTable> {
        let mont = Montgomery::new_precomputed(modulus)?;
        let reduced = base.rem_ref(modulus);
        if reduced.is_zero() || max_exp_bits == 0 {
            return None;
        }
        let positions = max_exp_bits.div_ceil(WINDOW);
        let mut entries: Vec<Vec<u64>> = Vec::with_capacity(positions * 15);
        // cur = base^(2^(WINDOW*pos)) in Montgomery form.
        let mut cur = mont.to_mont(&reduced);
        for _pos in 0..positions {
            entries.push(cur.clone()); // j = 1
            for _j in 2..=15 {
                let prev = entries.last().expect("pushed j=1 above");
                entries.push(mont.mont_mul(prev, &cur));
            }
            for _ in 0..WINDOW {
                cur = mont.mont_mul(&cur, &cur);
            }
        }
        Some(FixedBaseTable {
            base: base.clone(),
            mont,
            max_exp_bits,
            entries,
        })
    }

    /// The (unreduced) base this table was built for.
    pub fn base(&self) -> &BigUint {
        &self.base
    }

    /// The modulus this table was built for.
    pub fn modulus(&self) -> &BigUint {
        self.mont.modulus()
    }

    /// Largest exponent bit length the table covers.
    pub fn max_exp_bits(&self) -> usize {
        self.max_exp_bits
    }

    /// `base^exp mod modulus`, or `None` when `exp` is wider than the
    /// table (the caller falls back to the generic kernel).
    ///
    /// Matches [`mod_pow`](crate::modular::mod_pow) exactly on its
    /// domain: `exp = 0` yields 1 (the modulus is `> 1` by
    /// construction).
    pub fn pow(&self, exp: &BigUint) -> Option<BigUint> {
        if exp.bit_len() > self.max_exp_bits {
            return None;
        }
        if exp.is_zero() {
            return Some(BigUint::one());
        }
        let positions = self.max_exp_bits.div_ceil(WINDOW);
        let mut acc: Option<Vec<u64>> = None;
        for pos in 0..positions {
            let mut nibble = 0usize;
            for b in 0..WINDOW {
                if exp.bit(pos * WINDOW + b) {
                    nibble |= 1 << b;
                }
            }
            if nibble == 0 {
                continue;
            }
            let entry = &self.entries[pos * 15 + nibble - 1];
            acc = Some(match acc {
                None => entry.clone(),
                Some(a) => self.mont.mont_mul(&a, entry),
            });
        }
        let acc = acc.expect("non-zero exponent has a non-zero nibble");
        Some(self.mont.demont(&acc))
    }
}

/// Counters and sizes describing the calling thread's registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrecompStats {
    /// Registered fixed-base tables.
    pub tables: usize,
    /// Registered shared Montgomery contexts.
    pub contexts: usize,
    /// `mod_pow` calls served by a fixed-base table.
    pub fixed_base_hits: u64,
    /// `mod_pow` calls served by a shared context.
    pub context_hits: u64,
}

#[derive(Default)]
struct Registry {
    /// Keyed by (base limbs, modulus limbs), both as registered.
    tables: HashMap<(Vec<u64>, Vec<u64>), Rc<FixedBaseTable>>,
    /// Keyed by modulus limbs.
    contexts: HashMap<Vec<u64>, Rc<Montgomery>>,
    fixed_base_hits: u64,
    context_hits: u64,
}

thread_local! {
    /// Fast emptiness flag so an empty registry costs one `Cell` read
    /// per `mod_pow`.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
}

fn refresh_active(r: &Registry) {
    ACTIVE.with(|a| a.set(!r.tables.is_empty() || !r.contexts.is_empty()));
}

/// Register a fixed-base table for `(base, modulus)` covering exponents
/// up to `max_exp_bits` bits. Returns `false` (and registers nothing)
/// for operands a table cannot represent — even or trivial moduli,
/// `base ≡ 0` — in which case `mod_pow` simply keeps its generic path.
///
/// Idempotent: re-registering the same pair with the same or smaller
/// width reuses the existing table; a wider request rebuilds it.
pub fn register_fixed_base(base: &BigUint, modulus: &BigUint, max_exp_bits: usize) -> bool {
    let key = (base.limbs().to_vec(), modulus.limbs().to_vec());
    let existing = REGISTRY.with(|r| {
        r.borrow()
            .tables
            .get(&key)
            .map(|t| t.max_exp_bits() >= max_exp_bits)
    });
    if existing == Some(true) {
        return true;
    }
    // Build outside the registry borrow: table construction runs the
    // Montgomery kernel, and keeping the borrow scope tight keeps the
    // module trivially re-entrant.
    let Some(table) = FixedBaseTable::build(base, modulus, max_exp_bits) else {
        return false;
    };
    REGISTRY.with(|r| {
        let mut r = r.borrow_mut();
        r.tables.insert(key, Rc::new(table));
        refresh_active(&r);
    });
    true
}

/// Drop the fixed-base table for `(base, modulus)`, if any.
pub fn unregister_fixed_base(base: &BigUint, modulus: &BigUint) {
    let key = (base.limbs().to_vec(), modulus.limbs().to_vec());
    REGISTRY.with(|r| {
        let mut r = r.borrow_mut();
        r.tables.remove(&key);
        refresh_active(&r);
    });
}

/// Register a shared Montgomery context (fixed-limb kernel included
/// when the width allows) for `modulus`, so every `mod_pow` against it
/// skips the per-call context build. Returns `false` for even or
/// trivial moduli. Idempotent.
pub fn register_modulus(modulus: &BigUint) -> bool {
    let key = modulus.limbs().to_vec();
    if REGISTRY.with(|r| r.borrow().contexts.contains_key(&key)) {
        return true;
    }
    let Some(ctx) = Montgomery::new_precomputed(modulus) else {
        return false;
    };
    REGISTRY.with(|r| {
        let mut r = r.borrow_mut();
        r.contexts.insert(key, Rc::new(ctx));
        refresh_active(&r);
    });
    true
}

/// Drop the shared context for `modulus`, if any.
pub fn unregister_modulus(modulus: &BigUint) {
    REGISTRY.with(|r| {
        let mut r = r.borrow_mut();
        r.contexts.remove(modulus.limbs());
        refresh_active(&r);
    });
}

/// Drop every registration and reset the hit counters, restoring
/// baseline `mod_pow` behaviour for this thread.
pub fn clear() {
    REGISTRY.with(|r| {
        let mut r = r.borrow_mut();
        *r = Registry::default();
        refresh_active(&r);
    });
}

/// Snapshot of this thread's registry sizes and hit counters.
pub fn stats() -> PrecompStats {
    REGISTRY.with(|r| {
        let r = r.borrow();
        PrecompStats {
            tables: r.tables.len(),
            contexts: r.contexts.len(),
            fixed_base_hits: r.fixed_base_hits,
            context_hits: r.context_hits,
        }
    })
}

/// Registry lookup for [`mod_pow`](crate::modular::mod_pow): serve
/// `base^exp mod modulus` from a registered table or context, or
/// `None` to fall through to the generic kernels.
///
/// The caller has already handled `modulus <= 1` and `exp = 0`;
/// registered moduli are odd and `> 1`, so both precomputed paths
/// agree with the generic ones on everything that reaches here.
pub(crate) fn lookup_pow(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> Option<BigUint> {
    if !ACTIVE.with(|a| a.get()) {
        return None;
    }
    REGISTRY.with(|r| {
        let table = {
            let reg = r.borrow();
            reg.tables
                .get(&(base.limbs().to_vec(), modulus.limbs().to_vec()))
                .cloned()
        };
        if let Some(t) = table {
            if let Some(v) = t.pow(exp) {
                r.borrow_mut().fixed_base_hits += 1;
                return Some(v);
            }
        }
        let ctx = r.borrow().contexts.get(modulus.limbs()).cloned();
        if let Some(ctx) = ctx {
            r.borrow_mut().context_hits += 1;
            return Some(ctx.pow(base, exp));
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::{mod_pow, mod_pow_classic};

    fn n(s: &str) -> BigUint {
        BigUint::from_decimal(s).unwrap()
    }

    #[test]
    fn table_matches_classic_kernel() {
        let m = n("1000000007");
        let g = n("5");
        let t = FixedBaseTable::build(&g, &m, 64).unwrap();
        for e in ["0", "1", "2", "15", "16", "65537", "999999999999"] {
            let e = n(e);
            assert_eq!(t.pow(&e).unwrap(), mod_pow_classic(&g, &e, &m), "e={e}");
        }
        // Exponent wider than the table: caller must fall back.
        assert!(t.pow(&(&BigUint::one() << 64)).is_none());
    }

    #[test]
    fn build_rejects_degenerate_inputs() {
        assert!(FixedBaseTable::build(&n("5"), &n("16"), 64).is_none()); // even
        assert!(FixedBaseTable::build(&n("5"), &BigUint::one(), 64).is_none());
        assert!(FixedBaseTable::build(&BigUint::zero(), &n("97"), 64).is_none());
        assert!(FixedBaseTable::build(&n("97"), &n("97"), 64).is_none()); // base ≡ 0
        assert!(FixedBaseTable::build(&n("5"), &n("97"), 0).is_none());
    }

    #[test]
    fn registry_serves_and_clears() {
        clear();
        let m = n("1000000007");
        let g = n("2");
        assert!(register_fixed_base(&g, &m, 128));
        assert!(register_modulus(&m));
        let before = stats();
        assert_eq!((before.tables, before.contexts), (1, 1));

        let e = n("123456789");
        assert_eq!(mod_pow(&g, &e, &m), mod_pow_classic(&g, &e, &m));
        // A different base under the registered modulus takes the
        // shared-context path.
        assert_eq!(mod_pow(&n("7"), &e, &m), mod_pow_classic(&n("7"), &e, &m));
        let after = stats();
        assert_eq!(after.fixed_base_hits, 1);
        assert_eq!(after.context_hits, 1);

        clear();
        assert_eq!(stats(), PrecompStats::default());
    }

    #[test]
    fn degenerate_registrations_are_refused() {
        clear();
        assert!(!register_fixed_base(&n("2"), &n("16"), 64));
        assert!(!register_modulus(&n("16")));
        assert!(!register_modulus(&BigUint::one()));
        assert_eq!(stats().tables + stats().contexts, 0);
        // And mod_pow still works on those operands via the fallback.
        assert_eq!(mod_pow(&n("7"), &n("5"), &n("16")), n("7"));
    }
}
