//! Montgomery-form modular arithmetic for odd moduli.
//!
//! [`Montgomery`] precomputes everything `base^exp mod n` needs so the
//! hot loop is pure word-level CIOS multiplication — no division after
//! every square/multiply, unlike [`crate::modular::mod_pow_classic`].
//! One conversion into Montgomery form on entry and one out on exit
//! amortize across the whole exponentiation.
//!
//! The exponent scan is a sliding window sized to the exponent: short
//! exponents (anything fitting in a `u64`, e.g. the RSA verify
//! exponents 3 and 65537) take a plain square-and-multiply path with no
//! table at all, while full-width RSA/DH exponents use an odd-powers
//! table of at most 2^(w-1) entries.

use crate::fixed::FixedMont;
use crate::BigUint;

/// Width-specialised CIOS kernel attached to a context built with
/// [`Montgomery::new_precomputed`]; contexts from [`Montgomery::new`]
/// carry `None` and keep the dynamic kernel.
enum FixedKernel {
    /// 4-limb operands: the 256-bit DH test group, RSA-512 CRT primes.
    F4(FixedMont<4>),
    /// 8-limb operands: 512-bit RSA moduli.
    F8(FixedMont<8>),
}

/// Precomputed Montgomery context for a fixed odd modulus `n > 1`.
///
/// With `k` limbs and `R = 2^(64k)`, the context stores `-n^-1 mod 2^64`
/// and `R^2 mod n`; a CIOS multiply maps `(aR, bR) -> abR mod n` without
/// any long division.
pub struct Montgomery {
    modulus: BigUint,
    /// Modulus limbs, little endian, length `k` (no trailing zeros).
    n: Vec<u64>,
    /// `-n[0]^-1 mod 2^64`.
    n0inv: u64,
    /// `R^2 mod n`, padded to `k` limbs; multiplying by it converts into
    /// Montgomery form.
    rr: Vec<u64>,
    /// Fixed-limb kernel for the hot widths (see [`crate::fixed`]).
    kernel: Option<FixedKernel>,
}

impl Montgomery {
    /// Build a context, or `None` when the modulus is even or `<= 1`
    /// (Montgomery reduction needs `gcd(n, 2^64) = 1`).
    pub fn new(modulus: &BigUint) -> Option<Montgomery> {
        if modulus.is_zero() || modulus.is_one() || modulus.is_even() {
            return None;
        }
        let n: Vec<u64> = modulus.limbs().to_vec();
        let k = n.len();
        // Newton–Hensel lifting: each step doubles the number of correct
        // low bits of n[0]^-1 mod 2^64; n[0] is odd so n[0] itself is
        // correct to 3 bits and six doublings exceed 64.
        let mut inv: u64 = n[0];
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        let rr_big = (&BigUint::one() << (128 * k)).rem_ref(modulus);
        let mut rr = rr_big.limbs().to_vec();
        rr.resize(k, 0);
        Some(Montgomery {
            modulus: modulus.clone(),
            n,
            n0inv: inv.wrapping_neg(),
            rr,
            kernel: None,
        })
    }

    /// Build a context intended to be cached and reused across many
    /// exponentiations: same parameters as [`Montgomery::new`], plus a
    /// const-generic fixed-limb kernel (see [`crate::fixed`]) when the
    /// modulus is one of the hot widths (4 or 8 limbs). Other widths
    /// keep the dynamic kernel. Results are bit-identical either way.
    pub fn new_precomputed(modulus: &BigUint) -> Option<Montgomery> {
        let mut ctx = Montgomery::new(modulus)?;
        ctx.kernel = match ctx.n.len() {
            4 => FixedMont::<4>::new(&ctx.n, ctx.n0inv, &ctx.rr).map(FixedKernel::F4),
            8 => FixedMont::<8>::new(&ctx.n, ctx.n0inv, &ctx.rr).map(FixedKernel::F8),
            _ => None,
        };
        Some(ctx)
    }

    /// The modulus this context was built for.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Whether this context dispatches to a fixed-limb kernel.
    pub fn has_fixed_kernel(&self) -> bool {
        self.kernel.is_some()
    }

    /// `base^exp mod n` with the same semantics as
    /// [`crate::modular::mod_pow`] for this modulus.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one(); // n > 1, so 1 mod n = 1
        }
        let base = base.rem_ref(&self.modulus);
        if base.is_zero() {
            return BigUint::zero();
        }
        match &self.kernel {
            Some(FixedKernel::F4(f)) => return f.pow(&base, exp),
            Some(FixedKernel::F8(f)) => return f.pow(&base, exp),
            None => {}
        }
        let mut bm = base.limbs().to_vec();
        bm.resize(self.n.len(), 0);
        let bm = self.mul(&bm, &self.rr); // into Montgomery form
        let acc = match exp.to_u64() {
            // Short-exponent fast path: plain square-and-multiply, no
            // table. Covers the RSA verify exponents (3, 65537).
            Some(e) => self.pow_u64(&bm, e),
            None => self.pow_window(&bm, exp),
        };
        // Out of Montgomery form: multiply by literal 1.
        let mut one = vec![0u64; self.n.len()];
        one[0] = 1;
        BigUint::from_limbs(self.mul(&acc, &one))
    }

    /// Convert `x < n` into Montgomery form (`k` limbs).
    pub(crate) fn to_mont(&self, x: &BigUint) -> Vec<u64> {
        let mut xm = x.limbs().to_vec();
        xm.resize(self.n.len(), 0);
        self.mont_mul(&xm, &self.rr)
    }

    /// Convert a Montgomery-form value back to a canonical [`BigUint`].
    pub(crate) fn demont(&self, m: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.n.len()];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(m, &one))
    }

    /// Montgomery multiply on `k`-limb slices, routed through the fixed
    /// kernel when one is attached. Used by the fixed-base table in
    /// [`crate::precomp`].
    pub(crate) fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        match &self.kernel {
            Some(FixedKernel::F4(f)) => f.mul_slices(a, b),
            Some(FixedKernel::F8(f)) => f.mul_slices(a, b),
            None => self.mul(a, b),
        }
    }

    /// Left-to-right binary exponentiation for `e >= 1` fitting a word.
    fn pow_u64(&self, bm: &[u64], e: u64) -> Vec<u64> {
        let mut acc = bm.to_vec();
        for i in (0..63 - e.leading_zeros() as usize).rev() {
            acc = self.mul(&acc, &acc);
            if (e >> i) & 1 == 1 {
                acc = self.mul(&acc, bm);
            }
        }
        acc
    }

    /// Sliding-window exponentiation with an odd-powers table sized to
    /// the exponent's bit length.
    fn pow_window(&self, bm: &[u64], exp: &BigUint) -> Vec<u64> {
        let bits = exp.bit_len();
        let w = match bits {
            0..=96 => 3,
            97..=384 => 4,
            _ => 5,
        };
        // table[t] = base^(2t+1) in Montgomery form.
        let bsq = self.mul(bm, bm);
        let mut table = Vec::with_capacity(1 << (w - 1));
        table.push(bm.to_vec());
        for t in 1..(1 << (w - 1)) {
            let prev: &Vec<u64> = &table[t - 1];
            table.push(self.mul(prev, &bsq));
        }

        let mut acc: Option<Vec<u64>> = None;
        let mut i = bits as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                let a = acc.expect("window scan starts on a set bit");
                acc = Some(self.mul(&a, &a));
                i -= 1;
                continue;
            }
            // Greedily take the longest window ending on a set bit.
            let mut j = (i - w as isize + 1).max(0);
            while !exp.bit(j as usize) {
                j += 1;
            }
            let mut val = 0usize;
            for b in (j..=i).rev() {
                val = (val << 1) | exp.bit(b as usize) as usize;
            }
            let width = (i - j + 1) as usize;
            acc = Some(match acc {
                None => table[val >> 1].clone(),
                Some(mut a) => {
                    for _ in 0..width {
                        a = self.mul(&a, &a);
                    }
                    self.mul(&a, &table[val >> 1])
                }
            });
            i = j - 1;
        }
        acc.expect("exponent is non-zero")
    }

    /// CIOS Montgomery multiply: `(aR, bR) -> abR mod n`.
    ///
    /// Both inputs are `k` limbs and `< n`; the interleaved reduction
    /// keeps the accumulator under `2n`, so a single conditional
    /// subtraction at the end suffices.
    fn mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.n.len();
        let mut t = vec![0u64; k + 2];
        for &bi in b {
            // t += a * bi
            let mut carry = 0u64;
            for j in 0..k {
                let v = t[j] as u128 + (a[j] as u128) * (bi as u128) + carry as u128;
                t[j] = v as u64;
                carry = (v >> 64) as u64;
            }
            let v = t[k] as u128 + carry as u128;
            t[k] = v as u64;
            t[k + 1] = (v >> 64) as u64;

            // t = (t + m*n) / 2^64 with m chosen so t becomes divisible.
            let m = t[0].wrapping_mul(self.n0inv);
            let v = t[0] as u128 + (m as u128) * (self.n[0] as u128);
            let mut carry = (v >> 64) as u64;
            for j in 1..k {
                let v = t[j] as u128 + (m as u128) * (self.n[j] as u128) + carry as u128;
                t[j - 1] = v as u64;
                carry = (v >> 64) as u64;
            }
            let v = t[k] as u128 + carry as u128;
            t[k - 1] = v as u64;
            t[k] = t[k + 1] + ((v >> 64) as u64);
            t[k + 1] = 0;
        }
        let mut out = t[..k].to_vec();
        if t[k] != 0 || ge(&out, &self.n) {
            sub_in_place(&mut out, &self.n);
        }
        out
    }
}

/// `a >= b` on equal-length little-endian limb slices.
fn ge(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a -= b` on equal-length little-endian limb slices; `a >= b` holds.
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (ai, &bi) in a.iter_mut().zip(b) {
        let (d1, b1) = ai.overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *ai = d2;
        borrow = (b1 | b2) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::mod_pow_classic;

    fn n(s: &str) -> BigUint {
        BigUint::from_decimal(s).unwrap()
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(Montgomery::new(&BigUint::zero()).is_none());
        assert!(Montgomery::new(&BigUint::one()).is_none());
        assert!(Montgomery::new(&n("65536")).is_none());
        assert!(Montgomery::new(&n("65537")).is_some());
    }

    #[test]
    fn agrees_with_classic_on_fixed_cases() {
        let m = n("1000000007");
        let ctx = Montgomery::new(&m).unwrap();
        for (b, e) in [("2", "10"), ("3", "1000000006"), ("999999999", "12345")] {
            assert_eq!(
                ctx.pow(&n(b), &n(e)),
                mod_pow_classic(&n(b), &n(e), &m),
                "b={b} e={e}"
            );
        }
    }

    #[test]
    fn agrees_with_classic_on_wide_operands() {
        let m = (&BigUint::one() << 127) - &BigUint::one();
        let ctx = Montgomery::new(&m).unwrap();
        let base = BigUint::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        // Exponent wider than 64 bits drives the sliding-window path.
        let exp = BigUint::from_hex("ffeeddccbbaa99887766554433221100ff").unwrap();
        assert_eq!(ctx.pow(&base, &exp), mod_pow_classic(&base, &exp, &m));
    }

    #[test]
    fn edge_cases_match_mod_pow_semantics() {
        let m = n("97");
        let ctx = Montgomery::new(&m).unwrap();
        assert_eq!(ctx.pow(&n("5"), &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.pow(&BigUint::zero(), &n("5")), BigUint::zero());
        assert_eq!(ctx.pow(&n("97"), &n("5")), BigUint::zero());
        assert_eq!(ctx.pow(&n("98"), &n("1")), BigUint::one());
    }
}
