//! Modular arithmetic: exponentiation, inverse, and helpers.
//!
//! These routines back RSA key generation/signing and finite-field
//! Diffie–Hellman in `gridsec-crypto`.

use crate::montgomery::Montgomery;
use crate::BigUint;

/// `base^exp mod modulus`.
///
/// When the calling thread has registered `(base, modulus)` or
/// `modulus` in the [`crate::precomp`] registry, the call is served
/// from the precomputed fixed-base table or shared Montgomery context
/// (identical results, no per-call setup). Otherwise odd moduli
/// (every RSA and DH modulus in this workspace) take the Montgomery
/// CIOS kernel in [`crate::montgomery`]: one conversion in and out,
/// division-free multiplies in between, and an exponent scan sized to
/// the exponent. Even moduli fall back to the classic
/// division-per-step window kernel, [`mod_pow_classic`]. All paths
/// produce identical results.
///
/// Panics if `modulus` is zero. `x mod 1` is zero for all `x`.
pub fn mod_pow(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero(), "mod_pow with zero modulus");
    if modulus.is_one() {
        return BigUint::zero();
    }
    if exp.is_zero() {
        return BigUint::one();
    }
    if let Some(hit) = crate::precomp::lookup_pow(base, exp, modulus) {
        return hit;
    }
    match Montgomery::new(modulus) {
        Some(ctx) => ctx.pow(base, exp),
        None => mod_pow_classic(base, exp, modulus),
    }
}

/// `base^exp mod modulus` using 4-bit fixed-window exponentiation with
/// a long division after every square and multiply.
///
/// This is the pre-Montgomery kernel, kept as the differential-testing
/// reference, the even-modulus fallback, and the baseline the perf
/// guard in `scripts/verify.sh` measures the CIOS kernel against. The
/// power table is sized to the largest window the exponent actually
/// uses, so short exponents (3, 65537) no longer precompute all 16
/// entries.
///
/// Panics if `modulus` is zero. `x mod 1` is zero for all `x`.
pub fn mod_pow_classic(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero(), "mod_pow with zero modulus");
    if modulus.is_one() {
        return BigUint::zero();
    }
    if exp.is_zero() {
        return BigUint::one();
    }
    let base = base.rem_ref(modulus);
    if base.is_zero() {
        return BigUint::zero();
    }

    // Split the exponent into 4-bit windows, least significant first.
    let windows = exp.bit_len().div_ceil(4);
    let mut nibbles = vec![0usize; windows];
    for (w, nibble) in nibbles.iter_mut().enumerate() {
        for b in 0..4 {
            if exp.bit(w * 4 + b) {
                *nibble |= 1 << b;
            }
        }
    }

    // Precompute base^0..base^max_nibble — no further: an exponent like
    // 65537 (windows 1,0,0,0,1) only ever multiplies by base^1.
    let max_nibble = nibbles.iter().copied().max().unwrap_or(0);
    let mut table = Vec::with_capacity(max_nibble + 1);
    table.push(BigUint::one());
    for i in 1..=max_nibble {
        let prev: &BigUint = table.last().expect("table starts non-empty");
        table.push(if i == 1 {
            base.clone()
        } else {
            prev.mul_ref(&base).rem_ref(modulus)
        });
    }

    // Process the windows most significant first.
    let mut acc = BigUint::one();
    for &nibble in nibbles.iter().rev() {
        if !acc.is_one() {
            for _ in 0..4 {
                acc = acc.square().rem_ref(modulus);
            }
        }
        if nibble != 0 {
            acc = acc.mul_ref(&table[nibble]).rem_ref(modulus);
        }
    }
    acc
}

/// Modular multiplicative inverse: the `x` with `a * x ≡ 1 (mod m)`, or
/// `None` if `gcd(a, m) != 1`.
///
/// Uses the iterative extended Euclidean algorithm with signed tracking
/// implemented via (value, sign) pairs to stay within unsigned arithmetic.
pub fn mod_inv(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    let mut r0 = m.clone();
    let mut r1 = a.rem_ref(m);
    if r1.is_zero() {
        return None;
    }
    // Coefficients for `a` only: t0, t1 with signs (true = negative).
    let mut t0 = (BigUint::zero(), false);
    let mut t1 = (BigUint::one(), false);

    while !r1.is_zero() {
        let (q, r) = r0.div_rem(&r1);
        r0 = std::mem::replace(&mut r1, r);
        // t_next = t0 - q * t1 (signed)
        let qt1 = q.mul_ref(&t1.0);
        let t_next = signed_sub(&t0, &(qt1, t1.1));
        t0 = std::mem::replace(&mut t1, t_next);
    }
    if !r0.is_one() {
        return None; // not coprime
    }
    // Normalize t0 into [0, m).
    let (val, neg) = t0;
    let val = val.rem_ref(m);
    Some(if neg && !val.is_zero() {
        m.sub_ref(&val)
    } else {
        val
    })
}

/// Signed subtraction on (magnitude, is_negative) pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with same-sign operands: magnitude subtraction.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub_ref(&b.0), false)
            } else {
                (b.0.sub_ref(&a.0), true)
            }
        }
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub_ref(&a.0), false)
            } else {
                (a.0.sub_ref(&b.0), true)
            }
        }
        // (-a) - b = -(a + b); a - (-b) = a + b.
        (true, false) => (a.0.add_ref(&b.0), true),
        (false, true) => (a.0.add_ref(&b.0), false),
    }
}

/// `(a * b) mod m` convenience helper.
pub fn mod_mul(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    a.mul_ref(b).rem_ref(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> BigUint {
        BigUint::from_decimal(s).unwrap()
    }

    #[test]
    fn mod_pow_small_cases() {
        assert_eq!(mod_pow(&n("2"), &n("10"), &n("1000")), n("24"));
        assert_eq!(mod_pow(&n("3"), &n("0"), &n("7")), n("1"));
        assert_eq!(mod_pow(&n("0"), &n("5"), &n("7")), n("0"));
        assert_eq!(mod_pow(&n("5"), &n("5"), &n("1")), n("0"));
    }

    #[test]
    fn mod_pow_fermat_little() {
        // a^(p-1) ≡ 1 mod p for prime p, a not divisible by p.
        let p = n("1000000007");
        for a in ["2", "3", "123456", "999999999"] {
            assert_eq!(mod_pow(&n(a), &n("1000000006"), &p), BigUint::one());
        }
    }

    #[test]
    fn mod_pow_large() {
        // Check against a value computed with Python pow():
        // pow(0xdeadbeef, 0xcafebabe, (1<<127)-1)
        let base = BigUint::from_hex("deadbeef").unwrap();
        let exp = BigUint::from_hex("cafebabe").unwrap();
        let m = (&BigUint::one() << 127) - &BigUint::one();
        let got = mod_pow(&base, &exp, &m);
        // Verify multiplicativity instead of a hardcoded value:
        // base^(e1+e2) == base^e1 * base^e2 (mod m)
        let e1 = BigUint::from_hex("cafe0000").unwrap();
        let e2 = BigUint::from_hex("babe").unwrap();
        let lhs = mod_pow(&base, &(&e1 + &e2), &m);
        let rhs = mod_mul(&mod_pow(&base, &e1, &m), &mod_pow(&base, &e2, &m), &m);
        assert_eq!(lhs, rhs);
        assert!(got < m);
    }

    #[test]
    fn mod_inv_basic() {
        let inv = mod_inv(&n("3"), &n("11")).unwrap();
        assert_eq!(inv, n("4")); // 3*4 = 12 ≡ 1 mod 11
        assert_eq!(mod_inv(&n("10"), &n("11")).unwrap(), n("10"));
    }

    #[test]
    fn mod_inv_not_coprime() {
        assert_eq!(mod_inv(&n("6"), &n("9")), None);
        assert_eq!(mod_inv(&n("0"), &n("7")), None);
        assert_eq!(mod_inv(&n("5"), &n("1")), None);
    }

    #[test]
    fn mod_inv_roundtrip_large() {
        let m = n("170141183460469231731687303715884105727"); // 2^127-1, prime
        for a in ["2", "3", "31337", "123456789012345678901234567890"] {
            let a = n(a);
            let inv = mod_inv(&a, &m).unwrap();
            assert_eq!(mod_mul(&a, &inv, &m), BigUint::one(), "a={a}");
        }
    }

    #[test]
    fn mod_inv_of_m_minus_one() {
        // (m-1) is its own inverse mod m.
        let m = n("1000000007");
        let a = &m - &BigUint::one();
        assert_eq!(mod_inv(&a, &m).unwrap(), a);
    }

    #[test]
    #[should_panic(expected = "zero modulus")]
    fn mod_pow_zero_modulus_panics() {
        mod_pow(&n("2"), &n("2"), &BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "zero modulus")]
    fn mod_pow_classic_zero_modulus_panics() {
        mod_pow_classic(&n("2"), &n("2"), &BigUint::zero());
    }

    #[test]
    fn mod_pow_even_modulus_falls_back() {
        // 7^5 = 16807; even moduli take the classic kernel.
        assert_eq!(mod_pow(&n("7"), &n("5"), &n("1000")), n("807"));
        assert_eq!(mod_pow_classic(&n("7"), &n("5"), &n("1000")), n("807"));
    }

    #[test]
    fn classic_handles_short_exponents_with_small_table() {
        // e = 3 and e = 65537: the RSA verify exponents that used to
        // precompute all 16 table entries.
        let m = n("1000000007");
        // 12345^3 = 1881365963625 ≡ 365950458 (mod 1000000007)
        assert_eq!(mod_pow_classic(&n("12345"), &n("3"), &m), n("365950458"));
        assert_eq!(
            mod_pow_classic(&n("12345"), &n("65537"), &m),
            mod_pow(&n("12345"), &n("65537"), &m)
        );
    }
}
