//! Const-generic fixed-limb Montgomery kernels for the hot operand
//! widths.
//!
//! The dynamic CIOS multiply in [`crate::montgomery`] allocates a
//! scratch vector per multiplication and loops over a runtime limb
//! count. For the widths that dominate handshake traffic — 4 limbs
//! (the 256-bit DH test group, RSA-512 CRT primes) and 8 limbs
//! (512-bit RSA moduli) — this module provides kernels whose buffers
//! are stack arrays `[u64; K]` with compile-time trip counts, after
//! the `limbs_to_biguint` / `biguint_to_limbs` fixed-limb conversion
//! idiom. The compiler can unroll the inner loops and nothing touches
//! the heap per multiply.
//!
//! The fixed kernels are deliberately only reachable through
//! [`Montgomery::new_precomputed`](crate::montgomery::Montgomery::new_precomputed)
//! — and therefore through the [`crate::precomp`] registry and the
//! shared verify contexts layered on it. Contexts built with the plain
//! constructor keep the dynamic kernel, which preserves the
//! per-session baseline that `perf_guard` measures the batch path
//! against.

use crate::BigUint;

/// Split a [`BigUint`] into exactly `K` little-endian limbs, or `None`
/// when the value does not fit in `K` limbs.
pub fn biguint_to_limbs<const K: usize>(x: &BigUint) -> Option<[u64; K]> {
    let limbs = x.limbs();
    if limbs.len() > K {
        return None;
    }
    let mut out = [0u64; K];
    out[..limbs.len()].copy_from_slice(limbs);
    Some(out)
}

/// Rebuild a [`BigUint`] from `K` little-endian limbs; trailing zero
/// limbs are stripped by the canonical constructor.
pub fn limbs_to_biguint<const K: usize>(limbs: &[u64; K]) -> BigUint {
    BigUint::from_limbs(limbs.to_vec())
}

/// A Montgomery context specialised to a compile-time limb count `K`.
///
/// Mirrors the state of [`crate::montgomery::Montgomery`] (modulus
/// limbs, `-n^-1 mod 2^64`, `R^2 mod n`) with every buffer a stack
/// array. Produces bit-identical results to the dynamic kernel: the
/// CIOS recurrence and the exponent scan are the same algorithms with
/// the limb count fixed at compile time.
pub(crate) struct FixedMont<const K: usize> {
    n: [u64; K],
    n0inv: u64,
    rr: [u64; K],
}

impl<const K: usize> FixedMont<K> {
    /// Wrap precomputed Montgomery parameters; `None` unless the
    /// modulus occupies exactly `K` limbs.
    pub(crate) fn new(n: &[u64], n0inv: u64, rr: &[u64]) -> Option<FixedMont<K>> {
        if n.len() != K || rr.len() != K {
            return None;
        }
        let mut nf = [0u64; K];
        nf.copy_from_slice(n);
        let mut rrf = [0u64; K];
        rrf.copy_from_slice(rr);
        Some(FixedMont {
            n: nf,
            n0inv,
            rr: rrf,
        })
    }

    /// `base^exp mod n` for `0 < base < n` and `exp > 0` — the caller
    /// (the dispatching [`Montgomery::pow`]) has already handled the
    /// degenerate cases.
    ///
    /// [`Montgomery::pow`]: crate::montgomery::Montgomery::pow
    pub(crate) fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let bm0 = biguint_to_limbs::<K>(base).expect("base reduced below the modulus");
        let bm = self.mul(&bm0, &self.rr); // into Montgomery form
        let acc = match exp.to_u64() {
            Some(e) => self.pow_u64(&bm, e),
            None => self.pow_window(&bm, exp),
        };
        let mut one = [0u64; K];
        one[0] = 1;
        limbs_to_biguint(&self.mul(&acc, &one))
    }

    /// Montgomery multiply on general limb slices: convert, multiply,
    /// convert back. Used by the fixed-base table builder, where the
    /// copy cost is amortised over the table's lifetime.
    pub(crate) fn mul_slices(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut af = [0u64; K];
        af.copy_from_slice(a);
        let mut bf = [0u64; K];
        bf.copy_from_slice(b);
        self.mul(&af, &bf).to_vec()
    }

    /// Left-to-right binary exponentiation for `e >= 1` fitting a word.
    fn pow_u64(&self, bm: &[u64; K], e: u64) -> [u64; K] {
        let mut acc = *bm;
        for i in (0..63 - e.leading_zeros() as usize).rev() {
            acc = self.mul(&acc, &acc);
            if (e >> i) & 1 == 1 {
                acc = self.mul(&acc, bm);
            }
        }
        acc
    }

    /// Sliding-window exponentiation, window sizes matching the dynamic
    /// kernel so both scan the exponent identically.
    fn pow_window(&self, bm: &[u64; K], exp: &BigUint) -> [u64; K] {
        let bits = exp.bit_len();
        let w = match bits {
            0..=96 => 3,
            97..=384 => 4,
            _ => 5,
        };
        // table[t] = base^(2t+1) in Montgomery form.
        let bsq = self.mul(bm, bm);
        let mut table: Vec<[u64; K]> = Vec::with_capacity(1 << (w - 1));
        table.push(*bm);
        for t in 1..(1 << (w - 1)) {
            let prev = table[t - 1];
            table.push(self.mul(&prev, &bsq));
        }

        let mut acc: Option<[u64; K]> = None;
        let mut i = bits as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                let a = acc.expect("window scan starts on a set bit");
                acc = Some(self.mul(&a, &a));
                i -= 1;
                continue;
            }
            let mut j = (i - w as isize + 1).max(0);
            while !exp.bit(j as usize) {
                j += 1;
            }
            let mut val = 0usize;
            for b in (j..=i).rev() {
                val = (val << 1) | exp.bit(b as usize) as usize;
            }
            let width = (i - j + 1) as usize;
            acc = Some(match acc {
                None => table[val >> 1],
                Some(mut a) => {
                    for _ in 0..width {
                        a = self.mul(&a, &a);
                    }
                    self.mul(&a, &table[val >> 1])
                }
            });
            i = j - 1;
        }
        acc.expect("exponent is non-zero")
    }

    /// CIOS Montgomery multiply on `K`-limb stack arrays — the same
    /// recurrence as the dynamic kernel with the `t[k]`/`t[k+1]`
    /// overflow limbs held in scalars.
    fn mul(&self, a: &[u64; K], b: &[u64; K]) -> [u64; K] {
        let mut t = [0u64; K];
        let mut tk = 0u64;
        for &bi in b {
            // t += a * bi
            let mut carry = 0u64;
            for j in 0..K {
                let v = t[j] as u128 + (a[j] as u128) * (bi as u128) + carry as u128;
                t[j] = v as u64;
                carry = (v >> 64) as u64;
            }
            let v = tk as u128 + carry as u128;
            tk = v as u64;
            // The limb the dynamic kernel calls t[k+1]: written and
            // consumed within one outer iteration.
            let tk1 = (v >> 64) as u64;

            // t = (t + m*n) / 2^64 with m chosen so t becomes divisible.
            let m = t[0].wrapping_mul(self.n0inv);
            let v = t[0] as u128 + (m as u128) * (self.n[0] as u128);
            let mut carry = (v >> 64) as u64;
            for j in 1..K {
                let v = t[j] as u128 + (m as u128) * (self.n[j] as u128) + carry as u128;
                t[j - 1] = v as u64;
                carry = (v >> 64) as u64;
            }
            let v = tk as u128 + carry as u128;
            t[K - 1] = v as u64;
            tk = tk1 + ((v >> 64) as u64);
        }
        if tk != 0 || ge(&t, &self.n) {
            sub_in_place(&mut t, &self.n);
        }
        t
    }
}

/// `a >= b` on equal-length little-endian limb arrays.
fn ge(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a -= b` on equal-length little-endian limb arrays; `a >= b` holds.
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (ai, &bi) in a.iter_mut().zip(b) {
        let (d1, b1) = ai.overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *ai = d2;
        borrow = (b1 | b2) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limb_conversions_round_trip() {
        let x = BigUint::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        let limbs = biguint_to_limbs::<4>(&x).unwrap();
        assert_eq!(limbs_to_biguint(&limbs), x);
        // Too wide for the requested limb count.
        assert!(biguint_to_limbs::<1>(&x).is_none());
        // Zero maps to the all-zero array and back.
        let z = biguint_to_limbs::<4>(&BigUint::zero()).unwrap();
        assert_eq!(z, [0u64; 4]);
        assert!(limbs_to_biguint(&z).is_zero());
    }
}
