//! Primality testing and random prime generation.
//!
//! Used by `gridsec-crypto` for RSA key generation and for building
//! Diffie–Hellman groups in tests. The entropy source is abstracted behind
//! a simple trait so the crypto crate can plug in its deterministic CSPRNG.

use crate::modular::mod_pow;
use crate::BigUint;

/// Minimal entropy-source abstraction: fills a byte slice with random data.
///
/// `gridsec-crypto`'s CSPRNG and `gridsec-util`'s deterministic test RNG
/// both implement this via the [`gridsec_util::rng::RngCore`] blanket
/// impl, keeping `gridsec-bignum` free of a crypto dependency direction.
pub trait EntropySource {
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<T: gridsec_util::rng::RngCore> EntropySource for T {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        gridsec_util::rng::RngCore::fill_bytes(self, dest)
    }
}

/// Small primes used for fast trial-division rejection before Miller–Rabin.
const SMALL_PRIMES: [u64; 60] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
];

/// Deterministic Miller–Rabin witnesses sufficient for all n < 3.3 * 10^24,
/// applied before random rounds for small inputs.
const DETERMINISTIC_WITNESSES: [u64; 13] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];

/// Result of a primality check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primality {
    /// Definitely composite.
    Composite,
    /// Probably prime (error probability ≤ 4^-rounds).
    ProbablyPrime,
}

/// Generate a uniformly random [`BigUint`] with exactly `bits` significant
/// bits (top bit set).
pub fn random_bits<E: EntropySource>(rng: &mut E, bits: usize) -> BigUint {
    assert!(bits > 0, "random_bits needs at least one bit");
    let nbytes = bits.div_ceil(8);
    let mut buf = vec![0u8; nbytes];
    rng.fill_bytes(&mut buf);
    // Mask excess high bits, then force the top bit on.
    let excess = nbytes * 8 - bits;
    buf[0] &= 0xFFu8 >> excess;
    buf[0] |= 1 << (7 - excess);
    BigUint::from_bytes_be(&buf)
}

/// Generate a uniformly random value in `[0, bound)` by rejection sampling.
pub fn random_below<E: EntropySource>(rng: &mut E, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "random_below with zero bound");
    let bits = bound.bit_len();
    let nbytes = bits.div_ceil(8);
    let excess = nbytes * 8 - bits;
    loop {
        let mut buf = vec![0u8; nbytes];
        rng.fill_bytes(&mut buf);
        buf[0] &= 0xFFu8 >> excess;
        let candidate = BigUint::from_bytes_be(&buf);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Miller–Rabin primality test with `rounds` random witnesses.
///
/// For candidates below 42 bits the deterministic witness set is decisive;
/// above that, it is followed by `rounds` random witnesses.
pub fn is_probably_prime<E: EntropySource>(n: &BigUint, rounds: usize, rng: &mut E) -> Primality {
    // Handle tiny cases.
    if let Some(v) = n.to_u64() {
        if v < 2 {
            return Primality::Composite;
        }
        if SMALL_PRIMES.contains(&v) {
            return Primality::ProbablyPrime;
        }
    }
    if n.is_even() {
        return Primality::Composite;
    }
    // Trial division by small primes.
    for &p in &SMALL_PRIMES {
        let (_, r) = n.div_rem_limb(p);
        if r == 0 {
            return if n.to_u64() == Some(p) {
                Primality::ProbablyPrime
            } else {
                Primality::Composite
            };
        }
    }

    // Write n-1 = d * 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.sub_ref(&one);
    let s = n_minus_1.trailing_zeros().expect("n > 2 is odd");
    let d = &n_minus_1 >> s;

    let witness_passes = |a: &BigUint| -> bool {
        let a = a.rem_ref(n);
        if a.is_zero() || a.is_one() {
            return true;
        }
        let mut x = mod_pow(&a, &d, n);
        if x.is_one() || x == n_minus_1 {
            return true;
        }
        for _ in 0..s - 1 {
            x = x.square().rem_ref(n);
            if x == n_minus_1 {
                return true;
            }
        }
        false
    };

    for &w in &DETERMINISTIC_WITNESSES {
        if !witness_passes(&BigUint::from(w)) {
            return Primality::Composite;
        }
    }
    if n.bit_len() <= 42 {
        // Deterministic witnesses are conclusive for this range.
        return Primality::ProbablyPrime;
    }
    let two = BigUint::from(2u64);
    let range = n.sub_ref(&BigUint::from(4u64)); // witnesses in [2, n-2]
    for _ in 0..rounds {
        let a = random_below(rng, &range).add_ref(&two);
        if !witness_passes(&a) {
            return Primality::Composite;
        }
    }
    Primality::ProbablyPrime
}

/// Generate a random probable prime with exactly `bits` bits.
///
/// The candidate stream is: random `bits`-bit odd integer, then increment
/// by 2 until a probable prime is found (restarting if the bit length
/// overflows). `rounds` Miller–Rabin rounds are applied (20 gives a
/// 2^-40 error bound, ample for a research stack).
pub fn generate_prime<E: EntropySource>(rng: &mut E, bits: usize, rounds: usize) -> BigUint {
    assert!(bits >= 8, "prime generation needs at least 8 bits");
    let two = BigUint::from(2u64);
    loop {
        let mut candidate = random_bits(rng, bits);
        if candidate.is_even() {
            candidate = candidate.add_ref(&BigUint::one());
        }
        // Scan a window of odd candidates from the random start.
        for _ in 0..4096 {
            if candidate.bit_len() != bits {
                break; // wrapped past the top of the range; re-randomize
            }
            if is_probably_prime(&candidate, rounds, rng) == Primality::ProbablyPrime {
                return candidate;
            }
            candidate = candidate.add_ref(&two);
        }
    }
}

/// Generate a "safe prime" `p` (i.e. `p = 2q + 1` with `q` prime), used for
/// Diffie–Hellman group construction in tests. This is expensive; keep
/// `bits` modest (≤ 256) in test contexts.
pub fn generate_safe_prime<E: EntropySource>(rng: &mut E, bits: usize, rounds: usize) -> BigUint {
    loop {
        let q = generate_prime(rng, bits - 1, rounds);
        let p = (&q << 1).add_ref(&BigUint::one());
        if is_probably_prime(&p, rounds, rng) == Primality::ProbablyPrime {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_util::rng::DetRng;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(0x5EED_CAFE)
    }

    #[test]
    fn small_primes_detected() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 97, 281] {
            assert_eq!(
                is_probably_prime(&BigUint::from(p), 5, &mut r),
                Primality::ProbablyPrime,
                "{p}"
            );
        }
    }

    #[test]
    fn small_composites_detected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 100, 561, 41041, 825265] {
            // 561, 41041, 825265 are Carmichael numbers.
            assert_eq!(
                is_probably_prime(&BigUint::from(c), 5, &mut r),
                Primality::Composite,
                "{c}"
            );
        }
    }

    #[test]
    fn known_large_prime() {
        let mut r = rng();
        // 2^127 - 1 is a Mersenne prime.
        let m127 = (&BigUint::one() << 127) - &BigUint::one();
        assert_eq!(
            is_probably_prime(&m127, 10, &mut r),
            Primality::ProbablyPrime
        );
        // 2^128 - 1 is composite.
        let c = (&BigUint::one() << 128) - &BigUint::one();
        assert_eq!(is_probably_prime(&c, 10, &mut r), Primality::Composite);
    }

    #[test]
    fn known_rsa_style_semiprime_is_composite() {
        let mut r = rng();
        let p = BigUint::from_decimal("170141183460469231731687303715884105727").unwrap();
        let sq = p.square();
        assert_eq!(is_probably_prime(&sq, 10, &mut r), Primality::Composite);
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut r = rng();
        for bits in [8usize, 9, 63, 64, 65, 129, 256] {
            let v = random_bits(&mut r, bits);
            assert_eq!(v.bit_len(), bits, "bits={bits}");
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut r = rng();
        let bound = BigUint::from_decimal("1000000000000000000000").unwrap();
        for _ in 0..50 {
            assert!(random_below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn generated_prime_has_requested_size() {
        let mut r = rng();
        let p = generate_prime(&mut r, 128, 10);
        assert_eq!(p.bit_len(), 128);
        assert!(p.is_odd());
        assert_eq!(is_probably_prime(&p, 20, &mut r), Primality::ProbablyPrime);
    }

    #[test]
    fn generated_safe_prime() {
        let mut r = rng();
        let p = generate_safe_prime(&mut r, 96, 8);
        assert_eq!(p.bit_len(), 96);
        let q = (&p - &BigUint::one()) >> 1;
        assert_eq!(is_probably_prime(&q, 10, &mut r), Primality::ProbablyPrime);
    }
}
