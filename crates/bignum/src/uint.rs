//! The [`BigUint`] type: an arbitrary-precision unsigned integer.
//!
//! Representation: little-endian `Vec<u64>` limbs with the invariant that
//! the most significant limb is nonzero (zero is the empty limb vector).

use crate::ParseBigUintError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Mul, Rem, Shl, Shr, Sub};

/// Number of bits per limb.
pub(crate) const LIMB_BITS: usize = 64;

/// Multiplications with both operands at least this many limbs use
/// Karatsuba; below it, schoolbook wins on constant factors.
const KARATSUBA_THRESHOLD: usize = 24;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs; the internal invariant is that the
/// highest limb is nonzero (canonical form), so equality and ordering are
/// straight limb comparisons.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; empty means zero; last limb nonzero otherwise.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Borrow the little-endian limb slice (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// `true` iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// `true` iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (0 for the value zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => {
                (self.limbs.len() - 1) * LIMB_BITS + (LIMB_BITS - hi.leading_zeros() as usize)
            }
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / LIMB_BITS, i % LIMB_BITS);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Set bit `i` to `v`, growing the limb vector as needed.
    pub fn set_bit(&mut self, i: usize, v: bool) {
        let (limb, off) = (i / LIMB_BITS, i % LIMB_BITS);
        if limb >= self.limbs.len() {
            if !v {
                return;
            }
            self.limbs.resize(limb + 1, 0);
        }
        if v {
            self.limbs[limb] |= 1 << off;
        } else {
            self.limbs[limb] &= !(1 << off);
        }
        self.normalize();
    }

    /// Number of trailing zero bits; `None` if the value is zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * LIMB_BITS + l.trailing_zeros() as usize);
            }
        }
        None
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    // ------------------------------------------------------------------
    // Conversions
    // ------------------------------------------------------------------

    /// Parse a decimal string.
    pub fn from_decimal(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError::Empty);
        }
        let mut out = BigUint::zero();
        let ten = BigUint::from(10u64);
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(ParseBigUintError::InvalidDigit(c))?;
            out = &(&out * &ten) + &BigUint::from(d as u64);
        }
        Ok(out)
    }

    /// Parse a hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError::Empty);
        }
        let mut limbs = Vec::with_capacity(s.len() / 16 + 1);
        let bytes = s.as_bytes();
        let mut pos = s.len();
        while pos > 0 {
            let start = pos.saturating_sub(16);
            let chunk = &s[start..pos];
            let mut limb = 0u64;
            for &b in bytes[start..pos].iter() {
                let d = (b as char)
                    .to_digit(16)
                    .ok_or(ParseBigUintError::InvalidDigit(b as char))?;
                limb = (limb << 4) | d as u64;
            }
            let _ = chunk;
            limbs.push(limb);
            pos = start;
        }
        Ok(BigUint::from_limbs(limbs))
    }

    /// Render as lowercase hexadecimal (no leading zeros; zero is `"0"`).
    pub fn to_hex(&self) -> String {
        match self.limbs.last() {
            None => "0".to_string(),
            Some(&hi) => {
                let mut s = format!("{hi:x}");
                for &l in self.limbs.iter().rev().skip(1) {
                    s.push_str(&format!("{l:016x}"));
                }
                s
            }
        }
    }

    /// Render as decimal.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Repeated division by 10^19 (largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut digits: Vec<String> = Vec::new();
        let mut cur = self.clone();
        let chunk = BigUint::from(CHUNK);
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&chunk);
            digits.push(r.limbs.first().copied().unwrap_or(0).to_string());
            cur = q;
        }
        let mut out = digits.pop().unwrap();
        for d in digits.into_iter().rev() {
            out.push_str(&format!("{:0>19}", d));
        }
        out
    }

    /// Construct from big-endian bytes (leading zero bytes allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut pos = bytes.len();
        while pos > 0 {
            let start = pos.saturating_sub(8);
            let mut limb = 0u64;
            for &b in &bytes[start..pos] {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
            pos = start;
        }
        BigUint::from_limbs(limbs)
    }

    /// Render as minimal big-endian bytes (zero renders as an empty vec).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        let mut iter = self.limbs.iter().rev();
        let hi = iter.next().unwrap();
        let hi_bytes = hi.to_be_bytes();
        let skip = hi_bytes.iter().take_while(|&&b| b == 0).count();
        out.extend_from_slice(&hi_bytes[skip..]);
        for l in iter {
            out.extend_from_slice(&l.to_be_bytes());
        }
        out
    }

    /// Render as big-endian bytes left-padded with zeros to exactly `len`
    /// bytes. Panics if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Lossy conversion to `u64` (low limb; zero if the value is zero).
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Lossy conversion to `u128`.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Core arithmetic
    // ------------------------------------------------------------------

    /// `self + other`.
    #[allow(clippy::needless_range_loop)]
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for i in 0..a.len() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (s1, c1) = a[i].overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`; panics on underflow.
    pub fn sub_ref(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// `self - other`, or `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// Schoolbook multiplication.
    fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    /// Karatsuba multiplication for large operands.
    fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.len() < KARATSUBA_THRESHOLD || b.len() < KARATSUBA_THRESHOLD {
            return Self::mul_schoolbook(a, b);
        }
        let half = a.len().max(b.len()) / 2;
        let (a0, a1) = Self::split_at_limb(a, half);
        let (b0, b1) = Self::split_at_limb(b, half);

        let z0 = BigUint::from_limbs(Self::mul_karatsuba(&a0.limbs, &b0.limbs));
        let z2 = BigUint::from_limbs(Self::mul_karatsuba(&a1.limbs, &b1.limbs));
        let asum = a0.add_ref(&a1);
        let bsum = b0.add_ref(&b1);
        let z1full = BigUint::from_limbs(Self::mul_karatsuba(&asum.limbs, &bsum.limbs));
        let z1 = z1full.sub_ref(&z0).sub_ref(&z2);

        // result = z2 << (2*half limbs) + z1 << (half limbs) + z0
        let mut out = z2.shl_limbs(2 * half);
        out = out.add_ref(&z1.shl_limbs(half));
        out.add_ref(&z0).limbs
    }

    fn split_at_limb(x: &[u64], at: usize) -> (BigUint, BigUint) {
        if x.len() <= at {
            (BigUint::from_limbs(x.to_vec()), BigUint::zero())
        } else {
            (
                BigUint::from_limbs(x[..at].to_vec()),
                BigUint::from_limbs(x[at..].to_vec()),
            )
        }
    }

    fn shl_limbs(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u64; n];
        limbs.extend_from_slice(&self.limbs);
        BigUint { limbs }
    }

    /// `self * other`.
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        BigUint::from_limbs(Self::mul_karatsuba(&self.limbs, &other.limbs))
    }

    /// Squaring (delegates to multiplication).
    pub fn square(&self) -> BigUint {
        self.mul_ref(self)
    }

    /// Quotient and remainder of `self / divisor`; panics on divide by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Divide by a single limb; returns (quotient, remainder limb).
    pub fn div_rem_limb(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "BigUint division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (BigUint::from_limbs(out), rem as u64)
    }

    /// Knuth Algorithm D (TAOCP 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self << shift; // dividend
        let v = divisor << shift; // divisor
        let n = v.limbs.len();
        let m = u.limbs.len().saturating_sub(n);

        let mut un: Vec<u64> = u.limbs.clone();
        un.push(0); // extra high limb for the algorithm
        let vn = &v.limbs;
        let vtop = vn[n - 1];
        let vsecond = if n >= 2 { vn[n - 2] } else { 0 };

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate qhat from the top two/three limbs.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = num / vtop as u128;
            let mut rhat = num % vtop as u128;
            while qhat >= 1u128 << 64
                || qhat * vsecond as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += vtop as u128;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply and subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = (un[j + i] as i128) - (p as u64 as i128) - borrow;
                un[j + i] = sub as u64;
                borrow = if sub < 0 { 1 } else { 0 };
            }
            let sub = (un[j + n] as i128) - (carry as i128) - borrow;
            un[j + n] = sub as u64;

            q[j] = qhat as u64;
            if sub < 0 {
                // qhat was one too large: add the divisor back.
                q[j] -= 1;
                let mut c = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + c;
                    un[j + i] = s as u64;
                    c = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(c as u64);
            }
        }
        let rem = BigUint::from_limbs(un[..n].to_vec()) >> shift;
        (BigUint::from_limbs(q), rem)
    }

    /// `self mod m`.
    pub fn rem_ref(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let za = a.trailing_zeros().unwrap();
        let zb = b.trailing_zeros().unwrap();
        let common = za.min(zb);
        a = &a >> za;
        b = &b >> zb;
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub_ref(&a);
            if b.is_zero() {
                return &a << common;
            }
            b = &b >> b.trailing_zeros().unwrap();
        }
    }
}

// ----------------------------------------------------------------------
// From conversions
// ----------------------------------------------------------------------

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

// ----------------------------------------------------------------------
// Operator impls (reference-based; owned versions delegate)
// ----------------------------------------------------------------------

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        self.add_ref(rhs)
    }
}
impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        self.add_ref(&rhs)
    }
}
impl Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.sub_ref(rhs)
    }
}
impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        self.sub_ref(&rhs)
    }
}
impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}
impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_ref(&rhs)
    }
}
impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.rem_ref(rhs)
    }
}
impl Add<&BigUint> for BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        self.add_ref(rhs)
    }
}
impl Sub<&BigUint> for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.sub_ref(rhs)
    }
}
impl Mul<&BigUint> for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, n: usize) -> BigUint {
        if self.is_zero() || n == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (n / LIMB_BITS, n % LIMB_BITS);
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }
}
impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, n: usize) -> BigUint {
        &self << n
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, n: usize) -> BigUint {
        let (limb_shift, bit_shift) = (n / LIMB_BITS, n % LIMB_BITS);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut limbs: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let mut carry = 0u64;
            for l in limbs.iter_mut().rev() {
                let new_carry = *l << (LIMB_BITS - bit_shift);
                *l = (*l >> bit_shift) | carry;
                carry = new_carry;
            }
        }
        BigUint::from_limbs(limbs)
    }
}
impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, n: usize) -> BigUint {
        &self >> n
    }
}

macro_rules! bitop {
    ($trait:ident, $method:ident, $op:tt, $zip_long:expr) => {
        impl $trait for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                let (short, long) = if self.limbs.len() <= rhs.limbs.len() {
                    (&self.limbs, &rhs.limbs)
                } else {
                    (&rhs.limbs, &self.limbs)
                };
                let mut out: Vec<u64> = Vec::with_capacity(long.len());
                for i in 0..long.len() {
                    let s = short.get(i).copied().unwrap_or(0);
                    if i < short.len() || $zip_long {
                        out.push(s $op long[i]);
                    } else {
                        out.push(0);
                    }
                }
                BigUint::from_limbs(out)
            }
        }
    };
}

bitop!(BitAnd, bitand, &, false);
bitop!(BitOr, bitor, |, true);
bitop!(BitXor, bitxor, ^, true);

// ----------------------------------------------------------------------
// Comparison / formatting
// ----------------------------------------------------------------------

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}
impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> BigUint {
        BigUint::from_decimal(s).unwrap()
    }

    #[test]
    fn zero_and_one_identities() {
        let z = BigUint::zero();
        let o = BigUint::one();
        assert!(z.is_zero());
        assert!(o.is_one());
        assert_eq!(&z + &o, o);
        assert_eq!(&o * &z, z);
        assert_eq!(o.bit_len(), 1);
        assert_eq!(z.bit_len(), 0);
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let sum = &a + &b;
        assert_eq!(sum.limbs(), &[0, 1]);
        assert_eq!(sum.bit_len(), 65);
    }

    #[test]
    fn sub_with_borrow() {
        let a = BigUint::from_limbs(vec![0, 1]); // 2^64
        let b = BigUint::one();
        assert_eq!((&a - &b).limbs(), &[u64::MAX]);
    }

    #[test]
    fn checked_sub_underflow() {
        let a = BigUint::from(3u64);
        let b = BigUint::from(5u64);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(b.checked_sub(&a), Some(BigUint::from(2u64)));
    }

    #[test]
    fn mul_small() {
        assert_eq!(
            &BigUint::from(1234u64) * &BigUint::from(5678u64),
            BigUint::from(1234u64 * 5678)
        );
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xdead_beef_cafe_f00du64;
        let b = 0x1234_5678_9abc_def0u64;
        let expect = a as u128 * b as u128;
        assert_eq!(&BigUint::from(a) * &BigUint::from(b), BigUint::from(expect));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // 40-limb operands exercise the Karatsuba path.
        let a_limbs: Vec<u64> = (0..40)
            .map(|i| 0x9E3779B97F4A7C15u64.wrapping_mul(i + 1))
            .collect();
        let b_limbs: Vec<u64> = (0..40)
            .map(|i| 0xC2B2AE3D27D4EB4Fu64.wrapping_mul(i + 3))
            .collect();
        let a = BigUint::from_limbs(a_limbs.clone());
        let b = BigUint::from_limbs(b_limbs.clone());
        let kar = a.mul_ref(&b);
        let school = BigUint::from_limbs(BigUint::mul_schoolbook(&a_limbs, &b_limbs));
        assert_eq!(kar, school);
    }

    #[test]
    fn div_rem_roundtrip() {
        let a = n("123456789012345678901234567890123456789");
        let b = n("98765432109876543");
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn div_rem_knuth_edge_addback() {
        // Construct a case that exercises the "add back" branch: divisor with
        // high limb just over half the radix.
        let u = BigUint::from_limbs(vec![0, 0, 0x8000_0000_0000_0000]);
        let v = BigUint::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = u.div_rem(&v);
        assert!(r < v);
        assert_eq!(&(&q * &v) + &r, u);
    }

    #[test]
    fn div_by_one_and_self() {
        let a = n("314159265358979323846264338327950288419716939937510");
        let (q, r) = a.div_rem(&BigUint::one());
        assert_eq!(q, a);
        assert!(r.is_zero());
        let (q, r) = a.div_rem(&a);
        assert!(q.is_one());
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts_roundtrip() {
        let a = n("87112285931760246646623899502532662132777");
        for s in [1usize, 7, 63, 64, 65, 130] {
            assert_eq!(&(&a << s) >> s, a, "shift {s}");
        }
    }

    #[test]
    fn shr_to_zero() {
        let a = BigUint::from(0xffu64);
        assert!((&a >> 8).is_zero());
        assert!((&a >> 1000).is_zero());
    }

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            let v = BigUint::from_hex(s).unwrap();
            assert_eq!(
                v.to_hex(),
                s.trim_start_matches('0')
                    .to_lowercase()
                    .chars()
                    .next()
                    .map_or("0".to_string(), |_| s.to_lowercase())
            );
        }
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "42",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
        ] {
            assert_eq!(n(s).to_decimal(), s);
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let v = BigUint::from_hex("0102030405060708090a0b0c0d0e0f").unwrap();
        let bytes = v.to_bytes_be();
        assert_eq!(bytes[0], 0x01);
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        // Leading zeros are accepted on input.
        let mut padded = vec![0u8, 0u8];
        padded.extend_from_slice(&bytes);
        assert_eq!(BigUint::from_bytes_be(&padded), v);
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from(0xabcdu64);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0xab, 0xcd]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small_panics() {
        BigUint::from(0xabcdu64).to_bytes_be_padded(1);
    }

    #[test]
    fn bit_access() {
        let mut v = BigUint::zero();
        v.set_bit(0, true);
        v.set_bit(100, true);
        assert!(v.bit(0));
        assert!(v.bit(100));
        assert!(!v.bit(50));
        assert_eq!(v.bit_len(), 101);
        v.set_bit(100, false);
        assert_eq!(v, BigUint::one());
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(BigUint::one().trailing_zeros(), Some(0));
        assert_eq!((&BigUint::one() << 77).trailing_zeros(), Some(77));
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(n("48").gcd(&n("18")), n("6"));
        assert_eq!(n("0").gcd(&n("5")), n("5"));
        assert_eq!(n("5").gcd(&n("0")), n("5"));
        assert_eq!(n("17").gcd(&n("31")), n("1"));
        // gcd of large coprime-by-construction values
        let a = n("123456789012345678901234567891");
        assert_eq!(a.gcd(&a), a);
    }

    #[test]
    fn bit_ops() {
        let a = BigUint::from(0b1100u64);
        let b = BigUint::from(0b1010u64);
        assert_eq!(&a & &b, BigUint::from(0b1000u64));
        assert_eq!(&a | &b, BigUint::from(0b1110u64));
        assert_eq!(&a ^ &b, BigUint::from(0b0110u64));
        // Mismatched lengths: AND truncates, OR/XOR keep long tail.
        let long = BigUint::from_limbs(vec![0xF, 0xF0]);
        assert_eq!(&a & &long, BigUint::from(0b1100u64));
        assert_eq!((&a | &long).limbs(), &[0xF | 0b1100, 0xF0]);
    }

    #[test]
    fn ordering() {
        assert!(n("100") < n("101"));
        assert!(n("18446744073709551616") > n("18446744073709551615"));
        assert_eq!(n("7").cmp(&n("7")), Ordering::Equal);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(BigUint::from_decimal(""), Err(ParseBigUintError::Empty));
        assert_eq!(
            BigUint::from_decimal("12x"),
            Err(ParseBigUintError::InvalidDigit('x'))
        );
        assert_eq!(
            BigUint::from_hex("12g"),
            Err(ParseBigUintError::InvalidDigit('g'))
        );
    }

    #[test]
    fn even_odd() {
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert!(n("18446744073709551616").is_even());
    }
}
