//! # gridsec-bignum
//!
//! Arbitrary-precision unsigned integer arithmetic for the `gridsec`
//! reproduction of *Security for Grid Services* (Welch et al., HPDC 2003).
//!
//! This crate is the numeric substrate under `gridsec-crypto`'s RSA and
//! Diffie–Hellman implementations. It provides:
//!
//! * [`BigUint`] — an unsigned big integer stored as little-endian `u64`
//!   limbs, with the full complement of arithmetic, bit, and comparison
//!   operations (Knuth Algorithm D division, Karatsuba multiplication above
//!   a threshold).
//! * [`modular`] — modular exponentiation and modular inverse (extended
//!   Euclid). Odd moduli dispatch to the Montgomery kernel; even moduli
//!   use the classic 4-bit-window division-per-step kernel.
//! * [`montgomery`] — Montgomery-form (CIOS) modular multiplication and
//!   sliding-window exponentiation for odd moduli: the hot kernel under
//!   every RSA sign/verify and DH agreement in the workspace.
//! * [`fixed`] — const-generic fixed-limb CIOS kernels for the hot
//!   operand widths (4 and 8 limbs), attached to contexts built with
//!   [`montgomery::Montgomery::new_precomputed`].
//! * [`precomp`] — fixed-base windowed tables and a per-thread registry
//!   of precomputed contexts consulted by [`modular::mod_pow`], so hot
//!   keys (DH generator, CA verify key, CRT primes) skip per-call setup.
//! * [`prime`] — Miller–Rabin probabilistic primality testing with a small
//!   prime sieve front end, and random prime generation suitable for RSA
//!   and DH parameter creation.
//!
//! The implementation favours clarity and reviewability over raw speed: it
//! is the foundation of a *research* security stack, not a production
//! cryptography library. All algorithms are nonetheless asymptotically
//! reasonable (Karatsuba multiply, limb-wise division) so that the
//! benchmark shapes reported in `EXPERIMENTS.md` are meaningful.
//!
//! ## Example
//!
//! ```
//! use gridsec_bignum::BigUint;
//!
//! let a = BigUint::from_decimal("123456789012345678901234567890").unwrap();
//! let b = BigUint::from(42u64);
//! let (q, r) = a.div_rem(&b);
//! assert_eq!(&(&q * &b) + &r, a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixed;
pub mod modular;
pub mod montgomery;
pub mod precomp;
pub mod prime;
mod uint;

pub use uint::BigUint;

/// Errors produced when parsing a [`BigUint`] from text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseBigUintError {
    /// The input string was empty.
    Empty,
    /// The input contained a character outside the radix alphabet.
    InvalidDigit(char),
}

impl core::fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseBigUintError::Empty => write!(f, "empty big integer literal"),
            ParseBigUintError::InvalidDigit(c) => {
                write!(f, "invalid digit {c:?} in big integer literal")
            }
        }
    }
}

impl std::error::Error for ParseBigUintError {}
