//! Virtual organizations: the policy-domain overlay of Figure 1.
//!
//! "Multiple resources or organizations outsource certain policy
//! control(s) to a third party, the VO, which coordinates the outsourced
//! policy in a consistent manner." This module builds that overlay over
//! classical domains and counts the trust acts it takes — the basis for
//! experiment F1's unilateral-vs-bilateral comparison:
//!
//! * GSI: every trust decision is **unilateral** (add a CA certificate to
//!   your own store; no other party participates).
//! * Kerberos: inter-realm trust is **bilateral** (both KDC
//!   administrators must install a shared key), so a full mesh of D
//!   domains needs D·(D−1)/2 coordinated agreements.

use gridsec_authz::cas::{CasServer, ResourceGate};
use gridsec_authz::policy::{CombiningAlg, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_bignum::prime::EntropySource;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;

/// A classical organization: its own CA, users, and resource trust.
pub struct ClassicalDomain {
    /// Domain name (e.g. `"anl.gov"`).
    pub name: String,
    /// The domain's certificate authority.
    pub ca: CertificateAuthority,
    /// User credentials issued by this domain.
    pub users: Vec<Credential>,
    /// What this domain's resources trust (starts as just its own CA).
    pub resource_trust: TrustStore,
    /// The domain resource's enforcement gate.
    pub gate: ResourceGate,
}

/// Create a domain with `n_users` enrolled users.
pub fn create_domain<E: EntropySource>(
    rng: &mut E,
    name: &str,
    n_users: usize,
    key_bits: usize,
    validity: u64,
) -> ClassicalDomain {
    let ca_dn = DistinguishedName::parse(&format!("/O={name}/CN=CA")).expect("valid name");
    let ca = CertificateAuthority::create_root(rng, ca_dn, key_bits, 0, validity);
    let users = (0..n_users)
        .map(|i| {
            let dn =
                DistinguishedName::parse(&format!("/O={name}/CN=user{i}")).expect("valid name");
            ca.issue_identity(rng, dn, key_bits, 0, validity)
        })
        .collect();
    let mut resource_trust = TrustStore::new();
    resource_trust.add_root(ca.certificate().clone());
    // Local policy: local users may use local resources; nothing else yet.
    let mut local = PolicySet::new(CombiningAlg::DenyOverrides);
    local.add(Rule::new(
        SubjectMatch::Any,
        &format!("{name}:*"),
        "local-use",
        Effect::Permit,
    ));
    ClassicalDomain {
        name: name.to_string(),
        ca,
        users,
        resource_trust,
        gate: ResourceGate::new(local),
    }
}

/// A formed VO: its CAS, its own trust view, and formation accounting.
pub struct VirtualOrganization {
    /// VO name.
    pub name: String,
    /// The VO's community authorization service.
    pub cas: CasServer,
    /// Trust view of VO-operated services (all member-domain CAs).
    pub trust: TrustStore,
    /// Number of unilateral trust acts performed during formation.
    pub unilateral_acts: u64,
}

/// Form a VO over `domains` (Figure 1): create the VO's CAS, enroll all
/// domain users, and have every domain's resources (a) trust the other
/// domains' CAs and (b) outsource a policy slice to the VO CAS.
///
/// Every single step is unilateral: one administrator editing their own
/// trust store or policy. The returned `unilateral_acts` counts them.
pub fn form_vo<E: EntropySource>(
    rng: &mut E,
    vo_name: &str,
    domains: &mut [ClassicalDomain],
    key_bits: usize,
    validity: u64,
) -> VirtualOrganization {
    let mut acts: u64 = 0;

    // The VO brings its own infrastructure: a CA for the CAS identity.
    let vo_ca = CertificateAuthority::create_root(
        rng,
        DistinguishedName::parse(&format!("/O={vo_name}/CN=VO CA")).expect("valid"),
        key_bits,
        0,
        validity,
    );
    let cas_cred = vo_ca.issue_identity(
        rng,
        DistinguishedName::parse(&format!("/O={vo_name}/CN=CAS")).expect("valid"),
        key_bits,
        0,
        validity,
    );
    let cas = CasServer::new(vo_name, cas_cred, 3600);

    // The VO (one admin) decides to trust each member domain's CA, so it
    // can authenticate their users: D unilateral acts.
    let mut vo_trust = TrustStore::new();
    vo_trust.add_root(vo_ca.certificate().clone());
    for d in domains.iter() {
        vo_trust.add_root(d.ca.certificate().clone());
        acts += 1;
    }

    // VO membership: enroll every user of every domain.
    for d in domains.iter() {
        for u in &d.users {
            cas.enroll(u.base_identity(), vec![format!("group:{}", d.name)]);
        }
    }

    // Each domain's resource administrator (unilaterally):
    //   1. trusts the other domains' CAs (so overlay members authenticate),
    //   2. outsources a policy slice to the VO (trusts the CAS key and
    //      permits `vo:<name>` in local policy).
    let snapshot: Vec<_> = domains.iter().map(|d| d.ca.certificate().clone()).collect();
    for (i, d) in domains.iter_mut().enumerate() {
        for (j, cert) in snapshot.iter().enumerate() {
            if i != j {
                d.resource_trust.add_root(cert.clone());
                acts += 1;
            }
        }
        d.gate.trust_cas(vo_name, cas.public_key().clone());
        acts += 1;
        d.gate.local_policy.add(Rule::new(
            SubjectMatch::Exact(format!("vo:{vo_name}")),
            &format!("{}:*", d.name),
            "*",
            Effect::Permit,
        ));
        acts += 1;
    }

    VirtualOrganization {
        name: vo_name.to_string(),
        cas,
        trust: vo_trust,
        unilateral_acts: acts,
    }
}

/// The number of *bilateral* agreements a Kerberos realm mesh needs for
/// the same D domains (each agreement requires both administrators).
pub fn kerberos_bilateral_agreements(domains: usize) -> u64 {
    (domains as u64) * (domains as u64 - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_authz::policy::Decision;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::validate::validate_chain;

    fn domains(rng: &mut ChaChaRng, n: usize) -> Vec<ClassicalDomain> {
        (0..n)
            .map(|i| create_domain(rng, &format!("site{i}"), 2, 512, 1_000_000))
            .collect()
    }

    #[test]
    fn overlay_enables_cross_domain_authentication() {
        let mut rng = ChaChaRng::from_seed_bytes(b"vo tests");
        let mut ds = domains(&mut rng, 3);
        // Before: site1's resources cannot validate site0's users.
        let user = ds[0].users[0].clone();
        assert!(validate_chain(user.chain(), &ds[1].resource_trust, 100).is_err());

        let _vo = form_vo(&mut rng, "physics-vo", &mut ds, 512, 1_000_000);

        // After: they can (Figure 1's common trust domain).
        let id = validate_chain(user.chain(), &ds[1].resource_trust, 100).unwrap();
        assert_eq!(id.base_identity.to_string(), "/O=site0/CN=user0");
    }

    #[test]
    fn overlay_enables_cas_mediated_authorization() {
        let mut rng = ChaChaRng::from_seed_bytes(b"vo cas");
        let mut ds = domains(&mut rng, 2);
        let vo = form_vo(&mut rng, "physics-vo", &mut ds, 512, 1_000_000);
        // VO grants group rights on site1's storage.
        vo.cas.add_rule(Rule::new(
            SubjectMatch::Exact("group:site0".to_string()),
            "site1:/storage/*",
            "read",
            Effect::Permit,
        ));
        let user = &ds[0].users[0];
        let assertion = vo.cas.issue_assertion(user.base_identity(), 100).unwrap();
        let d = ds[1]
            .gate
            .authorize_with_cas(
                &assertion,
                user.base_identity(),
                "site1:/storage/run1",
                "read",
                200,
            )
            .unwrap();
        assert_eq!(d, Decision::Permit);
        // But not on site0's resources (VO granted only site1 paths).
        let d = ds[0]
            .gate
            .authorize_with_cas(
                &assertion,
                user.base_identity(),
                "site0:/storage/run1",
                "read",
                200,
            )
            .unwrap();
        assert_eq!(d, Decision::Deny);
    }

    #[test]
    fn trust_acts_scale_quadratically_but_stay_unilateral() {
        let mut rng = ChaChaRng::from_seed_bytes(b"vo scale");
        for n in [2usize, 4] {
            let mut ds = domains(&mut rng, n);
            let vo = form_vo(&mut rng, "vo", &mut ds, 512, 1_000_000);
            // acts = D (VO trusts members) + D*(D-1) (pairwise resource
            // trust) + 2D (CAS outsourcing) — all unilateral.
            let expected = n as u64 + (n as u64) * (n as u64 - 1) + 2 * n as u64;
            assert_eq!(vo.unilateral_acts, expected, "n={n}");
        }
        // Kerberos needs coordinated pairs.
        assert_eq!(kerberos_bilateral_agreements(2), 1);
        assert_eq!(kerberos_bilateral_agreements(4), 6);
        assert_eq!(kerberos_bilateral_agreements(16), 120);
    }

    #[test]
    fn partial_participation_is_possible() {
        // The paper: "establishment of VOs that involve only some portion
        // of an organization" — a single domain resource can join without
        // the others.
        let mut rng = ChaChaRng::from_seed_bytes(b"vo partial");
        let mut ds = domains(&mut rng, 3);
        // Only domains 0 and 1 join.
        let mut joined: Vec<ClassicalDomain> = ds.drain(0..2).collect();
        let _vo = form_vo(&mut rng, "small-vo", &mut joined, 512, 1_000_000);
        let outsider = &ds[0]; // domain 2 untouched
        let member_user = &joined[0].users[0];
        assert!(validate_chain(member_user.chain(), &outsider.resource_trust, 100).is_err());
        assert!(validate_chain(member_user.chain(), &joined[1].resource_trust, 100).is_ok());
    }
}
