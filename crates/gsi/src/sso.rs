//! Single sign-on: `grid-proxy-init` and session handling (paper §3).
//!
//! A user signs on once by creating a short-lived proxy from their
//! long-lived identity credential; every subsequent authentication uses
//! the proxy, so the long-lived key can stay offline.

use gridsec_bignum::prime::EntropySource;
use gridsec_pki::credential::Credential;
use gridsec_pki::proxy::{issue_proxy, ProxyType};
use gridsec_pki::PkiError;

/// Options for proxy creation.
#[derive(Clone, Debug)]
pub struct ProxyOptions {
    /// Proxy lifetime in seconds (GT default was 12 hours).
    pub lifetime: u64,
    /// Proxy key size.
    pub key_bits: usize,
    /// Kind of proxy to create.
    pub proxy_type: ProxyType,
}

impl Default for ProxyOptions {
    fn default() -> Self {
        ProxyOptions {
            lifetime: 12 * 3600,
            key_bits: 512,
            proxy_type: ProxyType::Impersonation,
        }
    }
}

/// A signed-on session: the proxy credential plus its metadata.
pub struct Session {
    credential: Credential,
    created_at: u64,
}

impl Session {
    /// Wrap a credential obtained elsewhere (e.g. re-acquired from an
    /// online credential repository) as a signed-on session.
    pub fn from_credential(credential: Credential, created_at: u64) -> Session {
        Session {
            credential,
            created_at,
        }
    }

    /// The session's proxy credential.
    pub fn credential(&self) -> &Credential {
        &self.credential
    }

    /// When the session was created.
    pub fn created_at(&self) -> u64 {
        self.created_at
    }

    /// Remaining lifetime at `now` (0 when expired).
    pub fn remaining(&self, now: u64) -> u64 {
        self.credential
            .certificate()
            .tbs
            .validity
            .not_after
            .saturating_sub(now)
    }

    /// `true` once the proxy has expired.
    pub fn is_expired(&self, now: u64) -> bool {
        !self.credential.certificate().tbs.validity.contains(now)
    }

    /// Sign on again from the same long-lived credential ("renewal" in
    /// the loose sense — a fresh proxy, not an extension).
    pub fn renew<E: EntropySource>(
        &self,
        rng: &mut E,
        identity: &Credential,
        options: ProxyOptions,
        now: u64,
    ) -> Result<Session, PkiError> {
        grid_proxy_init(rng, identity, options, now)
    }
}

/// `grid-proxy-init`: create a session proxy from a long-lived identity.
pub fn grid_proxy_init<E: EntropySource>(
    rng: &mut E,
    identity: &Credential,
    options: ProxyOptions,
    now: u64,
) -> Result<Session, PkiError> {
    let credential = issue_proxy(
        rng,
        identity,
        options.proxy_type,
        options.key_bits,
        now,
        options.lifetime,
    )?;
    Ok(Session {
        credential,
        created_at: now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_pki::validate::{validate_chain, EffectiveRights};

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    fn setup() -> (ChaChaRng, TrustStore, Credential) {
        let mut rng = ChaChaRng::from_seed_bytes(b"sso tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 10_000_000);
        let user = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 1_000_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        (rng, trust, user)
    }

    #[test]
    fn sign_on_and_validate() {
        let (mut rng, trust, user) = setup();
        let session = grid_proxy_init(&mut rng, &user, ProxyOptions::default(), 1000).unwrap();
        assert!(!session.is_expired(1000));
        assert_eq!(session.remaining(1000), 12 * 3600);
        let id = validate_chain(session.credential().chain(), &trust, 2000).unwrap();
        assert_eq!(id.base_identity, dn("/O=G/CN=Jane"));
        assert_eq!(id.rights, EffectiveRights::Full);
    }

    #[test]
    fn session_expires() {
        let (mut rng, trust, user) = setup();
        let session = grid_proxy_init(
            &mut rng,
            &user,
            ProxyOptions {
                lifetime: 100,
                ..ProxyOptions::default()
            },
            1000,
        )
        .unwrap();
        assert!(session.is_expired(1101));
        assert_eq!(session.remaining(1101), 0);
        assert!(validate_chain(session.credential().chain(), &trust, 1101).is_err());
    }

    #[test]
    fn limited_session() {
        let (mut rng, trust, user) = setup();
        let session = grid_proxy_init(
            &mut rng,
            &user,
            ProxyOptions {
                proxy_type: ProxyType::Limited,
                ..ProxyOptions::default()
            },
            0,
        )
        .unwrap();
        let id = validate_chain(session.credential().chain(), &trust, 10).unwrap();
        assert_eq!(id.rights, EffectiveRights::Limited);
    }

    #[test]
    fn renew_produces_fresh_proxy() {
        let (mut rng, _trust, user) = setup();
        let s1 = grid_proxy_init(&mut rng, &user, ProxyOptions::default(), 0).unwrap();
        let s2 = s1
            .renew(&mut rng, &user, ProxyOptions::default(), 5000)
            .unwrap();
        assert_ne!(
            s1.credential().certificate().subject(),
            s2.credential().certificate().subject()
        );
        assert_eq!(s2.created_at(), 5000);
    }
}
