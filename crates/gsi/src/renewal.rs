//! Proxy renewal under faults: a scheduler task that keeps a session's
//! delegated proxy alive across a long-running job.
//!
//! A GRAM job can easily outlive the twelve-hour proxy that launched it
//! (paper §3's short-lived credentials are a *feature* — the blast
//! radius of a stolen proxy is its remaining lifetime). The renewal
//! agent watches [`Session::remaining`] from inside the discrete-event
//! scheduler and, once the credential enters its *grace window*,
//! re-acquires a fresh short-lived proxy from the MyProxy repository
//! ([`gridsec_services::myproxy`]) over the faulty network.
//!
//! ## Degraded modes — explicit, typed, never a panic or a hang
//!
//! * **Active** — renewals are landing; the session's `not_after`
//!   keeps moving ahead of `now`.
//! * **Degraded** — a renewal attempt failed (retries exhausted, or
//!   the repository refused). The job keeps running on the credential
//!   it still holds; the agent keeps retrying on a fixed pause.
//! * **FailedClosed** — the credential reached hard expiry with no
//!   renewal landed. The agent records a typed [`CredentialExpired`]
//!   fault and stops. Nothing panics, nothing spins: the scheduler
//!   run completes and the fault is inspectable.
//! * **Completed** — the job's window (`run_until`) elapsed while the
//!   credential was still valid; the agent retires quietly.

use std::cell::RefCell;
use std::rc::Rc;

use gridsec_crypto::rng::ChaChaRng;
use gridsec_crypto::rsa::RsaKeyPair;
use gridsec_services::myproxy::{self, MyProxyServer, OP_RENEW};
use gridsec_testbed::faults::CrashableServer;
use gridsec_testbed::net::Endpoint;
use gridsec_testbed::rpc::{CallPoll, PollingCall};
use gridsec_testbed::sched::{Step, Task, TaskCx};
use gridsec_util::retry::RetryPolicy;
use gridsec_util::trace;

use crate::sso::Session;

/// The typed fault a renewal-starved job fails closed with: the
/// credential reached hard expiry and every renewal path was exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CredentialExpired {
    /// Subject of the expired proxy.
    pub subject: String,
    /// The hard expiry that was reached.
    pub not_after: u64,
    /// Sim time when the agent observed expiry.
    pub now: u64,
}

impl core::fmt::Display for CredentialExpired {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "credential expired: subject={} not_after={} now={}",
            self.subject, self.not_after, self.now
        )
    }
}

impl std::error::Error for CredentialExpired {}

/// Where the agent is in its lifecycle (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentState {
    /// Renewals landing on schedule.
    Active,
    /// Last attempt failed; running on the remaining lifetime.
    Degraded,
    /// Hard expiry reached — [`RenewalStatus::fault`] is set.
    FailedClosed,
    /// The job's window elapsed with a valid credential.
    Completed,
}

/// Shared agent outcome, observable from outside the scheduler.
#[derive(Debug, Clone)]
pub struct RenewalStatus {
    /// Renewals that landed.
    pub renewals: u64,
    /// Renewal attempts that failed (exhausted or refused).
    pub failed_attempts: u64,
    /// Lifecycle state.
    pub state: AgentState,
    /// Set exactly when `state == FailedClosed`.
    pub fault: Option<CredentialExpired>,
}

impl Default for RenewalStatus {
    fn default() -> Self {
        RenewalStatus {
            renewals: 0,
            failed_attempts: 0,
            state: AgentState::Active,
            fault: None,
        }
    }
}

/// Renewal agent knobs.
#[derive(Clone, Debug)]
pub struct RenewalConfig {
    /// Renew once remaining lifetime drops to this many sim-seconds.
    pub grace: u64,
    /// Lifetime to request for each renewed proxy.
    pub lifetime: u64,
    /// Key size for renewed proxies.
    pub key_bits: usize,
    /// Per-attempt RPC retry/backoff schedule.
    pub policy: RetryPolicy,
    /// Pause between failed attempts while degraded.
    pub retry_pause: u64,
    /// Sim time at which the watched job ends and the agent retires.
    pub run_until: u64,
}

impl Default for RenewalConfig {
    fn default() -> Self {
        RenewalConfig {
            grace: 600,
            lifetime: 3_600,
            key_bits: 512,
            policy: RetryPolicy {
                max_attempts: 6,
                base_timeout: 16,
                multiplier: 2,
                max_timeout: 128,
            },
            retry_pause: 64,
            run_until: u64::MAX,
        }
    }
}

/// The renewal agent: spawn with [`gridsec_testbed::sched::Scheduler::spawn_mailbox`]
/// on its own endpoint. It shares the session (so the job sees renewed
/// credentials) and its status (so the harness sees the outcome).
pub struct RenewalAgent {
    ep: Endpoint,
    repo: String,
    owner: String,
    passphrase: String,
    session: Rc<RefCell<Session>>,
    status: Rc<RefCell<RenewalStatus>>,
    config: RenewalConfig,
    rng: ChaChaRng,
    call: Option<(PollingCall, RsaKeyPair)>,
    next_id: u64,
    retry_at: u64,
}

impl RenewalAgent {
    /// Build an agent renewing `session` against the repository task
    /// reachable at mailbox `repo`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ep: Endpoint,
        repo: &str,
        owner: &str,
        passphrase: &str,
        seed: &[u8],
        session: Rc<RefCell<Session>>,
        status: Rc<RefCell<RenewalStatus>>,
        config: RenewalConfig,
    ) -> Self {
        RenewalAgent {
            ep,
            repo: repo.to_string(),
            owner: owner.to_string(),
            passphrase: passphrase.to_string(),
            session,
            status,
            config,
            rng: ChaChaRng::from_seed_bytes(seed),
            call: None,
            next_id: 0,
            retry_at: 0,
        }
    }

    fn fail_attempt(&mut self, now: u64) -> Step {
        self.call = None;
        self.retry_at = now.saturating_add(self.config.retry_pause.max(1));
        let mut st = self.status.borrow_mut();
        st.failed_attempts += 1;
        st.state = AgentState::Degraded;
        trace::add("renewal.degraded", 1);
        Step::Yield
    }
}

impl Task for RenewalAgent {
    fn step(&mut self, cx: &TaskCx) -> Step {
        let now = cx.now();
        let (not_after, subject, expired) = {
            let s = self.session.borrow();
            let cert = s.credential().certificate();
            (
                cert.tbs.validity.not_after,
                cert.subject().to_string(),
                s.is_expired(now),
            )
        };
        if expired {
            // Hard expiry with no renewal landed: fail closed with a
            // typed fault — the job must not keep authenticating on a
            // dead credential, and the agent must not spin.
            let mut st = self.status.borrow_mut();
            st.state = AgentState::FailedClosed;
            st.fault = Some(CredentialExpired {
                subject,
                not_after,
                now,
            });
            trace::add("renewal.fail_closed", 1);
            return Step::Done;
        }
        if now >= self.config.run_until {
            self.status.borrow_mut().state = AgentState::Completed;
            return Step::Done;
        }
        if self.call.is_none() {
            let due = if self.retry_at > now {
                self.retry_at
            } else {
                not_after.saturating_sub(self.config.grace)
            };
            if now < due {
                // Wake at the grace point (or retry point), or at hard
                // expiry / job end, whichever lands first.
                let wake = due.min(not_after + 1).min(self.config.run_until);
                return Step::Sleep(wake);
            }
            let key = RsaKeyPair::generate(&mut self.rng, self.config.key_bits);
            let req = myproxy::encode_issue_request(
                OP_RENEW,
                &self.owner,
                &self.passphrase,
                key.public(),
                self.config.lifetime,
            );
            self.next_id += 1;
            self.call = Some((
                PollingCall::new(&self.repo, self.next_id, &req, self.config.policy),
                key,
            ));
            trace::add("renewal.attempts", 1);
        }
        let (call, _) = self.call.as_mut().expect("call ensured above");
        match call.poll(&self.ep, now) {
            CallPoll::Ready(reply) => {
                let (_, key) = self.call.take().expect("call present on Ready");
                match myproxy::decode_verdict(&reply)
                    .and_then(|body| myproxy::assemble_issued(&body, key))
                {
                    Ok(credential) => {
                        *self.session.borrow_mut() = Session::from_credential(credential, now);
                        self.retry_at = 0;
                        let mut st = self.status.borrow_mut();
                        st.renewals += 1;
                        st.state = AgentState::Active;
                        trace::add("renewal.renewed", 1);
                        Step::Yield
                    }
                    // Refused (credential destroyed, repository lost the
                    // store, ...): degraded — ride out the remaining
                    // lifetime, keep retrying.
                    Err(_) => self.fail_attempt(now),
                }
            }
            CallPoll::Wait { deadline } => Step::WaitMail {
                // Cap at hard expiry so a silent repository cannot
                // delay the fail-closed transition.
                deadline: Some(deadline.min(not_after + 1)),
            },
            CallPoll::Exhausted => self.fail_attempt(now),
        }
    }
}

/// Hosts a [`MyProxyServer`] inside the scheduler: pumps its
/// [`CrashableServer`] supervisor whenever mail arrives (including the
/// client retransmissions that nudge a crashed server back up).
pub struct RepositoryTask {
    server: Rc<RefCell<CrashableServer>>,
    app: Rc<RefCell<MyProxyServer>>,
}

impl RepositoryTask {
    /// Wrap a supervised repository for `Scheduler::spawn_mailbox`.
    pub fn new(server: Rc<RefCell<CrashableServer>>, app: Rc<RefCell<MyProxyServer>>) -> Self {
        RepositoryTask { server, app }
    }
}

impl Task for RepositoryTask {
    fn step(&mut self, _cx: &TaskCx) -> Step {
        self.server.borrow_mut().poll(&mut *self.app.borrow_mut());
        Step::WaitMail { deadline: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sso::{grid_proxy_init, ProxyOptions};
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::credential::Credential;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_pki::validate::validate_chain;
    use gridsec_testbed::clock::SimClock;
    use gridsec_testbed::faults::{CrashPlan, Journal};
    use gridsec_testbed::net::{FaultProfile, Network};
    use gridsec_testbed::os::{SimOs, ROOT_UID};
    use gridsec_testbed::rpc::RpcClient;
    use gridsec_testbed::sched::Scheduler;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    struct Rig {
        net: Network,
        clock: SimClock,
        trust: TrustStore,
        rng: ChaChaRng,
        jane: Credential,
        app: Rc<RefCell<MyProxyServer>>,
        server: Rc<RefCell<CrashableServer>>,
        plan: CrashPlan,
    }

    /// A repository with Jane's credential stored, on a faulty network.
    fn rig(plan: CrashPlan) -> Rig {
        let mut rng = ChaChaRng::from_seed_bytes(b"renewal tests");
        let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
        let jane = ca.issue_identity(&mut rng, dn("/O=G/CN=Jane"), 512, 0, 500_000);
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());

        let clock = SimClock::new();
        let os = SimOs::new();
        os.add_host("repo");
        let journal = Journal::open(os, "repo", "/var/myproxy/journal.wal", ROOT_UID);
        let app = Rc::new(RefCell::new(MyProxyServer::new(
            clock.clone(),
            b"renewal repo",
            plan.clone(),
            journal.clone(),
            100_000,
        )));
        let net = Network::new();
        net.enable_faults(clock.clone(), 0x7E4E, FaultProfile::default());
        let server = Rc::new(RefCell::new(CrashableServer::new(
            net.register("repo"),
            "myproxy",
            plan.clone(),
            journal,
            true,
        )));

        // Seed the store with Jane's credential via a plain RPC client.
        let mut rpc = RpcClient::new(
            net.register("seeder"),
            "repo",
            RetryPolicy {
                max_attempts: 8,
                base_timeout: 16,
                multiplier: 2,
                max_timeout: 64,
            },
        );
        let hook_server = server.clone();
        let hook_app = app.clone();
        rpc.set_pump(move || hook_server.borrow_mut().poll(&mut *hook_app.borrow_mut()));
        myproxy::store_credential(&mut rpc, &mut rng, "jane", "s3cret", &jane, 0, 400_000).unwrap();

        Rig {
            net,
            clock,
            trust,
            rng,
            jane,
            app,
            server,
            plan,
        }
    }

    fn spawn_world(
        r: &mut Rig,
        config: RenewalConfig,
        passphrase: &str,
        initial_lifetime: u64,
    ) -> (Rc<RefCell<Session>>, Rc<RefCell<RenewalStatus>>, Scheduler) {
        let session = grid_proxy_init(
            &mut r.rng,
            &r.jane,
            ProxyOptions {
                lifetime: initial_lifetime,
                ..ProxyOptions::default()
            },
            r.clock.now(),
        )
        .unwrap();
        let session = Rc::new(RefCell::new(session));
        let status = Rc::new(RefCell::new(RenewalStatus::default()));
        let mut sched = Scheduler::new(&r.net);
        sched.spawn_mailbox("repo", RepositoryTask::new(r.server.clone(), r.app.clone()));
        sched.spawn_mailbox(
            "agent",
            RenewalAgent::new(
                r.net.register("agent"),
                "repo",
                "jane",
                passphrase,
                b"agent seed",
                session.clone(),
                status.clone(),
                config,
            ),
        );
        (session, status, sched)
    }

    #[test]
    fn agent_renews_ahead_of_expiry_across_a_long_job() {
        let mut r = rig(CrashPlan::disabled());
        let config = RenewalConfig {
            grace: 500,
            lifetime: 2_000,
            run_until: 20_000,
            ..RenewalConfig::default()
        };
        let (session, status, mut sched) = spawn_world(&mut r, config, "s3cret", 2_000);
        sched.run();
        let st = status.borrow();
        assert_eq!(st.state, AgentState::Completed, "{st:?}");
        assert!(st.fault.is_none());
        assert!(st.renewals >= 5, "renewed across the window: {st:?}");
        // The surviving session is a repository-issued delegation chain
        // that still validates.
        let s = session.borrow();
        assert!(!s.is_expired(r.clock.now().min(20_000)));
        let id = validate_chain(s.credential().chain(), &r.trust, s.created_at()).unwrap();
        assert_eq!(id.base_identity, dn("/O=G/CN=Jane"));
    }

    #[test]
    fn renewal_denied_fails_closed_with_typed_fault_at_hard_expiry() {
        let mut r = rig(CrashPlan::disabled());
        let config = RenewalConfig {
            grace: 500,
            lifetime: 2_000,
            retry_pause: 100,
            run_until: 50_000,
            ..RenewalConfig::default()
        };
        // Wrong passphrase: every renewal is refused; the job rides its
        // remaining lifetime, then fails closed — no panic, no hang.
        let (session, status, mut sched) = spawn_world(&mut r, config, "wrong", 2_000);
        sched.run();
        let st = status.borrow();
        assert_eq!(st.state, AgentState::FailedClosed, "{st:?}");
        assert!(st.failed_attempts > 0, "degraded mode was visited: {st:?}");
        let fault = st.fault.as_ref().expect("typed fault recorded");
        let not_after = session
            .borrow()
            .credential()
            .certificate()
            .tbs
            .validity
            .not_after;
        assert_eq!(fault.not_after, not_after);
        assert!(fault.now > fault.not_after, "failed at hard expiry");
        assert_eq!(st.renewals, 0);
    }

    #[test]
    fn repository_crash_mid_renewal_is_exactly_once() {
        let plan = CrashPlan::manual(3);
        let mut r = rig(plan);
        // Kill in the worst window of the FIRST in-scheduler renewal:
        // the issue is journaled but the reply is lost. The agent's
        // retransmission must be answered with the same proxy.
        r.plan.arm("myproxy.issue.journaled", 1);
        let config = RenewalConfig {
            grace: 500,
            lifetime: 2_000,
            run_until: 6_000,
            ..RenewalConfig::default()
        };
        let (_session, status, mut sched) = spawn_world(&mut r, config, "s3cret", 2_000);
        sched.run();
        let st = status.borrow();
        assert_eq!(st.state, AgentState::Completed, "{st:?}");
        assert!(st.renewals >= 1);
        assert_eq!(r.plan.crashes(), 1, "the kill fired");
        assert_eq!(
            r.app.borrow().issued_count() as u64,
            st.renewals,
            "no duplicate issuance across the crash"
        );
    }
}
