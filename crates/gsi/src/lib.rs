//! # gridsec-gsi
//!
//! The public facade of the `gridsec` reproduction of *Security for Grid
//! Services* (Welch et al., HPDC 2003): the Grid Security Infrastructure
//! as a downstream user consumes it.
//!
//! * [`sso`] — single sign-on: `grid-proxy-init`-style proxy creation
//!   and session management (paper §3, "dynamic creation of entities").
//! * [`vo`] — virtual organizations: building the policy-domain overlay
//!   of Figure 1 over multiple classical domains, with explicit
//!   accounting of *unilateral* trust acts versus the *bilateral*
//!   agreements a Kerberos fabric would need (experiment F1).
//! * [`prelude`] — one-import access to the types most applications
//!   need, re-exported from the underlying crates.
//!
//! The layering below this crate mirrors the paper: PKI with proxy
//! certificates (`gridsec-pki`), TLS/GSS transport security
//! (`gridsec-tls`, `gridsec-gssapi`), Web services security
//! (`gridsec-wsse`), authorization and CAS (`gridsec-authz`), OGSA
//! hosting (`gridsec-ogsa`), security services (`gridsec-services`), and
//! GRAM (`gridsec-gram`), all running on the simulated testbed
//! (`gridsec-testbed`).
//!
//! ## Quickstart
//!
//! ```
//! use gridsec_gsi::prelude::*;
//! use gridsec_gsi::sso;
//!
//! let mut rng = ChaChaRng::from_seed_bytes(b"quickstart");
//! // A certificate authority and a user identity (enrollment).
//! let ca = CertificateAuthority::create_root(
//!     &mut rng, DistinguishedName::parse("/O=Grid/CN=CA").unwrap(), 512, 0, 10_000_000);
//! let user = ca.issue_identity(
//!     &mut rng, DistinguishedName::parse("/O=Grid/CN=Jane").unwrap(), 512, 0, 1_000_000);
//!
//! // Single sign-on: a 12-hour proxy, no administrator involved.
//! let session = sso::grid_proxy_init(&mut rng, &user, sso::ProxyOptions::default(), 0).unwrap();
//! assert_eq!(session.credential().base_identity().to_string(), "/O=Grid/CN=Jane");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod renewal;
pub mod sso;
pub mod vo;

/// One-import convenience: the types most applications need.
pub mod prelude {
    pub use gridsec_authz::cas::{CasAssertion, CasServer, ResourceGate};
    pub use gridsec_authz::gridmap::GridMapFile;
    pub use gridsec_authz::policy::{
        CombiningAlg, Decision, Effect, PolicySet, Request, Rule, SubjectMatch,
    };
    pub use gridsec_crypto::rng::ChaChaRng;
    pub use gridsec_gram::{GramResource, JobDescription, JobState, Requestor};
    pub use gridsec_ogsa::client::{OgsaClient, StaticCredential};
    pub use gridsec_ogsa::hosting::HostingEnvironment;
    pub use gridsec_ogsa::service::{GridService, RequestContext};
    pub use gridsec_pki::ca::CertificateAuthority;
    pub use gridsec_pki::credential::Credential;
    pub use gridsec_pki::name::DistinguishedName;
    pub use gridsec_pki::proxy::{issue_proxy, ProxyType};
    pub use gridsec_pki::store::{CrlStore, TrustStore};
    pub use gridsec_pki::validate::{validate_chain, EffectiveRights, ValidatedIdentity};
    pub use gridsec_testbed::clock::SimClock;
    pub use gridsec_testbed::net::Network;
    pub use gridsec_testbed::os::SimOs;
    pub use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
    pub use gridsec_wsse::soap::Envelope;
    pub use gridsec_xml::Element;
}
