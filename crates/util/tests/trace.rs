//! Tests for the deterministic trace subsystem: span nesting and
//! parent-id invariants, histogram bucket math, ring bounding, metric
//! snapshots, and byte-identical dumps under a manual clock.

use gridsec_util::sync::Mutex;
use gridsec_util::trace::{self, bucket_index, bucket_upper, Histogram, MetricsSnapshot, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn manual_clock(tracer: &Tracer) -> Arc<AtomicU64> {
    let t = Arc::new(AtomicU64::new(0));
    let tt = t.clone();
    tracer.set_clock(move || tt.load(Ordering::SeqCst));
    t
}

#[test]
fn span_ids_are_sequential_and_parents_nest() {
    let tr = Tracer::new();
    let _g = trace::install(&tr);
    let a = trace::span("a");
    assert_eq!(a.id(), 1);
    let b = trace::span("b");
    assert_eq!(b.id(), 2);
    drop(b);
    let c = trace::span("c");
    assert_eq!(c.id(), 3);
    drop(c);
    drop(a);
    let d = trace::span("d");
    assert_eq!(d.id(), 4);
    drop(d);

    let dump = tr.dump();
    // b and c are children of a; d is a root again after a closed.
    assert!(dump.contains("open #1 parent=#0 a"), "{dump}");
    assert!(dump.contains("open #2 parent=#1 b"), "{dump}");
    assert!(dump.contains("open #3 parent=#1 c"), "{dump}");
    assert!(dump.contains("open #4 parent=#0 d"), "{dump}");
}

#[test]
fn every_open_has_matching_close_and_events_carry_enclosing_span() {
    let tr = Tracer::new();
    let _g = trace::install(&tr);
    {
        let _a = trace::span("outer");
        trace::event("step1", "");
        {
            let _b = trace::span_with("inner", "peer=cas");
            trace::event("step2", "detail");
        }
        trace::event("step3", "");
    }
    let dump = tr.dump();
    let opens = dump.matches(" open #").count();
    let closes = dump.matches(" close #").count();
    assert_eq!(opens, 2, "{dump}");
    assert_eq!(closes, 2, "{dump}");
    assert!(dump.contains("event #1 step1"), "{dump}");
    assert!(dump.contains("event #2 step2 detail"), "{dump}");
    assert!(dump.contains("event #1 step3"), "{dump}");
    assert!(dump.contains("open #2 parent=#1 inner peer=cas"), "{dump}");
    // Close lines appear innermost-first.
    let inner_close = dump.find("close #2 inner").unwrap();
    let outer_close = dump.find("close #1 outer").unwrap();
    assert!(inner_close < outer_close);
}

#[test]
fn failed_spans_record_error_outcome() {
    let tr = Tracer::new();
    let _g = trace::install(&tr);
    let err: Result<(), String> = trace::spanned("doomed", || Err("boom".to_string()));
    assert!(err.is_err());
    let dump = tr.dump();
    assert!(dump.contains("close #1 doomed dur=0 err:boom"), "{dump}");
}

#[test]
fn histogram_bucket_math() {
    // Bucket 0 holds only zero; bucket i >= 1 holds [2^(i-1), 2^i - 1].
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(7), 3);
    assert_eq!(bucket_index(8), 4);
    assert_eq!(bucket_index(u64::MAX), 64);
    for i in 1..64usize {
        // Boundaries: 2^(i-1) and 2^i - 1 land in bucket i.
        assert_eq!(bucket_index(1u64 << (i - 1)), i);
        assert_eq!(bucket_index((1u64 << i) - 1), i);
    }
    assert_eq!(bucket_upper(0), 0);
    assert_eq!(bucket_upper(1), 1);
    assert_eq!(bucket_upper(3), 7);
    assert_eq!(bucket_upper(64), u64::MAX);
}

#[test]
fn histogram_summary_and_quantiles() {
    let mut h = Histogram::default();
    for v in [0u64, 1, 2, 3, 4, 100] {
        h.record(v);
    }
    let s = h.summary();
    assert_eq!(s.count, 6);
    assert_eq!(s.sum, 110);
    assert_eq!(s.min, 0);
    assert_eq!(s.max, 100);
    // Median rank 3 -> value 2, bucket [2,3] -> upper bound 3.
    assert_eq!(s.median, 3);
    // p95 rank 6 -> value 100, bucket [64,127] -> upper 127 clamped to max.
    assert_eq!(s.p95, 100);
    // Empty histogram is all-zero.
    assert_eq!(Histogram::default().summary(), Default::default());
    // Single value: every quantile is that value (clamped both ways).
    let mut one = Histogram::default();
    one.record(5);
    assert_eq!(one.quantile(0.0), 5);
    assert_eq!(one.quantile(0.5), 5);
    assert_eq!(one.quantile(1.0), 5);
}

#[test]
fn flight_ring_is_bounded_and_counts_evictions() {
    let tr = Tracer::with_capacity(4);
    let _g = trace::install(&tr);
    for i in 0..10 {
        trace::event(&format!("e{i}"), "");
    }
    let dump = tr.dump();
    assert!(dump.starts_with("trace entries=4 evicted=6\n"), "{dump}");
    assert!(dump.contains("e9"), "{dump}");
    assert!(!dump.contains("e5 "), "{dump}");
}

#[test]
fn counters_and_histograms_snapshot_deterministically() {
    let tr = Tracer::new();
    let _g = trace::install(&tr);
    trace::add("rpc.retransmits", 2);
    trace::add("rpc.retransmits", 3);
    trace::add("bytes.sent", 512);
    trace::record("latency.secs", 7);
    trace::record("latency.secs", 9);
    let m = tr.metrics();
    assert_eq!(m.counters["rpc.retransmits"], 5);
    assert_eq!(m.counters["bytes.sent"], 512);
    assert_eq!(m.hists["latency.secs"].count, 2);
    assert_eq!(m.hists["latency.secs"].sum, 16);
    // BTreeMap ordering makes the render stable: bytes before rpc.
    let rendered = m.render();
    let bytes_at = rendered.find("counter bytes.sent").unwrap();
    let rpc_at = rendered.find("counter rpc.retransmits").unwrap();
    assert!(bytes_at < rpc_at, "{rendered}");
}

#[test]
fn snapshot_prefix_and_merge() {
    let tr = Tracer::new();
    tr.add("calls", 1);
    tr.record("lat", 4);
    let a = tr.metrics().prefixed("fig1");
    assert!(a.counters.contains_key("fig1.calls"));
    assert!(a.hists.contains_key("fig1.lat"));
    let mut merged = MetricsSnapshot::default();
    merged.merge(&a);
    merged.merge(&tr.metrics().prefixed("fig2"));
    assert_eq!(merged.counters.len(), 2);
    assert_eq!(merged.hists.len(), 2);
    // Counter collision adds.
    merged.merge(&a);
    assert_eq!(merged.counters["fig1.calls"], 2);
}

#[test]
fn identical_runs_produce_byte_identical_dumps() {
    let run = || {
        let tr = Tracer::new();
        let clock = manual_clock(&tr);
        let _g = trace::install(&tr);
        {
            let mut s = trace::span_with("handshake", "peer=svc");
            clock.store(3, Ordering::SeqCst);
            trace::event("token", "len=42");
            trace::add("bytes", 42);
            clock.store(5, Ordering::SeqCst);
            s.fail("timeout");
        }
        clock.store(8, Ordering::SeqCst);
        {
            let _s = trace::span("retry");
            trace::record("backoff.secs", 16);
        }
        format!("{}{}", tr.dump(), tr.metrics().render())
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
    assert!(first.contains("[t=5] close #1 handshake dur=5 err:timeout"));
}

#[test]
fn install_guard_restores_previous_tracer() {
    let outer = Tracer::new();
    let inner = Tracer::new();
    let _g1 = trace::install(&outer);
    {
        let _g2 = trace::install(&inner);
        trace::event("inner-only", "");
    }
    trace::event("outer-only", "");
    assert!(inner.dump().contains("inner-only"));
    assert!(!inner.dump().contains("outer-only"));
    assert!(outer.dump().contains("outer-only"));
    assert!(!outer.dump().contains("inner-only"));
}

#[test]
fn flight_dump_writes_configured_path() {
    let dir = std::env::temp_dir().join("gridsec-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("flight-{}.txt", std::process::id()));
    let tr = Tracer::new();
    tr.set_flight_path(path.to_string_lossy().to_string());
    tr.event("last-words", "budget exhausted");
    tr.add("attempts", 8);
    let dumped = tr.flight_dump("retry budget exhausted");
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert_eq!(dumped, on_disk);
    assert!(on_disk.contains("flight recorder dump: retry budget exhausted"));
    assert!(on_disk.contains("last-words"));
    assert!(on_disk.contains("counter attempts = 8"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn panic_guard_dumps_ring_on_unwind() {
    let tr = Tracer::new();
    let dir = std::env::temp_dir().join("gridsec-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("panic-{}.txt", std::process::id()));
    tr.set_flight_path(path.to_string_lossy().to_string());
    let tr2 = tr.clone();
    let result = std::panic::catch_unwind(move || {
        let _dump = trace::dump_on_panic(&tr2, "chaos scenario");
        tr2.event("about-to-fail", "");
        panic!("assertion failed");
    });
    assert!(result.is_err());
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert!(on_disk.contains("panic in chaos scenario"), "{on_disk}");
    assert!(on_disk.contains("about-to-fail"), "{on_disk}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn write_bench_json_emits_metrics_rows() {
    let dir = std::env::temp_dir().join(format!("gridsec-trace-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tr = Tracer::new();
    tr.add("fig1.retransmits", 3);
    tr.record("fig1.handshake.secs", 12);
    let path = tr
        .metrics()
        .write_bench_json("trace_smoke", &dir.to_string_lossy())
        .unwrap();
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(body.contains("\"group\": \"trace_smoke\""), "{body}");
    assert!(
        body.contains("{\"name\": \"fig1.retransmits\", \"kind\": \"counter\", \"value\": 3}"),
        "{body}"
    );
    assert!(
        body.contains("\"name\": \"fig1.handshake.secs\", \"kind\": \"hist\""),
        "{body}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sink_sees_events_with_span_names() {
    let tr = Tracer::new();
    let clock = manual_clock(&tr);
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = seen.clone();
    tr.set_sink(Box::new(move |r| {
        seen2.lock().push((r.t, r.span, r.name, r.detail));
    }));
    let _g = trace::install(&tr);
    {
        let _s = trace::span("cas.fetch");
        clock.store(4, Ordering::SeqCst);
        trace::event("assertion.issued", "user=alice");
    }
    let records = seen.lock().clone();
    assert_eq!(
        records,
        vec![(
            4,
            "cas.fetch".to_string(),
            "assertion.issued".to_string(),
            "user=alice".to_string()
        )]
    );
}
