//! Property tests for the in-tree shims the rest of the workspace
//! leans on: `channel` (FIFO order, disconnect semantics, multi-
//! producer interleaving) and `rng::DetRng` (seed determinism, stream
//! independence). These were the only untested `gridsec-util` modules;
//! the fault layer and the RPC retry loop are built directly on them,
//! so a bug here would masquerade as a protocol bug three crates up.

use gridsec_util::channel::{self, TryRecvError};
use gridsec_util::check::check;
use gridsec_util::rng::{DetRng, RngCore};

#[test]
fn channel_preserves_fifo_order() {
    check("channel_fifo", 200, |g| {
        let (tx, rx) = channel::unbounded();
        let items = g.vec(0..64, |g| g.u64());
        for &x in &items {
            tx.send(x).unwrap();
        }
        let received: Vec<u64> = rx.try_iter().collect();
        assert_eq!(received, items);
    });
}

#[test]
fn channel_drains_queued_items_after_sender_drop() {
    check("channel_drain_then_disconnect", 200, |g| {
        let (tx, rx) = channel::unbounded();
        let items = g.vec(0..32, |g| g.u32());
        for &x in &items {
            tx.send(x).unwrap();
        }
        drop(tx);
        // Everything queued before the disconnect is still delivered...
        for &x in &items {
            assert_eq!(rx.try_recv().unwrap(), x);
        }
        // ...and only then does the channel report disconnection.
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        assert!(rx.recv().is_err());
    });
}

#[test]
fn channel_send_fails_once_receiver_is_gone() {
    check("channel_send_after_receiver_drop", 50, |g| {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        let v = g.u64();
        // The error returns the rejected value, so callers can recover it.
        let err = tx.send(v).unwrap_err();
        assert_eq!(err.0, v);
    });
}

#[test]
fn channel_empty_try_recv_is_empty_not_disconnected() {
    let (tx, rx) = channel::unbounded::<u8>();
    assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    tx.send(7).unwrap();
    assert_eq!(rx.try_recv().unwrap(), 7);
    assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
}

#[test]
fn channel_multi_producer_interleaving_loses_nothing() {
    check("channel_multi_producer", 100, |g| {
        let (tx, rx) = channel::unbounded();
        let producers = g.usize_in(1..5);
        let per_producer = g.usize_in(0..32);
        let mut handles = Vec::new();
        for p in 0..producers {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    tx.send((p, i)).unwrap();
                }
            }));
        }
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<(usize, usize)> = Vec::new();
        while let Ok(x) = rx.recv() {
            got.push(x);
        }
        // Every (producer, index) pair arrives exactly once, and each
        // producer's own messages stay in their send order even though
        // the global interleaving is scheduler-dependent.
        assert_eq!(got.len(), producers * per_producer);
        for p in 0..producers {
            let from_p: Vec<usize> = got
                .iter()
                .filter(|(q, _)| *q == p)
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(from_p, (0..per_producer).collect::<Vec<_>>());
        }
    });
}

#[test]
fn detrng_same_seed_same_stream() {
    check("detrng_seed_determinism", 200, |g| {
        let seed = g.u64();
        let mut a = DetRng::seed_from_u64(seed);
        let mut b = DetRng::seed_from_u64(seed);
        for _ in 0..g.usize_in(1..64) {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut buf_a = vec![0u8; g.usize_in(0..128)];
        let mut buf_b = vec![0u8; buf_a.len()];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
    });
}

#[test]
fn detrng_different_seeds_diverge() {
    check("detrng_stream_independence", 200, |g| {
        let seed = g.u64();
        let other = seed ^ (1u64 << g.u64_in(0..64));
        let mut a = DetRng::seed_from_u64(seed);
        let mut b = DetRng::seed_from_u64(other);
        // A single-bit seed flip must decorrelate the streams: within a
        // modest window the sequences cannot be identical.
        let window: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let other_window: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(window, other_window, "seeds {seed:#x} vs {other:#x}");
    });
}

#[test]
fn detrng_byte_and_word_apis_are_consistent() {
    check("detrng_seed_bytes_consistency", 100, |g| {
        let seed_bytes = g.bytes(0..48);
        let mut a = DetRng::from_seed_bytes(&seed_bytes);
        let mut b = DetRng::from_seed_bytes(&seed_bytes);
        assert_eq!(a.next_u32(), b.next_u32());
        assert_eq!(a.next_u64(), b.next_u64());
        let mut x = [0u8; 24];
        let mut y = [0u8; 24];
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        assert_eq!(x, y);
    });
}
