//! Property tests for the deterministic token bucket.
//!
//! Two invariants the striped-transfer engine leans on:
//!
//! 1. **Budget**: over *any* seeded schedule of `take_at`/`try_take`
//!    calls, the bucket never grants more than its initial store plus
//!    the refill budget up to its frontier tick — and grant times are
//!    monotone even when callers hand it a non-monotone clock.
//! 2. **Convergence**: greedy draining settles onto the configured
//!    rate — total grants land within one burst-plus-rate of the exact
//!    `burst + rate * elapsed` budget line.

use gridsec_util::check::check;
use gridsec_util::throttle::TokenBucket;

#[test]
fn grants_never_exceed_the_rate_budget_on_any_schedule() {
    check("throttle_budget", 192, |g| {
        let mut b = TokenBucket::new(g.u64_in(1..64), g.u64_in(1..256));
        let (rate, burst) = (b.rate(), b.burst());
        let mut now = 0u64;
        let mut last_grant = 0u64;
        let ops = g.usize_in(1..80);
        for _ in 0..ops {
            // A deliberately messy clock: sometimes stalled, sometimes
            // jumping, sometimes replaying an older tick via try_take.
            now += g.u64_in(0..4);
            if g.bool() {
                let n = g.u64_in(1..2 * burst + 1);
                let at = b.take_at(now, n);
                assert!(
                    at >= last_grant,
                    "grant times regressed: {at} after {last_grant}"
                );
                last_grant = at;
                now = now.max(at);
            } else {
                let n = g.u64_in(1..burst + 1);
                let stale = now.saturating_sub(g.u64_in(0..8));
                let _ = b.try_take(stale, n);
            }
            let frontier = now.max(last_grant);
            assert!(
                b.granted() <= burst + rate * frontier,
                "granted {} exceeds budget {} at frontier {frontier}",
                b.granted(),
                burst + rate * frontier
            );
        }
    });
}

#[test]
fn greedy_draining_converges_to_the_configured_rate() {
    check("throttle_rate_convergence", 128, |g| {
        let mut b = TokenBucket::new(g.u64_in(1..32), g.u64_in(1..128));
        let (rate, burst) = (b.rate(), b.burst());
        let n = g.u64_in(1..burst + 1);
        let mut now = 0u64;
        for _ in 0..400 {
            now = b.take_at(now, n);
        }
        // 400 requests of ≥1 token always outrun a ≤127-token store, so
        // the bucket has gone token-limited. Waits are whole ticks, so
        // the achievable long-run rate is the quantized `n/ceil(n/rate)`
        // (equal to `rate` whenever rate divides n): greedy draining
        // must land between that floor and the exact budget line.
        assert!(now > 0, "drain never became rate-limited");
        let budget = burst + rate * now;
        assert!(
            b.granted() <= budget,
            "granted {} over budget {budget}",
            b.granted()
        );
        let round_ticks = n.div_ceil(rate);
        assert!(
            b.granted() * round_ticks >= n * now,
            "granted {} under quantized rate floor {}/{round_ticks} per tick over {now} ticks",
            b.granted(),
            n
        );
        assert!(b.waits() >= 1, "greedy drain never waited");
    });
}
