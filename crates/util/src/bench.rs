//! A small micro-benchmark runner with a criterion-shaped API.
//!
//! Replaces the workspace's former `criterion` dependency. The surface
//! mirrors the subset the `gridsec-bench` targets use — benchmark groups,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`/`iter_batched`, and the `criterion_group!`/
//! `criterion_main!` macros — so bench scenario code ports with only a
//! `use` change.
//!
//! Each group writes `BENCH_<group>.json` (into `GRIDSEC_BENCH_DIR`, or
//! the current directory) containing per-benchmark iteration counts and
//! min/mean/median/p95/max nanosecond statistics, and prints a one-line
//! human summary per benchmark. The perf trajectory of the repo is
//! recorded from these files.

use std::hint::black_box;
use std::time::Instant;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Target wall-clock time per sample; iterations are batched up to this.
const TARGET_SAMPLE_NS: f64 = 2_000_000.0;
/// Soft cap on a single benchmark's total measured time.
const TARGET_TOTAL_NS: f64 = 1_000_000_000.0;

/// Top-level benchmark driver; create one per bench binary (the
/// [`criterion_main!`] macro does this).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group. Results are written when the group
    /// is finished (or dropped).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
            results: Vec::new(),
            written: false,
        }
    }
}

/// Throughput annotation attached to subsequent benchmarks in a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `new("validate", 8)` displays as `validate/8`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; this runner always times one batch per sample).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

#[derive(Clone, Debug)]
struct BenchResult {
    name: String,
    samples: usize,
    iters_per_sample: u64,
    min_ns: f64,
    mean_ns: f64,
    median_ns: f64,
    p95_ns: f64,
    max_ns: f64,
    throughput_bytes: Option<u64>,
}

/// A named collection of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
    written: bool,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measure a routine.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            per_iter_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        self.record(id, bencher);
        self
    }

    /// Measure a routine against a prepared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            per_iter_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher, input);
        self.record(id.id, bencher);
        self
    }

    fn record(&mut self, name: String, bencher: Bencher) {
        let mut ns = bencher.per_iter_ns;
        if ns.is_empty() {
            return; // routine never called b.iter — nothing to record
        }
        ns.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| -> f64 {
            let idx = ((ns.len() - 1) as f64 * p).round() as usize;
            ns[idx]
        };
        let result = BenchResult {
            name,
            samples: ns.len(),
            iters_per_sample: bencher.iters_per_sample,
            min_ns: ns[0],
            mean_ns: ns.iter().sum::<f64>() / ns.len() as f64,
            median_ns: pct(0.5),
            p95_ns: pct(0.95),
            max_ns: *ns.last().unwrap(),
            throughput_bytes: match self.throughput {
                Some(Throughput::Bytes(b)) => Some(b),
                _ => None,
            },
        };
        println!(
            "[bench] {}/{}: median {} p95 {} ({} samples x {} iters)",
            self.name,
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
            result.samples,
            result.iters_per_sample,
        );
        self.results.push(result);
    }

    /// Write this group's `BENCH_<group>.json` report.
    pub fn finish(mut self) {
        self.write_report();
    }

    fn write_report(&mut self) {
        if self.written {
            return;
        }
        self.written = true;
        if self.results.is_empty() {
            return;
        }
        let dir = std::env::var("GRIDSEC_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = format!("{}/BENCH_{}.json", dir, self.name);
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"group\": \"{}\",\n", self.name));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
                 \"min_ns\": {:.1}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                 \"p95_ns\": {:.1}, \"max_ns\": {:.1}, \"throughput_bytes\": {}}}{}\n",
                r.name,
                r.samples,
                r.iters_per_sample,
                r.min_ns,
                r.mean_ns,
                r.median_ns,
                r.p95_ns,
                r.max_ns,
                r.throughput_bytes
                    .map_or("null".to_string(), |b| b.to_string()),
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("[bench] WARNING: could not write {path}: {e}");
        }
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.write_report();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Passed to benchmark routines; call [`Bencher::iter`] or
/// [`Bencher::iter_batched`] exactly once with the code under test.
pub struct Bencher {
    sample_size: usize,
    per_iter_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Warm up, pick a batch size targeting ~2 ms per sample, then record
    /// `sample_size` samples of per-iteration time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup + estimate.
        let start = Instant::now();
        black_box(routine());
        let mut est_ns = start.elapsed().as_nanos() as f64;
        if est_ns < 1.0 {
            est_ns = 1.0;
        }
        let mut iters = (TARGET_SAMPLE_NS / est_ns).clamp(1.0, 1_000_000.0) as u64;
        // Keep the whole benchmark under the total budget.
        let budget = (TARGET_TOTAL_NS / (est_ns * self.sample_size as f64)).max(1.0) as u64;
        iters = iters.min(budget);
        self.iters_per_sample = iters;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.per_iter_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Like [`Bencher::iter`], but with a per-sample `setup` whose cost is
    /// excluded from the measurement (one setup + one routine per sample).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warmup round (not recorded).
        black_box(routine(setup()));
        self.iters_per_sample = 1;
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.per_iter_ns.push(t.elapsed().as_nanos() as f64);
        }
    }
}

/// Combine bench functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emit a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples_and_report_is_written() {
        let dir = std::env::temp_dir().join("gridsec_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("GRIDSEC_BENCH_DIR", &dir);
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("utiltest");
            g.sample_size(5);
            g.throughput(Throughput::Bytes(128));
            g.bench_function("spin", |b| {
                b.iter(|| {
                    let mut x = 0u64;
                    for i in 0..100u64 {
                        x = x.wrapping_add(i * i);
                    }
                    x
                })
            });
            g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
                b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::SmallInput)
            });
            g.finish();
        }
        std::env::remove_var("GRIDSEC_BENCH_DIR");
        let json = std::fs::read_to_string(dir.join("BENCH_utiltest.json")).unwrap();
        assert!(json.contains("\"group\": \"utiltest\""), "{json}");
        assert!(json.contains("\"name\": \"spin\""), "{json}");
        assert!(json.contains("\"name\": \"param/4\""), "{json}");
        assert!(json.contains("median_ns"), "{json}");
        assert!(json.contains("\"throughput_bytes\": 128"), "{json}");
    }
}
