//! Non-poisoning mutex and reader–writer lock.
//!
//! Thin wrappers over `std::sync` that return guards directly from
//! `lock()`/`read()`/`write()` instead of a `Result`, matching the
//! `parking_lot` call-site signature used across the workspace. A panic
//! while holding a lock does not poison it: the next locker simply
//! recovers the guard. That is the right semantics for this codebase —
//! every protected structure is a plain map/vector that remains valid at
//! any suspension point.

/// A guard for [`Mutex`]; derefs to the protected value.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// A shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// An exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired. Recovers from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access through a `&mut` receiver (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader–writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared read access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Block until exclusive write access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Exclusive access through a `&mut` receiver (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_mutual_exclusion_under_contention() {
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *counter.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8000);
    }

    #[test]
    fn mutex_survives_panic_without_poisoning() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("die while holding the lock");
        })
        .join();
        // parking_lot semantics: the next locker just gets the guard.
        assert_eq!(m.lock().len(), 3);
    }

    #[test]
    fn mutex_try_lock() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u64));
        {
            let _r1 = l.read();
            let _r2 = l.read(); // concurrent readers allowed
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    *l.write() += 1;
                }
            }));
        }
        for _ in 0..4 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let _ = *l.read();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 2000);
    }

    #[test]
    fn rwlock_survives_panic_without_poisoning() {
        let l = Arc::new(RwLock::new(7u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("die while writing");
        })
        .join();
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m = Mutex::new(String::from("a"));
        m.get_mut().push('b');
        assert_eq!(m.into_inner(), "ab");
        let mut l = RwLock::new(1);
        *l.get_mut() = 2;
        assert_eq!(l.into_inner(), 2);
    }
}
