//! # gridsec-util
//!
//! Self-contained infrastructure shared by the whole `gridsec` workspace,
//! replacing every crates.io dependency so the workspace builds hermetically
//! with zero registry access (the hosting-environment argument of Welch et
//! al. §4: security infrastructure should own its dependency closure).
//!
//! * [`sync`] — non-poisoning [`sync::Mutex`]/[`sync::RwLock`] wrappers over
//!   `std::sync` with the `parking_lot` guard-returning signatures.
//! * [`channel`] — unbounded MPSC channel over `std::sync::mpsc` with the
//!   `crossbeam::channel` surface used by the testbed.
//! * [`chacha`] — the ChaCha20 block core (RFC 8439), shared by
//!   `gridsec-crypto`'s cipher/AEAD/DRBG and by [`rng::DetRng`].
//! * [`rng`] — the [`rng::RngCore`] entropy abstraction, a deterministic
//!   seedable ChaCha-backed RNG, and an OS entropy source.
//! * [`check`] — a minimal property-testing harness (seeded cases,
//!   failing-seed reporting, shrink-by-replay).
//! * [`bench`] — a criterion-shaped micro-benchmark runner emitting
//!   median/p95 JSON reports (`BENCH_*.json`).
//! * [`retry`] — the shared exponential-backoff [`retry::RetryPolicy`]
//!   used by every client path that crosses the simulated network.
//! * [`throttle`] — a deterministic token-bucket bandwidth limiter
//!   driven by an explicit caller clock (the striped-GridFTP rate cap).
//! * [`trace`] — deterministic structured tracing/metrics with a bounded
//!   flight recorder; every security flow emits nested spans through it.

#![forbid(unsafe_code)]

pub mod bench;
pub mod chacha;
pub mod channel;
pub mod check;
pub mod retry;
pub mod rng;
pub mod sync;
pub mod throttle;
pub mod trace;
