//! Unbounded multi-producer single-consumer channel.
//!
//! Backed by `std::sync::mpsc`, exposing the `crossbeam::channel` call
//! surface the testbed's in-memory network uses: `unbounded()`, cloneable
//! senders, and `Result`-returning `recv`/`try_recv` that report
//! disconnection once every sender is gone and the queue is drained.

use std::sync::mpsc;

/// Create an unbounded channel, returning the (sender, receiver) pair.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

/// Error from [`Sender::send`]: the receiver was dropped. Carries the
/// undelivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error from [`Receiver::recv`]: every sender was dropped and the queue
/// is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error from [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message queued right now, but senders remain.
    Empty,
    /// Every sender was dropped and the queue is empty.
    Disconnected,
}

/// The sending half; clone freely across threads.
#[derive(Debug)]
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Queue `value`; fails iff the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0
            .send(value)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// The receiving half.
#[derive(Debug)]
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Drain every queued message without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        self.0.try_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        tx.send(3).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn try_recv_empty_vs_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_drains_queue_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send("a").unwrap();
        tx2.send("b").unwrap();
        drop(tx);
        drop(tx2);
        // Queued messages are still delivered...
        assert_eq!(rx.recv(), Ok("a"));
        assert_eq!(rx.recv(), Ok("b"));
        // ...then disconnection is reported.
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_errors_with_payload() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(42), Err(SendError(42)));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..100u64 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got.len(), 400);
        assert_eq!(got[0], 0);
        assert_eq!(got[399], 399);
    }
}
