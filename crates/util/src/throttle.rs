//! Deterministic token-bucket bandwidth throttling.
//!
//! The striped GridFTP engine measures time in simulated ticks, not
//! wall clock, so its bandwidth cap must be a pure function of the
//! call sequence: [`TokenBucket`] refills only when the caller hands it
//! an explicit `now`, never by reading a clock. Two runs that present
//! the same sequence of `(now, tokens)` requests observe byte-identical
//! grant times, which is what lets the chaos gates byte-compare striped
//! transcripts across processes.
//!
//! The bucket holds at most `burst` tokens and gains `rate` tokens per
//! tick. [`TokenBucket::take_at`] is the blocking-shaped primitive: it
//! returns the earliest tick at or after `now` when the request can be
//! granted, and debits it — callers advance their own timeline to the
//! returned tick. Rate-trace counters (grants, waits, waited ticks)
//! accumulate inside the bucket so the transfer engine can mirror them
//! into its metrics snapshot.

/// A deterministic token bucket: `rate` tokens per tick, capacity
/// `burst`, refilled lazily from an explicit caller-supplied clock.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: u64,
    burst: u64,
    tokens: u64,
    last_refill: u64,
    granted: u64,
    waits: u64,
    waited_ticks: u64,
}

impl TokenBucket {
    /// Create a bucket granting `rate` tokens per tick with capacity
    /// `burst`, starting full at tick 0. `rate` is clamped to ≥ 1 and
    /// `burst` to ≥ `rate` so a maximal single request can always be
    /// served within one tick of refill.
    pub fn new(rate: u64, burst: u64) -> Self {
        let rate = rate.max(1);
        let burst = burst.max(rate);
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last_refill: 0,
            granted: 0,
            waits: 0,
            waited_ticks: 0,
        }
    }

    /// Configured refill rate (tokens per tick).
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Configured capacity (maximum stored tokens).
    pub fn burst(&self) -> u64 {
        self.burst
    }

    /// Refill for the ticks elapsed since the last refill. A `now`
    /// earlier than the bucket's internal frontier is a no-op: the
    /// bucket is a shared serial resource, so callers on lagging
    /// per-stripe timelines observe it at its frontier time.
    pub fn advance_to(&mut self, now: u64) {
        if now <= self.last_refill {
            return;
        }
        let elapsed = now - self.last_refill;
        self.tokens = self
            .tokens
            .saturating_add(elapsed.saturating_mul(self.rate))
            .min(self.burst);
        self.last_refill = now;
    }

    /// Take `n` tokens at `now` if available; `false` leaves the bucket
    /// untouched apart from the refill.
    pub fn try_take(&mut self, now: u64, n: u64) -> bool {
        self.advance_to(now);
        if n <= self.tokens {
            self.tokens -= n;
            self.granted += n;
            true
        } else {
            false
        }
    }

    /// Earliest tick `>= max(now, frontier)` at which `n` tokens can be
    /// granted; the tokens are debited at that tick and the grant time
    /// returned. Requests larger than `burst` are clamped to `burst`
    /// (they could never be satisfied whole).
    pub fn take_at(&mut self, now: u64, n: u64) -> u64 {
        let n = n.min(self.burst);
        let now = now.max(self.last_refill);
        self.advance_to(now);
        if n <= self.tokens {
            self.tokens -= n;
            self.granted += n;
            return now;
        }
        let deficit = n - self.tokens;
        let wait = deficit.div_ceil(self.rate);
        let at = now + wait;
        self.advance_to(at);
        self.tokens -= n;
        self.granted += n;
        self.waits += 1;
        self.waited_ticks += wait;
        at
    }

    /// Total tokens granted since creation.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Requests that had to wait for a refill.
    pub fn waits(&self) -> u64 {
        self.waits
    }

    /// Total ticks of imposed waiting across all delayed grants.
    pub fn waited_ticks(&self) -> u64 {
        self.waited_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_grants_burst_immediately() {
        let mut b = TokenBucket::new(4, 16);
        assert_eq!(b.take_at(0, 16), 0);
        assert_eq!(b.granted(), 16);
        assert_eq!(b.waits(), 0);
    }

    #[test]
    fn empty_bucket_waits_for_refill() {
        let mut b = TokenBucket::new(4, 16);
        assert_eq!(b.take_at(0, 16), 0);
        // 8 tokens need ceil(8/4)=2 ticks of refill.
        assert_eq!(b.take_at(0, 8), 2);
        assert_eq!(b.waits(), 1);
        assert_eq!(b.waited_ticks(), 2);
    }

    #[test]
    fn try_take_refuses_without_side_effects() {
        let mut b = TokenBucket::new(1, 4);
        assert!(b.try_take(0, 4));
        assert!(!b.try_take(0, 1));
        assert_eq!(b.granted(), 4);
        // One tick later one token exists.
        assert!(b.try_take(1, 1));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(10, 20);
        assert_eq!(b.take_at(0, 20), 0);
        // A long idle period cannot store more than `burst`.
        b.advance_to(1_000);
        assert!(b.try_take(1_000, 20));
        assert!(!b.try_take(1_000, 1));
    }

    #[test]
    fn oversized_requests_clamp_to_burst() {
        let mut b = TokenBucket::new(2, 8);
        let at = b.take_at(0, 1_000);
        assert_eq!(at, 0, "clamped to the full burst, available at t=0");
        assert_eq!(b.granted(), 8);
    }

    #[test]
    fn grant_times_are_monotone_under_greedy_draining() {
        let mut b = TokenBucket::new(3, 9);
        let mut now = 0;
        let mut last = 0;
        for _ in 0..50 {
            let at = b.take_at(now, 5);
            assert!(at >= last);
            last = at;
            now = at;
        }
    }
}
