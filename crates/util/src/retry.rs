//! Retry/backoff policy shared by every client-side network path.
//!
//! The policy is pure arithmetic: it owns no clock and performs no
//! sleeping. Callers iterate the [`RetryPolicy::schedule`] and decide
//! themselves how to wait (the testbed advances a `SimClock`; a real
//! deployment would sleep). Keeping the math here — below every other
//! crate in the dependency graph — lets `gridsec-testbed`,
//! `gridsec-gssapi`, `gridsec-tls`, `gridsec-ogsa`, `gridsec-authz`,
//! and `gridsec-gram` all share one backoff shape without cycles.

/// An exponential-backoff retry policy (seconds, logical time).
///
/// Attempt `i` (0-based) gets a response timeout of
/// `min(base_timeout * multiplier^i, max_timeout)`; when it expires the
/// caller retransmits immediately, so the timeout sequence *is* the
/// backoff: the interval between retransmissions grows exponentially
/// and the worst-case total wait is `sum(timeouts)`
/// ([`RetryPolicy::worst_case_total`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (≥ 1). The first try counts.
    pub max_attempts: u32,
    /// Timeout of the first attempt, in seconds (≥ 1).
    pub base_timeout: u64,
    /// Timeout growth factor per attempt (≥ 1).
    pub multiplier: u64,
    /// Upper clamp on any single attempt's timeout, in seconds.
    pub max_timeout: u64,
}

impl Default for RetryPolicy {
    /// 5 attempts at 2s, 4s, 8s, 16s, 30s — tuned so a full exhaustion
    /// (~120s including backoff waits) stays well inside the 300s
    /// message-freshness window the OGSA pipeline enforces.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_timeout: 2,
            multiplier: 2,
            max_timeout: 30,
        }
    }
}

impl RetryPolicy {
    /// A policy that tries exactly once with `timeout` seconds and never
    /// retransmits.
    pub fn no_retry(timeout: u64) -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_timeout: timeout.max(1),
            multiplier: 1,
            max_timeout: timeout.max(1),
        }
    }

    /// Timeout (seconds) for 0-based attempt `attempt`.
    pub fn timeout_for(&self, attempt: u32) -> u64 {
        let mut t = self.base_timeout.max(1);
        for _ in 0..attempt {
            t = t.saturating_mul(self.multiplier.max(1));
            if t >= self.max_timeout {
                return self.max_timeout.max(1);
            }
        }
        t.min(self.max_timeout).max(1)
    }

    /// Iterator of `(attempt, timeout_secs)` pairs, one per allowed try.
    pub fn schedule(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        (0..self.max_attempts.max(1)).map(move |i| (i, self.timeout_for(i)))
    }

    /// Worst-case total seconds a caller can spend before giving up:
    /// the sum of every attempt's timeout.
    pub fn worst_case_total(&self) -> u64 {
        self.schedule()
            .fold(0u64, |acc, (_, t)| acc.saturating_add(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_is_exponential_and_clamped() {
        let p = RetryPolicy::default();
        let sched: Vec<(u32, u64)> = p.schedule().collect();
        assert_eq!(sched, vec![(0, 2), (1, 4), (2, 8), (3, 16), (4, 30)]);
    }

    #[test]
    fn no_retry_tries_once() {
        let p = RetryPolicy::no_retry(7);
        assert_eq!(p.schedule().collect::<Vec<_>>(), vec![(0, 7)]);
    }

    #[test]
    fn degenerate_values_stay_sane() {
        let p = RetryPolicy {
            max_attempts: 0,
            base_timeout: 0,
            multiplier: 0,
            max_timeout: 0,
        };
        // Clamps: at least one attempt, at least 1s timeout.
        assert_eq!(p.schedule().collect::<Vec<_>>(), vec![(0, 1)]);
        assert!(p.worst_case_total() >= 1);
    }

    #[test]
    fn worst_case_total_bounds_the_call() {
        let p = RetryPolicy::default();
        // 2 + 4 + 8 + 16 + 30 = 60
        assert_eq!(p.worst_case_total(), 60);
        assert!(p.worst_case_total() < 300, "must fit the xml-sig ttl");
    }

    #[test]
    fn huge_multipliers_do_not_overflow() {
        let p = RetryPolicy {
            max_attempts: 40,
            base_timeout: u64::MAX / 2,
            multiplier: u64::MAX,
            max_timeout: u64::MAX,
        };
        assert_eq!(p.timeout_for(39), u64::MAX);
        assert_eq!(p.worst_case_total(), u64::MAX);
    }
}
