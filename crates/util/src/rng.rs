//! Entropy abstraction and a deterministic seedable RNG.
//!
//! [`RngCore`] is the workspace-wide random-source trait (the shape of
//! `rand::RngCore`, minus the fallible variant nobody used). Two
//! implementations matter:
//!
//! * [`DetRng`] here — a ChaCha20-keystream RNG with splitmix64 seed
//!   expansion, for tests, property generation, and benches.
//! * `gridsec_crypto::rng::ChaChaRng` — the stack's CSPRNG (same ChaCha
//!   core, SHA-256 seed hashing), which also implements this trait.
//!
//! [`fill_os_entropy`] seeds real runs from the operating system.

use crate::chacha;

/// A source of random bytes. Implementors only need [`RngCore::fill_bytes`].
pub trait RngCore {
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker for RNGs whose output is cryptographically strong.
pub trait CryptoRng {}

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One splitmix64 output step (Steele et al.); good avalanche for cheap
/// seed expansion. Not a keystream — only used to spread seed material
/// over the ChaCha key.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable RNG: ChaCha20 keystream under a key expanded
/// from the seed with splitmix64. Same seed → same stream, on every
/// platform. Replaces `rand::rngs::StdRng` at the workspace's test and
/// bench call sites.
#[derive(Clone, Debug)]
pub struct DetRng {
    key: [u8; 32],
    counter: u64,
    buf: [u8; 64],
    buf_pos: usize,
}

impl DetRng {
    fn from_key(key: [u8; 32]) -> Self {
        DetRng {
            key,
            counter: 0,
            buf: [0; 64],
            buf_pos: 64,
        }
    }

    /// Seed from a 64-bit integer (the `StdRng::seed_from_u64` shape).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_key(key)
    }

    /// Seed deterministically from arbitrary bytes.
    pub fn from_seed_bytes(seed: &[u8]) -> Self {
        // Fold the bytes through splitmix64, mixing in position and length
        // so permutations and prefixes of a seed produce unrelated keys.
        let mut state = SPLITMIX_GAMMA ^ (seed.len() as u64);
        let mut acc = 0u64;
        for (i, &b) in seed.iter().enumerate() {
            acc = acc.rotate_left(8) ^ u64::from(b);
            if i % 8 == 7 {
                state ^= splitmix64(&mut state) ^ acc;
            }
        }
        state ^= splitmix64(&mut state) ^ acc;
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_key(key)
    }

    fn refill(&mut self) {
        let mut nonce = [0u8; 12];
        nonce[4..12].copy_from_slice(&(self.counter >> 32).to_le_bytes());
        self.buf = chacha::block(&self.key, self.counter as u32, &nonce);
        self.counter = self.counter.wrapping_add(1);
        self.buf_pos = 0;
    }
}

impl RngCore for DetRng {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut pos = 0;
        while pos < dest.len() {
            if self.buf_pos == 64 {
                self.refill();
            }
            let take = (64 - self.buf_pos).min(dest.len() - pos);
            dest[pos..pos + take].copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            pos += take;
        }
    }
}

/// Fill `dest` with entropy from the operating system (`/dev/urandom`),
/// falling back to hasher/clock jitter if the device is unavailable.
pub fn fill_os_entropy(dest: &mut [u8]) {
    use std::io::Read;
    if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
        if f.read_exact(dest).is_ok() {
            return;
        }
    }
    // Fallback: mix ASLR, RandomState keys, the clock, and time jitter
    // through the ChaCha expansion. Not a CSPRNG-grade source, but this
    // path only runs on platforms without a random device.
    use std::hash::{BuildHasher, Hasher};
    let mut state = std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish();
    state ^= (&state as *const u64 as usize as u64).rotate_left(32);
    if let Ok(d) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        state ^= d.as_nanos() as u64;
    }
    let mut rng = DetRng::seed_from_u64(state);
    rng.fill_bytes(dest);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        let mut ba = [0u8; 333];
        let mut bb = [0u8; 333];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba[..], bb[..]);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut c = DetRng::from_seed_bytes(b"alpha");
        let mut d = DetRng::from_seed_bytes(b"alphb");
        assert_ne!(c.next_u64(), d.next_u64());
        // Length extension of the seed changes the stream too.
        let mut e = DetRng::from_seed_bytes(b"alpha\0");
        let mut f = DetRng::from_seed_bytes(b"alpha");
        assert_ne!(e.next_u64(), f.next_u64());
    }

    #[test]
    fn byte_seed_matches_across_chunked_lengths() {
        // Seeds longer than one 8-byte fold chunk still work and differ.
        let s1 = DetRng::from_seed_bytes(b"a longer seed string, 30 bytes");
        let mut s2 = DetRng::from_seed_bytes(b"a longer seed string, 30 bytes");
        let mut s1 = s1;
        assert_eq!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn chunked_reads_match_bulk() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        let mut bulk = [0u8; 200];
        a.fill_bytes(&mut bulk);
        let mut pieced = Vec::new();
        for size in [1usize, 7, 64, 128] {
            let mut buf = vec![0u8; size];
            b.fill_bytes(&mut buf);
            pieced.extend_from_slice(&buf);
        }
        assert_eq!(&bulk[..], &pieced[..]);
    }

    #[test]
    fn stream_not_trivially_repeating() {
        let mut r = DetRng::seed_from_u64(9);
        let a = r.next_u64();
        let b = r.next_u64();
        let c = r.next_u64();
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn os_entropy_fills_and_varies() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        fill_os_entropy(&mut a);
        fill_os_entropy(&mut b);
        assert_ne!(a, [0u8; 32]);
        assert_ne!(a, b);
    }
}
