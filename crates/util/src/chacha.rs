//! The ChaCha20 stream cipher core (RFC 8439).
//!
//! Lives in `gridsec-util` so that both `gridsec-crypto` (cipher, AEAD,
//! CSPRNG) and the deterministic test RNG in [`crate::rng`] share one
//! audited keystream implementation. `gridsec_crypto::chacha20` re-exports
//! this module unchanged.

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes (IETF 96-bit variant).
pub const NONCE_LEN: usize = 12;
/// Keystream block size in bytes.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574]; // "expand 32-byte k"

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Compute one 64-byte ChaCha20 keystream block for (key, counter, nonce).
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XOR `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter`. Encryption and decryption are the same operation.
pub fn xor_stream(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let ks = block(key, counter, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

/// Encrypt (or decrypt) returning a new buffer.
pub fn apply(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &[u8],
) -> Vec<u8> {
    let mut out = data.to_vec();
    xor_stream(key, nonce, initial_counter, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
        let ks = block(&key, 1, &nonce);
        assert_eq!(
            hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("000000000000004a00000000").try_into().unwrap();
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = apply(&key, &nonce, 1, plaintext);
        assert_eq!(
            hex(&ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
                .replace(' ', "")
        );
    }

    #[test]
    fn roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let msg: Vec<u8> = (0..300u16).map(|i| i as u8).collect();
        let ct = apply(&key, &nonce, 0, &msg);
        assert_ne!(ct, msg);
        assert_eq!(apply(&key, &nonce, 0, &ct), msg);
    }

    #[test]
    fn counter_advances_per_block() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        // Encrypting 128 bytes starting at counter 0 equals two blocks at 0,1.
        let data = [0u8; 128];
        let full = apply(&key, &nonce, 0, &data);
        let b0 = block(&key, 0, &nonce);
        let b1 = block(&key, 1, &nonce);
        assert_eq!(&full[..64], &b0[..]);
        assert_eq!(&full[64..], &b1[..]);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = [3u8; 32];
        let data = [0u8; 64];
        let a = apply(&key, &[0u8; 12], 0, &data);
        let mut n2 = [0u8; 12];
        n2[11] = 1;
        let b = apply(&key, &n2, 0, &data);
        assert_ne!(a, b);
    }
}
