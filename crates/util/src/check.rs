//! A minimal property-based testing harness.
//!
//! Replaces the workspace's former `proptest` dependency with the three
//! features its tests actually used:
//!
//! * **Seeded case generation** — every case derives deterministically
//!   from the property name and the case index, so runs are reproducible
//!   across machines and `cargo test` invocations.
//! * **Failing-seed reporting** — a failure prints the exact case seed
//!   and a one-line environment recipe to replay just that case.
//! * **Shrinking by iteration replay** — the failing case seed is
//!   replayed under progressively smaller *size caps* (which clamp every
//!   ranged draw toward its minimum), and the smallest still-failing cap
//!   is reported alongside the original failure.
//!
//! Usage:
//!
//! ```
//! use gridsec_util::check::check;
//! check("addition_commutes", 256, |g| {
//!     let (a, b) = (g.u64() >> 1, g.u64() >> 1);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Environment knobs: `GRIDSEC_PT_CASES` overrides the case count for all
//! properties; `GRIDSEC_PT_SEED` (with optional `GRIDSEC_PT_CAP`) replays
//! one exact case.

use crate::rng::{DetRng, RngCore};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-case random value generator handed to property closures.
pub struct Gen {
    rng: DetRng,
    /// When set (during shrink replays), every ranged draw is clamped to
    /// at most `min + cap`, pulling collection lengths and magnitudes
    /// toward their minimum.
    cap: Option<usize>,
}

impl Gen {
    fn new(seed: u64, cap: Option<usize>) -> Self {
        Gen {
            rng: DetRng::seed_from_u64(seed),
            cap,
        }
    }

    /// Uniform random `u8` (full width; not affected by the shrink cap).
    pub fn u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.rng.fill_bytes(&mut b);
        b[0]
    }

    /// Uniform random `u16`.
    pub fn u16(&mut self) -> u16 {
        self.rng.next_u32() as u16
    }

    /// Uniform random `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// Uniform random `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform random `bool`.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u32() & 1 == 1
    }

    /// Uniform random `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn ranged(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range in generator: {lo}..{hi}");
        let mut span = hi - lo;
        if let Some(cap) = self.cap {
            span = span.min(cap as u64 + 1);
        }
        lo + self.rng.next_u64() % span
    }

    /// Uniform `usize` in `range` (shrink cap clamps toward the minimum).
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.ranged(range.start as u64, range.end as u64) as usize
    }

    /// Uniform `u64` in `range`.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        self.ranged(range.start, range.end)
    }

    /// Uniform `u32` in `range`.
    pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
        self.ranged(range.start as u64, range.end as u64) as u32
    }

    /// Uniform `u8` in `range`.
    pub fn u8_in(&mut self, range: Range<u8>) -> u8 {
        self.ranged(range.start as u64, range.end as u64) as u8
    }

    /// Uniform branch index in `0..n` (for one-of choices; uncapped so a
    /// shrink replay can still reach every branch).
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "pick from empty branch set");
        (self.rng.next_u64() % n as u64) as usize
    }

    /// Pick one element of a non-empty slice.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.pick(items.len())]
    }

    /// Random byte vector with length drawn from `len`.
    pub fn bytes(&mut self, len: Range<usize>) -> Vec<u8> {
        let n = self.usize_in(len);
        let mut out = vec![0u8; n];
        self.rng.fill_bytes(&mut out);
        out
    }

    /// Fixed-size random byte array.
    pub fn byte_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.rng.fill_bytes(&mut out);
        out
    }

    /// Vector with length drawn from `len`, elements from `f`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// One char drawn uniformly from `charset`.
    pub fn char_from(&mut self, charset: &str) -> char {
        let chars: Vec<char> = charset.chars().collect();
        *self.choice(&chars)
    }

    /// String of chars from `charset`, length drawn from `len`.
    pub fn string(&mut self, charset: &str, len: Range<usize>) -> String {
        let chars: Vec<char> = charset.chars().collect();
        let n = self.usize_in(len);
        (0..n).map(|_| *self.choice(&chars)).collect()
    }

    /// Printable-ASCII string (the `[ -~]` class), length drawn from `len`.
    pub fn printable_string(&mut self, len: Range<usize>) -> String {
        let n = self.usize_in(len);
        (0..n).map(|_| self.u8_in(0x20..0x7f) as char).collect()
    }
}

fn fnv64(data: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in data.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn mix(base: u64, i: u64) -> u64 {
    let mut z = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn run_case(f: &impl Fn(&mut Gen), seed: u64, cap: Option<usize>) -> Result<(), String> {
    let mut g = Gen::new(seed, cap);
    catch_unwind(AssertUnwindSafe(|| f(&mut g))).map_err(panic_message)
}

/// Shrink by iteration replay: rerun the failing seed under ascending
/// size caps; return the smallest cap that still fails (with its
/// message), if any cap below "unbounded" reproduces the failure.
fn shrink(f: &impl Fn(&mut Gen), seed: u64) -> Option<(usize, String)> {
    const CAPS: [usize; 12] = [0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64];
    for cap in CAPS {
        if let Err(msg) = run_case(f, seed, Some(cap)) {
            return Some((cap, msg));
        }
    }
    None
}

/// Run `property` for `cases` seeded cases; panic with a replayable
/// report on the first failure.
pub fn check(name: &str, cases: u64, property: impl Fn(&mut Gen)) {
    let cases = std::env::var("GRIDSEC_PT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases);
    let cap_override = std::env::var("GRIDSEC_PT_CAP")
        .ok()
        .and_then(|v| v.parse().ok());

    // Exact-case replay mode.
    if let Ok(seed_var) = std::env::var("GRIDSEC_PT_SEED") {
        let seed = seed_var
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).expect("bad hex GRIDSEC_PT_SEED"))
            .unwrap_or_else(|| seed_var.parse().expect("bad GRIDSEC_PT_SEED"));
        if let Err(msg) = run_case(&property, seed, cap_override) {
            panic!("property '{name}' failed on replayed seed {seed:#x}: {msg}");
        }
        return;
    }

    let base = fnv64(name);
    for i in 0..cases {
        let seed = mix(base, i);
        if let Err(msg) = run_case(&property, seed, cap_override) {
            let shrunk = shrink(&property, seed);
            let (cap_note, final_msg) = match shrunk {
                Some((cap, small_msg)) => (
                    format!(" Shrunk: still fails with size cap {cap} (GRIDSEC_PT_CAP={cap})."),
                    small_msg,
                ),
                None => (String::new(), msg),
            };
            panic!(
                "property '{name}' failed at case {i}/{cases} (seed {seed:#x}).{cap_note} \
                 Replay with: GRIDSEC_PT_SEED={seed:#x} cargo test ... \
                 Failure: {final_msg}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0u64;
        check("count_cases", 50, |_g| {});
        // The closure above can't count (Fn, not FnMut); count via a cell.
        let counter = std::cell::Cell::new(0u64);
        check("count_cases_cell", 50, |_g| counter.set(counter.get() + 1));
        n += counter.get();
        assert_eq!(n, 50);
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let a = std::cell::RefCell::new(Vec::new());
        check("det", 10, |g| a.borrow_mut().push(g.u64()));
        let b = std::cell::RefCell::new(Vec::new());
        check("det", 10, |g| b.borrow_mut().push(g.u64()));
        assert_eq!(*a.borrow(), *b.borrow());
        let c = std::cell::RefCell::new(Vec::new());
        check("det2", 10, |g| c.borrow_mut().push(g.u64()));
        assert_ne!(*a.borrow(), *c.borrow());
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("always_fails", 10, |g| {
                let v = g.bytes(0..64);
                assert!(v.len() > 1000, "boom");
            })
        }));
        let msg = panic_message(result.unwrap_err());
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("GRIDSEC_PT_SEED="), "{msg}");
        // The failure reproduces at the minimum size, so the shrinker
        // must report cap 0.
        assert!(msg.contains("GRIDSEC_PT_CAP=0"), "{msg}");
    }

    #[test]
    fn ranged_draws_respect_bounds() {
        check("ranged_bounds", 200, |g| {
            let v = g.usize_in(3..17);
            assert!((3..17).contains(&v));
            let b = g.u8_in(1..5);
            assert!((1..5).contains(&b));
            let f = g.f64_unit();
            assert!((0.0..1.0).contains(&f));
            let s = g.string("abc", 2..5);
            assert!(s.len() >= 2 && s.len() < 5);
            assert!(s.chars().all(|c| "abc".contains(c)));
        });
    }

    #[test]
    fn cap_clamps_ranged_draws_to_minimum() {
        let mut g = Gen::new(1234, Some(0));
        for _ in 0..50 {
            assert_eq!(g.usize_in(5..100), 5);
            assert!(g.bytes(0..64).is_empty());
        }
        let mut g = Gen::new(1234, Some(2));
        for _ in 0..50 {
            assert!(g.usize_in(5..100) <= 7);
        }
    }
}
