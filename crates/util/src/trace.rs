//! Deterministic structured tracing, metrics, and flight recording.
//!
//! The observability backbone of the workspace (the paper's §4.1 "audit
//! and logging as first-class security services", made operational):
//! every security flow — GSS establishment, TLS redial, OGSA envelopes,
//! CAS fetches, the Figure-4 GRAM chain, RPC retransmission — opens
//! nested [`SpanGuard`]s and emits typed events through one [`Tracer`].
//!
//! Three properties distinguish this from a logging macro:
//!
//! * **Determinism.** Timestamps come from an injected clock closure
//!   (the testbed wires its `SimClock` in), span ids are sequential,
//!   and counters/histograms iterate in `BTreeMap` order — so a trace
//!   dump is a pure function of the scenario seed and replays
//!   byte-identically, exactly like the network fault transcripts.
//! * **Flight recorder.** Entries land in a bounded ring
//!   (capacity-evicted, eviction counted), and
//!   [`Tracer::flight_dump`] renders the ring on demand. The retry
//!   layers call [`flight_dump`] automatically when a retry budget is
//!   exhausted, and [`dump_on_panic`] arms a drop guard that dumps
//!   when a chaos assertion fails — so the last N events before any
//!   failure are always available.
//! * **Metrics.** Counters and exponential-bucket latency histograms
//!   accumulate per tracer; [`Tracer::metrics`] snapshots them and
//!   [`MetricsSnapshot::write_bench_json`] emits the `BENCH_*.json`
//!   shape the experiment pipeline (`regen_experiments`) consumes.
//!
//! Flows reach the tracer through a thread-local *current tracer*
//! ([`install`]), so protocol code calls free functions ([`span`],
//! [`event`], [`add`], [`record`]) without threading a handle through
//! every signature; with no tracer installed they are no-ops. Span
//! *events* (not opens/closes) can additionally be mirrored into an
//! external sink ([`Tracer::set_sink`]) — `gridsec-services` plugs its
//! hash-chained audit log in there.

use crate::sync::Mutex;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;

/// Default flight-recorder capacity (entries kept).
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// A monotonically-assigned span identifier (sequential per tracer, so
/// ids are deterministic under a deterministic execution order).
pub type SpanId = u64;

/// One record in the trace ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEntry {
    /// A span opened.
    Open {
        /// Clock time at open.
        t: u64,
        /// The span's id.
        id: SpanId,
        /// Parent span id (0 = root).
        parent: SpanId,
        /// Span name (dotted taxonomy, e.g. `gss.establish`).
        name: String,
        /// Free-form detail (peer name, op, …).
        detail: String,
    },
    /// A typed event inside the current span.
    Event {
        /// Clock time.
        t: u64,
        /// Enclosing span id (0 = no open span).
        span: SpanId,
        /// Event name.
        name: String,
        /// Free-form detail.
        detail: String,
    },
    /// A span closed.
    Close {
        /// Clock time at close.
        t: u64,
        /// The span's id.
        id: SpanId,
        /// Span name (repeated so a ring that evicted the open line is
        /// still readable).
        name: String,
        /// Duration in clock units.
        dur: u64,
        /// `ok`, or the failure detail set via [`SpanGuard::fail`].
        outcome: String,
    },
}

impl TraceEntry {
    /// Render one line of the canonical dump format.
    pub fn render(&self) -> String {
        match self {
            TraceEntry::Open {
                t,
                id,
                parent,
                name,
                detail,
            } => {
                if detail.is_empty() {
                    format!("[t={t}] open #{id} parent=#{parent} {name}")
                } else {
                    format!("[t={t}] open #{id} parent=#{parent} {name} {detail}")
                }
            }
            TraceEntry::Event {
                t,
                span,
                name,
                detail,
            } => {
                if detail.is_empty() {
                    format!("[t={t}] event #{span} {name}")
                } else {
                    format!("[t={t}] event #{span} {name} {detail}")
                }
            }
            TraceEntry::Close {
                t,
                id,
                name,
                dur,
                outcome,
            } => format!("[t={t}] close #{id} {name} dur={dur} {outcome}"),
        }
    }
}

/// An event record handed to the external sink (audit mirroring).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SinkRecord {
    /// Clock time of the event.
    pub t: u64,
    /// Name of the enclosing span (empty if none).
    pub span: String,
    /// Event name.
    pub name: String,
    /// Event detail.
    pub detail: String,
}

/// The sink callback type: receives every span event as it is recorded.
pub type TraceSink = Box<dyn FnMut(SinkRecord) + Send>;

/// Exponential-bucket histogram over `u64` values.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i - 1]` (so bucket index = 64 − leading zeros).
/// Quantiles are estimated as the upper bound of the bucket containing
/// the requested rank, clamped to the exact observed min/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (the quantile estimate it yields).
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Quantile estimate for `q` in `[0, 1]`: upper bound of the bucket
    /// holding the `ceil(q * count)`-th smallest value, clamped to the
    /// observed `[min, max]`. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Summary statistics.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            median: self.quantile(0.5),
            p95: self.quantile(0.95),
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Recorded values.
    pub count: u64,
    /// Sum of values (saturating).
    pub sum: u64,
    /// Exact minimum (0 if empty).
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Estimated median (bucket upper bound, clamped to min/max).
    pub median: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
}

/// A deterministic snapshot of a tracer's counters and histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub hists: BTreeMap<String, HistSummary>,
}

impl MetricsSnapshot {
    /// The same snapshot with every metric name prefixed `"{prefix}."`.
    pub fn prefixed(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (format!("{prefix}.{k}"), *v))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(k, v)| (format!("{prefix}.{k}"), *v))
                .collect(),
        }
    }

    /// Merge `other` into `self` (counters add; histogram summaries on
    /// colliding names are replaced — merge prefixed snapshots to keep
    /// names disjoint).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.hists {
            self.hists.insert(k.clone(), *v);
        }
    }

    /// Render the metrics block of a dump: one line per metric, sorted.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} = {v}");
        }
        for (name, h) in &self.hists {
            let _ = writeln!(
                out,
                "hist {name} count={} sum={} min={} median={} p95={} max={}",
                h.count, h.sum, h.min, h.median, h.p95, h.max
            );
        }
        out
    }

    /// Write this snapshot as `BENCH_<group>.json` into `dir` in the
    /// metrics-report shape `regen_experiments` consumes (one line per
    /// metric, names sorted — byte-identical for identical snapshots).
    /// Returns the path written.
    pub fn write_bench_json(&self, group: &str, dir: &str) -> std::io::Result<String> {
        std::fs::create_dir_all(dir)?;
        let path = format!("{dir}/BENCH_{group}.json");
        let mut rows: Vec<String> = Vec::new();
        for (name, v) in &self.counters {
            rows.push(format!(
                "    {{\"name\": \"{name}\", \"kind\": \"counter\", \"value\": {v}}}"
            ));
        }
        for (name, h) in &self.hists {
            rows.push(format!(
                "    {{\"name\": \"{name}\", \"kind\": \"hist\", \"count\": {}, \
                 \"sum\": {}, \"min\": {}, \"median\": {}, \"p95\": {}, \"max\": {}}}",
                h.count, h.sum, h.min, h.median, h.p95, h.max
            ));
        }
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"group\": \"{group}\",");
        out.push_str("  \"metrics\": [\n");
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        std::fs::write(&path, out)?;
        Ok(path)
    }
}

struct OpenSpan {
    name: String,
    start: u64,
    outcome: Option<String>,
}

struct TraceState {
    next_id: SpanId,
    stack: Vec<SpanId>,
    open: HashMap<SpanId, OpenSpan>,
    ring: VecDeque<TraceEntry>,
    ring_capacity: usize,
    evicted: u64,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

impl Default for TraceState {
    fn default() -> Self {
        TraceState {
            next_id: 0,
            stack: Vec::new(),
            open: HashMap::new(),
            ring: VecDeque::new(),
            ring_capacity: DEFAULT_RING_CAPACITY,
            evicted: 0,
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }
}

impl TraceState {
    fn push(&mut self, entry: TraceEntry) {
        if self.ring.len() == self.ring_capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(entry);
    }
}

type ClockFn = Arc<dyn Fn() -> u64 + Send + Sync>;

#[derive(Default)]
struct TracerInner {
    state: Mutex<TraceState>,
    clock: Mutex<Option<ClockFn>>,
    sink: Mutex<Option<TraceSink>>,
    flight_path: Mutex<Option<String>>,
}

/// A cloneable handle to one trace context (shared ring + metrics).
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer with the default ring capacity and a constant-zero
    /// clock (inject a real one with [`Tracer::set_clock`]).
    pub fn new() -> Self {
        Tracer::default()
    }

    /// A tracer whose flight ring keeps at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        let t = Tracer::new();
        t.inner.state.lock().ring_capacity = capacity.max(1);
        t
    }

    /// Install the time source (the testbed passes a `SimClock` here:
    /// `tracer.set_clock(move || clock.now())`). Timestamps and span
    /// durations are read from it, so a simulated clock yields fully
    /// deterministic traces.
    pub fn set_clock(&self, clock: impl Fn() -> u64 + Send + Sync + 'static) {
        *self.inner.clock.lock() = Some(Arc::new(clock));
    }

    /// Install the event sink: every span *event* (not open/close) is
    /// mirrored out as a [`SinkRecord`]. `gridsec-services` uses this
    /// to feed its hash-chained audit log.
    pub fn set_sink(&self, sink: TraceSink) {
        *self.inner.sink.lock() = Some(sink);
    }

    /// Write automatic flight dumps ([`Tracer::flight_dump`]) to this
    /// path as well as stderr.
    pub fn set_flight_path(&self, path: impl Into<String>) {
        *self.inner.flight_path.lock() = Some(path.into());
    }

    fn now(&self) -> u64 {
        let clock = self.inner.clock.lock().clone();
        clock.map(|c| c()).unwrap_or(0)
    }

    /// Open a span; the returned guard closes it on drop. Spans nest:
    /// the parent is the innermost span still open on this tracer.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with(name, "")
    }

    /// Open a span carrying a detail string (peer name, op, …).
    pub fn span_with(&self, name: &str, detail: &str) -> SpanGuard {
        let t = self.now();
        let mut st = self.inner.state.lock();
        st.next_id += 1;
        let id = st.next_id;
        let parent = st.stack.last().copied().unwrap_or(0);
        st.stack.push(id);
        st.open.insert(
            id,
            OpenSpan {
                name: name.to_string(),
                start: t,
                outcome: None,
            },
        );
        st.push(TraceEntry::Open {
            t,
            id,
            parent,
            name: name.to_string(),
            detail: detail.to_string(),
        });
        SpanGuard {
            tracer: Some(self.clone()),
            id,
        }
    }

    fn close_span(&self, id: SpanId) {
        let t = self.now();
        let mut st = self.inner.state.lock();
        let Some(span) = st.open.remove(&id) else {
            return;
        };
        if let Some(pos) = st.stack.iter().rposition(|&s| s == id) {
            st.stack.remove(pos);
        }
        let dur = t.saturating_sub(span.start);
        let outcome = span.outcome.unwrap_or_else(|| "ok".to_string());
        st.push(TraceEntry::Close {
            t,
            id,
            name: span.name.clone(),
            dur,
            outcome,
        });
        st.hists
            .entry(format!("span.{}.secs", span.name))
            .or_default()
            .record(dur);
    }

    /// Record a typed event in the innermost open span (span id 0 if
    /// none), and mirror it to the sink if one is installed.
    pub fn event(&self, name: &str, detail: &str) {
        let t = self.now();
        let (span_id, span_name) = {
            let mut st = self.inner.state.lock();
            let span_id = st.stack.last().copied().unwrap_or(0);
            let span_name = st
                .open
                .get(&span_id)
                .map(|s| s.name.clone())
                .unwrap_or_default();
            st.push(TraceEntry::Event {
                t,
                span: span_id,
                name: name.to_string(),
                detail: detail.to_string(),
            });
            (span_id, span_name)
        };
        let _ = span_id;
        let mut sink = self.inner.sink.lock();
        if let Some(sink) = sink.as_mut() {
            sink(SinkRecord {
                t,
                span: span_name,
                name: name.to_string(),
                detail: detail.to_string(),
            });
        }
    }

    /// Add `delta` to the named counter.
    pub fn add(&self, counter: &str, delta: u64) {
        *self
            .inner
            .state
            .lock()
            .counters
            .entry(counter.to_string())
            .or_insert(0) += delta;
    }

    /// Record `value` into the named histogram.
    pub fn record(&self, hist: &str, value: u64) {
        self.inner
            .state
            .lock()
            .hists
            .entry(hist.to_string())
            .or_default()
            .record(value);
    }

    /// Snapshot counters and histograms.
    pub fn metrics(&self) -> MetricsSnapshot {
        let st = self.inner.state.lock();
        MetricsSnapshot {
            counters: st.counters.clone(),
            hists: st
                .hists
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// The ring contents as canonical dump lines (oldest first). The
    /// first line reports how many earlier entries were evicted.
    pub fn dump(&self) -> String {
        let st = self.inner.state.lock();
        let mut out = format!("trace entries={} evicted={}\n", st.ring.len(), st.evicted);
        for e in &st.ring {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Render the flight-recorder dump (ring + metrics) under a reason
    /// header, write it to stderr and to the configured flight path (if
    /// any), and return it.
    pub fn flight_dump(&self, reason: &str) -> String {
        let mut out = format!("=== flight recorder dump: {reason} ===\n");
        out.push_str(&self.dump());
        out.push_str(&self.metrics().render());
        out.push_str("=== end flight recorder dump ===\n");
        eprintln!("{out}");
        let path = self.inner.flight_path.lock().clone();
        if let Some(path) = path {
            if let Err(e) = std::fs::write(&path, &out) {
                eprintln!("trace: could not write flight dump to {path}: {e}");
            }
        }
        out
    }
}

/// RAII guard for one open span; closes it (recording duration and
/// outcome) on drop.
pub struct SpanGuard {
    tracer: Option<Tracer>,
    id: SpanId,
}

impl SpanGuard {
    /// A guard that does nothing (no tracer installed).
    pub fn noop() -> Self {
        SpanGuard {
            tracer: None,
            id: 0,
        }
    }

    /// This span's id (0 for a no-op guard).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Mark the span failed: the close entry carries `err:{detail}`
    /// instead of `ok`.
    pub fn fail(&mut self, detail: &str) {
        if let Some(t) = &self.tracer {
            if let Some(span) = t.inner.state.lock().open.get_mut(&self.id) {
                span.outcome = Some(format!("err:{detail}"));
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t) = self.tracer.take() {
            t.close_span(self.id);
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Tracer>> = const { RefCell::new(Vec::new()) };
}

/// Install `tracer` as this thread's current tracer until the returned
/// guard drops (installs nest; the previous tracer is restored).
#[must_use = "the tracer is uninstalled when the guard drops"]
pub fn install(tracer: &Tracer) -> InstallGuard {
    CURRENT.with(|c| c.borrow_mut().push(tracer.clone()));
    InstallGuard { _private: () }
}

/// Uninstalls the tracer installed by [`install`] on drop.
pub struct InstallGuard {
    _private: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// The thread's current tracer, if one is installed.
pub fn current() -> Option<Tracer> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Open a span on the current tracer (no-op guard if none installed).
pub fn span(name: &str) -> SpanGuard {
    match current() {
        Some(t) => t.span(name),
        None => SpanGuard::noop(),
    }
}

/// Open a span with a detail string on the current tracer.
pub fn span_with(name: &str, detail: &str) -> SpanGuard {
    match current() {
        Some(t) => t.span_with(name, detail),
        None => SpanGuard::noop(),
    }
}

/// Record an event on the current tracer.
pub fn event(name: &str, detail: &str) {
    if let Some(t) = current() {
        t.event(name, detail);
    }
}

/// Add to a counter on the current tracer.
pub fn add(counter: &str, delta: u64) {
    if let Some(t) = current() {
        t.add(counter, delta);
    }
}

/// Record a histogram value on the current tracer.
pub fn record(hist: &str, value: u64) {
    if let Some(t) = current() {
        t.record(hist, value);
    }
}

/// Dump the current tracer's flight recorder (no-op if none installed).
/// The retry layers call this when a retry budget is exhausted.
pub fn flight_dump(reason: &str) {
    if let Some(t) = current() {
        t.flight_dump(reason);
    }
}

/// Arm a guard that dumps `tracer`'s flight recorder if the thread is
/// panicking when the guard drops — place one at the top of a chaos
/// scenario so a failed assertion ships the last N trace entries.
#[must_use = "the dump fires when the guard drops during a panic"]
pub fn dump_on_panic(tracer: &Tracer, context: &str) -> PanicDumpGuard {
    PanicDumpGuard {
        tracer: tracer.clone(),
        context: context.to_string(),
    }
}

/// Guard returned by [`dump_on_panic`].
pub struct PanicDumpGuard {
    tracer: Tracer,
    context: String,
}

impl Drop for PanicDumpGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.tracer
                .flight_dump(&format!("panic in {}", self.context));
        }
    }
}

/// Run `f` inside a span, marking the span failed (with the error's
/// `Display` rendering) if `f` returns `Err`.
pub fn spanned<T, E: std::fmt::Display>(
    name: &str,
    f: impl FnOnce() -> Result<T, E>,
) -> Result<T, E> {
    let mut sp = span(name);
    let result = f();
    if let Err(e) = &result {
        sp.fail(&e.to_string());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_without_install() {
        // No tracer installed: all free functions are inert.
        let g = span("orphan");
        assert_eq!(g.id(), 0);
        event("nothing", "");
        add("c", 1);
        record("h", 1);
        assert!(current().is_none());
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let tr = Tracer::new();
        let _g = install(&tr);
        {
            let _a = span("outer");
            {
                let _b = span("inner");
            }
        }
        let dump = tr.dump();
        assert!(dump.contains("open #1 parent=#0 outer"), "{dump}");
        assert!(dump.contains("open #2 parent=#1 inner"), "{dump}");
        assert!(dump.contains("close #2 inner"), "{dump}");
        assert!(dump.contains("close #1 outer"), "{dump}");
    }

    #[test]
    fn ring_evicts_oldest() {
        let tr = Tracer::with_capacity(3);
        let _g = install(&tr);
        for i in 0..5 {
            event(&format!("e{i}"), "");
        }
        let dump = tr.dump();
        assert!(dump.starts_with("trace entries=3 evicted=2\n"), "{dump}");
        assert!(!dump.contains("e0"), "{dump}");
        assert!(dump.contains("e4"), "{dump}");
    }

    #[test]
    fn clock_drives_timestamps_and_durations() {
        let tr = Tracer::new();
        let t = Arc::new(std::sync::atomic::AtomicU64::new(10));
        let tt = t.clone();
        tr.set_clock(move || tt.load(std::sync::atomic::Ordering::SeqCst));
        {
            let _s = tr.span("timed");
            t.store(17, std::sync::atomic::Ordering::SeqCst);
        }
        let dump = tr.dump();
        assert!(dump.contains("[t=10] open #1"), "{dump}");
        assert!(dump.contains("[t=17] close #1 timed dur=7 ok"), "{dump}");
        let m = tr.metrics();
        assert_eq!(m.hists["span.timed.secs"].max, 7);
    }

    #[test]
    fn sink_mirrors_events() {
        let tr = Tracer::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        tr.set_sink(Box::new(move |r| seen2.lock().push(r)));
        let _g = install(&tr);
        let _s = span("flow");
        event("decision", "permit");
        let records = seen.lock().clone();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].span, "flow");
        assert_eq!(records[0].name, "decision");
        assert_eq!(records[0].detail, "permit");
    }
}
