//! The client-side security pipeline of Figure 3.
//!
//! An application using [`OgsaClient`] supplies: a transport, the trust
//! store, and one or more [`CredentialSource`]s. For each invocation the
//! client's "hosting environment" (this module) performs:
//!
//! 1. **Policy retrieval** — fetch the target's published WS-Policy.
//! 2. **Credential selection / conversion** — intersect the policy with
//!    local capabilities; if the needed token type is not already in
//!    hand, a [`CredentialSource`] produces it (e.g. a KCA conversion
//!    from a Kerberos ticket, or a CAS assertion fetch — both provided by
//!    `gridsec-services`).
//! 3. **Token processing** (with step 4 on the server side) — establish a
//!    WS-SecureConversation context or produce a stateless XML-Signature,
//!    per the negotiated mechanism.
//! 5. The service-side authorization happens in the target's hosting
//!    environment; this client surfaces any `not-authorized` fault.
//!
//! The application itself only ever calls [`OgsaClient::invoke`] /
//! [`OgsaClient::create_service`] — security is infrastructure.

use gridsec_crypto::rng::ChaChaRng;
use gridsec_pki::credential::Credential;
use gridsec_pki::store::{CrlStore, TrustStore};
use gridsec_testbed::clock::SimClock;
use gridsec_tls::handshake::TlsConfig;
use gridsec_tls::session::{
    ClientSession, ClientSessionCache, DEFAULT_SESSION_CAPACITY, DEFAULT_SESSION_LIFETIME,
};
use gridsec_wsse::policy::{self, PolicyAlternative, Protection, SecurityPolicy};
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::wssc::{WsscInitiator, WsscResumeInitiator, WsscSession};
use gridsec_wsse::xmlsig;
use gridsec_xml::Element;

use crate::hosting::parse_fault;
use crate::transport::Transport;
use crate::OgsaError;

/// A way to obtain a GSI credential of a particular token type.
///
/// `gridsec-services` provides sources backed by credential-conversion
/// services (KCA) and by CAS; the trivial case is a credential already in
/// hand.
pub trait CredentialSource {
    /// The WS-Policy token type this source can satisfy (e.g.
    /// `"x509-chain"`, `"kerberos-ticket"`, `"cas-assertion"`).
    fn token_type(&self) -> &str;
    /// Produce (possibly by conversion) a GSI credential at time `now`.
    fn obtain(&mut self, now: u64) -> Result<Credential, OgsaError>;
}

/// A credential already in hand (token type `x509-chain`).
pub struct StaticCredential(pub Credential);

impl CredentialSource for StaticCredential {
    fn token_type(&self) -> &str {
        "x509-chain"
    }
    fn obtain(&mut self, _now: u64) -> Result<Credential, OgsaError> {
        Ok(self.0.clone())
    }
}

/// Mechanisms this client implementation supports, in preference order.
const CLIENT_MECHANISMS: [&str; 2] = ["gsi-secure-conversation", "xml-signature"];

/// The OGSA client: Figure 3's left-hand hosting environment.
pub struct OgsaClient<T: Transport> {
    transport: T,
    trust: TrustStore,
    crls: CrlStore,
    clock: SimClock,
    rng: ChaChaRng,
    sources: Vec<Box<dyn CredentialSource>>,
    session: Option<WsscSession>,
    session_cache: ClientSessionCache,
    server_policy: Option<SecurityPolicy>,
    chosen: Option<PolicyAlternative>,
    message_ttl: u64,
    /// Count of policy fetches (experiment instrumentation).
    pub policy_fetches: u64,
    /// Count of full context establishments (experiment instrumentation).
    pub contexts_established: u64,
    /// Count of contexts re-established via session resumption,
    /// skipping the asymmetric exchange entirely.
    pub contexts_resumed: u64,
}

impl<T: Transport> OgsaClient<T> {
    /// Create a client.
    pub fn new(transport: T, trust: TrustStore, clock: SimClock, rng_seed: &[u8]) -> Self {
        OgsaClient {
            transport,
            trust,
            crls: CrlStore::new(),
            clock,
            rng: ChaChaRng::from_seed_bytes(rng_seed),
            sources: Vec::new(),
            session: None,
            session_cache: ClientSessionCache::new(DEFAULT_SESSION_CAPACITY),
            server_policy: None,
            chosen: None,
            message_ttl: 300,
            policy_fetches: 0,
            contexts_established: 0,
            contexts_resumed: 0,
        }
    }

    /// Add a credential source (step 2 capability).
    pub fn add_source(&mut self, source: Box<dyn CredentialSource>) {
        self.sources.push(source);
    }

    /// Install revocation state for verifying server replies.
    pub fn set_crls(&mut self, crls: CrlStore) {
        self.crls = crls;
    }

    // ------------------------------------------------------------------
    // Figure 3 step 1: policy retrieval
    // ------------------------------------------------------------------

    /// Fetch (and cache) the target's published security policy.
    pub fn fetch_policy(&mut self) -> Result<SecurityPolicy, OgsaError> {
        if let Some(p) = &self.server_policy {
            return Ok(p.clone());
        }
        let req = Envelope::request("getPolicy", Element::new("ogsa:GetPolicy"));
        let reply_xml = self.transport.call(req.to_xml())?;
        let reply = Envelope::parse(&reply_xml)?;
        if let Some((code, msg)) = parse_fault(&reply) {
            return Err(OgsaError::Application(format!("{code}: {msg}")));
        }
        let policy_el = reply
            .payload()
            .ok_or(OgsaError::Malformed("empty policy reply"))?;
        let policy = SecurityPolicy::from_element(policy_el)?;
        self.server_policy = Some(policy.clone());
        self.policy_fetches += 1;
        Ok(policy)
    }

    // ------------------------------------------------------------------
    // Figure 3 step 2: mechanism + credential selection
    // ------------------------------------------------------------------

    fn client_capabilities(&self) -> SecurityPolicy {
        let token_types: Vec<String> = self
            .sources
            .iter()
            .map(|s| s.token_type().to_string())
            .collect();
        SecurityPolicy {
            service: "client".to_string(),
            alternatives: CLIENT_MECHANISMS
                .iter()
                .map(|m| PolicyAlternative {
                    mechanism: m.to_string(),
                    token_types: token_types.clone(),
                    trust_roots: self
                        .trust
                        .roots()
                        .iter()
                        .map(|r| r.subject().to_string())
                        .collect(),
                    protection: Protection::Sign,
                })
                .collect(),
        }
    }

    fn negotiate(&mut self) -> Result<PolicyAlternative, OgsaError> {
        if let Some(alt) = &self.chosen {
            return Ok(alt.clone());
        }
        let server = self.fetch_policy()?;
        let alt = policy::intersect(&self.client_capabilities(), &server)?;
        self.chosen = Some(alt.clone());
        Ok(alt)
    }

    fn credential_for(&mut self, alt: &PolicyAlternative) -> Result<Credential, OgsaError> {
        let now = self.clock.now();
        for source in &mut self.sources {
            if alt.token_types.iter().any(|t| t == source.token_type()) {
                return source.obtain(now);
            }
        }
        Err(OgsaError::NoUsableCredential)
    }

    // ------------------------------------------------------------------
    // Figure 3 steps 3-4: secured exchange
    // ------------------------------------------------------------------

    /// Send a secured request and return the reply payload element.
    pub fn call_secure(&mut self, env: Envelope) -> Result<Envelope, OgsaError> {
        let alt = self.negotiate()?;
        match alt.mechanism.as_str() {
            "gsi-secure-conversation" => self.call_stateful(env, &alt),
            "xml-signature" => self.call_stateless(env, &alt),
            _ => Err(OgsaError::NoUsableCredential),
        }
    }

    /// The session-cache key for this client's single target service.
    fn cache_key(&self) -> String {
        self.server_policy
            .as_ref()
            .map(|p| p.service.clone())
            .unwrap_or_else(|| "service".to_string())
    }

    /// Try the abbreviated resumption exchange from a cached session.
    /// Any failure (unknown/expired ticket, restarted service) just
    /// reports `false`; the caller falls back to the full handshake.
    fn try_resume(&mut self, cached: ClientSession) -> Result<bool, OgsaError> {
        let (initiator, rst1) = WsscResumeInitiator::begin(
            cached,
            self.clock.now(),
            DEFAULT_SESSION_LIFETIME,
            &mut self.rng,
        );
        let rstr1 = Envelope::parse(&self.transport.call(rst1.to_xml())?)?;
        if parse_fault(&rstr1).is_some() {
            // Service refused the ticket (e.g. it restarted and lost its
            // cache). Not an error — fall back to the full exchange.
            return Ok(false);
        }
        let (rst2, session) = match initiator.finish(&rstr1) {
            Ok(pair) => pair,
            Err(_) => return Ok(false),
        };
        let ack = Envelope::parse(&self.transport.call(rst2.to_xml())?)?;
        if parse_fault(&ack).is_some() {
            return Ok(false);
        }
        // Each resumption rotates the ticket; bank the fresh one.
        self.session_cache
            .store(&self.cache_key(), session.channel());
        self.session = Some(session);
        self.contexts_resumed += 1;
        Ok(true)
    }

    fn ensure_session(&mut self, alt: &PolicyAlternative) -> Result<(), OgsaError> {
        if self.session.is_some() {
            return Ok(());
        }
        if let Some(cached) = self
            .session_cache
            .lookup(&self.cache_key(), self.clock.now())
        {
            if self.try_resume(cached)? {
                return Ok(());
            }
            // The ticket was refused; drop it so we do not retry it.
            self.session_cache.invalidate(&self.cache_key());
        }
        let credential = self.credential_for(alt)?;
        let config = TlsConfig::new(credential, self.trust.clone(), self.clock.now())
            .with_crls(self.crls.clone());
        let (initiator, rst1) = WsscInitiator::begin(config, &mut self.rng);
        let rstr1 = Envelope::parse(&self.transport.call(rst1.to_xml())?)?;
        if let Some((code, msg)) = parse_fault(&rstr1) {
            return Err(OgsaError::Application(format!("{code}: {msg}")));
        }
        let (rst2, session) = initiator.finish(&rstr1)?;
        let ack = Envelope::parse(&self.transport.call(rst2.to_xml())?)?;
        if let Some((code, msg)) = parse_fault(&ack) {
            return Err(OgsaError::Application(format!("{code}: {msg}")));
        }
        self.session_cache
            .store(&self.cache_key(), session.channel());
        self.session = Some(session);
        self.contexts_established += 1;
        Ok(())
    }

    fn call_stateful(
        &mut self,
        env: Envelope,
        alt: &PolicyAlternative,
    ) -> Result<Envelope, OgsaError> {
        self.ensure_session(alt)?;
        let session = self.session.as_mut().expect("ensured above");
        let protected = session.protect(&env);
        let reply_xml = self.transport.call(protected.to_xml())?;
        let reply = Envelope::parse(&reply_xml)?;
        if let Some((code, msg)) = parse_fault(&reply) {
            return Err(fault_to_error(&code, &msg));
        }
        let inner = session.unprotect(&reply)?;
        if let Some((code, msg)) = parse_fault(&inner) {
            return Err(fault_to_error(&code, &msg));
        }
        Ok(inner)
    }

    fn call_stateless(
        &mut self,
        env: Envelope,
        alt: &PolicyAlternative,
    ) -> Result<Envelope, OgsaError> {
        let credential = self.credential_for(alt)?;
        let signed = xmlsig::sign_envelope(&env, &credential, self.clock.now(), self.message_ttl);
        let reply_xml = self.transport.call(signed.to_xml())?;
        let reply = Envelope::parse(&reply_xml)?;
        if let Some((code, msg)) = parse_fault(&reply) {
            return Err(fault_to_error(&code, &msg));
        }
        // Mutual authentication: the server's reply must verify too.
        xmlsig::verify_envelope(&reply, &self.trust, &self.crls, self.clock.now())
            .map_err(|_| OgsaError::InsecureReply("reply signature invalid"))?;
        Ok(reply)
    }

    // ------------------------------------------------------------------
    // Application-facing operations
    // ------------------------------------------------------------------

    /// `createService` on a factory type; returns the new handle.
    pub fn create_service(
        &mut self,
        service_type: &str,
        args: Element,
    ) -> Result<String, OgsaError> {
        let payload = Element::new("ogsa:CreateService")
            .with_attr("type", service_type)
            .with_child(Element::new("ogsa:Args").with_child(args));
        let reply = self.call_secure(Envelope::request("createService", payload))?;
        Ok(reply
            .payload()
            .ok_or(OgsaError::Malformed("empty create reply"))?
            .text_content())
    }

    /// Invoke an operation on a service instance.
    pub fn invoke(
        &mut self,
        handle: &str,
        operation: &str,
        payload: Element,
    ) -> Result<Element, OgsaError> {
        let body = Element::new("ogsa:Invoke")
            .with_attr("handle", handle)
            .with_attr("op", operation)
            .with_child(payload);
        let reply = self.call_secure(Envelope::request("invoke", body))?;
        reply
            .payload()
            .cloned()
            .ok_or(OgsaError::Malformed("empty invoke reply"))
    }

    /// Query a service data element.
    pub fn query_service_data(&mut self, handle: &str, name: &str) -> Result<Element, OgsaError> {
        let body = Element::new("ogsa:Query")
            .with_attr("handle", handle)
            .with_attr("name", name);
        let reply = self.call_secure(Envelope::request("queryServiceData", body))?;
        reply
            .payload()
            .cloned()
            .ok_or(OgsaError::Malformed("empty query reply"))
    }

    /// Destroy a service instance.
    pub fn destroy(&mut self, handle: &str) -> Result<(), OgsaError> {
        let body = Element::new("ogsa:Destroy").with_attr("handle", handle);
        self.call_secure(Envelope::request("destroy", body))?;
        Ok(())
    }

    /// Drop the active conversation. The resumption ticket stays in the
    /// session cache, so the next invocation re-establishes via the
    /// abbreviated exchange instead of a full handshake.
    pub fn reset_session(&mut self) {
        self.session = None;
    }

    /// Drop the active conversation *and* its resumption ticket (forces
    /// a full handshake on the next invocation).
    pub fn forget_session(&mut self) {
        self.session = None;
        self.session_cache.invalidate(&self.cache_key());
    }

    /// Drop cached policy + negotiation (forces re-discovery).
    pub fn reset_policy(&mut self) {
        self.server_policy = None;
        self.chosen = None;
    }
}

fn fault_to_error(code: &str, msg: &str) -> OgsaError {
    match code {
        "not-authorized" => OgsaError::NotAuthorized {
            caller: "self".to_string(),
            operation: msg.to_string(),
        },
        "no-such-service" => OgsaError::NoSuchService(msg.to_string()),
        "no-such-factory" => OgsaError::NoSuchFactory(msg.to_string()),
        _ => OgsaError::Application(format!("{code}: {msg}")),
    }
}
