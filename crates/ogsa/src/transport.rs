//! Message transports connecting OGSA clients to hosting environments.
//!
//! * [`InProcessTransport`] — direct function call into a shared hosting
//!   environment (single-threaded benches and tests).
//! * [`NetworkTransport`] — request/response over the `gridsec-testbed`
//!   message network; pair with [`serve`] running the environment behind
//!   an endpoint (multi-host scenarios, GRAM). Assumes a perfect
//!   network: one send, one blocking receive.
//! * [`RetryTransport`] / [`RpcService`] — the fault-tolerant pair:
//!   requests ride the at-most-once RPC layer
//!   ([`gridsec_testbed::rpc`]), so lost envelopes are retransmitted
//!   with exponential backoff and duplicated ones are answered from the
//!   server's reply cache instead of re-executing a (stateful) OGSA
//!   operation like `createService`.

use std::cell::RefCell;
use std::rc::Rc;

use gridsec_testbed::net::{Endpoint, Network};
use gridsec_testbed::rpc::{RpcCallStats, RpcClient, RpcServer};
use gridsec_testbed::sched::{Step, Task, TaskCx};
use gridsec_util::retry::RetryPolicy;
use gridsec_util::trace;

use crate::hosting::HostingEnvironment;
use crate::OgsaError;

/// Moves one serialized envelope to the service and returns the reply.
pub trait Transport {
    /// Perform one request/response exchange.
    fn call(&mut self, request_xml: String) -> Result<String, OgsaError>;
}

/// Direct dispatch into a locally-shared hosting environment.
#[derive(Clone)]
pub struct InProcessTransport {
    env: Rc<RefCell<HostingEnvironment>>,
}

impl InProcessTransport {
    /// Wrap a hosting environment for in-process calls.
    pub fn new(env: Rc<RefCell<HostingEnvironment>>) -> Self {
        InProcessTransport { env }
    }
}

impl Transport for InProcessTransport {
    fn call(&mut self, request_xml: String) -> Result<String, OgsaError> {
        Ok(self.env.borrow_mut().handle_message(&request_xml))
    }
}

/// Request/response over the simulated network. Each call sends to the
/// server endpoint and waits for the reply — blocking (thread-per-server
/// scenarios) or, with [`NetworkTransport::set_pump`], by driving a
/// scheduler until the reply lands.
pub struct NetworkTransport {
    endpoint: Endpoint,
    server: String,
    pump: Option<Box<dyn FnMut() -> usize>>,
}

impl NetworkTransport {
    /// Register `client_name` on the network and target `server`.
    pub fn connect(network: &Network, client_name: &str, server: &str) -> Self {
        NetworkTransport {
            endpoint: network.register(client_name),
            server: server.to_string(),
            pump: None,
        }
    }

    /// Install a pump hook (typically `|| scheduler.poll()`): each call
    /// drives the hook instead of blocking, so a [`ServeTask`] scheduled
    /// on the same thread answers inside the client's wait. A quiescent
    /// pump with no reply surfaces as a transport timeout, not a hang.
    pub fn set_pump(&mut self, hook: impl FnMut() -> usize + 'static) {
        self.pump = Some(Box::new(hook));
    }
}

impl Transport for NetworkTransport {
    fn call(&mut self, request_xml: String) -> Result<String, OgsaError> {
        self.endpoint
            .send(&self.server, request_xml.into_bytes())
            .map_err(|e| OgsaError::Transport(e.to_string()))?;
        let reply = match &mut self.pump {
            None => self.endpoint.recv(),
            Some(pump) => loop {
                if let Some(m) = self.endpoint.try_recv() {
                    break Ok(m);
                }
                if pump() == 0 {
                    break Err(gridsec_testbed::TestbedError::Timeout);
                }
            },
        }
        .map_err(|e| OgsaError::Transport(e.to_string()))?;
        String::from_utf8(reply.payload).map_err(|_| OgsaError::Transport("non-UTF8".into()))
    }
}

/// [`NetworkTransport`] hardened for a faulty network: each envelope is
/// an RPC call with retransmission, exponential backoff, and duplicate
/// suppression. Pair with [`RpcService`] on the server side.
pub struct RetryTransport {
    rpc: RpcClient,
}

impl RetryTransport {
    /// Register `client_name` on the network and target the RPC server
    /// at `server`, retrying per `policy`.
    pub fn connect(
        network: &Network,
        client_name: &str,
        server: &str,
        policy: RetryPolicy,
    ) -> Self {
        RetryTransport {
            rpc: RpcClient::new(network.register(client_name), server, policy),
        }
    }

    /// Install the wait-loop pump hook (see
    /// [`RpcClient::set_pump`]): single-threaded scenarios poll their
    /// [`RpcService`]s here so server work happens inside the client's
    /// retry loop, deterministically.
    pub fn set_pump(&mut self, hook: impl FnMut() -> usize + 'static) {
        self.rpc.set_pump(hook);
    }

    /// Retransmission/timeout counters for this transport.
    pub fn stats(&self) -> RpcCallStats {
        self.rpc.stats()
    }
}

impl Transport for RetryTransport {
    fn call(&mut self, request_xml: String) -> Result<String, OgsaError> {
        let mut sp = trace::span_with("ogsa.envelope", &format!("bytes={}", request_xml.len()));
        trace::add("ogsa.envelopes", 1);
        let result = self
            .rpc
            .call(request_xml.as_bytes())
            .map_err(|e| OgsaError::Transport(e.to_string()))
            .and_then(|reply| {
                String::from_utf8(reply).map_err(|_| OgsaError::Transport("non-UTF8".into()))
            });
        if let Err(e) = &result {
            sp.fail(&e.to_string());
        }
        result
    }
}

/// A hosting environment served behind an at-most-once RPC endpoint.
/// Poll it from the client's pump hook (single-threaded scenarios) or a
/// dedicated loop. The shared `Rc<RefCell<..>>` environment means test
/// scaffolding can still reach in (advance clocks, inspect state)
/// between polls.
pub struct RpcService {
    server: RpcServer,
    env: Rc<RefCell<HostingEnvironment>>,
}

impl RpcService {
    /// Serve `env` behind `endpoint_name` on `network`.
    pub fn new(
        network: &Network,
        endpoint_name: &str,
        env: Rc<RefCell<HostingEnvironment>>,
    ) -> Self {
        RpcService {
            server: RpcServer::new(network.register(endpoint_name)),
            env,
        }
    }

    /// Answer every queued request frame; returns how many were
    /// answered (cache hits included).
    pub fn poll(&mut self) -> usize {
        let env = &self.env;
        self.server.poll(&mut |from, body| {
            let _sp = trace::span_with("ogsa.dispatch", &format!("from={from}"));
            let request = String::from_utf8_lossy(body).into_owned();
            env.borrow_mut().handle_message(&request).into_bytes()
        })
    }
}

/// An [`RpcService`] is a natural discrete-event task: drain the
/// mailbox, then park until the next delivery. Spawn it with
/// [`Scheduler::spawn_mailbox`][gridsec_testbed::sched::Scheduler::spawn_mailbox]
/// under its endpoint name so deliveries wake it; this replaces the
/// thread-per-service [`serve`] loop in scheduler-driven scenarios.
impl Task for RpcService {
    fn step(&mut self, _cx: &TaskCx) -> Step {
        self.poll();
        Step::WaitMail { deadline: None }
    }
}

/// [`serve`] as a resumable discrete-event task: answer each raw
/// envelope from the mailbox, then park until the next delivery. Spawn
/// with
/// [`Scheduler::spawn_mailbox`][gridsec_testbed::sched::Scheduler::spawn_mailbox]
/// under the endpoint name. Unlike [`RpcService`] this speaks bare
/// envelopes (no RPC framing), matching what [`NetworkTransport`] and
/// WS-Routing intermediaries send.
pub struct ServeTask {
    endpoint: Endpoint,
    env: HostingEnvironment,
}

impl ServeTask {
    /// Serve `env` behind `endpoint_name` on `network`.
    pub fn new(network: &Network, endpoint_name: &str, env: HostingEnvironment) -> Self {
        ServeTask {
            endpoint: network.register(endpoint_name),
            env,
        }
    }
}

impl Task for ServeTask {
    fn step(&mut self, _cx: &TaskCx) -> Step {
        while let Some(msg) = self.endpoint.try_recv() {
            let request = String::from_utf8_lossy(&msg.payload).into_owned();
            let reply = self.env.handle_message(&request);
            let _ = self.endpoint.send(&msg.from, reply.into_bytes());
        }
        Step::WaitMail { deadline: None }
    }
}

/// Run a hosting environment behind a network endpoint until the endpoint
/// is unregistered or the process count hits `max_requests` (`None` =
/// forever). Intended to run on its own thread.
pub fn serve(
    mut env: HostingEnvironment,
    network: &Network,
    endpoint_name: &str,
    max_requests: Option<usize>,
) {
    let endpoint = network.register(endpoint_name);
    let mut served = 0usize;
    loop {
        let msg = match endpoint.recv() {
            Ok(m) => m,
            Err(_) => return,
        };
        let request = String::from_utf8_lossy(&msg.payload).into_owned();
        let reply = env.handle_message(&request);
        let _ = endpoint.send(&msg.from, reply.into_bytes());
        served += 1;
        if let Some(max) = max_requests {
            if served >= max {
                return;
            }
        }
    }
}
