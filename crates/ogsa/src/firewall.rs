//! Security-aware firewalls and WS-Routing intermediaries.
//!
//! Paper §4.4: "entities in the network can recognize whether and how an
//! interaction is secured. For example, a firewall can recognize whether
//! a connection is authenticated and allow only authenticated
//! connections." And §6 (future work): "exploiting WS-Routing to improve
//! firewall compatibility."
//!
//! Both are implemented here, key-free: the [`Firewall`] classifies
//! envelopes purely from their observable structure (security headers,
//! token-exchange actions), and [`run_router`] forwards envelopes along
//! their `wsr:path` through the simulated network — so a service behind
//! a perimeter is reachable without the perimeter holding any
//! credentials or terminating any security context.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use gridsec_testbed::net::{Endpoint, Message, Network};
use gridsec_testbed::sched::{Step, Task, TaskCx};
use gridsec_testbed::TestbedError;
use gridsec_wsse::routing;
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::wssc::RST_ACTION;

use crate::transport::Transport;
use crate::OgsaError;

/// What a firewall decided about one message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Message may pass.
    Allow(&'static str),
    /// Message dropped.
    Deny(&'static str),
}

/// Per-firewall counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FirewallStats {
    /// Messages allowed through.
    pub allowed: u64,
    /// Messages denied.
    pub denied: u64,
}

/// A key-free, message-inspecting firewall.
#[derive(Default)]
pub struct Firewall {
    /// Whether unsecured `getPolicy` bootstrap requests may pass.
    pub allow_policy_bootstrap: bool,
    /// Counters.
    pub stats: FirewallStats,
}

impl Firewall {
    /// A firewall with the common configuration: security required, but
    /// the unsecured policy-discovery bootstrap permitted.
    pub fn new() -> Self {
        Firewall {
            allow_policy_bootstrap: true,
            stats: FirewallStats::default(),
        }
    }

    /// Classify one message. The firewall holds no keys: the decision
    /// uses only what any network element can observe.
    pub fn inspect(&mut self, xml: &str) -> Verdict {
        let verdict = match Envelope::parse(xml) {
            Err(_) => Verdict::Deny("not a SOAP envelope"),
            Ok(env) => match env.action.as_deref() {
                Some("getPolicy") if self.allow_policy_bootstrap => {
                    Verdict::Allow("policy bootstrap")
                }
                Some(a) if a == RST_ACTION => Verdict::Allow("token exchange"),
                _ if env.is_secured() => Verdict::Allow("secured message"),
                _ => Verdict::Deny("unsecured application message"),
            },
        };
        match verdict {
            Verdict::Allow(_) => self.stats.allowed += 1,
            Verdict::Deny(_) => self.stats.denied += 1,
        }
        verdict
    }
}

/// A transport wrapper that applies a firewall to every outbound request
/// (modelling a perimeter between client and service).
pub struct FirewalledTransport<T: Transport> {
    inner: T,
    /// The perimeter firewall.
    pub firewall: Firewall,
}

impl<T: Transport> FirewalledTransport<T> {
    /// Wrap a transport behind a firewall.
    pub fn new(inner: T, firewall: Firewall) -> Self {
        FirewalledTransport { inner, firewall }
    }
}

impl<T: Transport> Transport for FirewalledTransport<T> {
    fn call(&mut self, request_xml: String) -> Result<String, OgsaError> {
        match self.firewall.inspect(&request_xml) {
            Verdict::Allow(_) => self.inner.call(request_xml),
            Verdict::Deny(reason) => Err(OgsaError::Transport(format!(
                "dropped by firewall: {reason}"
            ))),
        }
    }
}

/// Run a WS-Routing intermediary on the simulated network: receive an
/// envelope, apply the firewall, pop the next hop, forward, and relay
/// the reply back. Serves `max_requests` messages, then exits.
pub fn run_router(
    network: &Network,
    name: &str,
    mut firewall: Firewall,
    max_requests: usize,
) -> FirewallStats {
    let endpoint = network.register(name);
    for _ in 0..max_requests {
        let Ok(msg) = endpoint.recv() else { break };
        let xml = String::from_utf8_lossy(&msg.payload).into_owned();
        let reply = match firewall.inspect(&xml) {
            Verdict::Deny(reason) => crate::hosting::fault_envelope(&OgsaError::Transport(
                format!("dropped by firewall: {reason}"),
            ))
            .to_xml(),
            Verdict::Allow(_) => {
                // Route to the next hop and relay its reply.
                match Envelope::parse(&xml) {
                    Ok(mut env) => match routing::advance(&mut env) {
                        Ok(Some(next)) => match endpoint.call(&next, env.to_xml().into_bytes()) {
                            Ok(reply) => String::from_utf8_lossy(&reply.payload).into_owned(),
                            Err(e) => {
                                crate::hosting::fault_envelope(&OgsaError::Transport(e.to_string()))
                                    .to_xml()
                            }
                        },
                        _ => crate::hosting::fault_envelope(&OgsaError::Malformed(
                            "router received unrouted message",
                        ))
                        .to_xml(),
                    },
                    Err(e) => crate::hosting::fault_envelope(&OgsaError::Wsse(e)).to_xml(),
                }
            }
        };
        let _ = endpoint.send(&msg.from, reply.into_bytes());
    }
    firewall.stats
}

/// [`run_router`] as a resumable discrete-event task: drain the
/// mailbox, forward allowed envelopes to their next hop *without
/// blocking*, and relay each hop's replies back to the original
/// senders. Spawn it with
/// [`Scheduler::spawn_mailbox`][gridsec_testbed::sched::Scheduler::spawn_mailbox]
/// under the router's endpoint name; this replaces the
/// thread-per-router loop in scheduler-driven scenarios. The firewall
/// is shared so a harness can read its counters while the task lives on
/// the scheduler.
pub struct RouterTask {
    endpoint: Endpoint,
    firewall: Rc<RefCell<Firewall>>,
    /// Original requesters awaiting a reply from each next hop, in
    /// forwarding order. Per-link delivery on a fault-free network is
    /// FIFO, so the first reply from a hop answers the first request
    /// forwarded to it.
    pending: HashMap<String, VecDeque<String>>,
}

impl RouterTask {
    /// Register `name` and route through `firewall`.
    pub fn new(network: &Network, name: &str, firewall: Rc<RefCell<Firewall>>) -> Self {
        RouterTask {
            endpoint: network.register(name),
            firewall,
            pending: HashMap::new(),
        }
    }

    fn handle(&mut self, msg: Message) {
        // A message from a hop we forwarded to is that hop's reply:
        // relay it to the requester at the head of the hop's queue.
        if let Some(q) = self.pending.get_mut(&msg.from) {
            if let Some(client) = q.pop_front() {
                let _ = self.endpoint.send(&client, msg.payload);
                return;
            }
        }
        let xml = String::from_utf8_lossy(&msg.payload).into_owned();
        let fault = match self.firewall.borrow_mut().inspect(&xml) {
            Verdict::Deny(reason) => crate::hosting::fault_envelope(&OgsaError::Transport(
                format!("dropped by firewall: {reason}"),
            )),
            Verdict::Allow(_) => match Envelope::parse(&xml) {
                Ok(mut env) => match routing::advance(&mut env) {
                    Ok(Some(next)) => match self.endpoint.send(&next, env.to_xml().into_bytes()) {
                        Ok(()) => {
                            self.pending.entry(next).or_default().push_back(msg.from);
                            return;
                        }
                        Err(e) => {
                            crate::hosting::fault_envelope(&OgsaError::Transport(e.to_string()))
                        }
                    },
                    _ => crate::hosting::fault_envelope(&OgsaError::Malformed(
                        "router received unrouted message",
                    )),
                },
                Err(e) => crate::hosting::fault_envelope(&OgsaError::Wsse(e)),
            },
        };
        let _ = self.endpoint.send(&msg.from, fault.to_xml().into_bytes());
    }
}

impl Task for RouterTask {
    fn step(&mut self, _cx: &TaskCx) -> Step {
        while let Some(msg) = self.endpoint.try_recv() {
            self.handle(msg);
        }
        Step::WaitMail { deadline: None }
    }
}

/// A client-side transport that sends every request via a routed path
/// (client → router(s) → service) on the simulated network.
pub struct RoutedTransport {
    endpoint: Endpoint,
    path: routing::RoutingPath,
    pump: Option<Box<dyn FnMut() -> usize>>,
}

impl RoutedTransport {
    /// Connect, targeting `path` (first via = the entry router).
    pub fn connect(network: &Network, client_name: &str, path: routing::RoutingPath) -> Self {
        RoutedTransport {
            endpoint: network.register(client_name),
            path,
            pump: None,
        }
    }

    /// Install a pump hook (typically `|| scheduler.poll()`): instead of
    /// blocking on the reply, each call drives the hook until the reply
    /// arrives, so routers and services scheduled on the same thread
    /// make progress inside the client's wait.
    pub fn set_pump(&mut self, hook: impl FnMut() -> usize + 'static) {
        self.pump = Some(Box::new(hook));
    }

    /// One request/reply exchange: blocking without a pump, pump-driven
    /// with one. A quiescent pump with no reply means the message died
    /// inside the perimeter — surfaced as a timeout, not a hang.
    fn exchange(&mut self, to: &str, payload: Vec<u8>) -> Result<Message, TestbedError> {
        self.endpoint.send(to, payload)?;
        match &mut self.pump {
            None => self.endpoint.recv(),
            Some(pump) => loop {
                if let Some(m) = self.endpoint.try_recv() {
                    return Ok(m);
                }
                if pump() == 0 {
                    return Err(TestbedError::Timeout);
                }
            },
        }
    }
}

impl Transport for RoutedTransport {
    fn call(&mut self, request_xml: String) -> Result<String, OgsaError> {
        let mut env = Envelope::parse(&request_xml)?;
        routing::set_path(&mut env, &self.path);
        // First hop: either the first via or the destination directly.
        let first = self
            .path
            .via
            .first()
            .cloned()
            .unwrap_or_else(|| self.path.to.clone());
        // The envelope we send must have the first hop already consumed
        // when going direct; for routed paths the router pops hops.
        if self.path.via.is_empty() {
            let mut direct = env.clone();
            let _ = routing::advance(&mut direct).map_err(OgsaError::Wsse)?;
            let reply = self
                .exchange(&first, direct.to_xml().into_bytes())
                .map_err(|e| OgsaError::Transport(e.to_string()))?;
            return String::from_utf8(reply.payload)
                .map_err(|_| OgsaError::Transport("non-UTF8".into()));
        }
        // Pop the entry router from the path before sending to it.
        let _ = routing::advance(&mut env).map_err(OgsaError::Wsse)?;
        let reply = self
            .exchange(&first, env.to_xml().into_bytes())
            .map_err(|e| OgsaError::Transport(e.to_string()))?;
        String::from_utf8(reply.payload).map_err(|_| OgsaError::Transport("non-UTF8".into()))
    }
}
