//! The hosting environment: the container that terminates security for
//! every service it hosts (paper §4.2, §4.5 server side).
//!
//! One [`HostingEnvironment`] per (host, account) pair in GRAM terms.
//! Its `handle_message` entry point implements the server half of
//! Figure 3: recognize security-protocol messages and route them to the
//! token-processing machinery (step 4), authenticate application
//! messages, call out to the authorization policy (step 5), write audit
//! records, and only then let the application service see the request.

use gridsec_crypto::rng::ChaChaRng;
use gridsec_pki::credential::Credential;
use gridsec_pki::store::{CrlStore, TrustStore};
use gridsec_pki::validate::ValidatedIdentity;
use gridsec_testbed::clock::SimClock;
use gridsec_tls::handshake::TlsConfig;
use gridsec_wsse::policy::SecurityPolicy;
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::wssc::{WsscResponder, RST_ACTION, SECURED_ACTION_PREFIX};
use gridsec_wsse::xmlsig;
use gridsec_xml::Element;

use gridsec_authz::policy::{Decision, PolicySet, Request};

use crate::service::{RequestContext, ServiceRegistry};
use crate::OgsaError;

/// One audit record (paper §4.1's audit service consumes these).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditEvent {
    /// Event time.
    pub now: u64,
    /// Authenticated caller (base identity), or `"-"` for unauthenticated.
    pub caller: String,
    /// The attempted operation (action + target).
    pub operation: String,
    /// `"permit"`, `"deny"`, or `"error"`.
    pub outcome: String,
}

/// Audit callback type.
pub type AuditSink = Box<dyn FnMut(AuditEvent) + Send>;

/// A container hosting Grid services behind a security pipeline.
pub struct HostingEnvironment {
    name: String,
    credential: Credential,
    trust: TrustStore,
    crls: CrlStore,
    clock: SimClock,
    /// Service registry (factories + instances).
    pub registry: ServiceRegistry,
    published_policy: SecurityPolicy,
    responder: WsscResponder,
    authz: PolicySet,
    audit: Option<AuditSink>,
    rng: ChaChaRng,
    reply_ttl: u64,
}

impl HostingEnvironment {
    /// Create a hosting environment.
    pub fn new(
        name: &str,
        credential: Credential,
        trust: TrustStore,
        clock: SimClock,
        published_policy: SecurityPolicy,
        authz: PolicySet,
    ) -> Self {
        let tls_config = TlsConfig::new(credential.clone(), trust.clone(), clock.now());
        HostingEnvironment {
            name: name.to_string(),
            credential,
            trust,
            crls: CrlStore::new(),
            clock,
            registry: ServiceRegistry::new(),
            published_policy,
            responder: WsscResponder::new(tls_config),
            authz,
            audit: None,
            rng: ChaChaRng::from_seed_bytes(name.as_bytes()),
            reply_ttl: 300,
        }
    }

    /// The environment's endpoint name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Install an audit sink.
    pub fn set_audit(&mut self, sink: AuditSink) {
        self.audit = Some(sink);
    }

    /// Install revocation state.
    pub fn set_crls(&mut self, crls: CrlStore) {
        self.crls = crls;
    }

    /// The credential this environment authenticates as.
    pub fn credential(&self) -> &Credential {
        &self.credential
    }

    fn audit_event(&mut self, caller: &str, operation: &str, outcome: &str) {
        if let Some(sink) = &mut self.audit {
            sink(AuditEvent {
                now: self.clock.now(),
                caller: caller.to_string(),
                operation: operation.to_string(),
                outcome: outcome.to_string(),
            });
        }
    }

    /// Top-level entry point: one request envelope in, one reply envelope
    /// out. Never panics on hostile input; faults are SOAP faults.
    pub fn handle_message(&mut self, request_xml: &str) -> String {
        match self.dispatch(request_xml) {
            Ok(reply) => reply.to_xml(),
            Err(e) => fault_envelope(&e).to_xml(),
        }
    }

    fn dispatch(&mut self, request_xml: &str) -> Result<Envelope, OgsaError> {
        let env = Envelope::parse(request_xml)?;
        // Refresh the responder's notion of time lazily: contexts formed
        // earlier remain valid; new handshakes check current time.
        match env.action.as_deref() {
            // Policy retrieval is deliberately unsecured: it is how
            // clients *bootstrap* security (paper §4.3).
            Some("getPolicy") => Ok(Envelope::request(
                "getPolicyResponse",
                self.published_policy.to_element(),
            )),
            // WS-Trust token exchange (Figure 3 steps 3-4).
            Some(a) if a == RST_ACTION => {
                // New handshakes must validate chains at the current time.
                self.responder.set_time(self.clock.now());
                let reply = self
                    .responder
                    .handle_rst(&env, &mut self.rng)
                    .map_err(OgsaError::Wsse)?;
                Ok(reply)
            }
            // Protected application message under an established context.
            Some(a) if a.starts_with(SECURED_ACTION_PREFIX) => {
                let (ctx_id, inner) = self.responder.unprotect(&env).map_err(OgsaError::Wsse)?;
                let caller = self
                    .responder
                    .peer(&ctx_id)
                    .cloned()
                    .ok_or(OgsaError::Malformed("context lost"))?;
                let reply = self.process_authenticated(&inner, caller)?;
                Ok(self
                    .responder
                    .protect(&ctx_id, &reply)
                    .map_err(OgsaError::Wsse)?)
            }
            // Stateless signed message.
            Some(_) => {
                let verified =
                    xmlsig::verify_envelope(&env, &self.trust, &self.crls, self.clock.now())
                        .map_err(OgsaError::Wsse)?;
                let reply = self.process_authenticated(&env, verified.identity)?;
                // Sign the reply so the client can authenticate us too.
                Ok(xmlsig::sign_envelope(
                    &reply,
                    &self.credential,
                    self.clock.now(),
                    self.reply_ttl,
                ))
            }
            None => Err(OgsaError::Malformed("missing action")),
        }
    }

    /// Process a request whose caller is authenticated (Figure 3 step 5 +
    /// application dispatch).
    fn process_authenticated(
        &mut self,
        env: &Envelope,
        caller: ValidatedIdentity,
    ) -> Result<Envelope, OgsaError> {
        let action = env.action.as_deref().unwrap_or("");
        let payload = env.payload().ok_or(OgsaError::Malformed("empty body"))?;
        let now = self.clock.now();
        let caller_name = caller.base_identity.to_string();

        // Parse the wire payload into a typed request exactly once:
        // every attacker-controlled attribute is validated here, before
        // authorization, and the dispatch below never touches the raw
        // envelope again.
        let req = AppRequest::parse(action, payload)?;

        // Resolve the authorization target.
        let (resource, verb, op_desc) = match &req {
            AppRequest::Create { ty, .. } => (
                format!("factory:{ty}"),
                "create".to_string(),
                format!("createService {ty}"),
            ),
            AppRequest::Invoke { handle, op, .. } => {
                let ty = self
                    .registry
                    .service_type_of(handle)
                    .ok_or_else(|| OgsaError::NoSuchService(handle.to_string()))?;
                (
                    format!("service:{ty}"),
                    op.to_string(),
                    format!("invoke {handle} {op}"),
                )
            }
            AppRequest::Query { handle, .. } => {
                let ty = self
                    .registry
                    .service_type_of(handle)
                    .ok_or_else(|| OgsaError::NoSuchService(handle.to_string()))?;
                (
                    format!("service:{ty}"),
                    "query".to_string(),
                    format!("query {handle}"),
                )
            }
            AppRequest::Destroy { handle } => {
                let ty = self
                    .registry
                    .service_type_of(handle)
                    .ok_or_else(|| OgsaError::NoSuchService(handle.to_string()))?;
                (
                    format!("service:{ty}"),
                    "destroy".to_string(),
                    format!("destroy {handle}"),
                )
            }
        };

        // Authorization callout (Figure 3 step 5).
        let decision = self
            .authz
            .evaluate(&Request::new(&caller_name, &resource, &verb));
        if decision != Decision::Permit {
            self.audit_event(&caller_name, &op_desc, "deny");
            return Err(OgsaError::NotAuthorized {
                caller: caller_name,
                operation: op_desc,
            });
        }

        // Application dispatch, consuming the already-validated request.
        let result = match req {
            AppRequest::Create { ty, args } => {
                let ctx = RequestContext {
                    caller,
                    now,
                    handle: String::new(),
                };
                let args = args.cloned().unwrap_or_else(|| Element::new("ogsa:Args"));
                let handle = self.registry.create(ty, &ctx, &args)?;
                Ok(Envelope::request(
                    "createServiceResponse",
                    Element::new("ogsa:Handle").with_text(handle),
                ))
            }
            AppRequest::Invoke { handle, op, inner } => {
                let ctx = RequestContext {
                    caller,
                    now,
                    handle: handle.to_string(),
                };
                let inner = inner.cloned().unwrap_or_else(|| Element::new("ogsa:Empty"));
                let out = self.registry.invoke(handle, &ctx, op, &inner)?;
                Ok(Envelope::request("invokeResponse", out))
            }
            AppRequest::Query { handle, name } => {
                let sde = self
                    .registry
                    .query(handle, name)?
                    .unwrap_or_else(|| Element::new("ogsa:NoSuchSde"));
                Ok(Envelope::request("queryServiceDataResponse", sde))
            }
            AppRequest::Destroy { handle } => {
                self.registry.destroy(handle)?;
                Ok(Envelope::request(
                    "destroyResponse",
                    Element::new("ogsa:Ok"),
                ))
            }
        };
        let outcome = if result.is_ok() { "permit" } else { "error" };
        self.audit_event(&caller_name, &op_desc, outcome);
        result
    }
}

/// An application request with every wire-derived field extracted and
/// validated. Constructing one is the *only* place dispatch reads
/// attacker-controlled attributes, so a missing attribute is always a
/// typed [`OgsaError::Malformed`] fault — never a panic.
enum AppRequest<'a> {
    /// `createService`: instantiate `ty` via its factory.
    Create {
        ty: &'a str,
        args: Option<&'a Element>,
    },
    /// `invoke`: call `op` on the instance at `handle`.
    Invoke {
        handle: &'a str,
        op: &'a str,
        inner: Option<&'a Element>,
    },
    /// `queryServiceData`: read service-data element `name` of `handle`.
    Query { handle: &'a str, name: &'a str },
    /// `destroy`: terminate the instance at `handle`.
    Destroy { handle: &'a str },
}

impl<'a> AppRequest<'a> {
    fn parse(action: &str, payload: &'a Element) -> Result<Self, OgsaError> {
        match action {
            "createService" => Ok(AppRequest::Create {
                ty: payload
                    .attr("type")
                    .ok_or(OgsaError::Malformed("CreateService needs type"))?,
                args: payload.find("ogsa:Args"),
            }),
            "invoke" => Ok(AppRequest::Invoke {
                handle: payload
                    .attr("handle")
                    .ok_or(OgsaError::Malformed("Invoke needs handle"))?,
                op: payload
                    .attr("op")
                    .ok_or(OgsaError::Malformed("Invoke needs op"))?,
                inner: payload.child_elements().next(),
            }),
            "queryServiceData" => Ok(AppRequest::Query {
                handle: payload
                    .attr("handle")
                    .ok_or(OgsaError::Malformed("Query needs handle"))?,
                name: payload
                    .attr("name")
                    .ok_or(OgsaError::Malformed("Query needs name"))?,
            }),
            "destroy" => Ok(AppRequest::Destroy {
                handle: payload
                    .attr("handle")
                    .ok_or(OgsaError::Malformed("Destroy needs handle"))?,
            }),
            _ => Err(OgsaError::Malformed("unknown action")),
        }
    }
}

/// Render an error as a SOAP fault envelope.
pub fn fault_envelope(err: &OgsaError) -> Envelope {
    let code = match err {
        OgsaError::Wsse(_) => "security",
        OgsaError::NotAuthorized { .. } => "not-authorized",
        OgsaError::NoSuchService(_) => "no-such-service",
        OgsaError::NoSuchFactory(_) => "no-such-factory",
        OgsaError::Application(_) => "application",
        OgsaError::Transport(_) => "transport",
        OgsaError::InsecureReply(_) => "insecure-reply",
        OgsaError::NoUsableCredential => "no-credential",
        OgsaError::Malformed(_) => "malformed",
    };
    Envelope::request(
        "fault",
        Element::new("ogsa:Fault")
            .with_attr("code", code)
            .with_text(err.to_string()),
    )
}

/// Parse a fault envelope back into an error description.
pub fn parse_fault(env: &Envelope) -> Option<(String, String)> {
    if env.action.as_deref() != Some("fault") {
        return None;
    }
    let f = env.payload()?;
    Some((
        f.attr("code").unwrap_or("unknown").to_string(),
        f.text_content(),
    ))
}
