//! # gridsec-ogsa
//!
//! The Open Grid Services Architecture substrate: Grid services, hosting
//! environments, and the secured-request pipeline of Figure 3 in
//! *Security for Grid Services* (Welch et al., HPDC 2003).
//!
//! The paper's §4 thesis is that security should live in the
//! *infrastructure*, not the application: "Security mechanisms should not
//! have to be instantiated in an application but instead should be
//! supplied by the surrounding Grid infrastructure." Concretely:
//!
//! * [`service`] — the Grid service model: stateful service instances
//!   with handles, factories (`createService`), lifetime management
//!   (`destroy`), and service data elements (`queryServiceData`).
//! * [`hosting`] — the hosting environment (the paper's J2EE/.Net
//!   stand-in): it terminates security for every contained service —
//!   policy publication, WS-SecureConversation contexts, stateless
//!   XML-Signature verification, authorization callout, and audit — and
//!   hands applications a pre-authenticated, pre-authorized request.
//! * [`client`] — the client-side pipeline of Figure 3: (1) retrieve the
//!   target's published policy, (2) select credentials via policy
//!   intersection and [`client::CredentialSource`] conversion, (3/4)
//!   token exchange, (5) invoke. Applications call
//!   [`client::OgsaClient::invoke`]; everything else is infrastructure.
//! * [`transport`] — message transports: in-process (for benches) and
//!   the `gridsec-testbed` network (for multi-host scenarios).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod firewall;
pub mod hosting;
pub mod service;
pub mod transport;

use gridsec_wsse::WsseError;

/// Errors from OGSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OgsaError {
    /// Security layer failure.
    Wsse(WsseError),
    /// The request was authenticated but not authorized.
    NotAuthorized {
        /// The caller identity.
        caller: String,
        /// The denied operation.
        operation: String,
    },
    /// Unknown service handle.
    NoSuchService(String),
    /// Unknown factory / service type.
    NoSuchFactory(String),
    /// The service rejected the request.
    Application(String),
    /// Transport failure.
    Transport(String),
    /// The peer's reply failed security checks.
    InsecureReply(&'static str),
    /// No credential source satisfies the negotiated policy.
    NoUsableCredential,
    /// Malformed request or reply.
    Malformed(&'static str),
}

impl From<WsseError> for OgsaError {
    fn from(e: WsseError) -> Self {
        OgsaError::Wsse(e)
    }
}

impl core::fmt::Display for OgsaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OgsaError::Wsse(e) => write!(f, "security error: {e}"),
            OgsaError::NotAuthorized { caller, operation } => {
                write!(f, "{caller} not authorized for {operation}")
            }
            OgsaError::NoSuchService(h) => write!(f, "no such service: {h}"),
            OgsaError::NoSuchFactory(t) => write!(f, "no such factory: {t}"),
            OgsaError::Application(m) => write!(f, "application error: {m}"),
            OgsaError::Transport(m) => write!(f, "transport error: {m}"),
            OgsaError::InsecureReply(m) => write!(f, "insecure reply: {m}"),
            OgsaError::NoUsableCredential => write!(f, "no usable credential for policy"),
            OgsaError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for OgsaError {}
