//! The Grid service model: service instances, factories, handles, and
//! service data elements (paper §4: "OGSA defines standard Web service
//! interfaces and behaviors that add to Web services the concepts of
//! stateful services and secure invocation").

use gridsec_pki::validate::ValidatedIdentity;
use gridsec_xml::Element;
use std::collections::HashMap;

use crate::OgsaError;

/// Per-request context handed to a service by its hosting environment.
/// By the time a service sees this, authentication and authorization have
/// already happened — the paper's "the application, knowing that the
/// hosting environment has already taken care of security, can focus on
/// application-specific request processing".
pub struct RequestContext {
    /// Authenticated caller (never absent for secured operations).
    pub caller: ValidatedIdentity,
    /// Logical time of the request.
    pub now: u64,
    /// The service's own handle.
    pub handle: String,
}

/// A stateful Grid service instance.
pub trait GridService: Send {
    /// The service type name (factory key).
    fn service_type(&self) -> &str;

    /// Handle an operation. `payload` is the request body element; the
    /// returned element becomes the reply body.
    fn invoke(
        &mut self,
        ctx: &RequestContext,
        operation: &str,
        payload: &Element,
    ) -> Result<Element, OgsaError>;

    /// Query a service data element by name (paper §4: "Grid services can
    /// define, as part of their interface, service data elements that
    /// other entities can query").
    fn service_data(&self, _name: &str) -> Option<Element> {
        None
    }

    /// Lifetime hook: called when the hosting environment destroys the
    /// instance.
    fn on_destroy(&mut self) {}
}

/// A factory closure: creates a service instance from creation arguments.
pub type Factory =
    Box<dyn FnMut(&RequestContext, &Element) -> Result<Box<dyn GridService>, OgsaError> + Send>;

/// The instance registry inside one hosting environment.
#[derive(Default)]
pub struct ServiceRegistry {
    factories: HashMap<String, Factory>,
    instances: HashMap<String, Box<dyn GridService>>,
    next_id: u64,
}

impl ServiceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ServiceRegistry::default()
    }

    /// Register a factory for a service type.
    pub fn register_factory(&mut self, service_type: &str, factory: Factory) {
        self.factories.insert(service_type.to_string(), factory);
    }

    /// Create an instance (the `createService` operation). Returns the new
    /// Grid service handle (GSH).
    pub fn create(
        &mut self,
        service_type: &str,
        ctx: &RequestContext,
        args: &Element,
    ) -> Result<String, OgsaError> {
        let factory = self
            .factories
            .get_mut(service_type)
            .ok_or_else(|| OgsaError::NoSuchFactory(service_type.to_string()))?;
        let instance = factory(ctx, args)?;
        self.next_id += 1;
        let handle = format!("gsh:{}-{}", service_type, self.next_id);
        self.instances.insert(handle.clone(), instance);
        Ok(handle)
    }

    /// Insert a pre-built instance under a well-known handle (persistent
    /// services such as factories themselves).
    pub fn insert(&mut self, handle: &str, instance: Box<dyn GridService>) {
        self.instances.insert(handle.to_string(), instance);
    }

    /// Dispatch an operation to an instance.
    pub fn invoke(
        &mut self,
        handle: &str,
        ctx: &RequestContext,
        operation: &str,
        payload: &Element,
    ) -> Result<Element, OgsaError> {
        let instance = self
            .instances
            .get_mut(handle)
            .ok_or_else(|| OgsaError::NoSuchService(handle.to_string()))?;
        instance.invoke(ctx, operation, payload)
    }

    /// Query service data on an instance.
    pub fn query(&self, handle: &str, name: &str) -> Result<Option<Element>, OgsaError> {
        let instance = self
            .instances
            .get(handle)
            .ok_or_else(|| OgsaError::NoSuchService(handle.to_string()))?;
        Ok(instance.service_data(name))
    }

    /// Destroy an instance (lifetime management).
    pub fn destroy(&mut self, handle: &str) -> Result<(), OgsaError> {
        let mut instance = self
            .instances
            .remove(handle)
            .ok_or_else(|| OgsaError::NoSuchService(handle.to_string()))?;
        instance.on_destroy();
        Ok(())
    }

    /// The type of a live instance.
    pub fn service_type_of(&self, handle: &str) -> Option<&str> {
        self.instances.get(handle).map(|i| i.service_type())
    }

    /// Number of live instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Handles of all live instances.
    pub fn handles(&self) -> Vec<String> {
        let mut v: Vec<String> = self.instances.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsec_crypto::rng::ChaChaRng;
    use gridsec_pki::ca::CertificateAuthority;
    use gridsec_pki::name::DistinguishedName;
    use gridsec_pki::store::TrustStore;
    use gridsec_pki::validate::validate_chain;

    fn test_ctx() -> RequestContext {
        let mut rng = ChaChaRng::from_seed_bytes(b"svc ctx");
        let ca = CertificateAuthority::create_root(
            &mut rng,
            DistinguishedName::parse("/O=G/CN=CA").unwrap(),
            512,
            0,
            1000,
        );
        let cred = ca.issue_identity(
            &mut rng,
            DistinguishedName::parse("/O=G/CN=U").unwrap(),
            512,
            0,
            1000,
        );
        let mut trust = TrustStore::new();
        trust.add_root(ca.certificate().clone());
        RequestContext {
            caller: validate_chain(cred.chain(), &trust, 10).unwrap(),
            now: 10,
            handle: "gsh:test".to_string(),
        }
    }

    /// A counter service used across the OGSA tests.
    struct Counter {
        value: i64,
        destroyed: bool,
    }

    impl GridService for Counter {
        fn service_type(&self) -> &str {
            "counter"
        }
        fn invoke(
            &mut self,
            _ctx: &RequestContext,
            operation: &str,
            payload: &Element,
        ) -> Result<Element, OgsaError> {
            match operation {
                "add" => {
                    let delta: i64 = payload
                        .text_content()
                        .parse()
                        .map_err(|_| OgsaError::Malformed("add wants an integer"))?;
                    self.value += delta;
                    Ok(Element::new("value").with_text(self.value.to_string()))
                }
                "get" => Ok(Element::new("value").with_text(self.value.to_string())),
                other => Err(OgsaError::Application(format!("unknown op {other}"))),
            }
        }
        fn service_data(&self, name: &str) -> Option<Element> {
            (name == "currentValue")
                .then(|| Element::new("sde:currentValue").with_text(self.value.to_string()))
        }
        fn on_destroy(&mut self) {
            self.destroyed = true;
        }
    }

    fn registry_with_counter() -> ServiceRegistry {
        let mut reg = ServiceRegistry::new();
        reg.register_factory(
            "counter",
            Box::new(|_ctx, args| {
                let start: i64 = args.text_content().parse().unwrap_or(0);
                Ok(Box::new(Counter {
                    value: start,
                    destroyed: false,
                }))
            }),
        );
        reg
    }

    #[test]
    fn create_invoke_destroy_lifecycle() {
        let mut reg = registry_with_counter();
        let ctx = test_ctx();
        let h = reg
            .create("counter", &ctx, &Element::new("args").with_text("5"))
            .unwrap();
        assert!(h.starts_with("gsh:counter-"));
        assert_eq!(reg.instance_count(), 1);

        let r = reg
            .invoke(&h, &ctx, "add", &Element::new("a").with_text("3"))
            .unwrap();
        assert_eq!(r.text_content(), "8");

        reg.destroy(&h).unwrap();
        assert_eq!(reg.instance_count(), 0);
        assert!(matches!(
            reg.invoke(&h, &ctx, "get", &Element::new("a")),
            Err(OgsaError::NoSuchService(_))
        ));
    }

    #[test]
    fn distinct_instances_have_distinct_state() {
        let mut reg = registry_with_counter();
        let ctx = test_ctx();
        let h1 = reg
            .create("counter", &ctx, &Element::new("a").with_text("0"))
            .unwrap();
        let h2 = reg
            .create("counter", &ctx, &Element::new("a").with_text("100"))
            .unwrap();
        assert_ne!(h1, h2);
        reg.invoke(&h1, &ctx, "add", &Element::new("a").with_text("1"))
            .unwrap();
        let v2 = reg.invoke(&h2, &ctx, "get", &Element::new("a")).unwrap();
        assert_eq!(v2.text_content(), "100");
    }

    #[test]
    fn service_data_query() {
        let mut reg = registry_with_counter();
        let ctx = test_ctx();
        let h = reg
            .create("counter", &ctx, &Element::new("a").with_text("7"))
            .unwrap();
        let sde = reg.query(&h, "currentValue").unwrap().unwrap();
        assert_eq!(sde.text_content(), "7");
        assert!(reg.query(&h, "nonexistent").unwrap().is_none());
        assert!(reg.query("gsh:ghost", "x").is_err());
    }

    #[test]
    fn unknown_factory_rejected() {
        let mut reg = registry_with_counter();
        let ctx = test_ctx();
        assert!(matches!(
            reg.create("warp-drive", &ctx, &Element::new("a")),
            Err(OgsaError::NoSuchFactory(_))
        ));
    }

    #[test]
    fn application_errors_propagate() {
        let mut reg = registry_with_counter();
        let ctx = test_ctx();
        let h = reg.create("counter", &ctx, &Element::new("a")).unwrap();
        assert!(matches!(
            reg.invoke(&h, &ctx, "frobnicate", &Element::new("a")),
            Err(OgsaError::Application(_))
        ));
        assert!(matches!(
            reg.invoke(&h, &ctx, "add", &Element::new("a").with_text("NaN")),
            Err(OgsaError::Malformed(_))
        ));
    }

    #[test]
    fn well_known_handles() {
        let mut reg = registry_with_counter();
        reg.insert(
            "gsh:persistent-counter",
            Box::new(Counter {
                value: 42,
                destroyed: false,
            }),
        );
        assert_eq!(
            reg.service_type_of("gsh:persistent-counter"),
            Some("counter")
        );
        assert_eq!(reg.handles(), vec!["gsh:persistent-counter".to_string()]);
    }
}
