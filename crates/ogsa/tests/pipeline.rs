//! Integration tests for the full Figure 3 pipeline: client hosting
//! environment → security services → server hosting environment →
//! application service.

use std::cell::RefCell;
use std::rc::Rc;

use gridsec_authz::policy::{CombiningAlg, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_ogsa::client::{OgsaClient, StaticCredential};
use gridsec_ogsa::hosting::{AuditEvent, HostingEnvironment};
use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::transport::{
    InProcessTransport, NetworkTransport, RetryTransport, RpcService, ServeTask, Transport,
};
use gridsec_ogsa::OgsaError;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::net::Network;
use gridsec_testbed::sched::Scheduler;
use gridsec_util::retry::RetryPolicy;
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_xml::Element;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

/// Echo service: replies with the caller identity and the payload.
struct EchoService;

impl GridService for EchoService {
    fn service_type(&self) -> &str {
        "echo"
    }
    fn invoke(
        &mut self,
        ctx: &RequestContext,
        operation: &str,
        payload: &Element,
    ) -> Result<Element, OgsaError> {
        match operation {
            "echo" => Ok(Element::new("echo:Reply")
                .with_attr("caller", ctx.caller.base_identity.to_string())
                .with_text(payload.text_content())),
            other => Err(OgsaError::Application(format!("unknown op {other}"))),
        }
    }
    fn service_data(&self, name: &str) -> Option<Element> {
        (name == "serviceType").then(|| Element::new("sde").with_text("echo"))
    }
}

struct World {
    trust: TrustStore,
    alice: Credential,
    eve: Credential,
    service_cred: Credential,
    clock: SimClock,
}

fn world() -> World {
    let mut rng = ChaChaRng::from_seed_bytes(b"ogsa pipeline");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
    let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 500_000);
    let eve = ca.issue_identity(&mut rng, dn("/O=G/CN=Eve"), 512, 0, 500_000);
    let service_cred = ca.issue_identity(&mut rng, dn("/O=G/CN=EchoHost"), 512, 0, 500_000);
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    World {
        trust,
        alice,
        eve,
        service_cred,
        clock: SimClock::starting_at(100),
    }
}

fn published_policy(mechanisms: &[&str]) -> SecurityPolicy {
    SecurityPolicy {
        service: "echo".to_string(),
        alternatives: mechanisms
            .iter()
            .map(|m| PolicyAlternative {
                mechanism: m.to_string(),
                token_types: vec!["x509-chain".to_string()],
                trust_roots: vec![],
                protection: Protection::Sign,
            })
            .collect(),
    }
}

fn authz_for_alice() -> PolicySet {
    let mut p = PolicySet::new(CombiningAlg::DenyOverrides);
    p.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=Alice".to_string()),
        "factory:echo",
        "create",
        Effect::Permit,
    ));
    p.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=Alice".to_string()),
        "service:echo",
        "*",
        Effect::Permit,
    ));
    p
}

fn make_env(w: &World, mechanisms: &[&str]) -> HostingEnvironment {
    let mut env = HostingEnvironment::new(
        "echo-host",
        w.service_cred.clone(),
        w.trust.clone(),
        w.clock.clone(),
        published_policy(mechanisms),
        authz_for_alice(),
    );
    env.registry
        .register_factory("echo", Box::new(|_ctx, _args| Ok(Box::new(EchoService))));
    env
}

fn make_client(
    w: &World,
    env: Rc<RefCell<HostingEnvironment>>,
    cred: &Credential,
) -> OgsaClient<InProcessTransport> {
    let mut client = OgsaClient::new(
        InProcessTransport::new(env),
        w.trust.clone(),
        w.clock.clone(),
        b"client rng",
    );
    client.add_source(Box::new(StaticCredential(cred.clone())));
    client
}

fn full_flow(mechanisms: &[&str]) {
    let w = world();
    let env = Rc::new(RefCell::new(make_env(&w, mechanisms)));
    let mut client = make_client(&w, env, &w.alice);

    // Create, invoke, query, destroy — the whole lifecycle, secured.
    let handle = client.create_service("echo", Element::new("args")).unwrap();
    let reply = client
        .invoke(&handle, "echo", Element::new("m").with_text("hello grid"))
        .unwrap();
    assert_eq!(reply.text_content(), "hello grid");
    assert_eq!(reply.attr("caller"), Some("/O=G/CN=Alice"));

    let sde = client.query_service_data(&handle, "serviceType").unwrap();
    assert_eq!(sde.text_content(), "echo");

    client.destroy(&handle).unwrap();
    assert!(matches!(
        client.invoke(&handle, "echo", Element::new("m")),
        Err(OgsaError::NoSuchService(_))
    ));
}

#[test]
fn stateful_mechanism_full_lifecycle() {
    full_flow(&["gsi-secure-conversation"]);
}

#[test]
fn stateless_mechanism_full_lifecycle() {
    full_flow(&["xml-signature"]);
}

#[test]
fn policy_negotiation_prefers_server_order() {
    let w = world();
    let env = Rc::new(RefCell::new(make_env(
        &w,
        &["xml-signature", "gsi-secure-conversation"],
    )));
    let mut client = make_client(&w, env, &w.alice);
    let handle = client.create_service("echo", Element::new("args")).unwrap();
    let _ = client
        .invoke(&handle, "echo", Element::new("m").with_text("x"))
        .unwrap();
    // Server preferred xml-signature → no conversation was established.
    assert_eq!(client.contexts_established, 0);
    assert_eq!(client.policy_fetches, 1);
}

#[test]
fn stateful_context_is_reused_across_calls() {
    let w = world();
    let env = Rc::new(RefCell::new(make_env(&w, &["gsi-secure-conversation"])));
    let mut client = make_client(&w, env, &w.alice);
    let handle = client.create_service("echo", Element::new("args")).unwrap();
    for i in 0..5 {
        client
            .invoke(&handle, "echo", Element::new("m").with_text(i.to_string()))
            .unwrap();
    }
    assert_eq!(client.contexts_established, 1);
    assert_eq!(client.policy_fetches, 1);
}

#[test]
fn dropped_context_resumes_without_full_handshake() {
    let w = world();
    let env = Rc::new(RefCell::new(make_env(&w, &["gsi-secure-conversation"])));
    let mut client = make_client(&w, env, &w.alice);
    let handle = client.create_service("echo", Element::new("args")).unwrap();
    assert_eq!(client.contexts_established, 1);

    // Losing the conversation (e.g. an idle timeout) keeps the ticket:
    // the next call runs the abbreviated exchange, not a full handshake.
    client.reset_session();
    client
        .invoke(&handle, "echo", Element::new("m").with_text("again"))
        .unwrap();
    assert_eq!(client.contexts_established, 1);
    assert_eq!(client.contexts_resumed, 1);

    // Resumption rotates the ticket, so it works repeatedly.
    client.reset_session();
    client
        .invoke(&handle, "echo", Element::new("m").with_text("thrice"))
        .unwrap();
    assert_eq!(client.contexts_established, 1);
    assert_eq!(client.contexts_resumed, 2);
}

#[test]
fn restarted_service_forces_full_handshake_fallback() {
    let w = world();
    let env = Rc::new(RefCell::new(make_env(&w, &["gsi-secure-conversation"])));
    let mut client = make_client(&w, env.clone(), &w.alice);
    let handle = client.create_service("echo", Element::new("args")).unwrap();
    assert_eq!(client.contexts_established, 1);

    // Restart the hosting environment: its session cache (and the service
    // instance) are gone, so the client's ticket is refused and it falls
    // back to the full exchange transparently.
    let _ = handle;
    *env.borrow_mut() = make_env(&w, &["gsi-secure-conversation"]);
    client.reset_session();
    let handle2 = client.create_service("echo", Element::new("args")).unwrap();
    let reply = client
        .invoke(&handle2, "echo", Element::new("m").with_text("back"))
        .unwrap();
    assert_eq!(reply.text_content(), "back");
    assert_eq!(client.contexts_established, 2);
    assert_eq!(client.contexts_resumed, 0);
}

#[test]
fn unauthorized_caller_denied_but_authenticated() {
    let w = world();
    let env = Rc::new(RefCell::new(make_env(&w, &["xml-signature"])));
    // Capture audit records through a channel (the sink must be Send).
    let (tx, rx) = std::sync::mpsc::channel::<AuditEvent>();
    env.borrow_mut().set_audit(Box::new(move |e| {
        let _ = tx.send(e);
    }));
    let mut client = make_client(&w, env.clone(), &w.eve);
    let err = client
        .create_service("echo", Element::new("args"))
        .unwrap_err();
    assert!(matches!(err, OgsaError::NotAuthorized { .. }));
    // The denial was audited with the authenticated identity.
    let event = rx.try_recv().unwrap();
    assert_eq!(event.caller, "/O=G/CN=Eve");
    assert_eq!(event.outcome, "deny");
}

#[test]
fn unsigned_request_rejected() {
    let w = world();
    let mut env = make_env(&w, &["xml-signature"]);
    let naked = gridsec_wsse::soap::Envelope::request(
        "invoke",
        Element::new("ogsa:Invoke")
            .with_attr("handle", "gsh:echo-1")
            .with_attr("op", "echo"),
    );
    let reply = env.handle_message(&naked.to_xml());
    assert!(reply.contains("fault"));
    assert!(reply.contains("security"));
}

#[test]
fn garbage_input_yields_fault_not_panic() {
    let w = world();
    let mut env = make_env(&w, &["xml-signature"]);
    for garbage in ["", "not xml", "<a/>", "<soap:Envelope/>"] {
        let reply = env.handle_message(garbage);
        assert!(reply.contains("fault"), "input {garbage:?}");
    }
}

#[test]
fn firewall_observability_of_secured_messages() {
    // Paper §4.4: "a firewall can recognize whether a connection is
    // authenticated". Protected and signed envelopes are recognizable
    // without any keys.
    let w = world();
    let env = Rc::new(RefCell::new(make_env(&w, &["gsi-secure-conversation"])));

    // Wrap the transport to observe wire messages.
    struct Observer<T: Transport> {
        inner: T,
        secured: Rc<RefCell<u32>>,
        total: Rc<RefCell<u32>>,
    }
    impl<T: Transport> Transport for Observer<T> {
        fn call(&mut self, request_xml: String) -> Result<String, OgsaError> {
            *self.total.borrow_mut() += 1;
            let env = gridsec_wsse::soap::Envelope::parse(&request_xml).unwrap();
            if env.is_secured() {
                *self.secured.borrow_mut() += 1;
            }
            self.inner.call(request_xml)
        }
    }

    let secured = Rc::new(RefCell::new(0u32));
    let total = Rc::new(RefCell::new(0u32));
    let mut client = OgsaClient::new(
        Observer {
            inner: InProcessTransport::new(env),
            secured: secured.clone(),
            total: total.clone(),
        },
        w.trust.clone(),
        w.clock.clone(),
        b"firewall test",
    );
    client.add_source(Box::new(StaticCredential(w.alice.clone())));
    let handle = client.create_service("echo", Element::new("args")).unwrap();
    client
        .invoke(&handle, "echo", Element::new("m").with_text("x"))
        .unwrap();

    // getPolicy is unsecured; RST exchanges carry tokens in the body (not
    // the security header); the application messages are secured.
    assert!(*total.borrow() >= 4);
    assert!(*secured.borrow() >= 2);
}

#[test]
fn network_transport_end_to_end() {
    let w = world();
    let network = Network::new();
    // The service is a task on a deterministic scheduler — no server
    // thread, no registration race, no request cap. The pump hook runs
    // the scheduler inside the client's wait (raw-envelope transport).
    let mut sched = Scheduler::new(&network);
    sched.spawn_mailbox(
        "echo-host",
        ServeTask::new(&network, "echo-host", make_env(&w, &["xml-signature"])),
    );
    let sched = Rc::new(RefCell::new(sched));

    let mut transport = NetworkTransport::connect(&network, "client-1", "echo-host");
    let s = sched.clone();
    transport.set_pump(move || s.borrow_mut().poll());
    let mut client = OgsaClient::new(transport, w.trust.clone(), w.clock.clone(), b"net client");
    client.add_source(Box::new(StaticCredential(w.alice.clone())));
    let handle = client.create_service("echo", Element::new("args")).unwrap();
    assert!(handle.starts_with("gsh:echo-"));
    // getPolicy + createService = 2 round trips = 4 messages.
    assert!(network.stats().messages >= 4);
}

#[test]
fn scheduled_rpc_service_end_to_end() {
    let w = world();
    let network = Network::new();
    // Same flow over the at-most-once RPC framing: the RpcService runs
    // as a scheduler task (its Task impl), woken per delivery.
    let env = Rc::new(RefCell::new(make_env(&w, &["xml-signature"])));
    let mut sched = Scheduler::new(&network);
    sched.spawn_mailbox("echo-host", RpcService::new(&network, "echo-host", env));
    let sched = Rc::new(RefCell::new(sched));

    let mut transport = RetryTransport::connect(
        &network,
        "client-1",
        "echo-host",
        RetryPolicy {
            max_attempts: 4,
            base_timeout: 8,
            multiplier: 2,
            max_timeout: 32,
        },
    );
    let s = sched.clone();
    transport.set_pump(move || s.borrow_mut().poll());
    let mut client = OgsaClient::new(transport, w.trust.clone(), w.clock.clone(), b"rpc client");
    client.add_source(Box::new(StaticCredential(w.alice.clone())));
    let handle = client.create_service("echo", Element::new("args")).unwrap();
    let reply = client
        .invoke(
            &handle,
            "echo",
            Element::new("m").with_text("via scheduler"),
        )
        .unwrap();
    assert_eq!(reply.text_content(), "via scheduler");
}
