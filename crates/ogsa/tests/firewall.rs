//! Firewall observability (§4.4) and WS-Routing (§6 future work) tests:
//! a key-free perimeter admits only recognizably-secured traffic, and a
//! routed path lets a client reach a service through an intermediary
//! without the intermediary terminating security.

use std::cell::RefCell;
use std::rc::Rc;

use gridsec_authz::policy::{CombiningAlg, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_ogsa::client::{OgsaClient, StaticCredential};
use gridsec_ogsa::firewall::{Firewall, FirewalledTransport, RoutedTransport, RouterTask, Verdict};
use gridsec_ogsa::hosting::HostingEnvironment;
use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::transport::{InProcessTransport, ServeTask};
use gridsec_ogsa::OgsaError;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::net::Network;
use gridsec_testbed::sched::Scheduler;
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_wsse::routing::RoutingPath;
use gridsec_xml::Element;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

struct Null;
impl GridService for Null {
    fn service_type(&self) -> &str {
        "null"
    }
    fn invoke(
        &mut self,
        _c: &RequestContext,
        _o: &str,
        _p: &Element,
    ) -> Result<Element, OgsaError> {
        Ok(Element::new("ok"))
    }
}

struct World {
    trust: TrustStore,
    user: Credential,
    service: Credential,
    clock: SimClock,
}

fn world() -> World {
    let mut rng = ChaChaRng::from_seed_bytes(b"firewall tests");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 10_000_000);
    let user = ca.issue_identity(&mut rng, dn("/O=G/CN=U"), 512, 0, 1_000_000);
    let service = ca.issue_identity(&mut rng, dn("/O=G/CN=S"), 512, 0, 1_000_000);
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    World {
        trust,
        user,
        service,
        clock: SimClock::starting_at(100),
    }
}

fn env_for(w: &World, mechanism: &str) -> HostingEnvironment {
    let published = SecurityPolicy {
        service: "null".to_string(),
        alternatives: vec![PolicyAlternative {
            mechanism: mechanism.to_string(),
            token_types: vec!["x509-chain".to_string()],
            trust_roots: vec![],
            protection: Protection::Sign,
        }],
    };
    let mut authz = PolicySet::new(CombiningAlg::DenyOverrides);
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=U".to_string()),
        "*",
        "*",
        Effect::Permit,
    ));
    let mut env = HostingEnvironment::new(
        "fw-host",
        w.service.clone(),
        w.trust.clone(),
        w.clock.clone(),
        published,
        authz,
    );
    env.registry
        .register_factory("null", Box::new(|_c, _a| Ok(Box::new(Null))));
    env
}

#[test]
fn firewall_classifies_without_keys() {
    let w = world();
    let mut fw = Firewall::new();

    // Unsecured application message: denied.
    let naked = gridsec_wsse::soap::Envelope::request("invoke", Element::new("x"));
    assert!(matches!(fw.inspect(&naked.to_xml()), Verdict::Deny(_)));

    // Policy bootstrap: allowed.
    let boot = gridsec_wsse::soap::Envelope::request("getPolicy", Element::new("q"));
    assert!(matches!(fw.inspect(&boot.to_xml()), Verdict::Allow(_)));

    // Signed message: allowed (recognizable by the Security header).
    let signed = gridsec_wsse::xmlsig::sign_envelope(&naked, &w.user, 100, 300);
    assert!(matches!(fw.inspect(&signed.to_xml()), Verdict::Allow(_)));

    // Garbage: denied.
    assert!(matches!(fw.inspect("not xml"), Verdict::Deny(_)));
    assert_eq!(fw.stats.allowed, 2);
    assert_eq!(fw.stats.denied, 2);
}

#[test]
fn firewalled_client_still_completes_secured_flows() {
    let w = world();
    // Both mechanisms pass a strict perimeter: every message is either a
    // bootstrap, a token exchange, or secured.
    for mechanism in ["gsi-secure-conversation", "xml-signature"] {
        let env = Rc::new(RefCell::new(env_for(&w, mechanism)));
        let transport = FirewalledTransport::new(InProcessTransport::new(env), Firewall::new());
        let mut client = OgsaClient::new(
            transport,
            w.trust.clone(),
            w.clock.clone(),
            format!("fw client {mechanism}").as_bytes(),
        );
        client.add_source(Box::new(StaticCredential(w.user.clone())));
        let handle = client.create_service("null", Element::new("a")).unwrap();
        client.invoke(&handle, "run", Element::new("p")).unwrap();
    }
}

#[test]
fn ws_routing_through_firewalled_intermediary() {
    let w = world();
    let network = Network::new();

    // Service and perimeter router are tasks on one deterministic
    // scheduler — no threads, no registration races, no request caps.
    let mut sched = Scheduler::new(&network);
    sched.spawn_mailbox(
        "inner-host",
        ServeTask::new(&network, "inner-host", env_for(&w, "xml-signature")),
    );
    let fw = Rc::new(RefCell::new(Firewall::new()));
    sched.spawn_mailbox(
        "perimeter",
        RouterTask::new(&network, "perimeter", fw.clone()),
    );
    let sched = Rc::new(RefCell::new(sched));

    // Client outside the perimeter, routing via it; the pump hook runs
    // the scheduler inside each call's wait.
    let mut transport = RoutedTransport::connect(
        &network,
        "outside-client",
        RoutingPath::through(&["perimeter"], "inner-host"),
    );
    let s = sched.clone();
    transport.set_pump(move || s.borrow_mut().poll());
    let mut client = OgsaClient::new(transport, w.trust.clone(), w.clock.clone(), b"routed");
    client.add_source(Box::new(StaticCredential(w.user.clone())));

    let handle = client.create_service("null", Element::new("a")).unwrap();
    let reply = client.invoke(&handle, "run", Element::new("p")).unwrap();
    assert_eq!(reply.name, "ok");

    // getPolicy + createService + invoke all passed the perimeter.
    let stats = fw.borrow().stats;
    assert_eq!(stats.allowed, 3);
    assert_eq!(stats.denied, 0);
}

#[test]
fn router_drops_unsecured_messages() {
    let network = Network::new();
    let mut sched = Scheduler::new(&network);
    let fw = Rc::new(RefCell::new(Firewall::new()));
    sched.spawn_mailbox(
        "perimeter",
        RouterTask::new(&network, "perimeter", fw.clone()),
    );
    let client = network.register("attacker");
    let naked = gridsec_wsse::soap::Envelope::request("invoke", Element::new("x"));
    let mut env = naked;
    gridsec_wsse::routing::set_path(&mut env, &RoutingPath::through(&[], "inner-host"));
    client.send("perimeter", env.to_xml().into_bytes()).unwrap();
    sched.poll();
    let reply = client.try_recv().expect("router replied with a fault");
    let text = String::from_utf8_lossy(&reply.payload).into_owned();
    assert!(text.contains("fault"));
    assert!(text.contains("firewall"));
    assert_eq!(fw.borrow().stats.denied, 1);
}
