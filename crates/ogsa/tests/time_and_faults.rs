//! Time-advancement and fault-handling behaviour of the hosting
//! environment: credential expiry, SimClock-driven network timeouts
//! mid-handshake, and clock skew between hosts.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use gridsec_authz::policy::{CombiningAlg, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_ogsa::client::{OgsaClient, StaticCredential};
use gridsec_ogsa::hosting::{fault_envelope, parse_fault, HostingEnvironment};
use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::transport::{InProcessTransport, RetryTransport, RpcService};
use gridsec_ogsa::OgsaError;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;
use gridsec_testbed::clock::SimClock;
use gridsec_testbed::net::{FaultProfile, Network};
use gridsec_util::retry::RetryPolicy;
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_xml::Element;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

struct Null;
impl GridService for Null {
    fn service_type(&self) -> &str {
        "null"
    }
    fn invoke(
        &mut self,
        _c: &RequestContext,
        _o: &str,
        _p: &Element,
    ) -> Result<Element, OgsaError> {
        Ok(Element::new("ok"))
    }
}

/// Build the hosting environment on `server_clock` and the client on
/// `client_clock`; passing the same clock twice gives the classic
/// single-timeline setup, different clocks model skewed hosts.
fn build_skewed(
    server_clock: &SimClock,
    client_clock: &SimClock,
    mechanism: &str,
    user_lifetime: u64,
) -> (
    Rc<RefCell<HostingEnvironment>>,
    OgsaClient<InProcessTransport>,
) {
    let (env, trust, user) = build_env(server_clock, mechanism, user_lifetime);
    let mut client = OgsaClient::new(
        InProcessTransport::new(env.clone()),
        trust,
        client_clock.clone(),
        b"time client",
    );
    client.add_source(Box::new(StaticCredential(user)));
    (env, client)
}

fn build_env(
    clock: &SimClock,
    mechanism: &str,
    user_lifetime: u64,
) -> (
    Rc<RefCell<HostingEnvironment>>,
    TrustStore,
    gridsec_pki::credential::Credential,
) {
    let mut rng = ChaChaRng::from_seed_bytes(b"time tests");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 10_000_000);
    let user = ca.issue_identity(&mut rng, dn("/O=G/CN=U"), 512, 0, user_lifetime);
    let service = ca.issue_identity(&mut rng, dn("/O=G/CN=S"), 512, 0, 10_000_000);
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());

    let published = SecurityPolicy {
        service: "null".to_string(),
        alternatives: vec![PolicyAlternative {
            mechanism: mechanism.to_string(),
            token_types: vec!["x509-chain".to_string()],
            trust_roots: vec![],
            protection: Protection::Sign,
        }],
    };
    let mut authz = PolicySet::new(CombiningAlg::DenyOverrides);
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=U".to_string()),
        "*",
        "*",
        Effect::Permit,
    ));
    let mut env = HostingEnvironment::new(
        "time-host",
        service,
        trust.clone(),
        clock.clone(),
        published,
        authz,
    );
    env.registry
        .register_factory("null", Box::new(|_c, _a| Ok(Box::new(Null))));
    (Rc::new(RefCell::new(env)), trust, user)
}

fn build(
    clock: &SimClock,
    mechanism: &str,
    user_lifetime: u64,
) -> (
    Rc<RefCell<HostingEnvironment>>,
    OgsaClient<InProcessTransport>,
) {
    build_skewed(clock, clock, mechanism, user_lifetime)
}

#[test]
fn expired_credential_refused_for_new_contexts() {
    let clock = SimClock::starting_at(100);
    let (_env, mut client) = build(&clock, "gsi-secure-conversation", 1_000);
    let handle = client.create_service("null", Element::new("a")).unwrap();
    client.invoke(&handle, "x", Element::new("p")).unwrap();

    // Advance time past the user's certificate lifetime; a fresh context
    // must be refused at the token exchange.
    clock.advance(10_000);
    client.reset_session();
    let err = client.invoke(&handle, "x", Element::new("p")).unwrap_err();
    assert!(matches!(
        err,
        OgsaError::Application(_) | OgsaError::Wsse(_)
    ));
}

#[test]
fn stateless_requests_expire_with_credential() {
    let clock = SimClock::starting_at(100);
    let (_env, mut client) = build(&clock, "xml-signature", 1_000);
    let handle = client.create_service("null", Element::new("a")).unwrap();
    client.invoke(&handle, "x", Element::new("p")).unwrap();

    clock.advance(10_000);
    let err = client.invoke(&handle, "x", Element::new("p")).unwrap_err();
    assert!(matches!(
        err,
        OgsaError::Application(_) | OgsaError::Wsse(_)
    ));
}

#[test]
fn fault_envelopes_roundtrip_every_variant() {
    let errors = vec![
        OgsaError::NotAuthorized {
            caller: "x".to_string(),
            operation: "y".to_string(),
        },
        OgsaError::NoSuchService("gsh:1".to_string()),
        OgsaError::NoSuchFactory("warp".to_string()),
        OgsaError::Application("boom".to_string()),
        OgsaError::Transport("down".to_string()),
        OgsaError::InsecureReply("bad"),
        OgsaError::NoUsableCredential,
        OgsaError::Malformed("junk"),
    ];
    for e in errors {
        let env = fault_envelope(&e);
        let reparsed = gridsec_wsse::soap::Envelope::parse(&env.to_xml()).unwrap();
        let (code, msg) = parse_fault(&reparsed).expect("is a fault");
        assert!(!code.is_empty());
        assert!(!msg.is_empty(), "fault {code} carries its message");
    }
    // Non-fault envelopes parse as None.
    let normal = gridsec_wsse::soap::Envelope::request("op", Element::new("x"));
    assert!(parse_fault(&normal).is_none());
}

#[test]
fn timeout_expiry_mid_handshake_recovers_after_heal() {
    let clock = SimClock::starting_at(100);
    let net = Network::new();
    // No random faults — this test is about SimClock-driven timeout
    // expiry, so the partition is the only failure source.
    net.enable_faults(clock.clone(), 0x11ED, FaultProfile::default());

    let (env, trust, user) = build_env(&clock, "gsi-secure-conversation", 10_000_000);
    let service = Rc::new(RefCell::new(RpcService::new(&net, "time-host", env)));
    let policy = RetryPolicy {
        max_attempts: 4,
        base_timeout: 8,
        multiplier: 2,
        max_timeout: 32,
    };
    let mut transport = RetryTransport::connect(&net, "u-client", "time-host", policy);
    // Cut the link after the second served request: the policy fetch
    // and the first conversation token get through, then the handshake
    // is left dangling mid-exchange.
    let served = Rc::new(Cell::new(0usize));
    let cut = Rc::new(Cell::new(false));
    let hook_net = net.clone();
    let hook_service = service.clone();
    let hook_served = served.clone();
    let hook_cut = cut.clone();
    transport.set_pump(move || {
        let n = hook_service.borrow_mut().poll();
        hook_served.set(hook_served.get() + n);
        if hook_served.get() >= 2 && !hook_cut.get() {
            hook_cut.set(true);
            hook_net.partition("u-client", "time-host");
        }
        n
    });
    let mut client = OgsaClient::new(transport, trust, clock.clone(), b"time client");
    client.add_source(Box::new(StaticCredential(user)));

    let before = clock.now();
    let err = client
        .create_service("null", Element::new("a"))
        .unwrap_err();
    assert!(matches!(err, OgsaError::Transport(_)), "{err:?}");
    assert!(cut.get(), "the partition must have landed mid-handshake");
    // The failing leg burned the whole retry schedule on the SimClock:
    // 8 + 16 + 32 + 32 simulated seconds, no wall-clock sleeps.
    assert!(
        clock.now() >= before + policy.worst_case_total(),
        "clock only advanced {} of {}",
        clock.now() - before,
        policy.worst_case_total()
    );

    // Heal and start over: the abandoned half-handshake on the server
    // must not poison a fresh attempt.
    net.heal_all();
    client.reset_session();
    let handle = client.create_service("null", Element::new("a")).unwrap();
    client.invoke(&handle, "x", Element::new("p")).unwrap();
}

#[test]
fn clock_skew_beyond_ttl_rejects_requests() {
    // The server's clock runs far ahead of the client's: every signed
    // request looks expired on arrival (message_ttl is 300).
    let server_clock = SimClock::starting_at(10_000);
    let client_clock = SimClock::starting_at(100);
    let (_env, mut client) = build_skewed(&server_clock, &client_clock, "xml-signature", 1_000_000);
    let err = client
        .create_service("null", Element::new("a"))
        .unwrap_err();
    assert!(
        matches!(err, OgsaError::Application(_) | OgsaError::Wsse(_)),
        "{err:?}"
    );
}

#[test]
fn clock_skew_within_ttl_is_tolerated() {
    // Small skew (50 < ttl 300) in either direction must not break the
    // flow: server slightly ahead...
    let server_clock = SimClock::starting_at(150);
    let client_clock = SimClock::starting_at(100);
    let (_env, mut client) = build_skewed(&server_clock, &client_clock, "xml-signature", 1_000_000);
    let handle = client.create_service("null", Element::new("a")).unwrap();
    client.invoke(&handle, "x", Element::new("p")).unwrap();

    // ...and client slightly ahead (its timestamps sit in the server's
    // near future, still inside the validity window).
    let server_clock = SimClock::starting_at(100);
    let client_clock = SimClock::starting_at(150);
    let (_env, mut client) = build_skewed(&server_clock, &client_clock, "xml-signature", 1_000_000);
    let handle = client.create_service("null", Element::new("a")).unwrap();
    client.invoke(&handle, "x", Element::new("p")).unwrap();
}
