//! Time-advancement and fault-handling behaviour of the hosting
//! environment.

use std::cell::RefCell;
use std::rc::Rc;

use gridsec_authz::policy::{CombiningAlg, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_ogsa::client::{OgsaClient, StaticCredential};
use gridsec_ogsa::hosting::{fault_envelope, parse_fault, HostingEnvironment};
use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::transport::InProcessTransport;
use gridsec_ogsa::OgsaError;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;
use gridsec_testbed::clock::SimClock;
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_xml::Element;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

struct Null;
impl GridService for Null {
    fn service_type(&self) -> &str {
        "null"
    }
    fn invoke(
        &mut self,
        _c: &RequestContext,
        _o: &str,
        _p: &Element,
    ) -> Result<Element, OgsaError> {
        Ok(Element::new("ok"))
    }
}

fn build(clock: &SimClock, mechanism: &str, user_lifetime: u64) -> (
    Rc<RefCell<HostingEnvironment>>,
    OgsaClient<InProcessTransport>,
) {
    let mut rng = ChaChaRng::from_seed_bytes(b"time tests");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 10_000_000);
    let user = ca.issue_identity(&mut rng, dn("/O=G/CN=U"), 512, 0, user_lifetime);
    let service = ca.issue_identity(&mut rng, dn("/O=G/CN=S"), 512, 0, 10_000_000);
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());

    let published = SecurityPolicy {
        service: "null".to_string(),
        alternatives: vec![PolicyAlternative {
            mechanism: mechanism.to_string(),
            token_types: vec!["x509-chain".to_string()],
            trust_roots: vec![],
            protection: Protection::Sign,
        }],
    };
    let mut authz = PolicySet::new(CombiningAlg::DenyOverrides);
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=G/CN=U".to_string()),
        "*",
        "*",
        Effect::Permit,
    ));
    let mut env = HostingEnvironment::new(
        "time-host",
        service,
        trust.clone(),
        clock.clone(),
        published,
        authz,
    );
    env.registry
        .register_factory("null", Box::new(|_c, _a| Ok(Box::new(Null))));
    let env = Rc::new(RefCell::new(env));
    let mut client = OgsaClient::new(
        InProcessTransport::new(env.clone()),
        trust,
        clock.clone(),
        b"time client",
    );
    client.add_source(Box::new(StaticCredential(user)));
    (env, client)
}

#[test]
fn expired_credential_refused_for_new_contexts() {
    let clock = SimClock::starting_at(100);
    let (_env, mut client) = build(&clock, "gsi-secure-conversation", 1_000);
    let handle = client.create_service("null", Element::new("a")).unwrap();
    client.invoke(&handle, "x", Element::new("p")).unwrap();

    // Advance time past the user's certificate lifetime; a fresh context
    // must be refused at the token exchange.
    clock.advance(10_000);
    client.reset_session();
    let err = client.invoke(&handle, "x", Element::new("p")).unwrap_err();
    assert!(matches!(
        err,
        OgsaError::Application(_) | OgsaError::Wsse(_)
    ));
}

#[test]
fn stateless_requests_expire_with_credential() {
    let clock = SimClock::starting_at(100);
    let (_env, mut client) = build(&clock, "xml-signature", 1_000);
    let handle = client.create_service("null", Element::new("a")).unwrap();
    client.invoke(&handle, "x", Element::new("p")).unwrap();

    clock.advance(10_000);
    let err = client.invoke(&handle, "x", Element::new("p")).unwrap_err();
    assert!(matches!(
        err,
        OgsaError::Application(_) | OgsaError::Wsse(_)
    ));
}

#[test]
fn fault_envelopes_roundtrip_every_variant() {
    let errors = vec![
        OgsaError::NotAuthorized {
            caller: "x".to_string(),
            operation: "y".to_string(),
        },
        OgsaError::NoSuchService("gsh:1".to_string()),
        OgsaError::NoSuchFactory("warp".to_string()),
        OgsaError::Application("boom".to_string()),
        OgsaError::Transport("down".to_string()),
        OgsaError::InsecureReply("bad"),
        OgsaError::NoUsableCredential,
        OgsaError::Malformed("junk"),
    ];
    for e in errors {
        let env = fault_envelope(&e);
        let reparsed = gridsec_wsse::soap::Envelope::parse(&env.to_xml()).unwrap();
        let (code, msg) = parse_fault(&reparsed).expect("is a fault");
        assert!(!code.is_empty());
        assert!(!msg.is_empty(), "fault {code} carries its message");
    }
    // Non-fault envelopes parse as None.
    let normal = gridsec_wsse::soap::Envelope::request("op", Element::new("x"));
    assert!(parse_fault(&normal).is_none());
}
