//! Regression tests: a signed request whose payload is missing a
//! dispatch attribute must come back as a typed `malformed` SOAP fault,
//! never a panic. These pin the `AppRequest` parse in
//! `HostingEnvironment::process_authenticated` — the dispatch arms used
//! to re-read wire attributes with `unwrap()` after the authz match had
//! validated them, a fragile duplication one refactor away from an
//! attacker-controlled panic.

use gridsec_authz::policy::{CombiningAlg, Effect, PolicySet, Rule, SubjectMatch};
use gridsec_crypto::rng::ChaChaRng;
use gridsec_ogsa::hosting::{parse_fault, HostingEnvironment};
use gridsec_ogsa::service::{GridService, RequestContext};
use gridsec_ogsa::OgsaError;
use gridsec_pki::ca::CertificateAuthority;
use gridsec_pki::credential::Credential;
use gridsec_pki::name::DistinguishedName;
use gridsec_pki::store::TrustStore;
use gridsec_testbed::clock::SimClock;
use gridsec_wsse::policy::{PolicyAlternative, Protection, SecurityPolicy};
use gridsec_wsse::soap::Envelope;
use gridsec_wsse::xmlsig;
use gridsec_xml::Element;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

struct NullService;

impl GridService for NullService {
    fn service_type(&self) -> &str {
        "null"
    }
    fn invoke(
        &mut self,
        _ctx: &RequestContext,
        _operation: &str,
        _payload: &Element,
    ) -> Result<Element, OgsaError> {
        Ok(Element::new("ok"))
    }
    fn service_data(&self, _name: &str) -> Option<Element> {
        None
    }
}

/// A hosting environment plus a CA-chained caller credential that the
/// authz policy fully permits — so the only thing between a request and
/// the application is the payload parse under test.
fn rig() -> (HostingEnvironment, Credential, SimClock) {
    let mut rng = ChaChaRng::from_seed_bytes(b"malformed rig");
    let ca = CertificateAuthority::create_root(&mut rng, dn("/O=G/CN=CA"), 512, 0, 1_000_000);
    let alice = ca.issue_identity(&mut rng, dn("/O=G/CN=Alice"), 512, 0, 500_000);
    let host = ca.issue_identity(&mut rng, dn("/O=G/CN=Host"), 512, 0, 500_000);
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());

    let mut authz = PolicySet::new(CombiningAlg::DenyOverrides);
    for resource in ["factory:null", "service:null"] {
        authz.add(Rule::new(
            SubjectMatch::Exact("/O=G/CN=Alice".to_string()),
            resource,
            "*",
            Effect::Permit,
        ));
    }
    let policy = SecurityPolicy {
        service: "null".to_string(),
        alternatives: vec![PolicyAlternative {
            mechanism: "xmlsig".to_string(),
            token_types: vec!["x509-chain".to_string()],
            trust_roots: vec![],
            protection: Protection::Sign,
        }],
    };
    let clock = SimClock::starting_at(100);
    let mut env = HostingEnvironment::new("host", host, trust, clock.clone(), policy, authz);
    env.registry
        .register_factory("null", Box::new(|_ctx, _args| Ok(Box::new(NullService))));
    (env, alice, clock)
}

/// Sign `payload` under `action` as the caller and push it through the
/// full `handle_message` wire path; return the fault (code, message).
fn fault_for(action: &str, payload: Element) -> (String, String) {
    let (mut env, alice, clock) = rig();
    let signed =
        xmlsig::sign_envelope(&Envelope::request(action, payload), &alice, clock.now(), 60);
    let reply = env.handle_message(&signed.to_xml());
    let reply = Envelope::parse(&reply).expect("reply parses");
    parse_fault(&reply).expect("expected a fault envelope")
}

#[test]
fn create_service_missing_type_is_a_malformed_fault() {
    let (code, msg) = fault_for("createService", Element::new("ogsa:CreateService"));
    assert_eq!(code, "malformed");
    assert!(msg.contains("type"), "{msg}");
}

#[test]
fn invoke_missing_handle_is_a_malformed_fault() {
    let (code, msg) = fault_for(
        "invoke",
        Element::new("ogsa:Invoke").with_attr("op", "echo"),
    );
    assert_eq!(code, "malformed");
    assert!(msg.contains("handle"), "{msg}");
}

#[test]
fn invoke_missing_op_is_a_malformed_fault() {
    let (code, msg) = fault_for(
        "invoke",
        Element::new("ogsa:Invoke").with_attr("handle", "h-1"),
    );
    assert_eq!(code, "malformed");
    assert!(msg.contains("op"), "{msg}");
}

#[test]
fn query_missing_handle_is_a_malformed_fault() {
    let (code, msg) = fault_for(
        "queryServiceData",
        Element::new("ogsa:Query").with_attr("name", "serviceType"),
    );
    assert_eq!(code, "malformed");
    assert!(msg.contains("handle"), "{msg}");
}

#[test]
fn query_missing_name_is_a_malformed_fault() {
    let (code, msg) = fault_for(
        "queryServiceData",
        Element::new("ogsa:Query").with_attr("handle", "h-1"),
    );
    assert_eq!(code, "malformed");
    assert!(msg.contains("name"), "{msg}");
}

#[test]
fn destroy_missing_handle_is_a_malformed_fault() {
    let (code, msg) = fault_for("destroy", Element::new("ogsa:Destroy"));
    assert_eq!(code, "malformed");
    assert!(msg.contains("handle"), "{msg}");
}

#[test]
fn unknown_action_is_a_malformed_fault() {
    let (code, _) = fault_for("formatDisk", Element::new("ogsa:Nope"));
    assert_eq!(code, "malformed");
}

#[test]
fn well_formed_request_still_works_after_the_parse_refactor() {
    let (mut env, alice, clock) = rig();
    let create = xmlsig::sign_envelope(
        &Envelope::request(
            "createService",
            Element::new("ogsa:CreateService").with_attr("type", "null"),
        ),
        &alice,
        clock.now(),
        60,
    );
    let reply = env.handle_message(&create.to_xml());
    let reply = Envelope::parse(&reply).expect("reply parses");
    assert!(parse_fault(&reply).is_none(), "got fault: {reply:?}");
}
