//! Credential bridging across mechanism domains — the paper's §3
//! gateways and Figure 3 step 2.
//!
//! A user at a Kerberos-only site (no personal X.509 certificate) uses
//! the KCA to obtain a GSI credential and then invokes a PKI-side Grid
//! service; a PKI user uses SSLK5/PKINIT to obtain a Kerberos TGT and
//! consume a Kerberized file service. Neither site changed its existing
//! infrastructure.
//!
//! Run with: `cargo run --example credential_bridging`

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use gridsec_gsi::prelude::*;
use gridsec_kerberos::client::{KrbClient, ServiceVerifier};
use gridsec_kerberos::Kdc;
use gridsec_ogsa::client::CredentialSource;
use gridsec_ogsa::transport::InProcessTransport;
use gridsec_ogsa::OgsaError;
use gridsec_services::kca::{KcaCredentialSource, KerberosCa};
use gridsec_services::sslk5::sslk5_login;

struct DataService;

impl GridService for DataService {
    fn service_type(&self) -> &str {
        "data"
    }
    fn invoke(
        &mut self,
        ctx: &RequestContext,
        operation: &str,
        _payload: &Element,
    ) -> Result<Element, OgsaError> {
        match operation {
            "whoami" => {
                Ok(Element::new("data:Identity").with_text(ctx.caller.base_identity.to_string()))
            }
            other => Err(OgsaError::Application(format!("unknown op {other}"))),
        }
    }
}

fn main() {
    let mut rng = ChaChaRng::from_seed_bytes(b"bridging example");
    let clock = SimClock::starting_at(1_000);

    // ------------------------------------------------------------------
    // Site A: Kerberos-only. Site B: PKI grid site.
    // ------------------------------------------------------------------
    let kdc = Kdc::new(&mut rng, "SITE.A", 36_000);
    kdc.add_principal("alice", "alice-password");
    let kca = KerberosCa::new(&mut rng, &kdc, 512, 100_000_000, 43_200);
    let kdc = Arc::new(kdc);
    let kca = Arc::new(kca);

    let grid_ca = CertificateAuthority::create_root(
        &mut rng,
        DistinguishedName::parse("/O=GridSiteB/CN=CA").unwrap(),
        512,
        0,
        100_000_000,
    );
    let service_cred = grid_ca.issue_identity(
        &mut rng,
        DistinguishedName::parse("/O=GridSiteB/CN=data service").unwrap(),
        512,
        0,
        10_000_000,
    );

    // Site B's service trusts its own CA *and*, unilaterally, site A's
    // KCA — that single act bridges the two mechanism domains.
    let mut trust = TrustStore::new();
    trust.add_root(grid_ca.certificate().clone());
    trust.add_root(kca.certificate().clone());

    // ------------------------------------------------------------------
    // Direction 1 (KCA): Kerberos user -> GSI credential -> Grid service.
    // ------------------------------------------------------------------
    let mut alice_source = KcaCredentialSource::new(
        kdc.clone(),
        kca.clone(),
        "alice",
        "alice-password",
        512,
        b"alice rng",
    );
    let gsi_cred = alice_source.obtain(clock.now()).expect("KCA conversion");
    println!(
        "KCA: kerberos principal alice@SITE.A -> grid identity {}",
        gsi_cred.subject()
    );

    let published = SecurityPolicy {
        service: "data".to_string(),
        alternatives: vec![PolicyAlternative {
            mechanism: "gsi-secure-conversation".to_string(),
            // The service's policy says: Kerberos-site users welcome.
            token_types: vec!["x509-chain".to_string(), "kerberos-ticket".to_string()],
            trust_roots: vec![],
            protection: Protection::SignAndEncrypt,
        }],
    };
    let mut authz = PolicySet::new(CombiningAlg::DenyOverrides);
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=KCA SITE.A/CN=alice".to_string()),
        "factory:data",
        "create",
        Effect::Permit,
    ));
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=KCA SITE.A/CN=alice".to_string()),
        "service:data",
        "*",
        Effect::Permit,
    ));
    let mut env = HostingEnvironment::new(
        "data-host",
        service_cred,
        trust.clone(),
        clock.clone(),
        published,
        authz,
    );
    env.registry
        .register_factory("data", Box::new(|_ctx, _args| Ok(Box::new(DataService))));
    let env = Rc::new(RefCell::new(env));

    let mut client = OgsaClient::new(
        InProcessTransport::new(env),
        trust.clone(),
        clock.clone(),
        b"alice ogsa client",
    );
    // The client's hosting environment owns the conversion (Fig 3 step 2):
    // it holds a Kerberos-backed credential source and uses it on demand.
    client.add_source(Box::new(KcaCredentialSource::new(
        kdc.clone(),
        kca.clone(),
        "alice",
        "alice-password",
        512,
        b"alice pipeline rng",
    )));
    let handle = client
        .create_service("data", Element::new("args"))
        .expect("createService via converted credential");
    let who = client
        .invoke(&handle, "whoami", Element::new("q"))
        .expect("invoke");
    println!(
        "Grid service authenticated the caller as: {}",
        who.text_content()
    );

    // ------------------------------------------------------------------
    // Direction 2 (SSLK5/PKINIT): PKI user -> Kerberos TGT -> service.
    // ------------------------------------------------------------------
    let bob = grid_ca.issue_identity(
        &mut rng,
        DistinguishedName::parse("/O=GridSiteB/CN=Bob").unwrap(),
        512,
        0,
        10_000_000,
    );
    kdc.add_principal("bob", "unused-password"); // account pre-exists at site A
    let mut kdc_trust = TrustStore::new();
    kdc_trust.add_root(grid_ca.certificate().clone()); // KDC's unilateral act

    let login = sslk5_login(
        &mut rng,
        &kdc,
        &bob,
        &kdc_trust,
        |dn| (dn.to_string() == "/O=GridSiteB/CN=Bob").then(|| "bob".to_string()),
        clock.now(),
        10_000,
    )
    .expect("PKINIT login");
    println!(
        "\nSSLK5: grid identity {} -> kerberos TGT for {} (expires t={})",
        bob.subject(),
        login.principal,
        login.end_time
    );

    // Bob uses the TGT against a Kerberized file service.
    let fs_key = kdc.add_service(&mut rng, "host/fileserver");
    let verifier = ServiceVerifier::new("host/fileserver", fs_key);
    let krb_client = KrbClient::from_password("bob", "SITE.A", "unused-password");
    let auth = krb_client.make_authenticator(&mut rng, &login.session_key, clock.now());
    let st = kdc
        .tgs_exchange(
            &mut rng,
            &login.tgt,
            &auth,
            "host/fileserver",
            clock.now(),
            1000,
        )
        .expect("TGS");
    let st_part = krb_client
        .open_service_reply(&login.session_key, &st)
        .expect("open TGS reply");
    let ap_auth = krb_client.make_authenticator(&mut rng, &st_part.session_key, clock.now());
    let accepted = verifier
        .accept(&st.ticket, &ap_auth, clock.now())
        .expect("AP exchange");
    println!(
        "Kerberized file service authenticated: {}@{}",
        accepted.client, accepted.client_realm
    );
    println!("\nBoth directions bridged without either site replacing its security.");
}
