//! Virtual-organization collaboration — Figures 1 and 2 of *Security for
//! Grid Services*.
//!
//! Three classical domains form a VO: the policy overlay makes
//! cross-domain authentication work (Figure 1), and CAS-mediated
//! authorization enforces `local policy ∩ VO policy` (Figure 2). Also
//! prints the unilateral-vs-bilateral trust accounting of experiment F1.
//!
//! Run with: `cargo run --example vo_collaboration`

use gridsec_gsi::prelude::*;
use gridsec_gsi::vo::{create_domain, form_vo, kerberos_bilateral_agreements};

fn main() {
    let mut rng = ChaChaRng::from_seed_bytes(b"vo example");

    // Three classical organizations, each with its own CA and users.
    let mut domains: Vec<_> = ["anl.gov", "isi.edu", "uchicago.edu"]
        .iter()
        .map(|name| create_domain(&mut rng, name, 3, 512, 100_000_000))
        .collect();

    // Before the VO: a UChicago resource cannot even authenticate an ANL
    // user (no common trust).
    let anl_user = domains[0].users[0].clone();
    let pre = validate_chain(anl_user.chain(), &domains[2].resource_trust, 100);
    println!(
        "before VO: uchicago validates {}? {}",
        anl_user.subject(),
        if pre.is_ok() {
            "yes"
        } else {
            "no (no trust path)"
        }
    );

    // Form the VO (Figure 1's policy overlay).
    let vo = form_vo(&mut rng, "climate-vo", &mut domains, 512, 100_000_000);
    println!(
        "\nformed {}: {} members enrolled, {} unilateral trust acts",
        vo.name,
        vo.cas.member_count(),
        vo.unilateral_acts
    );
    println!(
        "equivalent Kerberos mesh would need {} *bilateral* agreements",
        kerberos_bilateral_agreements(domains.len())
    );

    // After: authentication works across domains.
    let post = validate_chain(anl_user.chain(), &domains[2].resource_trust, 100).unwrap();
    println!(
        "after VO:  uchicago validates {} -> base identity {}",
        anl_user.subject(),
        post.base_identity
    );

    // Figure 2: the VO expresses policy over outsourced resource slices.
    vo.cas.add_rule(Rule::new(
        SubjectMatch::Exact("group:anl.gov".to_string()),
        "isi.edu:/cluster/*",
        "submit",
        Effect::Permit,
    ));
    // ISI's local admin embargoes one queue regardless of VO policy.
    domains[1].gate.local_policy.add(Rule::new(
        SubjectMatch::Exact("vo:climate-vo".to_string()),
        "isi.edu:/cluster/secure-queue",
        "*",
        Effect::Deny,
    ));

    // Step 1: the user fetches a CAS assertion.
    let assertion = vo
        .cas
        .issue_assertion(anl_user.base_identity(), 100)
        .expect("member assertion");
    println!(
        "\nCAS assertion for {}: {} right(s), valid until t={}",
        assertion.tbs.subject,
        assertion.tbs.rights.len(),
        assertion.tbs.not_after
    );

    // Steps 2–3: present it to the ISI resource with requests.
    for (resource, action) in [
        ("isi.edu:/cluster/batch", "submit"),
        ("isi.edu:/cluster/secure-queue", "submit"),
        ("isi.edu:/cluster/batch", "drain"),
    ] {
        let decision = domains[1]
            .gate
            .authorize_with_cas(&assertion, anl_user.base_identity(), resource, action, 150)
            .unwrap();
        println!("  {action:<7} {resource:<30} -> {decision:?}");
    }
    println!(
        "\n(first allowed by VO∩local; second blocked by LOCAL embargo even though\n the VO would allow it; third never granted by the VO)"
    );
}
