//! Quickstart: the core GSI workflow in one file.
//!
//! 1. A certificate authority and a user identity (enrollment).
//! 2. Single sign-on: `grid-proxy-init` creates a session proxy.
//! 3. Mutual authentication with a service over the GT2-style secure
//!    channel, and protected messaging.
//! 4. The same user invoking a GT3 Grid service through the full OGSA
//!    security pipeline (policy discovery → negotiation → invocation).
//!
//! Run with: `cargo run --example quickstart`

use std::cell::RefCell;
use std::rc::Rc;

use gridsec_gsi::prelude::*;
use gridsec_gsi::sso;
use gridsec_ogsa::transport::InProcessTransport;
use gridsec_ogsa::OgsaError;
use gridsec_tls::handshake::{handshake_in_memory, TlsConfig};

/// A trivially small Grid service for the demo.
struct GreeterService;

impl GridService for GreeterService {
    fn service_type(&self) -> &str {
        "greeter"
    }
    fn invoke(
        &mut self,
        ctx: &RequestContext,
        operation: &str,
        payload: &Element,
    ) -> Result<Element, OgsaError> {
        match operation {
            "greet" => Ok(Element::new("greeting").with_text(format!(
                "Hello {} (you said: {})",
                ctx.caller.base_identity,
                payload.text_content()
            ))),
            other => Err(OgsaError::Application(format!("unknown op {other}"))),
        }
    }
}

fn main() {
    let mut rng = ChaChaRng::from_seed_bytes(b"quickstart example");
    let clock = SimClock::starting_at(1_000);

    // ------------------------------------------------------------------
    // 1. Enrollment: a CA issues the user's long-lived identity.
    // ------------------------------------------------------------------
    let ca = CertificateAuthority::create_root(
        &mut rng,
        DistinguishedName::parse("/O=DOE Science Grid/CN=Certificate Authority").unwrap(),
        512,
        0,
        100_000_000,
    );
    let jane = ca.issue_identity(
        &mut rng,
        DistinguishedName::parse("/O=DOE Science Grid/CN=Jane Doe").unwrap(),
        512,
        0,
        10_000_000,
    );
    let service_cred = ca.issue_identity(
        &mut rng,
        DistinguishedName::parse("/O=DOE Science Grid/CN=greeter service").unwrap(),
        512,
        0,
        10_000_000,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    println!("enrolled: {}", jane.subject());

    // ------------------------------------------------------------------
    // 2. Single sign-on: a 12-hour proxy, no administrator involved.
    // ------------------------------------------------------------------
    let session = sso::grid_proxy_init(&mut rng, &jane, sso::ProxyOptions::default(), clock.now())
        .expect("proxy creation");
    println!(
        "signed on: {} (proxy of {}, {}s remaining)",
        session.credential().subject(),
        session.credential().base_identity(),
        session.remaining(clock.now()),
    );

    // ------------------------------------------------------------------
    // 3. GT2 style: mutual authentication + protected messages.
    // ------------------------------------------------------------------
    let (mut client_chan, mut server_chan) = handshake_in_memory(
        TlsConfig::new(session.credential().clone(), trust.clone(), clock.now()),
        TlsConfig::new(service_cred.clone(), trust.clone(), clock.now()),
        &mut rng,
    )
    .expect("handshake");
    println!(
        "GT2 channel: client sees {}, server sees {}",
        client_chan.peer.base_identity, server_chan.peer.base_identity
    );
    let sealed = client_chan.seal(b"protected payload");
    assert_eq!(server_chan.open(&sealed).unwrap(), b"protected payload");
    println!(
        "GT2 channel: {} byte protected message delivered",
        sealed.len()
    );

    // ------------------------------------------------------------------
    // 4. GT3 style: the full OGSA pipeline against a hosted service.
    // ------------------------------------------------------------------
    let published = SecurityPolicy {
        service: "greeter".to_string(),
        alternatives: vec![PolicyAlternative {
            mechanism: "gsi-secure-conversation".to_string(),
            token_types: vec!["x509-chain".to_string()],
            trust_roots: vec![],
            protection: Protection::SignAndEncrypt,
        }],
    };
    let mut authz = PolicySet::new(CombiningAlg::DenyOverrides);
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=DOE Science Grid/CN=Jane Doe".to_string()),
        "factory:greeter",
        "create",
        Effect::Permit,
    ));
    authz.add(Rule::new(
        SubjectMatch::Exact("/O=DOE Science Grid/CN=Jane Doe".to_string()),
        "service:greeter",
        "*",
        Effect::Permit,
    ));
    let mut env = HostingEnvironment::new(
        "greeter-host",
        service_cred,
        trust.clone(),
        clock.clone(),
        published,
        authz,
    );
    env.registry.register_factory(
        "greeter",
        Box::new(|_ctx, _args| Ok(Box::new(GreeterService))),
    );
    let env = Rc::new(RefCell::new(env));

    let mut client = OgsaClient::new(
        InProcessTransport::new(env),
        trust,
        clock.clone(),
        b"quickstart client",
    );
    client.add_source(Box::new(StaticCredential(session.credential().clone())));

    let handle = client
        .create_service("greeter", Element::new("args"))
        .expect("createService");
    let reply = client
        .invoke(
            &handle,
            "greet",
            Element::new("m").with_text("hi from the quickstart"),
        )
        .expect("invoke");
    println!("GT3 service replied: {}", reply.text_content());
    println!(
        "GT3 pipeline: {} policy fetch(es), {} security context(s)",
        client.policy_fetches, client.contexts_established
    );

    client.destroy(&handle).expect("destroy");
    println!("done.");
}
