//! GT3 GRAM job submission — the complete Figure 4 flow of *Security for
//! Grid Services*, with privilege accounting.
//!
//! Shows: signed stateless job requests, the cold path (MMJFS → Setuid
//! Starter → GRIM → LMJFS), the warm path, step 7 mutual authorization
//! (the client checking the MJS's GRIM credential), delegation, and the
//! least-privilege property (no privileged network services) contrasted
//! with a GT2 gatekeeper on a second host.
//!
//! Run with: `cargo run --example gram_job`

use gridsec_gram::gt2::Gt2Gatekeeper;
use gridsec_gram::resource::GramConfig;
use gridsec_gsi::prelude::*;
use gridsec_gsi::sso;
use gridsec_testbed::faults::compromise;

fn main() {
    let mut rng = ChaChaRng::from_seed_bytes(b"gram example");
    let clock = SimClock::starting_at(500);
    let os = SimOs::new();

    // Grid fabric: CA, user, host credential, grid-mapfile.
    let ca = CertificateAuthority::create_root(
        &mut rng,
        DistinguishedName::parse("/O=Grid/CN=CA").unwrap(),
        512,
        0,
        100_000_000,
    );
    let jane = ca.issue_identity(
        &mut rng,
        DistinguishedName::parse("/O=Grid/CN=Jane Doe").unwrap(),
        512,
        0,
        10_000_000,
    );
    let host_cred = ca.issue_host_identity(
        &mut rng,
        DistinguishedName::parse("/O=Grid/CN=host compute1").unwrap(),
        vec!["compute1.grid".to_string()],
        512,
        0,
        10_000_000,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    let gridmap = GridMapFile::parse("\"/O=Grid/CN=Jane Doe\" jdoe\n").unwrap();

    // Install GT3 GRAM on compute1.
    let mut resource = GramResource::install(
        os.clone(),
        clock.clone(),
        "compute1",
        trust.clone(),
        host_cred.clone(),
        &gridmap,
        GramConfig::default(),
    )
    .expect("install GRAM");

    // Sign on and submit two jobs.
    let session =
        sso::grid_proxy_init(&mut rng, &jane, sso::ProxyOptions::default(), clock.now()).unwrap();
    let mut requestor = Requestor::new(session.credential().clone(), trust.clone(), b"jane");

    let job1 = requestor
        .submit_job(
            &mut resource,
            &JobDescription::new("/bin/climate-sim").with_args(&["--years", "50"]),
            clock.now(),
        )
        .expect("job 1");
    println!(
        "job 1: handle={} path={} account={}",
        job1.handle,
        if job1.cold_start {
            "COLD (MMJFS→SetuidStarter→GRIM→LMJFS)"
        } else {
            "WARM"
        },
        job1.account
    );

    let job2 = requestor
        .submit_job(
            &mut resource,
            &JobDescription::new("/bin/postprocess"),
            clock.now(),
        )
        .expect("job 2");
    println!(
        "job 2: handle={} path={}",
        job2.handle,
        if job2.cold_start {
            "COLD"
        } else {
            "WARM (resident LMJFS)"
        }
    );

    // Process table: who runs as what?
    println!("\nprocess table on compute1:");
    for p in resource.os().processes("compute1").unwrap() {
        println!(
            "  pid {:>3}  uid {:>5}  euid {:>5}  net={}  {}{}",
            p.pid,
            p.uid,
            p.euid,
            if p.network_facing { "Y" } else { "n" },
            p.name,
            if p.credentials.is_empty() {
                String::new()
            } else {
                format!("  [{}]", p.credentials.join("; "))
            }
        );
    }
    let priv_net = resource.os().privileged_network_facing("compute1").unwrap();
    println!(
        "\nGT3 privileged network-facing services: {} (paper claim: zero)",
        priv_net.len()
    );

    // Contrast: GT2 gatekeeper on compute2.
    let mut gatekeeper = Gt2Gatekeeper::install(
        SimOs::new(),
        clock.clone(),
        "compute2",
        trust.clone(),
        host_cred,
        &gridmap,
    )
    .expect("install GT2");
    gatekeeper
        .submit(
            session.credential(),
            &JobDescription::new("/bin/legacy-sim"),
        )
        .expect("GT2 job");
    let gt2_priv = gatekeeper
        .os()
        .privileged_network_facing("compute2")
        .unwrap();
    println!(
        "GT2 privileged network-facing services: {} ({})",
        gt2_priv.len(),
        gt2_priv
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Fault injection: compromise each architecture's network service.
    let gt3_blast = compromise(resource.os(), "compute1", resource.mmjfs_pid()).unwrap();
    let gt2_blast = compromise(gatekeeper.os(), "compute2", gatekeeper.gatekeeper_pid()).unwrap();
    println!(
        "\ncompromise of GT3 MMJFS:      blast radius {:>3} (full host: {})",
        gt3_blast.blast_radius(),
        gt3_blast.full_host_compromise
    );
    println!(
        "compromise of GT2 gatekeeper: blast radius {:>3} (full host: {})",
        gt2_blast.blast_radius(),
        gt2_blast.full_host_compromise
    );

    // Tidy up job 1.
    requestor.cancel(&mut resource, &job1.handle).unwrap();
    println!(
        "\njob 1 state after cancel: {:?}",
        resource.job_state(&job1.handle).unwrap()
    );
}
